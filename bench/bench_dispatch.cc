// E7 (paper §4.5): Muppet 2.0's two-choice dispatch. An incoming event goes
// to its primary queue, or its secondary when the primary is hot — bounding
// slate contention to two threads while relieving hotspots. This harness
// compares single-queue dispatch (enable_two_choice=false, the 1.0-style
// single ownership) against two-choice, across key skews.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 20000;

void BuildApp(AppConfig* config) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->AddUpdater(
              "count",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                // A little work per event so queue depth matters.
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}),
          "add updater");
}

void Run(double skew, bool two_choice, uint64_t sample_period, Table& table,
         JsonReport& report) {
  AppConfig config;
  BuildApp(&config);
  EngineOptions options;
  options.num_machines = 1;
  options.threads_per_machine = 4;
  options.queue_capacity = 1 << 16;
  options.enable_two_choice = two_choice;
  options.secondary_queue_bias = 4;
  options.trace.sample_period = sample_period;
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::ZipfKeyGenerator keys(10000, skew, "k", 5);
  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    CheckOk(engine.Publish("in", keys.Next(), "", i + 1), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();
  const EngineStats stats = engine.Stats();
  table.Row({Fmt(skew, 1), two_choice ? "two-choice" : "single",
             FmtInt(static_cast<int64_t>(sample_period)),
             Eps(kEvents, elapsed), FmtInt(stats.latency_p99_us),
             FmtInt(engine.secondary_dispatches()),
             FmtInt(engine.slate_contentions()),
             FmtInt(stats.events_processed)});
  Json& row = report.AddRow();
  row["zipf_skew"] = skew;
  row["dispatch"] = two_choice ? "two-choice" : "single";
  row["trace_sample_period"] = static_cast<int64_t>(sample_period);
  row["events_per_sec"] =
      static_cast<double>(kEvents) * 1e6 / static_cast<double>(elapsed);
  row["secondary_dispatches"] = engine.secondary_dispatches();
  row["slate_contentions"] = engine.slate_contentions();
  JsonReport::PutLatency(stats, &row);
  CheckOk(engine.Stop(), "stop");
}

void Main() {
  JsonReport report("dispatch");
  Banner("E7: two-choice queue dispatch vs single ownership (paper §4.5)");
  Table table({"zipf_skew", "dispatch", "trace_period", "events/s",
               "p99_us", "secondary", "contentions", "processed"});
  constexpr uint64_t kDefaultPeriod = 1024;  // production sampling rate
  for (double skew : {0.0, 0.8, 1.2}) {
    Run(skew, /*two_choice=*/false, kDefaultPeriod, table, report);
    Run(skew, /*two_choice=*/true, kDefaultPeriod, table, report);
  }
  std::printf("\nPaper trend: under skew, two-choice diverts part of the "
              "hot key's load to a\nsecondary thread (secondary > 0) "
              "with contention bounded to two workers per\nslate; with "
              "uniform keys it behaves like single ownership.\n");

  Banner("tracing overhead: sample_period sweep at zipf 0.8, two-choice");
  Table overhead({"zipf_skew", "dispatch", "trace_period", "events/s",
                  "p99_us", "secondary", "contentions", "processed"});
  // period 0 = tracing off, 1024 = production sampling, 1 = trace all.
  // Expectation: 1/1024 sampling is within run-to-run noise of off.
  for (uint64_t period : {uint64_t{0}, uint64_t{1024}, uint64_t{1}}) {
    Run(/*skew=*/0.8, /*two_choice=*/true, period, overhead, report);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
