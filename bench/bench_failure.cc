// E9 (paper §4.3): machine-crash handling. A machine dies mid-stream; the
// failure is detected by the first send that cannot reach it, the master
// broadcasts it, and the shared hash ring reroutes that machine's keys to
// survivors. Events queued on the dead machine (plus the detecting sends)
// are lost and logged — the paper accepts bounded loss for low latency.
// Reported: loss, detection, and completeness before/after the crash.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "core/slate.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kBefore = 10000;
constexpr int kAfter = 10000;
constexpr int kMachines = 4;

void BuildCounting(AppConfig* config) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->AddUpdater(
              "count",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}),
          "add updater");
}

void Run(bool muppet2, Table& table) {
  AppConfig config;
  BuildCounting(&config);
  EngineOptions options;
  options.num_machines = kMachines;
  options.workers_per_function = kMachines;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  std::unique_ptr<Engine> engine;
  if (muppet2) {
    engine = std::make_unique<Muppet2Engine>(config, options);
  } else {
    engine = std::make_unique<Muppet1Engine>(config, options);
  }
  CheckOk(engine->Start(), "start");

  workload::ZipfKeyGenerator keys(200, 0.0, "k", 23);
  Stopwatch timer;
  for (int i = 0; i < kBefore; ++i) {
    CheckOk(engine->Publish("in", keys.Next(), "", i + 1), "publish");
  }
  CheckOk(engine->Drain(), "drain");
  const EngineStats before = engine->Stats();

  CheckOk(engine->CrashMachine(1), "crash");
  Stopwatch recovery;
  for (int i = 0; i < kAfter; ++i) {
    CheckOk(engine->Publish("in", keys.Next(), "", kBefore + i + 1),
            "publish");
  }
  CheckOk(engine->Drain(), "drain");
  const int64_t total_elapsed = timer.ElapsedMicros();
  const EngineStats after = engine->Stats();

  // Completeness: every published event was processed or accounted lost.
  const int64_t processed_after =
      after.events_processed - before.events_processed;
  const int64_t lost = after.events_lost_failure;
  table.Row({muppet2 ? "Muppet2.0" : "Muppet1.0",
             FmtInt(after.failures_detected), FmtInt(lost),
             Fmt(100.0 * static_cast<double>(lost) / (kBefore + kAfter), 3),
             FmtInt(processed_after),
             Eps(kBefore + kAfter, total_elapsed),
             (processed_after + lost == kAfter) ? "yes" : "NO"});
  (void)recovery;
  CheckOk(engine->Stop(), "stop");
}

void Main() {
  Banner("E9: machine crash mid-stream (crash 1 of 4 after 10k events, "
         "then 10k more)");
  Table table({"engine", "detected", "lost", "lost%", "post_crash_ok",
               "events/s", "accounted"});
  Run(false, table);
  Run(true, table);
  std::printf("\nPaper trend: failure detected by the first failed send "
              "(not by pinging);\nloss is a tiny fraction of the stream; "
              "processing continues on survivors\nwith the same keys "
              "rerouted deterministically.\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
