// E8 (paper §5, Example 6): relieving a hotspot updater by key splitting —
// now performed *automatically* by the self-tuning load manager
// (engine/load_manager.h). The updater is declared associative/commutative
// with a count-summing merger; the engine's heat sketch detects the hot
// keys and splits them at runtime, no operator-graph surgery required.
//
// Workload: Zipf-skewed keys, skew sweep {0.8, 1.0, 1.2}, each run twice
// (load manager off / on). Each update performs a fixed-latency blocking
// call (modeling the external-service lookups real updaters make) while
// holding the owning slate stripe, so an unsplit hot key's events
// serialize behind one stripe and the split overlaps them across shards —
// the win is from overlapping waits, so it shows on any host, including
// single-core CI runners where a CPU-bound hot key could not speed up.
// Reports drain throughput, p99 queue wait, split/merge counts, and
// correctness (the re-aggregated count of every key must equal its true
// count); emits BENCH_hotspot.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 60000;
constexpr int kNumKeys = 16;
// Blocking cost per update, microseconds. Must stay well under the
// overflow-throttle retry budget times the worker pop batch (32 events):
// a full queue must free a slot before the sender gives up and drops.
constexpr int kUpdateCostMicros = 50;

// Counting updater with a fixed blocking cost per event. Associative:
// partial counts merge by summing, so the load manager may split hot keys.
void BuildApp(AppConfig* config) {
  UpdaterOptions uo;
  uo.associativity = Associativity::kAssociativeCommutative;
  uo.merger = [](const Bytes* base, const Bytes& part) {
    JsonSlate b(base);
    JsonSlate p(&part);
    b.data()["count"] =
        b.data().GetInt("count", 0) + p.data().GetInt("count", 0);
    return b.Serialize();
  };
  CheckOk(config->DeclareInputStream("in"), "declare in");
  CheckOk(config->AddUpdater(
              "count",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                    const Bytes* slate) {
                (void)e;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(kUpdateCostMicros));
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}, uo),
          "add count");
}

struct RunResult {
  double events_per_sec = 0;
  int64_t queue_wait_p99_us = 0;
  int64_t splits = 0;
  int64_t merges = 0;
  bool exact = false;
  EngineStats stats;
};

RunResult Run(double skew, bool lm_enabled, Table& table, JsonReport& report) {
  AppConfig config;
  BuildApp(&config);

  EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 4;
  // Small queues on purpose: the source must be paced to the cluster's
  // drain rate (not allowed to enqueue the whole run up front), or every
  // hot event would already sit serialized in one queue before the load
  // manager can react.
  options.queue_capacity = 512;
  // Source pacing instead of drops: overflow would shed exactly the hot
  // traffic we are trying to measure.
  options.overflow.policy = OverflowPolicy::kThrottle;
  options.trace.sample_period = 0;
  options.load_manager.enabled = lm_enabled;
  if (lm_enabled) {
    // React within tens of milliseconds so the splits land early in the
    // run rather than after the measurement window.
    options.load_manager.tick_micros = 5 * kMicrosPerMilli;
    options.load_manager.heat.sample_period = 4;
    options.load_manager.min_samples = 32;
    // Split everything above 3% of traffic: at these skews that covers
    // the top 4-8 ranks, pushing the serialization bottleneck down to a
    // rank cold enough for a >=3x gain. The wide split/merge hysteresis
    // band and slow decay keep sampling noise from churning splits
    // mid-run (a merged-then-resplit key re-serializes while draining).
    options.load_manager.split_heat_fraction = 0.03;
    options.load_manager.merge_heat_fraction = 0.01;
    options.load_manager.heat_decay = 0.9;
    // Mid-rank Zipf keys hover around the merge threshold; with a short
    // cool window they churn (merge, re-serialize, re-split), costing
    // 20-40% throughput at high skew. Hold splits for the whole run —
    // merge-back is exercised by the engine lifecycle test, not here.
    options.load_manager.merge_cool_ticks = 1000;
  }

  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::ZipfKeyGenerator keys(kNumKeys, skew, "k", 7);
  std::vector<int64_t> true_counts(kNumKeys, 0);
  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    const Bytes key = keys.Next();
    ++true_counts[keys.last_rank()];
    CheckOk(engine.Publish("in", key, "", i + 1), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();

  // Let in-flight merge traffic settle, then check every key's
  // re-aggregated count against the true count.
  engine.PauseLoadManagement();
  CheckOk(engine.Drain(), "final drain");
  bool exact = true;
  for (int rank = 0; rank < kNumKeys; ++rank) {
    int64_t live = 0;
    Result<Bytes> slate = engine.FetchSlate("count", keys.KeyAt(rank));
    if (slate.ok()) {
      JsonSlate s(&slate.value());
      live = s.data().GetInt("count");
    }
    if (live != true_counts[static_cast<size_t>(rank)]) exact = false;
  }

  RunResult r;
  r.events_per_sec =
      static_cast<double>(kEvents) * 1e6 / static_cast<double>(elapsed);
  r.queue_wait_p99_us =
      engine.metrics()->GetHistogram("muppet_queue_wait_us")->Percentile(0.99);
  r.splits = engine.key_splits();
  r.merges = engine.key_merges();
  r.exact = exact;
  r.stats = engine.Stats();
  CheckOk(engine.Stop(), "stop");

  table.Row({Fmt(skew), lm_enabled ? "on" : "off", Eps(kEvents, elapsed),
             FmtInt(r.queue_wait_p99_us), FmtInt(r.splits), FmtInt(r.merges),
             r.exact ? "yes" : "NO"});

  Json& row = report.AddRow();
  row["skew"] = skew;
  row["load_manager"] = lm_enabled;
  row["events"] = static_cast<int64_t>(kEvents);
  row["elapsed_us"] = elapsed;
  row["events_per_sec"] = r.events_per_sec;
  row["queue_wait_p99_us"] = r.queue_wait_p99_us;
  row["key_splits"] = r.splits;
  row["key_merges"] = r.merges;
  row["exact"] = r.exact;
  JsonReport::PutLatency(r.stats, &row);
  return r;
}

void Main() {
  Banner(
      "E8: self-tuning hot-key splitting (paper §5 Example 6, automated; "
      "Zipf skew sweep, load manager off vs on)");
  JsonReport report("hotspot");
  Table table({"skew", "lm", "events/s", "qwait_p99_us", "splits", "merges",
               "exact"});
  bool all_exact = true;
  double speedup_12 = 0;
  for (double skew : {0.8, 1.0, 1.2}) {
    const RunResult off = Run(skew, /*lm_enabled=*/false, table, report);
    const RunResult on = Run(skew, /*lm_enabled=*/true, table, report);
    all_exact = all_exact && off.exact && on.exact;
    const double speedup = off.events_per_sec > 0
                               ? on.events_per_sec / off.events_per_sec
                               : 0;
    if (skew == 1.2) speedup_12 = speedup;
    std::printf("  skew %.1f: load-manager speedup %.2fx\n", skew, speedup);
  }
  report.Write();
  std::printf(
      "\nPaper trend: under heavy skew one updater serializes the hot key; "
      "the load\nmanager detects it from the heat sketch, splits it across "
      "shards, and\nre-aggregates exactly (Example 6's trick, self-tuned). "
      "s=1.2 speedup: %.2fx%s\n",
      speedup_12, all_exact ? "" : "  [COUNT MISMATCH]");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
