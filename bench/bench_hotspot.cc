// E8 (paper §5, Example 6): relieving a hotspot updater by key splitting.
// "Counting Best Buy events is associative and commutative ... instead of
// using just a single updater U, we can use a set of updaters, each of
// which counts just a subset of Best Buy events" whose partial counts are
// re-aggregated under the original key.
//
// Workload: 90% of events carry one hot key. Sweep the number of shards
// the hot key is split into and report drain throughput and correctness
// (the re-aggregated total must equal the true count).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/keysplit.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 20000;
constexpr char kHotKey[] = "Best Buy";

// Workflow per Example 6:
//   in --splitter(map)--> counted(by subkey) --U_partial--> partials
//   partials(key = base key) --U_total--> total counts
void BuildSplitApp(AppConfig* config, int shards, int report_every) {
  CheckOk(config->DeclareInputStream("in"), "declare in");
  CheckOk(config->DeclareStream("counted"), "declare counted");
  CheckOk(config->DeclareStream("partials"), "declare partials");

  CheckOk(config->AddMapper(
              "splitter",
              [shards](const AppConfig&, const std::string& name) {
                auto splitter = std::make_shared<KeySplitter>(
                    shards, std::map<Bytes, bool>{{Bytes(kHotKey), true}});
                return std::make_unique<LambdaMapper>(
                    name,
                    [splitter](PerformerUtilities& out, const Event& e) {
                      (void)out.Publish("counted",
                                        splitter->RouteKey(e.key), e.value);
                    });
              },
              {"in"}),
          "add splitter");

  // Partial counter: counts per (sub)key; every `report_every` events it
  // emits its delta under the *base* key.
  CheckOk(config->AddUpdater(
              "U_partial",
              MakeUpdaterFactory([report_every](PerformerUtilities& out,
                                                const Event& e,
                                                const Bytes* slate) {
                JsonSlate s(slate);
                const int64_t count = s.data().GetInt("count") + 1;
                const int64_t reported = s.data().GetInt("reported");
                s.data()["count"] = count;
                if (count - reported >= report_every) {
                  Bytes base = e.key;
                  int shard;
                  Bytes parsed;
                  if (ParseSplitKey(e.key, &parsed, &shard).ok()) {
                    base = parsed;
                  }
                  Json delta = Json::MakeObject();
                  delta["delta"] = count - reported;
                  (void)out.Publish("partials", base, delta.Dump());
                  s.data()["reported"] = count;
                }
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"counted"}),
          "add partial");

  // Total counter: sums deltas under the base key.
  CheckOk(config->AddUpdater(
              "U_total",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                    const Bytes* slate) {
                Result<Json> payload = Json::Parse(e.value);
                if (!payload.ok()) return;
                JsonSlate s(slate);
                s.data()["count"] =
                    s.data().GetInt("count") + payload.value().GetInt("delta");
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"partials"}),
          "add total");
}

void Run(int shards, Table& table) {
  AppConfig config;
  BuildSplitApp(&config, shards, /*report_every=*/1);
  EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::ZipfKeyGenerator cold_keys(1000, 0.0, "cold", 3);
  Rng rng(17);
  int64_t hot_published = 0;
  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    Bytes key;
    if (rng.Chance(0.9)) {
      key = kHotKey;
      ++hot_published;
    } else {
      key = cold_keys.Next();
    }
    CheckOk(engine.Publish("in", key, "", i + 1), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();

  int64_t total = -1;
  Result<Bytes> slate = engine.FetchSlate("U_total", kHotKey);
  if (slate.ok()) {
    JsonSlate s(&slate.value());
    total = s.data().GetInt("count");
  }
  table.Row({FmtInt(shards), Eps(kEvents, elapsed), FmtInt(hot_published),
             FmtInt(total), total == hot_published ? "yes" : "NO"});
  CheckOk(engine.Stop(), "stop");
}

void Main() {
  Banner("E8: hot-key splitting (paper §5 Example 6; 90% of events on "
         "one key)");
  Table table({"shards", "events/s", "hot_true", "hot_total", "exact"});
  for (int shards : {1, 2, 4, 8}) Run(shards, table);
  std::printf("\nPaper trend: splitting the hot key spreads its load over "
              "several updaters\n(throughput recovers on multicore hosts) "
              "while re-aggregation keeps the\ncount exact — the "
              "associative/commutative trick of Example 6.\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
