// E11 (paper §4.2 "Using SSDs and Caching Slates" + write buffering):
//  a) cold-cache slate fetches: random reads on SSD vs HDD device models
//     (simulated clock: latency is charged, not slept);
//  b) write buffering: a larger memtable coalesces repeated overwrites of
//     popular slates, cutting device writes ("it is advantageous ... to
//     delay flushing the writes ... as long as possible");
//  c) read amplification vs compaction: "the more times a row is flushed
//     to disk ... the more files will have to be checked for the row".
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "kvstore/node.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

void ColdReadLatency() {
  Banner("E11a: cold-cache slate fetch latency, SSD vs HDD (simulated "
         "device time)");
  Table table({"device", "reads", "sim_ms_total", "sim_us/read"});
  for (const bool ssd : {true, false}) {
    ScratchDir dir;
    SimulatedClock clock(1);
    kv::NodeOptions options;
    options.data_dir = dir.path();
    options.device = ssd ? kv::DeviceProfile::Ssd() : kv::DeviceProfile::Hdd();
    options.clock = &clock;
    kv::StorageNode node(options);
    CheckOk(node.Open(), "open");

    // Populate 20k slates and flush them to SSTables (cold state).
    const Bytes slate(512, 's');
    for (int i = 0; i < 20000; ++i) {
      CheckOk(node.Put("slates", "user" + std::to_string(i), "U1", slate),
              "put");
    }
    CheckOk(node.FlushAll(), "flush");

    // Random cold fetches, as at Muppet startup ("early update events may
    // require many row fetches from the key-value store").
    const int64_t before = clock.Now();
    constexpr int kReads = 2000;
    workload::ZipfKeyGenerator keys(20000, 0.0, "user", 3);
    for (int i = 0; i < kReads; ++i) {
      CheckOk(node.Get("slates", keys.Next(), "U1").status(), "get");
    }
    const int64_t elapsed = clock.Now() - before;
    table.Row({ssd ? "SSD" : "HDD", FmtInt(kReads),
               Fmt(static_cast<double>(elapsed) / 1000.0, 1),
               Fmt(static_cast<double>(elapsed) / kReads, 1)});
  }
}

void WriteCoalescing() {
  Banner("E11b: write buffering — device writes per slate update vs "
         "memtable size");
  Table table({"memtable_kb", "updates", "flushes", "dev_writes",
               "bytes_written", "coalesce_x"});
  constexpr int kUpdates = 50000;
  for (const size_t memtable_kb : {16u, 64u, 256u, 1024u}) {
    ScratchDir dir;
    SimulatedClock clock(1);
    kv::NodeOptions options;
    options.data_dir = dir.path();
    options.memtable_flush_bytes = memtable_kb << 10;
    options.device = kv::DeviceProfile::Ssd();
    options.clock = &clock;
    options.enable_wal = false;  // isolate the flush path
    kv::StorageNode node(options);
    CheckOk(node.Open(), "open");
    auto shard = node.GetColumnFamily("slates");
    CheckOk(shard.status(), "cf");

    // Popular slates overwritten repeatedly (Zipf 1.2 over 1000 keys).
    workload::ZipfKeyGenerator keys(1000, 1.2, "hot", 9);
    const Bytes slate(256, 'x');
    for (int i = 0; i < kUpdates; ++i) {
      CheckOk(node.Put("slates", keys.Next(), "U1", slate), "put");
    }
    const double updates_bytes = static_cast<double>(kUpdates) * 256.0;
    table.Row({FmtInt(static_cast<int64_t>(memtable_kb)), FmtInt(kUpdates),
               FmtInt(static_cast<int64_t>(shard.value()->flush_count())),
               FmtInt(node.device().writes()),
               FmtInt(node.device().bytes_written()),
               Fmt(updates_bytes /
                       std::max<double>(
                           1.0, static_cast<double>(
                                    node.device().bytes_written())),
                   2)});
  }
}

void ReadAmplification() {
  Banner("E11c: tables checked per read — compaction on vs off");
  Table table({"auto_compact", "flushes", "sstables", "rand_reads/get"});
  for (const bool compact : {false, true}) {
    ScratchDir dir;
    SimulatedClock clock(1);
    kv::NodeOptions options;
    options.data_dir = dir.path();
    options.memtable_flush_bytes = 32 << 10;
    options.device = kv::DeviceProfile::Ssd();
    options.clock = &clock;
    options.enable_wal = false;
    options.auto_compact = compact;
    kv::StorageNode node(options);
    CheckOk(node.Open(), "open");
    auto shard = node.GetColumnFamily("slates");
    CheckOk(shard.status(), "cf");

    const Bytes slate(256, 'y');
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 500; ++i) {
        CheckOk(node.Put("slates", "row" + std::to_string(i), "U1", slate),
                "put");
      }
    }
    CheckOk(node.FlushAll(), "flush");

    const int64_t reads_before = node.device().random_reads();
    constexpr int kGets = 1000;
    for (int i = 0; i < kGets; ++i) {
      CheckOk(node.Get("slates", "row" + std::to_string(i % 500), "U1")
                  .status(),
              "get");
    }
    const int64_t reads = node.device().random_reads() - reads_before;
    table.Row({compact ? "on" : "off",
               FmtInt(static_cast<int64_t>(shard.value()->flush_count())),
               FmtInt(static_cast<int64_t>(shard.value()->sstable_count())),
               Fmt(static_cast<double>(reads) / kGets, 2)});
  }
  std::printf("\nPaper trends: HDD cold fetches are dominated by seeks "
              "(~100x SSD); bigger\nwrite buffers coalesce hot-slate "
              "overwrites (coalesce_x grows); compaction\nbounds the "
              "number of tables a read must check.\n");
}

void Main() {
  ColdReadLatency();
  WriteCoalescing();
  ReadAmplification();
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
