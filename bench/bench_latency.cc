// E4 (paper §5): "achieved a latency of under 2 seconds" while processing
// 100M tweets/day over tens of machines (~1.2k events/sec/machine).
// This harness sweeps offered load and reports end-to-end latency
// percentiles; the paper's trend to reproduce is that latency stays far
// below 2s until the engine saturates, then grows sharply (queueing knee).
#include <cstdio>
#include <string>

#include "apps/retailer.h"
#include "bench/bench_util.h"
#include "engine/muppet2.h"
#include "workload/checkins.h"
#include "workload/rate.h"

namespace muppet {
namespace bench {
namespace {

void RunAtRate(double events_per_second, Table& table, JsonReport& report) {
  AppConfig config;
  CheckOk(apps::BuildRetailerApp(&config), "build app");
  EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 15;
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::CheckinOptions gen_options;
  gen_options.retailer_fraction = 0.4;
  workload::CheckinGenerator gen(gen_options, 1000);
  workload::RateController rate(events_per_second);

  // Run for a fixed wall time so every rate sees the same duration.
  constexpr double kSeconds = 2.0;
  Stopwatch timer;
  int64_t published = 0;
  while (timer.ElapsedSeconds() < kSeconds) {
    const workload::Checkin c = gen.Next();
    CheckOk(engine.Publish("S1", c.user, c.json, c.ts), "publish");
    ++published;
    rate.Pace();
  }
  CheckOk(engine.Drain(), "drain");
  const EngineStats stats = engine.Stats();
  table.Row({Fmt(events_per_second, 0), FmtInt(published),
             Fmt(stats.latency_mean_us, 0), FmtInt(stats.latency_p50_us),
             FmtInt(stats.latency_p95_us), FmtInt(stats.latency_p99_us),
             stats.latency_p99_us < 2 * kMicrosPerSecond ? "yes" : "NO"});
  Json& row = report.AddRow();
  row["offered_eps"] = events_per_second;
  row["published"] = published;
  row["latency_mean_us"] = stats.latency_mean_us;
  JsonReport::PutLatency(stats, &row);
  CheckOk(engine.Stop(), "stop");
}

void Main() {
  Banner("E4: end-to-end latency vs offered load (paper: <2s at "
         "~1.2k ev/s/machine)");
  Table table({"offered_ev/s", "published", "mean_us", "p50_us", "p95_us",
               "p99_us", "under_2s"});
  JsonReport report("latency");
  for (double rate : {500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0}) {
    RunAtRate(rate, table, report);
  }
  report.Write();
  std::printf("\nTrend to match the paper: p99 well under 2,000,000 us at "
              "production-like rates;\nlatency rises only when offered load "
              "approaches the single-host saturation point.\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
