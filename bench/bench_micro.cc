// Micro-benchmarks (google-benchmark) for the primitives the engines lean
// on: event wire codec, slate compression, JSON slate round-trips, hash
// ring routing, queue operations, and the 1.0 task-processor protocol.
// These quantify the §4.5 argument that eliminating serialization inside
// a machine is worth a generation bump.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/compress.h"
#include "common/hash.h"
#include "core/event.h"
#include "core/hash_ring.h"
#include "core/intern.h"
#include "core/slate.h"
#include "engine/queue.h"
#include "engine/wire.h"
#include "json/json.h"

namespace muppet {
namespace {

Event MakeEvent(size_t value_bytes) {
  Event e;
  e.stream = "S2";
  e.ts = 1234567890;
  e.key = "user1234567";
  e.value = Bytes(value_bytes, 'v');
  e.seq = 42;
  e.origin_ts = 1234567000;
  return e;
}

void BM_EventEncode(benchmark::State& state) {
  const Event e = MakeEvent(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes wire;
    EncodeEvent(e, &wire);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventEncode)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EventDecode(benchmark::State& state) {
  const Event e = MakeEvent(static_cast<size_t>(state.range(0)));
  Bytes wire;
  EncodeEvent(e, &wire);
  for (auto _ : state) {
    Event decoded;
    benchmark::DoNotOptimize(DecodeEvent(wire, &decoded));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventDecode)->Arg(100)->Arg(1000)->Arg(10000);

Bytes MakeJsonSlateBytes(int fields) {
  Json j = Json::MakeObject();
  for (int i = 0; i < fields; ++i) {
    j["counter_field_" + std::to_string(i)] = 123456 + i;
  }
  return j.Dump();
}

void BM_SlateCompress(benchmark::State& state) {
  const Bytes slate = MakeJsonSlateBytes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Bytes compressed;
    CompressBytes(slate, &compressed);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(slate.size()));
}
BENCHMARK(BM_SlateCompress)->Arg(10)->Arg(100)->Arg(1000);

void BM_SlateDecompress(benchmark::State& state) {
  const Bytes slate = MakeJsonSlateBytes(static_cast<int>(state.range(0)));
  const Bytes compressed = Compress(slate);
  for (auto _ : state) {
    Bytes restored;
    benchmark::DoNotOptimize(DecompressBytes(compressed, &restored));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(slate.size()));
}
BENCHMARK(BM_SlateDecompress)->Arg(10)->Arg(100)->Arg(1000);

void BM_JsonSlateUpdateCycle(benchmark::State& state) {
  // The canonical updater body: parse slate, bump counter, serialize.
  Bytes slate = MakeJsonSlateBytes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    JsonSlate s(&slate);
    s.data()["counter_field_0"] = s.data().GetInt("counter_field_0") + 1;
    slate = s.Serialize();
  }
  benchmark::DoNotOptimize(slate);
}
BENCHMARK(BM_JsonSlateUpdateCycle)->Arg(1)->Arg(10)->Arg(100);

void BM_HashRingRoute(benchmark::State& state) {
  HashRing ring;
  for (int m = 0; m < static_cast<int>(state.range(0)); ++m) {
    ring.AddWorker("U1", WorkerRef{m, 0});
  }
  const std::set<MachineId> no_failures;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.Route("U1", "key" + std::to_string(i++ % 1000), no_failures));
  }
}
BENCHMARK(BM_HashRingRoute)->Arg(4)->Arg(16)->Arg(64);

void BM_QueuePushPop(benchmark::State& state) {
  EventQueue queue(1 << 16);
  RoutedEvent re;
  re.function = "count";
  re.event = MakeEvent(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.TryPush(re));
    RoutedEvent out;
    benchmark::DoNotOptimize(queue.TryPop(&out));
  }
}
BENCHMARK(BM_QueuePushPop);

void BM_QueuePushPopBatch(benchmark::State& state) {
  // Batched counterpart of BM_QueuePushPop: one lock acquisition moves
  // `batch` events in, one moves them out. Per-event cost should drop
  // roughly with batch size.
  const size_t batch = static_cast<size_t>(state.range(0));
  EventQueue queue(1 << 16);
  std::vector<RoutedEvent> in;
  for (size_t i = 0; i < batch; ++i) {
    RoutedEvent re;
    re.function_id = 0;
    re.work = i + 1;
    re.event = MakeEvent(100);
    in.push_back(std::move(re));
  }
  std::vector<RoutedEvent> out;
  out.reserve(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.TryPushBatch(&in));  // clears `in`
    benchmark::DoNotOptimize(queue.PopBatch(&out, batch));
    std::swap(in, out);  // popped events become the next push batch
    out.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_QueuePushPopBatch)->Arg(1)->Arg(8)->Arg(32);

void BM_RoutedEventFrameRoundTrip(benchmark::State& state) {
  // The 2.0 cross-machine format: id-addressed events coalesced into one
  // frame per destination.
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<RoutedEvent> events;
  for (size_t i = 0; i < batch; ++i) {
    RoutedEvent re;
    re.function_id = static_cast<int32_t>(i % 4);
    re.work = i + 1;
    re.event = MakeEvent(100);
    events.push_back(std::move(re));
  }
  for (auto _ : state) {
    Bytes frame;
    EncodeRoutedEventFrame(events, &frame);
    RoutedEventFrameReader reader(frame);
    RoutedEvent re;
    while (reader.Next(&re)) benchmark::DoNotOptimize(re);
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_RoutedEventFrameRoundTrip)->Arg(1)->Arg(8)->Arg(32);

void BM_InternFind(benchmark::State& state) {
  // The per-event name resolution on the hot path: one Find per stream.
  NameInterner interner;
  for (int i = 0; i < 16; ++i) interner.Intern("stream" + std::to_string(i));
  const std::string name = "stream7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.Find(name));
  }
}
BENCHMARK(BM_InternFind);

void BM_Fnv1a64(benchmark::State& state) {
  const Bytes key(static_cast<size_t>(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(key));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(16)->Arg(256);

void BM_Crc32(benchmark::State& state) {
  const Bytes data(static_cast<size_t>(state.range(0)), 'd');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096);

}  // namespace
}  // namespace muppet

BENCHMARK_MAIN();
