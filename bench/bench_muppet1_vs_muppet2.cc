// E6 (paper §4.5): Muppet 2.0 against Muppet 1.0. The paper lists four 1.0
// limitations; each maps to a measured column here:
//   1. duplicated operator code per worker   -> operator_instances
//   2. cross-process event/slate copies      -> throughput (1.0 serializes
//      every hop through the conductor<->task-processor protocol)
//   3. scattered per-worker slate caches     -> cache misses at a capacity
//      sized exactly to the working set (the paper's 100-vs-125 example)
//   4. workers-per-function vs threads       -> thread utilization
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "core/slate.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 30000;

void BuildCounting(AppConfig* config) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->AddUpdater(
              "count",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}),
          "add updater");
}

struct RunResult {
  int64_t elapsed_us = 0;
  EngineStats stats;
};

// Throughput run with realistic payloads: Muppet 1.0 serializes each
// event+slate across its conductor/task-processor boundary, so the value
// size matters.
RunResult RunThroughput(bool muppet2, size_t value_bytes) {
  AppConfig config;
  BuildCounting(&config);
  EngineOptions options;
  options.num_machines = 2;
  options.workers_per_function = 8;  // 1.0: 4 workers/machine/function
  options.threads_per_machine = 4;   // 2.0: 4 threads/machine
  options.queue_capacity = 1 << 16;
  options.slate_cache_capacity = 1 << 16;
  std::unique_ptr<Engine> engine;
  if (muppet2) {
    engine = std::make_unique<Muppet2Engine>(config, options);
  } else {
    engine = std::make_unique<Muppet1Engine>(config, options);
  }
  CheckOk(engine->Start(), "start");

  workload::ZipfKeyGenerator key_gen(2000, 0.0, "k", 11);
  const Bytes value(value_bytes, 'v');
  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    CheckOk(engine->Publish("in", key_gen.Next(), value, i + 1), "publish");
  }
  CheckOk(engine->Drain(), "drain");
  RunResult result;
  result.elapsed_us = timer.ElapsedMicros();
  result.stats = engine->Stats();
  CheckOk(engine->Stop(), "stop");
  return result;
}

// Working-set run (the §4.5 100-vs-125 example, scaled): one machine, a
// cache budget equal to the working set, cyclic access over the working
// set (the LRU worst case). Muppet 1.0 splits the budget across its 5
// workers while keys hash unevenly among them; Muppet 2.0's central cache
// holds the set exactly.
RunResult RunWorkingSet(bool muppet2) {
  AppConfig config;
  BuildCounting(&config);
  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 5;  // the paper's 5 updaters
  options.threads_per_machine = 5;
  options.queue_capacity = 1 << 16;
  options.slate_cache_capacity = 100;  // == working set
  std::unique_ptr<Engine> engine;
  if (muppet2) {
    engine = std::make_unique<Muppet2Engine>(config, options);
  } else {
    engine = std::make_unique<Muppet1Engine>(config, options);
  }
  CheckOk(engine->Start(), "start");

  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    // Cyclic sweep over the 100 popular slates.
    CheckOk(engine->Publish("in", "k" + std::to_string(i % 100), "", i + 1),
            "publish");
  }
  CheckOk(engine->Drain(), "drain");
  RunResult result;
  result.elapsed_us = timer.ElapsedMicros();
  result.stats = engine->Stats();
  CheckOk(engine->Stop(), "stop");
  return result;
}

void Main() {
  Banner("E6a: throughput vs event payload size (1.0 pays the IPC copy "
         "per hop)");
  {
    Table table({"engine", "payload_B", "events/s", "op_instances"});
    for (const size_t payload : {64u, 1024u, 8192u}) {
      for (bool muppet2 : {false, true}) {
        const RunResult r = RunThroughput(muppet2, payload);
        table.Row({muppet2 ? "Muppet2.0" : "Muppet1.0",
                   FmtInt(static_cast<int64_t>(payload)),
                   Eps(kEvents, r.elapsed_us),
                   FmtInt(r.stats.operator_instances)});
      }
    }
  }

  Banner("E6b: slate-cache working set (paper's 100-vs-125 slates example)");
  std::printf("Working set = 100 hot slates, cyclic access; per-machine "
              "budget = 100 slates.\nMuppet 1.0 splits the budget across "
              "its 5 workers (20 each) while the hash\nring gives some "
              "workers more than 20 keys — those thrash. 2.0's central\n"
              "cache holds the whole set.\n\n");
  {
    Table table({"engine", "cache_miss", "evictions", "hit_rate%"});
    for (bool muppet2 : {false, true}) {
      const RunResult r = RunWorkingSet(muppet2);
      const double hits = static_cast<double>(r.stats.slate_cache_hits);
      const double total =
          hits + static_cast<double>(r.stats.slate_cache_misses);
      table.Row({muppet2 ? "Muppet2.0" : "Muppet1.0",
                 FmtInt(r.stats.slate_cache_misses),
                 FmtInt(r.stats.slate_cache_evictions),
                 Fmt(total > 0 ? 100.0 * hits / total : 0.0, 2)});
    }
  }
  std::printf("\nPaper trend: 2.0 >= 1.0 throughput; 2.0 constructs one "
              "operator per machine\n(1.0: one per worker); 2.0's central "
              "cache suffers no imbalance evictions at\nexactly "
              "working-set capacity.\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
