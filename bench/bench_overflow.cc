// E10 (paper §4.3 queue overflow + §5 source throttling): drive a slow
// updater at ~2x its service rate under each overflow policy and compare
// what the paper's three mechanisms trade away:
//   drop            -> loses events, keeps latency low
//   overflow stream -> keeps events, degraded processing for the excess
//   throttle        -> keeps events, slows the source (higher latency)
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 2000;
constexpr Timestamp kWorkMicros = 200;  // slow path service time

void BuildApp(AppConfig* config) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->DeclareStream("spill"), "declare spill");
  CheckOk(config->AddUpdater(
              "slow",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                SystemClock::Default()->SleepFor(kWorkMicros);
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}),
          "add slow");
  // Degraded service: approximate (cheap) processing for redirected
  // events (paper: "substituting expensive operations ... with
  // approximate operations that are cheaper to execute").
  CheckOk(config->AddUpdater(
              "degraded",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"spill"}),
          "add degraded");
}

int64_t SlateCount(Engine& engine, const std::string& updater,
                   const std::string& key) {
  Result<Bytes> slate = engine.FetchSlate(updater, key);
  if (!slate.ok()) return 0;
  JsonSlate s(&slate.value());
  return s.data().GetInt("count");
}

void Run(OverflowPolicy policy, const char* name, Table& table) {
  AppConfig config;
  BuildApp(&config);
  EngineOptions options;
  options.num_machines = 1;
  options.threads_per_machine = 8;
  options.queue_capacity = 16;
  options.overflow.policy = policy;
  options.overflow.overflow_stream = "spill";
  options.throttle.step_micros = 50;
  options.throttle.max_delay_micros = 2000;
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    // Offered at ~2x service rate.
    CheckOk(engine.Publish("in", "hot", "", i + 1), "publish");
    SystemClock::Default()->SleepFor(kWorkMicros / 2);
  }
  const int64_t publish_elapsed = timer.ElapsedMicros();
  CheckOk(engine.Drain(), "drain");
  const EngineStats stats = engine.Stats();
  const int64_t full = SlateCount(engine, "slow", "hot");
  const int64_t degraded = SlateCount(engine, "degraded", "hot");
  table.Row({name, FmtInt(full), FmtInt(degraded),
             FmtInt(stats.events_dropped_overflow),
             Fmt(100.0 * static_cast<double>(stats.events_dropped_overflow) /
                     kEvents,
                 1),
             FmtInt(stats.latency_p99_us),
             Fmt(static_cast<double>(publish_elapsed) / 1e6, 2)});
  CheckOk(engine.Stop(), "stop");
}

void Main() {
  Banner("E10: overflow policies under ~2x overload (paper §4.3, §5)");
  Table table({"policy", "full_svc", "degraded", "dropped", "loss%",
               "p99_us", "source_s"});
  Run(OverflowPolicy::kDrop, "drop", table);
  Run(OverflowPolicy::kOverflowStream, "overflow-stream", table);
  Run(OverflowPolicy::kThrottle, "throttle", table);
  std::printf("\nPaper trend: drop sheds load (loss%% > 0, low latency); "
              "the overflow stream\npreserves events at degraded quality; "
              "throttling preserves events at full\nquality by stretching "
              "the source (source_s grows, loss%% ~ 0).\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
