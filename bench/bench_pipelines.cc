// E1-E3 (paper Examples 1-5, Figure 1): the three motivating applications
// run end-to-end on Muppet 2.0 and are checked against the reference
// executor. Reported: events/sec, per-stage event counts, and whether the
// distributed result matches the exact §3 semantics.
#include <cstdio>
#include <map>
#include <string>

#include "apps/hot_topics.h"
#include "apps/reputation.h"
#include "apps/retailer.h"
#include "bench/bench_util.h"
#include "core/reference_executor.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/checkins.h"
#include "workload/tweets.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 20000;

EngineOptions DefaultOptions() {
  EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  return options;
}

void RunRetailer(Table& table) {
  // Deterministic workload shared by both executions.
  workload::CheckinOptions gen_options;
  gen_options.retailer_fraction = 0.4;
  std::vector<workload::Checkin> checkins;
  {
    workload::CheckinGenerator gen(gen_options, 1000);
    for (int i = 0; i < kEvents; ++i) checkins.push_back(gen.Next());
  }

  AppConfig ref_config;
  CheckOk(apps::BuildRetailerApp(&ref_config), "build app");
  ReferenceExecutor reference(ref_config);
  CheckOk(reference.Start(), "reference start");
  for (const auto& c : checkins) {
    CheckOk(reference.Publish("S1", c.user, c.json, c.ts), "publish");
  }
  CheckOk(reference.Run(), "reference run");

  AppConfig config;
  CheckOk(apps::BuildRetailerApp(&config), "build app");
  Muppet2Engine engine(config, DefaultOptions());
  CheckOk(engine.Start(), "engine start");
  Stopwatch timer;
  for (const auto& c : checkins) {
    CheckOk(engine.Publish("S1", c.user, c.json, c.ts), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();

  bool exact = true;
  for (const auto& [id, slate] : reference.slates()) {
    Result<Bytes> engine_slate = engine.FetchSlate(id.updater, id.key);
    if (!engine_slate.ok() ||
        apps::CountingUpdater::CountOf(engine_slate.value()) !=
            apps::CountingUpdater::CountOf(slate)) {
      exact = false;
    }
  }
  const EngineStats stats = engine.Stats();
  table.Row({"retailer(E1)", FmtInt(kEvents), Eps(kEvents, elapsed),
             FmtInt(stats.events_emitted),
             FmtInt(static_cast<int64_t>(reference.slates().size())),
             exact ? "yes" : "NO"});
  CheckOk(engine.Stop(), "stop");
}

void RunHotTopics(Table& table) {
  // Hotness compares each minute against the same minute's historical
  // average (Example 5), so the workload spans three days: two days of
  // baseline, then a burst of topic2 in minute 5 of day 2.
  workload::TweetOptions gen_options;
  gen_options.burst_topic = 2;
  gen_options.burst_start = 2 * kMicrosPerDay + 5 * kMicrosPerMinute;
  gen_options.burst_end = 2 * kMicrosPerDay + 6 * kMicrosPerMinute;
  gen_options.burst_multiplier = 20.0;
  gen_options.events_per_second = 15;  // day slice spans ~7.4 minutes incl. burst window
  std::vector<workload::Tweet> tweets;
  for (int64_t day = 0; day < 3; ++day) {
    workload::TweetGenerator gen(gen_options, day * kMicrosPerDay + 1000);
    for (int i = 0; i < kEvents / 3; ++i) tweets.push_back(gen.Next());
  }

  AppConfig ref_config;
  CheckOk(apps::BuildHotTopicsApp(&ref_config, 3.0, 30), "build app");
  ReferenceExecutor reference(ref_config);
  CheckOk(reference.Start(), "reference start");
  for (const auto& t : tweets) {
    CheckOk(reference.Publish("S1", t.user, t.json, t.ts), "publish");
  }
  CheckOk(reference.Run(), "reference run");

  // Run under both dispatch modes: the minute-rollover logic of U1 is
  // order-sensitive, so two-choice dispatch (which may reorder same-key
  // events across the two candidate threads, §4.5) diverges from the
  // exact semantics more than single-ownership dispatch does — precisely
  // the approximation trade-off §3 concedes.
  for (const bool two_choice : {false, true}) {
    AppConfig config;
    CheckOk(apps::BuildHotTopicsApp(&config, 3.0, 30), "build app");
    EngineOptions options = DefaultOptions();
    options.enable_two_choice = two_choice;
    Muppet2Engine engine(config, options);
    std::atomic<int64_t> hot_events{0};
    engine.TapStream("S4", [&hot_events](const Event&) {
      hot_events.fetch_add(1);
    });
    CheckOk(engine.Start(), "engine start");
    Stopwatch timer;
    // Keep the backlog bounded (as a real paced stream would): flooding
    // three days of events into the queues at once would reorder whole
    // minutes across the asynchronous mapper stage.
    size_t published = 0;
    for (const auto& t : tweets) {
      CheckOk(engine.Publish("S1", t.user, t.json, t.ts), "publish");
      if (++published % 500 == 0) CheckOk(engine.Drain(), "drain");
    }
    CheckOk(engine.Drain(), "drain");
    const int64_t elapsed = timer.ElapsedMicros();

    const EngineStats stats = engine.Stats();
    table.Row({two_choice ? "hot_topics/2ch" : "hot_topics(E2)",
               FmtInt(kEvents), Eps(kEvents, elapsed),
               FmtInt(stats.events_emitted), FmtInt(hot_events.load()),
               "approx*"});
    CheckOk(engine.Stop(), "stop");
  }
  std::printf("  (*reference executor hot-topic events: %zu; distributed "
              "runs approximate\n   the exact order — two-choice dispatch "
              "reorders more, §4.5)\n",
              reference.StreamLog("S4").size());
}

void RunReputation(Table& table) {
  workload::TweetOptions gen_options;
  gen_options.num_users = 2000;
  gen_options.retweet_probability = 0.3;
  std::vector<workload::Tweet> tweets;
  {
    workload::TweetGenerator gen(gen_options, 1000);
    for (int i = 0; i < kEvents; ++i) tweets.push_back(gen.Next());
  }

  AppConfig config;
  CheckOk(apps::BuildReputationApp(&config), "build app");
  Muppet2Engine engine(config, DefaultOptions());
  CheckOk(engine.Start(), "engine start");
  Stopwatch timer;
  for (const auto& t : tweets) {
    CheckOk(engine.Publish("S1", t.user, t.json, t.ts), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();
  const EngineStats stats = engine.Stats();

  // Scores exist for active users; report the max live score.
  double max_score = 0;
  for (int u = 0; u < 20; ++u) {
    Result<Bytes> slate =
        engine.FetchSlate("U1", "u" + std::to_string(u));
    if (slate.ok()) {
      max_score = std::max(
          max_score, apps::ReputationUpdater::ScoreOf(slate.value()));
    }
  }
  table.Row({"reputation(E3)", FmtInt(kEvents), Eps(kEvents, elapsed),
             FmtInt(stats.events_emitted), Fmt(max_score, 2), "n/a"});
  CheckOk(engine.Stop(), "stop");
}

void Main() {
  Banner("E1-E3: motivating applications end-to-end (paper §2, Figure 1)");
  Table table({"app", "input_events", "events/s", "emitted",
               "output", "matches_ref"});
  RunRetailer(table);
  RunHotTopics(table);
  RunReputation(table);
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
