// E16 (paper §5 "Placing Mappers and Updaters"): how much network traffic
// could locality-aware placement save over the hash ring, and what does
// the balance cap cost? The paper leaves this open ("Muppet cannot
// determine this assignment in advance"); this harness quantifies the
// opportunity offline from observed flows, across key skews and balance
// slacks — the ablation DESIGN.md calls out.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/rng.h"
#include "engine/placement.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

// Build flows resembling Example 4: mappers on every machine emit
// retailer events whose keys are Zipf-popular; each emission's source is
// the machine of the checkin's mapper (uniform across machines).
PlacementAdvisor BuildFlows(int machines, double key_skew,
                            double balance_slack, double source_locality) {
  PlacementAdvisor advisor(machines, balance_slack);
  workload::ZipfKeyGenerator keys(500, key_skew, "retailer", 5);
  Rng rng(41);
  for (int i = 0; i < 100000; ++i) {
    const Bytes key = keys.Next();
    // With probability `source_locality`, a key's events keep coming from
    // its "home" machine (e.g. geographic affinity); otherwise uniform.
    MachineId source;
    if (rng.Chance(source_locality)) {
      source = static_cast<MachineId>(Fnv1a64(key) % machines);
    } else {
      source = static_cast<MachineId>(rng.Uniform(machines));
    }
    advisor.ObserveFlow(source, "U1", key, 1);
  }
  return advisor;
}

void Main() {
  constexpr int kMachines = 8;

  Banner("E16a: cross-machine traffic — hash ring vs locality-aware "
         "proposal");
  {
    Table table({"src_locality", "key_skew", "hash_cross%",
                 "proposed_cross%", "saving%"});
    for (double locality : {0.0, 0.5, 0.9}) {
      for (double skew : {0.0, 1.0}) {
        PlacementAdvisor advisor =
            BuildFlows(kMachines, skew, /*slack=*/0.25, locality);
        HashRing ring;
        for (int m = 0; m < kMachines; ++m) {
          ring.AddWorker("U1", WorkerRef{m, 0});
        }
        const auto hashed = advisor.AnalyzeRing(ring);
        PlacementAdvisor::Analysis proposed;
        advisor.Propose(&proposed);
        const double hash_cross = 100.0 * hashed.CrossTrafficFraction();
        const double prop_cross = 100.0 * proposed.CrossTrafficFraction();
        table.Row({Fmt(locality, 1), Fmt(skew, 1), Fmt(hash_cross, 1),
                   Fmt(prop_cross, 1), Fmt(hash_cross - prop_cross, 1)});
      }
    }
  }

  Banner("E16b: the balance cap's cost (source locality 0.9, skew 1.0)");
  {
    Table table({"balance_slack", "proposed_cross%", "max_load/avg"});
    for (double slack : {0.0, 0.1, 0.25, 1.0, 10.0}) {
      PlacementAdvisor advisor = BuildFlows(kMachines, 1.0, slack, 0.9);
      PlacementAdvisor::Analysis proposed;
      advisor.Propose(&proposed);
      int64_t max_load = 0;
      for (int64_t load : proposed.machine_load) {
        max_load = std::max(max_load, load);
      }
      const double avg = static_cast<double>(advisor.total_events()) /
                         kMachines;
      table.Row({Fmt(slack, 2),
                 Fmt(100.0 * proposed.CrossTrafficFraction(), 1),
                 Fmt(static_cast<double>(max_load) / avg, 2)});
    }
  }
  std::printf("\nPaper context: hashing is placement-oblivious, so its "
              "cross-machine traffic\nsits near (machines-1)/machines "
              "regardless of source affinity. When sources\nhave affinity, "
              "locality-aware assignment recovers most of it — but only by\n"
              "letting load skew grow (the §5 tension between locality and "
              "balance).\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
