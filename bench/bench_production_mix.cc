// E14 (paper §5 production experience): "By early 2011 Muppet processed
// over 100 million tweets and 1.5 million checkins per day. It kept over
// 30 millions slates of user profiles and 4 million slates of venue
// profiles ... and achieved a latency of under 2 seconds."
//
// Scaled-down sustained run: tweets and checkins mixed at the paper's
// ~66:1 ratio through two applications sharing one engine and one durable
// store, with per-updater TTLs garbage-collecting idle slates. Reported:
// sustained throughput, latency, slate population, and store traffic.
#include <cstdio>
#include <string>

#include "apps/retailer.h"
#include "bench/bench_util.h"
#include "core/slate.h"
#include "core/slate_store.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "kvstore/cluster.h"
#include "workload/checkins.h"
#include "workload/tweets.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kTweets = 33000;
constexpr int kCheckins = 500;  // ~66:1, the paper's daily ratio

void Main() {
  Banner("E14: sustained production mix (tweets+checkins, durable slates, "
         "TTL GC)");

  ScratchDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 3;
  kv_options.replication_factor = 2;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster cluster(kv_options);
  CheckOk(cluster.Open(), "kv open");
  SlateStore store(&cluster, SlateStoreOptions{});

  AppConfig config;
  // Application 1: retailer checkin counts (Example 1) on stream "checkins".
  apps::RetailerAppNames retailer_names;
  retailer_names.input_stream = "checkins";
  retailer_names.retailer_stream = "retailer_events";
  retailer_names.mapper = "retailer_map";
  retailer_names.counter = "retailer_count";
  UpdaterOptions venue_options;
  venue_options.flush_policy = SlateFlushPolicy::kInterval;
  CheckOk(apps::BuildRetailerApp(&config, retailer_names, venue_options),
          "build retailer");

  // Application 2: per-user tweet profile with a TTL — "keep track of only
  // active Twitter users" (§4.2): idle users' slates are GC'd.
  CheckOk(config.DeclareInputStream("tweets"), "declare tweets");
  UpdaterOptions profile_options;
  profile_options.slate_ttl_micros = 60 * kMicrosPerSecond;
  profile_options.flush_policy = SlateFlushPolicy::kInterval;
  CheckOk(config.AddUpdater(
              "user_profile",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                    const Bytes* slate) {
                JsonSlate s(slate);
                s.data()["tweets"] = s.data().GetInt("tweets") + 1;
                s.data()["last_ts"] = e.ts;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"tweets"}, profile_options),
          "add profile");

  EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  options.slate_store = &store;
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::TweetOptions tweet_options;
  tweet_options.num_users = 30000;  // 30M users scaled by 1000x
  workload::TweetGenerator tweets(tweet_options, 1000);
  workload::CheckinOptions checkin_options;
  checkin_options.num_venues = 4000;  // 4M venues scaled by 1000x
  workload::CheckinGenerator checkins(checkin_options, 1000);

  Stopwatch timer;
  int checkin_budget = kCheckins;
  for (int i = 0; i < kTweets; ++i) {
    const workload::Tweet t = tweets.Next();
    CheckOk(engine.Publish("tweets", t.user, t.json, t.ts), "publish");
    if (checkin_budget > 0 && i % (kTweets / kCheckins) == 0) {
      const workload::Checkin c = checkins.Next();
      CheckOk(engine.Publish("checkins", c.user, c.json, c.ts), "publish");
      --checkin_budget;
    }
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();
  const EngineStats stats = engine.Stats();

  Table table({"metric", "value"});
  table.Row({"events_published", FmtInt(stats.events_published)});
  table.Row({"events/s", Eps(stats.events_published, elapsed)});
  table.Row({"latency_p50_us", FmtInt(stats.latency_p50_us)});
  table.Row({"latency_p99_us", FmtInt(stats.latency_p99_us)});
  table.Row({"under_2s",
             stats.latency_p99_us < 2 * kMicrosPerSecond ? "yes" : "NO"});
  table.Row({"events_lost", FmtInt(stats.events_lost_failure)});
  table.Row({"events_dropped", FmtInt(stats.events_dropped_overflow)});
  table.Row({"cache_hit%",
             Fmt(100.0 * static_cast<double>(stats.slate_cache_hits) /
                     std::max<int64_t>(1, stats.slate_cache_hits +
                                              stats.slate_cache_misses),
                 1)});
  table.Row({"store_writes", FmtInt(stats.slate_store_writes)});
  table.Row({"store_reads", FmtInt(stats.slate_store_reads)});

  // Slate populations: user profiles vastly outnumber venue slates, as in
  // the paper's 30M:4M (we sample the generators' key spaces).
  int64_t user_slates = 0;
  for (int u = 0; u < 2000; ++u) {
    if (engine.FetchSlate("user_profile", "u" + std::to_string(u)).ok()) {
      ++user_slates;
    }
  }
  int64_t retailer_slates = 0;
  for (const std::string& r : workload::RetailerNames()) {
    if (engine.FetchSlate("retailer_count", r).ok()) ++retailer_slates;
  }
  table.Row({"user_slates(sample2k)", FmtInt(user_slates)});
  table.Row({"retailer_slates", FmtInt(retailer_slates)});
  CheckOk(engine.Stop(), "stop");

  std::printf("\nPaper claims reproduced in shape: mixed applications on "
              "one cluster, sub-2s\n(here sub-ms) latency at sustained "
              "rates, tens of thousands of live slates\nper run, durable "
              "slates in the replicated store, TTL bounding storage.\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
