// E17 (DESIGN.md §12): the cost of durability and the speed of recovery.
//
// Part 1 — knob overhead: the same counting workload runs under each
// consistency setting. kLossy must sit within noise of the engine's
// ordinary throughput (the changelog code is fully bypassed); the
// at-least-once column prices the buffered changelog (one fsync per
// `sync_every_records`), and exactly-once prices a sync per append plus
// the receive-side dedup probe.
//
// Part 2 — replay throughput: after a durable run, machine 1 crashes and
// restarts; recovery replays its changelog suffix before the machine
// rejoins. Reported as records/sec through ReplayChangelog, the number
// that bounds how fast a machine can come back.
//
// Emits BENCH_recovery.json (gated by tools/check_bench.py).
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "engine/slatelog.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 30000;
constexpr int kMachines = 4;
constexpr int kNumKeys = 512;

void BuildCounting(AppConfig* config) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->AddUpdater(
              "count",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}),
          "add updater");
}

void Run(Consistency knob, Table& table, JsonReport& report) {
  AppConfig config;
  BuildCounting(&config);
  ScratchDir scratch;
  EngineOptions options;
  options.num_machines = kMachines;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  options.durability.consistency = knob;
  if (knob != Consistency::kLossy) {
    options.durability.dir = scratch.path();
  }
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::ZipfKeyGenerator keys(kNumKeys, 0.9, "k", 23);
  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    CheckOk(engine.Publish("in", keys.Next(), "", i + 1), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();
  const EngineStats steady = engine.Stats();

  Json& row = report.AddRow();
  row["consistency"] = ConsistencyName(knob);
  row["phase"] = "steady";
  row["events"] = static_cast<int64_t>(kEvents);
  row["elapsed_us"] = elapsed;
  row["events_per_sec"] = static_cast<double>(kEvents) * 1e6 /
                          static_cast<double>(elapsed > 0 ? elapsed : 1);
  row["slatelog_appends"] = steady.slatelog_appends;
  row["checkpoints"] = steady.checkpoints;
  JsonReport::PutLatency(steady, &row);
  table.Row({ConsistencyName(knob), "steady", Eps(kEvents, elapsed),
             FmtInt(steady.latency_p99_us), FmtInt(steady.slatelog_appends),
             "-", "-"});

  // Part 2: crash/restart machine 1 and time the replay that gates its
  // rejoin. Lossy has nothing to replay, so the phase is durable-only.
  if (knob != Consistency::kLossy) {
    CheckOk(engine.CrashMachine(1), "crash");
    Stopwatch recovery;
    CheckOk(engine.RestartMachine(1), "restart");
    const int64_t replay_elapsed = recovery.ElapsedMicros();
    const EngineStats after = engine.Stats();
    const int64_t replayed =
        after.slatelog_replayed_records - steady.slatelog_replayed_records;
    Json& rrow = report.AddRow();
    rrow["consistency"] = ConsistencyName(knob);
    rrow["phase"] = "replay";
    rrow["replay_records"] = replayed;
    rrow["replay_elapsed_us"] = replay_elapsed;
    rrow["replay_records_per_sec"] =
        static_cast<double>(replayed) * 1e6 /
        static_cast<double>(replay_elapsed > 0 ? replay_elapsed : 1);
    table.Row({ConsistencyName(knob), "replay", "-", "-", "-",
               FmtInt(replayed), Eps(replayed, replay_elapsed)});
  }
  CheckOk(engine.Stop(), "stop");
}

void Main() {
  Banner("E17: durability-knob overhead and changelog replay throughput "
         "(Muppet 2.0, 4 machines)");
  JsonReport report("recovery");
  Table table({"consistency", "phase", "events/s", "p99_us", "appends",
               "replayed", "replay_rec/s"});
  Run(Consistency::kLossy, table, report);
  Run(Consistency::kAtLeastOnce, table, report);
  Run(Consistency::kExactlyOnce, table, report);
  report.Write();
  std::printf("\nExpected trend: lossy ~= the engine's ordinary throughput "
              "(changelog fully\nbypassed); at-least-once pays one fsync per "
              "sync_every_records; exactly-once\npays a sync per append. "
              "Replay streams the changelog suffix back well above\nsteady "
              "publish rates, so recovery is bounded by log length, not "
              "live load.\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
