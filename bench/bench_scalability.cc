// E5 (paper §2/§7): "scale up on commodity hardware with computation and
// stream rate" — throughput as the cluster grows (machines) and as each
// machine grows (threads, the Muppet 2.0 §4.5 motivation), plus how evenly
// the hash ring spreads keys.
//
// NOTE (recorded in EXPERIMENTS.md): this reproduction hosts all simulated
// machines in one process. On a single-core host the machine sweep shows
// routing overhead, not parallel speedup; the paper's scaling claim is
// reproduced as (a) no loss/imbalance as machines are added and (b) thread
// scaling on multicore hosts.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "core/hash_ring.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

constexpr int kEvents = 30000;

void BuildCounting(AppConfig* config) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->AddUpdater(
              "count",
              MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
                JsonSlate s(slate);
                s.data()["count"] = s.data().GetInt("count") + 1;
                (void)out.ReplaceSlate(s.Serialize());
              }),
              {"in"}),
          "add updater");
}

struct RunResult {
  int64_t elapsed_us = 0;
  int64_t processed = 0;
  int64_t lost = 0;
  double balance_ratio = 0;  // max/min events per machine
};

RunResult Run(int machines, int threads) {
  AppConfig config;
  BuildCounting(&config);
  EngineOptions options;
  options.num_machines = machines;
  options.threads_per_machine = threads;
  options.queue_capacity = 1 << 16;
  Muppet2Engine engine(config, options);
  CheckOk(engine.Start(), "start");

  workload::ZipfKeyGenerator keys(5000, 0.0, "k", 7);
  Stopwatch timer;
  for (int i = 0; i < kEvents; ++i) {
    CheckOk(engine.Publish("in", keys.Next(), "", i + 1), "publish");
  }
  CheckOk(engine.Drain(), "drain");
  RunResult result;
  result.elapsed_us = timer.ElapsedMicros();
  const EngineStats stats = engine.Stats();
  result.processed = stats.events_processed;
  result.lost = stats.events_lost_failure + stats.events_dropped_overflow;
  CheckOk(engine.Stop(), "stop");
  return result;
}

void Main() {
  Banner("E5a: throughput vs cluster size (machines, 2 threads each)");
  {
    Table table(
        {"machines", "events", "events/s", "processed", "lost"});
    for (int machines : {1, 2, 4, 8}) {
      const RunResult r = Run(machines, 2);
      table.Row({FmtInt(machines), FmtInt(kEvents),
                 Eps(kEvents, r.elapsed_us), FmtInt(r.processed),
                 FmtInt(r.lost)});
    }
  }

  Banner("E5b: throughput vs worker threads per machine (1 machine)");
  {
    Table table({"threads", "events", "events/s", "processed", "lost"});
    for (int threads : {1, 2, 4, 8}) {
      const RunResult r = Run(1, threads);
      table.Row({FmtInt(threads), FmtInt(kEvents),
                 Eps(kEvents, r.elapsed_us), FmtInt(r.processed),
                 FmtInt(r.lost)});
    }
  }

  Banner("E5c: key distribution balance across machines (hash ring)");
  {
    Table table({"machines", "min_share%", "max_share%"});
    for (int machines : {2, 4, 8, 16}) {
      HashRing ring;
      for (int m = 0; m < machines; ++m) {
        ring.AddWorker("count", WorkerRef{m, 0});
      }
      std::map<MachineId, int> counts;
      constexpr int kKeys = 100000;
      for (int i = 0; i < kKeys; ++i) {
        auto r = ring.Route("count", "key" + std::to_string(i), {});
        counts[r.value().machine]++;
      }
      int min_count = kKeys, max_count = 0;
      for (const auto& [m, c] : counts) {
        min_count = std::min(min_count, c);
        max_count = std::max(max_count, c);
      }
      table.Row({FmtInt(machines),
                 Fmt(100.0 * min_count / kKeys, 2),
                 Fmt(100.0 * max_count / kKeys, 2)});
    }
  }
  std::printf("\nPaper trend: adding machines must not lose events or skew "
              "ownership; thread\nscaling carries a single machine's load "
              "(on multicore hosts it adds throughput).\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
