// E13 (paper §4.2): the slate cache. Hit rate and store traffic vs cache
// capacity under Zipf-skewed slate popularity, plus the cold-start warm-up
// the paper describes ("When Muppet starts up, its slate cache is empty,
// so early update events may require many row fetches from the store").
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/slate_cache.h"
#include "core/slate_store.h"
#include "kvstore/cluster.h"
#include "workload/zipf_keys.h"

namespace muppet {
namespace bench {
namespace {

void HitRateVsCapacity() {
  Banner("E13a: hit rate vs cache capacity (Zipf 1.0 popularity over 50k "
         "slates)");
  Table table({"capacity", "accesses", "hit%", "store_writes(evict)"});
  constexpr int kAccesses = 200000;
  for (const size_t capacity : {100u, 1000u, 10000u, 50000u}) {
    int64_t store_writes = 0;
    SlateCache cache(
        SlateCacheOptions{capacity},
        [&store_writes](const SlateCache::DirtySlate&) {
          ++store_writes;
          return Status::OK();
        });
    workload::ZipfKeyGenerator keys(50000, 1.0, "s", 13);
    for (int i = 0; i < kAccesses; ++i) {
      const SlateId id{"U1", keys.Next()};
      Bytes value;
      Status s = cache.Lookup(id, &value);
      // Miss -> simulate fetch+update (dirty insert).
      CheckOk(cache.Update(id, "slate-bytes", i, /*write_through=*/false),
              "update");
      (void)s;
    }
    const double hits = static_cast<double>(cache.hits());
    const double total = hits + static_cast<double>(cache.misses());
    table.Row({FmtInt(static_cast<int64_t>(capacity)), FmtInt(kAccesses),
               Fmt(100.0 * hits / total, 2), FmtInt(store_writes)});
  }
}

void WarmupCurve() {
  Banner("E13b: cold-start warm-up — store fetches per 10k events after "
         "startup");
  ScratchDir dir;
  kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 1;
  kv_options.replication_factor = 1;
  kv_options.node.data_dir = dir.path();
  kv::KvCluster cluster(kv_options);
  CheckOk(cluster.Open(), "open");
  SlateStore store(&cluster, SlateStoreOptions{});

  // Persist 20k slates (the pre-restart state).
  for (int i = 0; i < 20000; ++i) {
    CheckOk(store.Write(SlateId{"U1", "s" + std::to_string(i)}, "prior", 0),
            "write");
  }

  // Fresh cache; replay a skewed access stream and watch misses decay.
  int64_t store_reads = 0;
  SlateCache cache(SlateCacheOptions{30000},
                   [](const SlateCache::DirtySlate&) {
                     return Status::OK();
                   });
  workload::ZipfKeyGenerator keys(20000, 1.0, "s", 31);
  Table table({"window", "store_fetches", "hit%"});
  int64_t window_misses = 0, window_hits = 0;
  int window = 0;
  for (int i = 0; i < 80000; ++i) {
    const SlateId id{"U1", keys.Next()};
    Bytes value;
    if (cache.Lookup(id, &value).ok()) {
      ++window_hits;
    } else {
      ++window_misses;
      ++store_reads;
      Result<Bytes> fetched = store.Read(id);
      if (fetched.ok()) {
        CheckOk(cache.Insert(id, fetched.value()), "insert");
      } else {
        cache.InsertAbsent(id);
      }
    }
    if ((i + 1) % 10000 == 0) {
      table.Row({FmtInt(window++), FmtInt(window_misses),
                 Fmt(100.0 * static_cast<double>(window_hits) /
                         (window_hits + window_misses),
                     1)});
      window_misses = window_hits = 0;
    }
  }
  std::printf("\nPaper trends: hit rate climbs with capacity (skew makes a "
              "small cache\neffective); after a cold start, store fetches "
              "concentrate in the first\nwindows and the cache warms — "
              "exactly why the store needs random-read\ncapacity at "
              "startup (§4.2).\n");
}

void Main() {
  HitRateVsCapacity();
  WarmupCurve();
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
