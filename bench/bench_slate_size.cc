// E12 (paper §5 "Limiting Slate Sizes"): "slates can grow quite large and
// updaters that maintain large slates can run more slowly due to the
// overhead. Consequently, we encourage developers to keep individual
// slates small, e.g., many kilobytes rather than many megabytes."
// Updater throughput vs slate size, on Muppet 1.0 (which also pays the
// conductor<->task-processor copy for the slate) and 2.0.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"

namespace muppet {
namespace bench {
namespace {

void BuildPaddedCounter(AppConfig* config, size_t slate_bytes) {
  CheckOk(config->DeclareInputStream("in"), "declare");
  CheckOk(config->AddUpdater(
              "pad",
              MakeUpdaterFactory([slate_bytes](PerformerUtilities& out,
                                               const Event&,
                                               const Bytes* slate) {
                // Opaque fixed-size slate with an embedded counter: the
                // updater rewrites the whole blob each event, as a
                // JSON-heavy production slate would.
                uint64_t count = 0;
                if (slate != nullptr && slate->size() >= 8) {
                  count = DecodeFixed64(slate->data());
                }
                ++count;
                Bytes next(slate_bytes, 'p');
                char buf[8];
                Bytes header;
                PutFixed64(&header, count);
                next.replace(0, 8, header);
                (void)buf;
                (void)out.ReplaceSlate(next);
              }),
              {"in"}),
          "add updater");
}

void Run(bool muppet2, size_t slate_bytes, int events, Table& table) {
  AppConfig config;
  BuildPaddedCounter(&config, slate_bytes);
  EngineOptions options;
  options.num_machines = 1;
  options.workers_per_function = 1;
  options.threads_per_machine = 1;
  options.queue_capacity = 1 << 15;
  std::unique_ptr<Engine> engine;
  if (muppet2) {
    engine = std::make_unique<Muppet2Engine>(config, options);
  } else {
    engine = std::make_unique<Muppet1Engine>(config, options);
  }
  CheckOk(engine->Start(), "start");
  Stopwatch timer;
  for (int i = 0; i < events; ++i) {
    CheckOk(engine->Publish("in", "k" + std::to_string(i % 16), "", i + 1),
            "publish");
  }
  CheckOk(engine->Drain(), "drain");
  const int64_t elapsed = timer.ElapsedMicros();
  table.Row({muppet2 ? "Muppet2.0" : "Muppet1.0",
             FmtInt(static_cast<int64_t>(slate_bytes)), FmtInt(events),
             Eps(events, elapsed),
             Fmt(static_cast<double>(elapsed) / events, 1)});
  CheckOk(engine->Stop(), "stop");
}

void Main() {
  Banner("E12: updater throughput vs slate size (paper §5: keep slates in "
         "KB, not MB)");
  Table table({"engine", "slate_bytes", "events", "events/s", "us/event"});
  for (const bool muppet2 : {false, true}) {
    Run(muppet2, 64, 20000, table);
    Run(muppet2, 1 << 10, 20000, table);
    Run(muppet2, 16 << 10, 10000, table);
    Run(muppet2, 256 << 10, 2000, table);
    Run(muppet2, 1 << 20, 500, table);
    Run(muppet2, 4 << 20, 100, table);
  }
  std::printf("\nPaper trend: per-event cost grows with slate size — "
              "megabyte slates are\norders of magnitude slower than "
              "kilobyte slates, and Muppet 1.0 suffers\nmore (it copies "
              "the slate across the conductor/task-processor boundary\n"
              "twice per event).\n");
}

}  // namespace
}  // namespace bench
}  // namespace muppet

int main() {
  muppet::bench::Main();
  return 0;
}
