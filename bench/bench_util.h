// Shared helpers for the experiment harness binaries. Each bench binary
// reproduces one experiment from DESIGN.md §4 and prints the rows/series
// EXPERIMENTS.md records.
#ifndef MUPPET_BENCH_BENCH_UTIL_H_
#define MUPPET_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "engine/engine.h"
#include "json/json.h"

namespace muppet {
namespace bench {

// Wall-clock stopwatch (microseconds).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) {
      std::printf("%-16s", h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) std::printf("%-16s", "----");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%-16s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

// Throughput in events/sec given a drained event count and elapsed time.
inline std::string Eps(int64_t events, int64_t micros) {
  if (micros <= 0) return "inf";
  return Fmt(static_cast<double>(events) * 1e6 /
             static_cast<double>(micros), 0);
}

// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// A scratch directory under /tmp, removed on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    std::random_device rd;
    path_ = (std::filesystem::temp_directory_path() /
             ("muppet_bench_" + std::to_string(rd())))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Machine-readable companion to the printed tables: collects one JSON
// object per measured row and writes BENCH_<name>.json on Write() so CI
// can track latency percentiles across runs. Output directory is the CWD
// unless MUPPET_BENCH_JSON_DIR is set.
class JsonReport {
 public:
  explicit JsonReport(const std::string& name) : name_(name) {
    doc_ = Json::MakeObject();
    doc_["bench"] = name;
    doc_["rows"] = Json::MakeArray();
  }

  // Append a row; set fields on the returned node before the next AddRow.
  Json& AddRow() {
    doc_["rows"].Append(Json::MakeObject());
    return doc_["rows"].AsArray().back();
  }

  // Copy the engine's latency percentiles into `row` (the p50/p95/p99/
  // p999 series every bench is expected to expose).
  static void PutLatency(const EngineStats& stats, Json* row) {
    (*row)["latency_p50_us"] = stats.latency_p50_us;
    (*row)["latency_p95_us"] = stats.latency_p95_us;
    (*row)["latency_p99_us"] = stats.latency_p99_us;
    (*row)["latency_p999_us"] = stats.latency_p999_us;
  }

  void Write() const {
    const char* dir = std::getenv("MUPPET_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && dir[0] != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ +
                                       ".json"
                                 : "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    out << doc_.DumpPretty() << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  Json doc_;
};

// Abort the bench with a message if a Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace muppet

#endif  // MUPPET_BENCH_BENCH_UTIL_H_
