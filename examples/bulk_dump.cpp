// Paper §5 "Bulk Reading of Slates": both routes, side by side.
//
// Route 1 — dump straight from the durable store (the "large-volume row
// reads" route, needing layout knowledge that BulkSlateReader provides).
// Route 2 — the advised steady-state slate log: the update function logs
// a trimmed projection of its slate on every update; the offline consumer
// streams the log (the paper's pipe-into-HDFS-for-Hadoop scenario).
//
//   build/examples/bulk_dump
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "core/slate.h"
#include "core/slate_store.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "kvstore/cluster.h"
#include "service/bulk_slates.h"
#include "workload/checkins.h"

int main() {
  const std::string data_dir =
      (std::filesystem::temp_directory_path() / "muppet_bulk_demo").string();
  std::filesystem::remove_all(data_dir);
  std::filesystem::create_directories(data_dir);

  muppet::kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 2;
  kv_options.replication_factor = 2;
  kv_options.node.data_dir = data_dir + "/kv";
  muppet::kv::KvCluster kv_cluster(kv_options);
  if (!kv_cluster.Open().ok()) return 1;
  muppet::SlateStore store(&kv_cluster, muppet::SlateStoreOptions{});

  // Route 2's log, shared by all updater threads.
  muppet::SlateLogger logger;
  if (!logger.Open(data_dir + "/slate_updates.log").ok()) return 1;

  muppet::AppConfig config;
  if (!config.DeclareInputStream("checkins").ok()) return 1;
  muppet::UpdaterOptions updater_options;
  updater_options.flush_policy = muppet::SlateFlushPolicy::kWriteThrough;
  muppet::Status s = config.AddUpdater(
      "per_user",
      muppet::MakeUpdaterFactory([&logger](muppet::PerformerUtilities& out,
                                           const muppet::Event& e,
                                           const muppet::Bytes* slate) {
        muppet::JsonSlate state(slate);
        const int64_t count = state.data().GetInt("checkins") + 1;
        state.data()["checkins"] = count;
        (void)out.ReplaceSlate(state.Serialize());
        // Route 2: log a *projection* of the slate, not the whole thing.
        (void)logger.Append(e.key, std::to_string(count));
      }),
      {"checkins"}, updater_options);
  if (!s.ok()) return 1;

  muppet::EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.slate_store = &store;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  muppet::workload::CheckinOptions gen_options;
  gen_options.num_users = 500;
  muppet::workload::CheckinGenerator gen(gen_options, 1000);
  for (int i = 0; i < 10000; ++i) {
    const muppet::workload::Checkin c = gen.Next();
    if (!engine.Publish("checkins", c.user, c.json, c.ts).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;
  if (!engine.Stop().ok()) return 1;
  if (!logger.Close().ok()) return 1;

  // ---- Route 1: dump from the store ------------------------------------
  muppet::BulkSlateReader reader(&store);
  std::vector<std::pair<muppet::Bytes, muppet::Bytes>> dump;
  if (!reader.DumpUpdater("per_user", &dump).ok()) return 1;
  int64_t total_from_dump = 0;
  for (const auto& [key, slate] : dump) {
    muppet::JsonSlate state(&slate);
    total_from_dump += state.data().GetInt("checkins");
  }
  std::printf("route 1 (store dump):   %zu user slates, %lld checkins "
              "total\n",
              dump.size(), static_cast<long long>(total_from_dump));

  // ---- Route 2: stream the slate log -----------------------------------
  std::vector<std::pair<muppet::Bytes, muppet::Bytes>> log_records;
  if (!muppet::SlateLogger::ReadLog(data_dir + "/slate_updates.log",
                                    &log_records)
           .ok()) {
    return 1;
  }
  // The log has one record per update; the last record per user carries
  // the final count.
  std::map<muppet::Bytes, long long> final_counts;
  for (const auto& [key, payload] : log_records) {
    final_counts[key] = std::strtoll(payload.c_str(), nullptr, 10);
  }
  long long total_from_log = 0;
  for (const auto& [user, count] : final_counts) total_from_log += count;
  std::printf("route 2 (slate log):    %zu records, %zu users, %lld "
              "checkins total\n",
              log_records.size(), final_counts.size(), total_from_log);

  std::printf("\nagreement: %s (both routes must see the same state)\n",
              total_from_dump == total_from_log &&
                      dump.size() == final_counts.size()
                  ? "yes"
                  : "NO");
  std::filesystem::remove_all(data_dir);
  return total_from_dump == total_from_log ? 0 : 1;
}
