// The paper's §3 developer workflow, end to end: "To write a MapUpdate
// application, a developer writes the necessary map and update functions,
// then a configuration file that includes the workflow graph."
//
// The functions below register themselves in an OperatorRegistry under
// type names; the workflow graph comes from a JSON document (here written
// to disk and read back, as a deployment would).
//
//   build/examples/config_file_app
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/config_loader.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"

namespace {

constexpr char kWorkflow[] = R"({
  "slate_column_family": "wordcount",
  "input_streams": ["lines"],
  "streams": ["words"],
  "settings": {"min_word_length": 3},
  "operators": [
    {"name": "tokenize", "type": "tokenizer", "kind": "map",
     "subscribes": ["lines"]},
    {"name": "count", "type": "word_counter", "kind": "update",
     "subscribes": ["words"], "flush_policy": "interval",
     "flush_interval_ms": 50}
  ]
})";

// The application's operator library.
void RegisterOperators(muppet::OperatorRegistry* registry) {
  // The tokenizer reads its minimum word length from the config settings,
  // the Appendix A "constructed using a configuration object" pattern.
  (void)registry->RegisterMapper(
      "tokenizer",
      [](const muppet::AppConfig& config, const std::string& name) {
        const int64_t min_len = config.settings().GetInt("min_word_length");
        return std::make_unique<muppet::LambdaMapper>(
            name, [min_len](muppet::PerformerUtilities& out,
                            const muppet::Event& e) {
              std::istringstream line{std::string(e.value)};
              std::string word;
              while (line >> word) {
                if (static_cast<int64_t>(word.size()) >= min_len) {
                  (void)out.Publish("words", word, "");
                }
              }
            });
      });
  (void)registry->RegisterUpdater(
      "word_counter",
      muppet::MakeUpdaterFactory([](muppet::PerformerUtilities& out,
                                    const muppet::Event&,
                                    const muppet::Bytes* slate) {
        muppet::JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
      }));
}

}  // namespace

int main() {
  // Write the config file, as a deployment would ship it.
  const std::string config_path =
      (std::filesystem::temp_directory_path() / "muppet_workflow.json")
          .string();
  {
    std::ofstream out(config_path);
    out << kWorkflow;
  }

  muppet::OperatorRegistry registry;
  RegisterOperators(&registry);

  std::string config_text;
  {
    std::ifstream in(config_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    config_text = buffer.str();
  }
  muppet::AppConfig config;
  muppet::Status s =
      muppet::LoadAppConfigFromJson(config_text, registry, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "config error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded workflow from %s:\n%s\n\n", config_path.c_str(),
              muppet::AppConfigToJson(config).c_str());

  muppet::EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  const char* lines[] = {
      "the quick brown fox jumps over the lazy dog",
      "fast data needs fast frameworks",
      "the fox likes fast data",
  };
  muppet::Timestamp ts = 1;
  for (const char* line : lines) {
    if (!engine.Publish("lines", "src", line, ts++).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;

  std::printf("word counts (words of length >= 3):\n");
  for (const char* word : {"the", "fox", "fast", "data", "quick"}) {
    muppet::Result<muppet::Bytes> slate = engine.FetchSlate("count", word);
    if (slate.ok()) {
      muppet::JsonSlate state(&slate.value());
      std::printf("  %-8s %lld\n", word,
                  static_cast<long long>(state.data().GetInt("count")));
    }
  }
  std::filesystem::remove(config_path);
  return engine.Stop().ok() ? 0 : 1;
}
