// Paper §4.3 walkthrough: machine crash, detection on send, master
// broadcast, hash-ring rerouting, and recovery of flushed slates from the
// durable store.
//
//   build/examples/fault_tolerance_demo
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/slate.h"
#include "core/slate_store.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "kvstore/cluster.h"
#include "workload/zipf_keys.h"

namespace {

int64_t CountOf(muppet::Engine& engine, const std::string& key) {
  muppet::Result<muppet::Bytes> slate = engine.FetchSlate("count", key);
  if (!slate.ok()) return -1;
  muppet::JsonSlate s(&slate.value());
  return s.data().GetInt("count");
}

}  // namespace

int main() {
  const std::string data_dir =
      (std::filesystem::temp_directory_path() / "muppet_ft_demo").string();
  std::filesystem::remove_all(data_dir);

  muppet::kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 2;
  kv_options.replication_factor = 2;
  kv_options.node.data_dir = data_dir;
  muppet::kv::KvCluster kv_cluster(kv_options);
  if (!kv_cluster.Open().ok()) return 1;
  muppet::SlateStore store(&kv_cluster, muppet::SlateStoreOptions{});

  muppet::AppConfig config;
  if (!config.DeclareInputStream("in").ok()) return 1;
  muppet::UpdaterOptions updater_options;
  updater_options.flush_policy = muppet::SlateFlushPolicy::kWriteThrough;
  muppet::Status s = config.AddUpdater(
      "count",
      muppet::MakeUpdaterFactory([](muppet::PerformerUtilities& out,
                                    const muppet::Event&,
                                    const muppet::Bytes* slate) {
        muppet::JsonSlate state(slate);
        state.data()["count"] = state.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(state.Serialize());
      }),
      {"in"}, updater_options);
  if (!s.ok()) return 1;

  muppet::EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  options.slate_store = &store;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  muppet::workload::ZipfKeyGenerator keys(50, 0.0, "k", 3);
  std::printf("phase 1: 5000 events over 50 keys on 4 machines...\n");
  for (int i = 0; i < 5000; ++i) {
    if (!engine.Publish("in", keys.Next(), "", i + 1).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;
  std::printf("  k0 count = %lld\n",
              static_cast<long long>(CountOf(engine, "k0")));

  std::printf("\nphase 2: crashing machine 1 "
              "(its queued events and cache die with it)...\n");
  if (!engine.CrashMachine(1).ok()) return 1;

  std::printf("phase 3: 5000 more events — the first send to the dead "
              "machine detects the\nfailure, the master broadcasts it, and "
              "the ring reroutes those keys...\n");
  for (int i = 0; i < 5000; ++i) {
    if (!engine.Publish("in", keys.Next(), "", 10000 + i).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;

  const muppet::EngineStats stats = engine.Stats();
  std::printf("\noutcome:\n");
  std::printf("  failures detected : %lld\n",
              static_cast<long long>(stats.failures_detected));
  std::printf("  events lost       : %lld of %lld (%.3f%%)\n",
              static_cast<long long>(stats.events_lost_failure),
              static_cast<long long>(stats.events_published),
              100.0 * static_cast<double>(stats.events_lost_failure) /
                  static_cast<double>(stats.events_published));
  std::printf("  k0 count now      : %lld (write-through slates survived "
              "on the store)\n",
              static_cast<long long>(CountOf(engine, "k0")));
  std::printf("\nper the paper, the lost events are logged rather than "
              "re-dispatched:\nlow latency wins over completeness (§4.3).\n");

  const bool ok = engine.Stop().ok();
  std::filesystem::remove_all(data_dir);
  return ok ? 0 : 1;
}
