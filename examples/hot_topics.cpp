// Paper Examples 2 & 5 (Figure 1c): detect hot topics on a tweet stream.
//
// Three days of synthetic tweets flow through the M1 -> U1 -> U2 workflow;
// on day 2 an earthquake topic bursts, and the application emits
// <topic, minute> hot events within the same (stream-time) minute — the
// paper's "report relevant information within a few seconds of when a
// tweet appears" scenario.
//
//   build/examples/hot_topics
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "apps/hot_topics.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/tweets.h"

int main() {
  muppet::AppConfig config;
  if (!muppet::apps::BuildHotTopicsApp(&config, /*threshold=*/3.0,
                                       /*min_count=*/30)
           .ok()) {
    return 1;
  }

  muppet::EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  muppet::Muppet2Engine engine(config, options);

  // Observe the hot-topic output stream S4.
  std::mutex mu;
  std::vector<std::pair<std::string, std::string>> hot;
  engine.TapStream("S4", [&](const muppet::Event& e) {
    std::lock_guard<std::mutex> lock(mu);
    hot.emplace_back(std::string(e.key), std::string(e.value));
  });
  if (!engine.Start().ok()) return 1;

  // Two baseline days, then a day with a burst of topic2 in minute 5.
  muppet::workload::TweetOptions gen_options;
  gen_options.burst_topic = 2;
  gen_options.burst_start =
      2 * muppet::kMicrosPerDay + 5 * muppet::kMicrosPerMinute;
  gen_options.burst_end =
      2 * muppet::kMicrosPerDay + 6 * muppet::kMicrosPerMinute;
  gen_options.burst_multiplier = 20.0;
  gen_options.events_per_second = 15;

  std::printf("streaming 3 days of tweets (burst of '%s' on day 2, "
              "minute 5)...\n",
              muppet::workload::TweetGenerator::TopicName(2).c_str());
  int64_t published = 0;
  for (int64_t day = 0; day < 3; ++day) {
    muppet::workload::TweetGenerator gen(gen_options,
                                         day * muppet::kMicrosPerDay + 1000);
    for (int i = 0; i < 7000; ++i) {
      const muppet::workload::Tweet t = gen.Next();
      if (!engine.Publish("S1", t.user, t.json, t.ts).ok()) return 1;
      // Keep the backlog bounded so stream order is approximately
      // preserved, as a paced real-time source would.
      if (++published % 500 == 0 && !engine.Drain().ok()) return 1;
    }
  }
  if (!engine.Drain().ok()) return 1;

  std::printf("\nhot <topic, minute> events:\n");
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [key, value] : hot) {
      std::string topic;
      int minute = 0;
      if (muppet::apps::ParseTopicMinuteKey(key, &topic, &minute).ok()) {
        std::printf("  topic=%-8s minute=%-5d %s\n", topic.c_str(), minute,
                    value.c_str());
      }
    }
    if (hot.empty()) std::printf("  (none detected)\n");
  }

  const muppet::EngineStats stats = engine.Stats();
  std::printf("\n%lld tweets -> %lld topic mentions, p99 latency %lld us\n",
              static_cast<long long>(stats.events_published),
              static_cast<long long>(stats.events_emitted),
              static_cast<long long>(stats.latency_p99_us));
  return engine.Stop().ok() ? 0 : 1;
}
