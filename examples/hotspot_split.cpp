// Paper §5, Example 6: relieve a hotspot updater by splitting its key.
//
// "Suppose, hypothetically, that a lot of people are checking into Best
// Buy" — 90% of this stream's checkins hit one retailer. The mapper
// splits the hot key into N sub-keys counted independently; the partial
// counts are re-aggregated under the original key by a second updater.
//
//   build/examples/hotspot_split
#include <cstdio>
#include <string>

#include "core/keysplit.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "workload/checkins.h"

namespace {

constexpr char kHot[] = "Best Buy";

void BuildApp(muppet::AppConfig* config, int shards) {
  using muppet::Bytes;
  using muppet::Event;
  using muppet::Json;
  using muppet::JsonSlate;
  using muppet::PerformerUtilities;

  (void)config->DeclareInputStream("checkins");
  (void)config->DeclareStream("by_subkey");
  (void)config->DeclareStream("partials");

  (void)config->AddMapper(
      "split",
      [shards](const muppet::AppConfig&, const std::string& name) {
        auto splitter = std::make_shared<muppet::KeySplitter>(
            shards, std::map<Bytes, bool>{{Bytes(kHot), true}});
        return std::make_unique<muppet::LambdaMapper>(
            name, [splitter](PerformerUtilities& out, const Event& e) {
              (void)out.Publish("by_subkey", splitter->RouteKey(e.key),
                                e.value);
            });
      },
      {"checkins"});

  // Partial counters report every event (report_every=1 keeps the demo
  // exact; raise it to amortize the aggregation hotspot).
  (void)config->AddUpdater(
      "partial",
      muppet::MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                    const Bytes* slate) {
        JsonSlate s(slate);
        s.data()["count"] = s.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(s.Serialize());
        Bytes base = e.key;
        int shard = 0;
        Bytes parsed;
        if (muppet::ParseSplitKey(e.key, &parsed, &shard).ok()) base = parsed;
        Json delta = Json::MakeObject();
        delta["delta"] = 1;
        (void)out.Publish("partials", base, delta.Dump());
      }),
      {"by_subkey"});

  (void)config->AddUpdater(
      "total",
      muppet::MakeUpdaterFactory([](PerformerUtilities& out, const Event& e,
                                    const Bytes* slate) {
        muppet::Result<Json> payload = Json::Parse(e.value);
        if (!payload.ok()) return;
        JsonSlate s(slate);
        s.data()["count"] =
            s.data().GetInt("count") + payload.value().GetInt("delta");
        (void)out.ReplaceSlate(s.Serialize());
      }),
      {"partials"});
}

}  // namespace

int main() {
  std::printf("hot-key splitting (Example 6): 20k checkins, 90%% at %s\n\n",
              kHot);
  std::printf("%-8s %-14s %-12s %-10s\n", "shards", "hot_count", "exact",
              "subkeys");
  for (int shards : {1, 2, 4, 8}) {
    muppet::AppConfig config;
    BuildApp(&config, shards);
    muppet::EngineOptions options;
    options.num_machines = 4;
    options.threads_per_machine = 2;
    options.queue_capacity = 1 << 16;
    muppet::Muppet2Engine engine(config, options);
    if (!engine.Start().ok()) return 1;

    muppet::workload::CheckinOptions gen_options;
    gen_options.retailer_fraction = 1.0;
    gen_options.hot_retailer = 2;  // Best Buy
    gen_options.hot_fraction = 0.9;
    muppet::workload::CheckinGenerator gen(gen_options, 1000);
    int64_t truth = 0;
    for (int i = 0; i < 20000; ++i) {
      const muppet::workload::Checkin c = gen.Next();
      if (c.retailer == kHot) ++truth;
      if (!engine.Publish("checkins", c.retailer, c.json, c.ts).ok()) {
        return 1;
      }
    }
    if (!engine.Drain().ok()) return 1;

    int64_t total = -1;
    muppet::Result<muppet::Bytes> slate = engine.FetchSlate("total", kHot);
    if (slate.ok()) {
      muppet::JsonSlate s(&slate.value());
      total = s.data().GetInt("count");
    }
    // How many sub-key slates actually exist?
    int live_subkeys = 0;
    for (int shard = 0; shard < shards; ++shard) {
      if (engine
              .FetchSlate("partial",
                          shards > 1 ? muppet::MakeSplitKey(kHot, shard)
                                     : muppet::Bytes(kHot))
              .ok()) {
        ++live_subkeys;
      }
    }
    std::printf("%-8d %-14lld %-12s %-10d\n", shards,
                static_cast<long long>(total),
                total == truth ? "yes" : "NO", live_subkeys);
    if (!engine.Stop().ok()) return 1;
  }
  std::printf("\nthe split spreads the hot key over independent updaters "
              "(and machines),\nwhile the re-aggregated total stays exact "
              "— the associative/commutative\ntrick the paper describes.\n");
  return 0;
}
