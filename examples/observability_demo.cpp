// Observability demo: a 2-machine Muppet 2.0 cluster with the full
// introspection plane mounted on one HTTP server.
//
//   build/examples/observability_demo [seconds] [port]
//
// Prints ADMIN_PORT=<port> (and writes it to admin_port.txt) so scripts
// can scrape the endpoints, then serves for `seconds` (default 5):
//
//   curl http://127.0.0.1:$PORT/metrics   # Prometheus text v0.0.4
//   curl http://127.0.0.1:$PORT/statusz   # queue depths, ring ownership
//   curl http://127.0.0.1:$PORT/tracez    # recent + slowest traces
//   curl http://127.0.0.1:$PORT/healthz   # liveness + readiness checks
//   curl http://127.0.0.1:$PORT/sloz      # latency objectives, burn rates
//   curl http://127.0.0.1:$PORT/status    # slate service counters
//
// The CI observability smoke step boots this binary, validates /metrics
// with tools/check_prom.py (including the SLO/watchdog families), and
// runs tools/muppet_doctor.py against the live endpoints.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "service/admin_service.h"
#include "service/http_server.h"
#include "service/slate_service.h"

using muppet::AppConfig;
using muppet::Bytes;
using muppet::Event;
using muppet::JsonSlate;
using muppet::PerformerUtilities;

int main(int argc, char** argv) {
  const int serve_seconds = argc > 1 ? std::atoi(argv[1]) : 5;
  const int port = argc > 2 ? std::atoi(argv[2]) : 0;

  // Word-count pipeline: mapper "split" fans words out of a line, updater
  // "count" tallies them — enough operators to exercise every span kind.
  AppConfig config;
  if (!config.DeclareInputStream("lines").ok() ||
      !config.DeclareStream("words").ok()) {
    return 1;
  }
  muppet::Status s = config.AddMapper(
      "split",
      muppet::MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        std::string word;
        const std::string line(e.value.begin(), e.value.end());
        for (const char c : line + " ") {
          if (c == ' ') {
            if (!word.empty()) (void)out.Publish("words", word, "");
            word.clear();
          } else {
            word.push_back(c);
          }
        }
      }),
      {"lines"});
  if (!s.ok()) return 1;
  s = config.AddUpdater(
      "count",
      muppet::MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
        JsonSlate state(slate);
        state.data()["count"] = state.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(state.Serialize());
      }),
      {"words"});
  if (!s.ok()) return 1;

  muppet::EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  options.trace.sample_period = 1;  // demo: trace every event
  // Declare the paper's sub-2s objective on the input stream so /sloz
  // has a verdict and burn rates to show.
  muppet::SloObjective objective;
  objective.stream = "lines";
  options.slo.objectives.push_back(objective);
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  // Feed it some traffic so the endpoints have something to show.
  const char* lines[] = {
      "fast data needs fast answers",
      "map update map update",
      "streams of fast data",
      "slates hold the state of streams",
  };
  muppet::Timestamp ts = 1;
  for (int round = 0; round < 8; ++round) {
    for (const char* line : lines) {
      if (!engine.Publish("lines", "k" + std::to_string(ts % 7), line, ts)
               .ok()) {
        return 1;
      }
      ++ts;
    }
  }
  if (!engine.Drain().ok()) return 1;

  // Mount the whole plane: admin endpoints + slate fetches on one server.
  muppet::AdminService admin(&engine, /*machine=*/0);
  muppet::SlateService slates(&engine);
  muppet::HttpServer server;
  admin.AttachTo(&server);
  slates.AttachTo(&server);
  if (!server.Start(port).ok()) {
    std::fprintf(stderr, "cannot bind port %d\n", port);
    return 1;
  }
  std::printf("ADMIN_PORT=%d\n", server.port());
  std::fflush(stdout);
  {
    std::ofstream f("admin_port.txt");
    f << server.port() << "\n";
  }
  std::printf(
      "serving /metrics /statusz /tracez /healthz /sloz /status for "
      "%ds ...\n",
      serve_seconds);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));

  if (!server.Stop().ok()) return 1;
  return engine.Stop().ok() ? 0 : 1;
}
