// Quickstart: the smallest complete MapUpdate application.
//
// A mapper uppercases words and forwards them; an updater counts
// occurrences per word in a JSON slate. We run it on a 2-machine Muppet
// 2.0 cluster, publish a few events, and read the slates back through the
// live fetch path.
//
//   build/examples/quickstart
#include <cctype>
#include <cstdio>

#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"

using muppet::AppConfig;
using muppet::Bytes;
using muppet::Event;
using muppet::JsonSlate;
using muppet::PerformerUtilities;

int main() {
  // 1. Declare the workflow: input stream "words" -> mapper "upper" ->
  //    stream "uppercased" -> updater "count".
  AppConfig config;
  if (!config.DeclareInputStream("words").ok() ||
      !config.DeclareStream("uppercased").ok()) {
    return 1;
  }

  muppet::Status s = config.AddMapper(
      "upper",
      muppet::MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        Bytes upper = e.key;
        for (char& c : upper) c = static_cast<char>(std::toupper(c));
        (void)out.Publish("uppercased", upper, e.value);
      }),
      {"words"});
  if (!s.ok()) return 1;

  s = config.AddUpdater(
      "count",
      muppet::MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                    const Bytes* slate) {
        // First touch: slate == nullptr, JsonSlate starts fresh (§3).
        JsonSlate state(slate);
        state.data()["count"] = state.data().GetInt("count") + 1;
        (void)out.ReplaceSlate(state.Serialize());
      }),
      {"uppercased"});
  if (!s.ok()) return 1;

  // 2. Start a small cluster.
  muppet::EngineOptions options;
  options.num_machines = 2;
  options.threads_per_machine = 2;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  // 3. Publish events (the paper's special mapper M0 role).
  const char* words[] = {"stream", "fast",  "data",  "stream",
                         "stream", "data",  "fast",  "stream"};
  muppet::Timestamp ts = 1;
  for (const char* word : words) {
    if (!engine.Publish("words", word, "", ts++).ok()) return 1;
  }

  // 4. Wait for quiescence and read the slates live (§4.4 fetch path).
  if (!engine.Drain().ok()) return 1;
  std::printf("word counts:\n");
  for (const char* word : {"STREAM", "FAST", "DATA"}) {
    muppet::Result<Bytes> slate = engine.FetchSlate("count", word);
    if (slate.ok()) {
      JsonSlate state(&slate.value());
      std::printf("  %-8s %lld\n", word,
                  static_cast<long long>(state.data().GetInt("count")));
    }
  }

  return engine.Stop().ok() ? 0 : 1;
}
