// Paper Examples 1 & 4: count Foursquare checkins per retailer, live.
//
// The full production stack: synthetic checkin stream -> RetailerMapper ->
// CountingUpdater, slates compressed and persisted in a replicated
// key-value store, counts served over a real HTTP endpoint while the
// stream flows — the "displayed live on a Web page" scenario of Example 1.
//
//   build/examples/retailer_counts
#include <cstdio>
#include <filesystem>
#include <string>

#include "apps/retailer.h"
#include "core/slate_store.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "kvstore/cluster.h"
#include "service/slate_service.h"
#include "workload/checkins.h"

namespace {

struct TempDataDir {
  std::string path;
  TempDataDir() {
    path = (std::filesystem::temp_directory_path() / "muppet_retailer_demo")
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDataDir() { std::filesystem::remove_all(path); }
};

}  // namespace

int main() {
  TempDataDir data_dir;

  // Durable slate store: a 3-node replicated KV cluster (the paper's
  // Cassandra role).
  muppet::kv::KvClusterOptions kv_options;
  kv_options.num_nodes = 3;
  kv_options.replication_factor = 2;
  kv_options.node.data_dir = data_dir.path;
  muppet::kv::KvCluster kv_cluster(kv_options);
  if (!kv_cluster.Open().ok()) return 1;
  muppet::SlateStore store(&kv_cluster, muppet::SlateStoreOptions{});

  // The Example 4 workflow: S1 --M1--> S2 --U1--> count slates.
  muppet::AppConfig config;
  if (!muppet::apps::BuildRetailerApp(&config).ok()) return 1;

  muppet::EngineOptions options;
  options.num_machines = 3;
  options.threads_per_machine = 2;
  options.slate_store = &store;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  // Serve live slate fetches over HTTP (§4.4).
  muppet::SlateService service(&engine);
  muppet::HttpServer server;
  service.AttachTo(&server);
  if (!server.Start(0).ok()) return 1;
  std::printf("slate service listening on http://127.0.0.1:%d\n",
              server.port());
  std::printf("  e.g. curl 'http://127.0.0.1:%d%s'\n\n", server.port(),
              muppet::SlateService::SlateUri("U1", "Walmart").c_str());

  // Stream 30k checkins.
  muppet::workload::CheckinOptions gen_options;
  gen_options.retailer_fraction = 0.5;
  muppet::workload::CheckinGenerator gen(gen_options, 1000);
  for (int i = 0; i < 30000; ++i) {
    const muppet::workload::Checkin c = gen.Next();
    if (!engine.Publish("S1", c.user, c.json, c.ts).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;

  std::printf("checkins per retailer (live slates):\n");
  for (const std::string& retailer : muppet::workload::RetailerNames()) {
    muppet::Result<muppet::Bytes> slate = engine.FetchSlate("U1", retailer);
    if (slate.ok()) {
      std::printf("  %-12s %lld\n", retailer.c_str(),
                  static_cast<long long>(
                      muppet::apps::CountingUpdater::CountOf(slate.value())));
    }
  }

  const muppet::EngineStats stats = engine.Stats();
  std::printf("\nengine: %lld events processed, p99 latency %lld us, "
              "%lld store writes\n",
              static_cast<long long>(stats.events_processed),
              static_cast<long long>(stats.latency_p99_us),
              static_cast<long long>(stats.slate_store_writes));

  (void)server.Stop();
  return engine.Stop().ok() ? 0 : 1;
}
