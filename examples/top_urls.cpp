// Paper §2: "maintaining the top-ten URLs being passed around on Twitter."
//
// Demonstrates global top-k over a keyed framework: per-URL counting
// updaters report into a single aggregation key whose updater keeps the
// ranked list in one slate. The report_every knob shows the §5 hotspot
// amortization trade-off on the aggregation key.
//
//   build/examples/top_urls
#include <cstdio>
#include <string>

#include "apps/top_urls.h"
#include "engine/muppet2.h"
#include "workload/tweets.h"

int main() {
  muppet::AppConfig config;
  if (!muppet::apps::BuildTopUrlsApp(&config, /*k=*/10, /*report_every=*/3)
           .ok()) {
    return 1;
  }

  muppet::EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  muppet::workload::TweetOptions gen_options;
  gen_options.url_probability = 0.5;
  gen_options.num_urls = 300;
  gen_options.url_skew = 1.2;
  muppet::workload::TweetGenerator gen(gen_options, 1000);

  std::printf("streaming 30k tweets (half carry URLs, Zipf popularity)...\n");
  for (int i = 0; i < 30000; ++i) {
    const muppet::workload::Tweet t = gen.Next();
    if (!engine.Publish("S1", t.user, t.json, t.ts).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;

  muppet::Result<muppet::Bytes> slate = engine.FetchSlate(
      "U2", muppet::apps::UrlCountUpdater::kAggregationKey);
  if (!slate.ok()) {
    std::printf("no top-k slate yet\n");
    return 1;
  }
  std::printf("\ntop URLs being passed around:\n");
  int rank = 1;
  for (const auto& [url, count] :
       muppet::apps::TopKUpdater::TopOf(slate.value())) {
    std::printf("  %2d. %-24s ~%lld shares\n", rank++, url.c_str(),
                static_cast<long long>(count));
  }
  return engine.Stop().ok() ? 0 : 1;
}
