// Paper Example 3: maintain a live reputation score per Twitter user.
//
// The workflow is cyclic: the reputation updater U1 both consumes the
// author-keyed tweet stream and its own mention stream (so a retweet by a
// high-scoring user boosts the target more). This example streams tweets
// with a retweet graph and prints the top scorers — the "real-time data
// structure of <user, score> pairs" of Example 3.
//
//   build/examples/user_reputation
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/reputation.h"
#include "engine/muppet2.h"
#include "workload/tweets.h"

int main() {
  muppet::AppConfig config;
  muppet::apps::ReputationParams params;
  params.mention_factor = 0.002;
  if (!muppet::apps::BuildReputationApp(&config, params).ok()) return 1;

  muppet::EngineOptions options;
  options.num_machines = 4;
  options.threads_per_machine = 2;
  options.queue_capacity = 1 << 16;
  muppet::Muppet2Engine engine(config, options);
  if (!engine.Start().ok()) return 1;

  muppet::workload::TweetOptions gen_options;
  gen_options.num_users = 5000;
  gen_options.user_skew = 0.8;          // moderately skewed authorship
  gen_options.retweet_probability = 0.25;
  gen_options.reply_probability = 0.10;
  muppet::workload::TweetGenerator gen(gen_options, 1000);

  std::printf("streaming 40k tweets with retweets/replies...\n");
  for (int i = 0; i < 40000; ++i) {
    const muppet::workload::Tweet t = gen.Next();
    if (!engine.Publish("S1", t.user, t.json, t.ts).ok()) return 1;
  }
  if (!engine.Drain().ok()) return 1;

  // The application's output is the live <user, score> structure: read it
  // through the slate fetch path for the most active user ids.
  std::vector<std::pair<double, std::string>> scores;
  for (int u = 0; u < 200; ++u) {
    const std::string user = "u" + std::to_string(u);
    muppet::Result<muppet::Bytes> slate = engine.FetchSlate("U1", user);
    if (slate.ok()) {
      scores.emplace_back(
          muppet::apps::ReputationUpdater::ScoreOf(slate.value()), user);
    }
  }
  std::sort(scores.rbegin(), scores.rend());
  std::printf("\ntop reputation scores (of the 200 most active users):\n");
  for (size_t i = 0; i < std::min<size_t>(10, scores.size()); ++i) {
    std::printf("  %-8s %.3f\n", scores[i].second.c_str(), scores[i].first);
  }

  const muppet::EngineStats stats = engine.Stats();
  std::printf("\n%lld events processed (%lld mention events emitted by the "
              "cyclic updater)\n",
              static_cast<long long>(stats.events_processed),
              static_cast<long long>(stats.events_emitted));
  return engine.Stop().ok() ? 0 : 1;
}
