#include "apps/hot_topics.h"

#include <charconv>

#include "common/clock.h"
#include "common/logging.h"
#include "core/slate.h"
#include "json/json.h"

namespace muppet {
namespace apps {

std::string TopicMinuteKey(const std::string& topic, int minute) {
  return topic + "_" + std::to_string(minute);
}

Status ParseTopicMinuteKey(const std::string& key, std::string* topic,
                           int* minute) {
  const size_t sep = key.rfind('_');
  if (sep == std::string::npos || sep + 1 >= key.size()) {
    return Status::InvalidArgument("not a topic-minute key: " + key);
  }
  int value = 0;
  auto [p, ec] = std::from_chars(key.data() + sep + 1,
                                 key.data() + key.size(), value);
  if (ec != std::errc() || p != key.data() + key.size()) {
    return Status::InvalidArgument("bad minute suffix in: " + key);
  }
  *topic = key.substr(0, sep);
  *minute = value;
  return Status::OK();
}

TopicMapper::TopicMapper(const AppConfig& /*config*/, std::string name,
                         std::string output_stream)
    : name_(std::move(name)), output_stream_(std::move(output_stream)) {}

void TopicMapper::Map(PerformerUtilities& out, const Event& event) {
  Result<Json> tweet = Json::Parse(event.value);
  if (!tweet.ok()) return;
  const Json& topics = tweet.value()["topics"];
  if (!topics.is_array()) return;
  // One event per inferred topic, keyed by the topic (U1 aggregates per
  // topic; the minute travels in the payload).
  const int minute = MinuteOfDay(event.ts);
  const int64_t day = DayIndex(event.ts);
  for (const Json& topic : topics.AsArray()) {
    if (!topic.is_string()) continue;
    Json payload = Json::MakeObject();
    payload["minute"] = minute;
    payload["day"] = day;
    Status s = out.Publish(output_stream_, topic.AsString(), payload.Dump());
    if (!s.ok()) {
      MUPPET_LOG(kError) << "TopicMapper: " << s.ToString();
    }
  }
}

MinuteCountUpdater::MinuteCountUpdater(const AppConfig& /*config*/,
                                       std::string name,
                                       std::string output_stream)
    : name_(std::move(name)), output_stream_(std::move(output_stream)) {}

void MinuteCountUpdater::Update(PerformerUtilities& out, const Event& event,
                                const Bytes* slate) {
  Result<Json> payload = Json::Parse(event.value);
  if (!payload.ok()) return;
  const int minute = static_cast<int>(payload.value().GetInt("minute", -1));
  const int64_t day = payload.value().GetInt("day", -1);
  if (minute < 0) return;
  const std::string topic(event.key);

  JsonSlate s(slate);
  const int prev_minute = static_cast<int>(s.data().GetInt("minute", -1));
  const int64_t prev_day = s.data().GetInt("day", -1);
  int64_t count = s.data().GetInt("count");

  // Absolute minute indices make the rollover monotonic: a distributed
  // engine may deliver a few events slightly out of order (§3 allows the
  // implementation to approximate the exact order), and a strictly
  // forward-only rollover keeps stragglers from thrashing the window —
  // late events fold into the current minute instead.
  const int64_t abs_minute = day * (24 * 60) + minute;
  const int64_t prev_abs = prev_day * (24 * 60) + prev_minute;

  if (!s.fresh() && abs_minute > prev_abs) {
    // Minute rollover: publish the completed minute's count (the paper's
    // "(key = v_m, value = count)" event into S3).
    Json closed = Json::MakeObject();
    closed["count"] = count;
    Status st = out.Publish(output_stream_,
                            TopicMinuteKey(topic, prev_minute),
                            closed.Dump());
    if (!st.ok()) {
      MUPPET_LOG(kError) << "MinuteCountUpdater: " << st.ToString();
    }
    count = 0;
  }
  if (s.fresh() || abs_minute > prev_abs) {
    s.data()["minute"] = minute;
    s.data()["day"] = day;
  }
  s.data()["count"] = count + 1;
  (void)out.ReplaceSlate(s.Serialize());
}

HotTopicUpdater::HotTopicUpdater(const AppConfig& /*config*/,
                                 std::string name, std::string output_stream,
                                 double threshold, int64_t min_count)
    : name_(std::move(name)),
      output_stream_(std::move(output_stream)),
      threshold_(threshold),
      min_count_(min_count) {}

void HotTopicUpdater::Update(PerformerUtilities& out, const Event& event,
                             const Bytes* slate) {
  Result<Json> payload = Json::Parse(event.value);
  if (!payload.ok()) return;
  const int64_t count = payload.value().GetInt("count");

  // The two Example 5 summaries: total_count and days.
  JsonSlate s(slate);
  const int64_t total_count = s.data().GetInt("total_count");
  const int64_t days = s.data().GetInt("days");

  if (days > 0 && count >= min_count_) {
    const double avg = static_cast<double>(total_count) /
                       static_cast<double>(days);
    if (avg > 0 && static_cast<double>(count) / avg >= threshold_) {
      Json hot = Json::MakeObject();
      hot["count"] = count;
      hot["avg"] = avg;
      Status st = out.Publish(output_stream_, event.key, hot.Dump());
      if (!st.ok()) {
        MUPPET_LOG(kError) << "HotTopicUpdater: " << st.ToString();
      }
    }
  }

  s.data()["total_count"] = total_count + count;
  s.data()["days"] = days + 1;
  (void)out.ReplaceSlate(s.Serialize());
}

Status BuildHotTopicsApp(AppConfig* config, double threshold,
                         int64_t min_count, HotTopicsAppNames names) {
  MUPPET_RETURN_IF_ERROR(config->DeclareInputStream(names.tweet_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.mention_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.counts_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.hot_stream));
  MUPPET_RETURN_IF_ERROR(config->AddMapper(
      names.mapper,
      [out = names.mention_stream](const AppConfig& cfg,
                                   const std::string& name) {
        return std::make_unique<TopicMapper>(cfg, name, out);
      },
      {names.tweet_stream}));
  MUPPET_RETURN_IF_ERROR(config->AddUpdater(
      names.minute_counter,
      [out = names.counts_stream](const AppConfig& cfg,
                                  const std::string& name) {
        return std::make_unique<MinuteCountUpdater>(cfg, name, out);
      },
      {names.mention_stream}));
  MUPPET_RETURN_IF_ERROR(config->AddUpdater(
      names.hot_detector,
      [out = names.hot_stream, threshold, min_count](
          const AppConfig& cfg, const std::string& name) {
        return std::make_unique<HotTopicUpdater>(cfg, name, out, threshold,
                                                 min_count);
      },
      {names.counts_stream}));
  return Status::OK();
}

}  // namespace apps
}  // namespace muppet
