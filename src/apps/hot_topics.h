// The hot-topics application (paper Examples 2 & 5, Figure 1c):
//
//   S1 (tweets) --M1--> S2 (topic mentions) --U1--> S3 (per-minute counts)
//                                            --U2--> S4 (hot topics)
//
// M1 classifies each tweet into topics and emits one event per mentioned
// topic. U1 counts mentions per <topic, minute>; U2 compares each minute's
// count against the topic-minute's historical average (kept in its slate
// as total_count and days, exactly the two summaries of Example 5) and
// declares the topic hot when count / avg exceeds a threshold.
//
// Deviation noted in DESIGN.md: the paper's U1 publishes "after a minute
// passes" (wall-clock). This implementation is event-time: U1 keys its
// slate by topic, carries the current minute in the slate, and emits the
// completed minute's count when the first mention of the *next* minute
// arrives (or when FlushMinute events force a close). Same output stream,
// minus timer machinery.
#ifndef MUPPET_APPS_HOT_TOPICS_H_
#define MUPPET_APPS_HOT_TOPICS_H_

#include <string>

#include "core/operator.h"
#include "core/topology.h"

namespace muppet {
namespace apps {

// Key for a <topic, minute> pair, the paper's "v_m" ("a string that
// concatenates v and m").
std::string TopicMinuteKey(const std::string& topic, int minute);
Status ParseTopicMinuteKey(const std::string& key, std::string* topic,
                           int* minute);

class TopicMapper final : public Mapper {
 public:
  TopicMapper(const AppConfig& config, std::string name,
              std::string output_stream);
  const std::string& GetName() const override { return name_; }
  void Map(PerformerUtilities& out, const Event& event) override;

 private:
  std::string name_;
  std::string output_stream_;
};

// U1: per-topic slate {minute, count, day}; emits (v_m, count) to the
// counts stream when the minute rolls over.
class MinuteCountUpdater final : public Updater {
 public:
  MinuteCountUpdater(const AppConfig& config, std::string name,
                     std::string output_stream);
  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override;

 private:
  std::string name_;
  std::string output_stream_;
};

// U2: per-v_m slate {total_count, days}; emits the topic-minute key to the
// hot stream when count / (total_count / days) >= threshold.
class HotTopicUpdater final : public Updater {
 public:
  // `min_count`: minimum mentions in the minute before the ratio test is
  // applied — filters the boundary noise of rare topics (count 1-3), whose
  // natural fluctuation trivially exceeds any ratio threshold.
  HotTopicUpdater(const AppConfig& config, std::string name,
                  std::string output_stream, double threshold,
                  int64_t min_count = 0);
  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override;

 private:
  std::string name_;
  std::string output_stream_;
  double threshold_;
  int64_t min_count_;
};

struct HotTopicsAppNames {
  std::string tweet_stream = "S1";
  std::string mention_stream = "S2";
  std::string counts_stream = "S3";
  std::string hot_stream = "S4";
  std::string mapper = "M1";
  std::string minute_counter = "U1";
  std::string hot_detector = "U2";
};

// Declare the full Example 5 workflow on `config`. The hot stream S4 has
// no subscribers; callers observe it with Engine::TapStream or the
// reference executor's StreamLog.
Status BuildHotTopicsApp(AppConfig* config, double threshold = 4.0,
                         int64_t min_count = 0,
                         HotTopicsAppNames names = {});

}  // namespace apps
}  // namespace muppet

#endif  // MUPPET_APPS_HOT_TOPICS_H_
