// muppet_loadgen: concurrent HTTP publishers against a running muppetd
// cluster.
//
//   muppet_loadgen --targets=127.0.0.1:7201,127.0.0.1:7202 \
//                  --stream=lines --publishers=8 --events=5000 \
//                  [--key-space=128] [--value="fast data"] \
//                  [--out=BENCH_net.json]
//
// Each publisher thread publishes `events` events round-robin over the
// target admin endpoints (POST /publish), retrying briefly on
// backpressure (429) and node unavailability (503/connect refused) so a
// mid-run node kill slows the run instead of failing it. Emits a
// check_bench.py-compatible BENCH_net.json with sustained throughput.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "json/json.h"
#include "net/http_client.h"
#include "service/http_server.h"

namespace {

struct Target {
  std::string host;
  int port = 0;
};

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& def) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string targets_arg = FlagValue(argc, argv, "targets", "");
  const std::string stream = FlagValue(argc, argv, "stream", "lines");
  const int publishers =
      std::atoi(FlagValue(argc, argv, "publishers", "4").c_str());
  const int events_per_publisher =
      std::atoi(FlagValue(argc, argv, "events", "1000").c_str());
  const int key_space =
      std::atoi(FlagValue(argc, argv, "key-space", "128").c_str());
  const std::string value =
      FlagValue(argc, argv, "value", "fast data needs fast answers");
  const std::string out_path = FlagValue(argc, argv, "out", "");
  if (targets_arg.empty()) {
    std::fprintf(stderr,
                 "usage: muppet_loadgen --targets=host:port[,host:port...] "
                 "[--stream=S] [--publishers=N] [--events=N] "
                 "[--key-space=N] [--value=V] [--out=BENCH_net.json]\n");
    return 2;
  }

  std::vector<Target> targets;
  {
    std::string rest = targets_arg;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      const std::string one =
          comma == std::string::npos ? rest : rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const size_t colon = one.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad target: %s\n", one.c_str());
        return 2;
      }
      targets.push_back(
          Target{one.substr(0, colon), std::atoi(one.c_str() + colon + 1)});
    }
  }

  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> errors{0};
  const auto started = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(publishers));
  for (int p = 0; p < publishers; ++p) {
    workers.emplace_back([&, p] {
      for (int i = 0; i < events_per_publisher; ++i) {
        const std::string key =
            "k" + std::to_string((p * 131 + i) % key_space);
        const std::string path = "/publish?stream=" +
                                 muppet::UrlEncode(stream) +
                                 "&key=" + muppet::UrlEncode(key);
        bool sent = false;
        // Bounded retry: ride out throttling and node restarts without
        // inflating the error count, but never spin forever.
        for (int attempt = 0; attempt < 50 && !sent; ++attempt) {
          const Target& t =
              targets[static_cast<size_t>(p + i + attempt) % targets.size()];
          muppet::HttpClientResponse resp;
          muppet::Status s =
              muppet::HttpPost(t.host, t.port, path, value, &resp,
                               /*timeout_micros=*/2 * 1000 * 1000);
          if (s.ok() && resp.status == 200) {
            sent = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(
              resp.status == 429 ? 5 : 20));
        }
        if (sent) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const auto elapsed = std::chrono::steady_clock::now() - started;
  const int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  const double events_per_sec =
      elapsed_us > 0 ? static_cast<double>(ok.load()) * 1e6 /
                           static_cast<double>(elapsed_us)
                     : 0.0;

  std::printf("loadgen: %lld ok, %lld failed, %.0f events/sec\n",
              static_cast<long long>(ok.load()),
              static_cast<long long>(errors.load()), events_per_sec);

  if (!out_path.empty()) {
    muppet::Json row = muppet::Json::MakeObject();
    row["phase"] = "steady";
    row["transport"] = "tcp";
    row["publishers"] = static_cast<int64_t>(publishers);
    row["nodes"] = static_cast<int64_t>(targets.size());
    row["events"] = ok.load();
    row["http_errors"] = errors.load();
    row["elapsed_us"] = elapsed_us;
    row["events_per_sec"] = events_per_sec;
    muppet::Json doc = muppet::Json::MakeObject();
    doc["bench"] = "net";
    muppet::Json rows = muppet::Json::MakeArray();
    rows.Append(std::move(row));
    doc["rows"] = std::move(rows);
    std::ofstream f(out_path);
    f << doc.DumpPretty() << "\n";
  }
  return errors.load() == 0 ? 0 : 1;
}
