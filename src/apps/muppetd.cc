// muppetd: one Muppet cluster node per process.
//
//   muppetd --config=cluster.json --node=0 [--run-seconds=N]
//           [--admin-port=N] [--data-port=N] [--port-file=PATH]
//
// Reads a JSON cluster config naming every node (id, host, data port,
// admin port, hosted machine ids), builds the selected application
// workflow, and runs the engine slice this node hosts with the TCP
// transport (net/tcp_transport.h) carrying cross-machine frames and the
// full admin plane (/metrics /statusz /tracez /healthz /sloz /slate)
// bound to a real port. A POST /publish endpoint ingests events, so any
// HTTP client (muppet_loadgen) can drive the cluster.
//
// Config schema (DESIGN.md "Transport backends & deployment model"):
//
//   {
//     "app": "wordcount",              // wordcount | hot_topics |
//                                      // retailer | reputation | top_urls
//     "engine": {                      // optional overrides
//       "threads_per_machine": 2,
//       "queue_capacity": 1024,
//       "overflow_policy": "throttle"  // drop | overflow_stream | throttle
//     },
//     "durability": {
//       "mode": "exactly_once",        // lossy | at_least_once | exactly_once
//       "dir": "/tmp/cluster-state"    // per-node subdir appended
//     },
//     "slo": { "target_p99_micros": 2000000 },   // optional
//     "nodes": [
//       {"id": 0, "host": "127.0.0.1", "data_port": 7101,
//        "admin_port": 7201, "machines": [0]},
//       ...
//     ]
//   }
//
// Runs until SIGINT/SIGTERM (or --run-seconds elapses), then drains,
// flushes the outbound queues, and stops cleanly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <memory>
#include <thread>
#include <vector>

#include "apps/hot_topics.h"
#include "apps/reputation.h"
#include "apps/retailer.h"
#include "apps/top_urls.h"
#include "core/slate.h"
#include "engine/muppet2.h"
#include "json/json.h"
#include "net/http_client.h"
#include "net/tcp_transport.h"
#include "service/admin_service.h"
#include "service/http_server.h"
#include "service/slate_service.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

struct NodeSpec {
  uint32_t id = 0;
  std::string host = "127.0.0.1";
  int data_port = 0;
  int admin_port = 0;
  std::vector<muppet::MachineId> machines;
};

struct ClusterSpec {
  std::string app = "wordcount";
  std::vector<NodeSpec> nodes;
  muppet::Json engine;      // raw "engine" object (may be null)
  muppet::Json durability;  // raw "durability" object (may be null)
  muppet::Json slo;         // raw "slo" object (may be null)
};

muppet::Status ParseCluster(const std::string& text, ClusterSpec* out) {
  muppet::Result<muppet::Json> parsed = muppet::Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const muppet::Json& root = parsed.value();
  if (!root.is_object()) {
    return muppet::Status::InvalidArgument("config: top level not an object");
  }
  out->app = root.GetString("app", "wordcount");
  out->engine = root["engine"];
  out->durability = root["durability"];
  out->slo = root["slo"];
  const muppet::Json& nodes = root["nodes"];
  if (!nodes.is_array() || nodes.size() == 0) {
    return muppet::Status::InvalidArgument("config: missing nodes[]");
  }
  for (const muppet::Json& n : nodes.AsArray()) {
    NodeSpec spec;
    spec.id = static_cast<uint32_t>(n.GetInt("id", -1));
    spec.host = n.GetString("host", "127.0.0.1");
    spec.data_port = static_cast<int>(n.GetInt("data_port", 0));
    spec.admin_port = static_cast<int>(n.GetInt("admin_port", 0));
    if (!n.Contains("machines") || !n["machines"].is_array()) {
      return muppet::Status::InvalidArgument(
          "config: node missing machines[]");
    }
    for (const muppet::Json& m : n["machines"].AsArray()) {
      spec.machines.push_back(
          static_cast<muppet::MachineId>(m.AsInt()));
    }
    out->nodes.push_back(std::move(spec));
  }
  return muppet::Status::OK();
}

muppet::Status BuildApp(const std::string& name, muppet::AppConfig* config,
                        std::string* input_stream) {
  using muppet::Bytes;
  using muppet::Event;
  using muppet::JsonSlate;
  using muppet::PerformerUtilities;
  if (name == "wordcount") {
    *input_stream = "lines";
    MUPPET_RETURN_IF_ERROR(config->DeclareInputStream("lines"));
    MUPPET_RETURN_IF_ERROR(config->DeclareStream("words"));
    MUPPET_RETURN_IF_ERROR(config->AddMapper(
        "split",
        muppet::MakeMapperFactory(
            [](PerformerUtilities& out, const Event& e) {
              std::string word;
              const std::string line(e.value.begin(), e.value.end());
              for (const char c : line + " ") {
                if (c == ' ') {
                  if (!word.empty()) (void)out.Publish("words", word, "");
                  word.clear();
                } else {
                  word.push_back(c);
                }
              }
            }),
        {"lines"}));
    return config->AddUpdater(
        "count",
        muppet::MakeUpdaterFactory([](PerformerUtilities& out, const Event&,
                                      const Bytes* slate) {
          JsonSlate state(slate);
          state.data()["count"] = state.data().GetInt("count") + 1;
          (void)out.ReplaceSlate(state.Serialize());
        }),
        {"words"});
  }
  if (name == "hot_topics") {
    *input_stream = muppet::apps::HotTopicsAppNames{}.tweet_stream;
    return muppet::apps::BuildHotTopicsApp(config);
  }
  if (name == "retailer") {
    *input_stream = muppet::apps::RetailerAppNames{}.input_stream;
    return muppet::apps::BuildRetailerApp(config);
  }
  if (name == "reputation") {
    *input_stream = muppet::apps::ReputationAppNames{}.tweet_stream;
    return muppet::apps::BuildReputationApp(config);
  }
  if (name == "top_urls") {
    *input_stream = muppet::apps::TopUrlsAppNames{}.tweet_stream;
    return muppet::apps::BuildTopUrlsApp(config);
  }
  return muppet::Status::InvalidArgument("unknown app: " + name);
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& def) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string config_path = FlagValue(argc, argv, "config", "");
  const std::string node_arg = FlagValue(argc, argv, "node", "");
  const int run_seconds =
      std::atoi(FlagValue(argc, argv, "run-seconds", "0").c_str());
  const std::string port_file = FlagValue(argc, argv, "port-file", "");
  if (config_path.empty() || node_arg.empty()) {
    std::fprintf(stderr,
                 "usage: muppetd --config=cluster.json --node=ID "
                 "[--run-seconds=N] [--admin-port=N] [--data-port=N] "
                 "[--port-file=PATH]\n");
    return 2;
  }
  const uint32_t node_id = static_cast<uint32_t>(std::atoi(node_arg.c_str()));

  std::ifstream in(config_path);
  if (!in) {
    std::fprintf(stderr, "muppetd: cannot read %s\n", config_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  ClusterSpec cluster;
  muppet::Status s = ParseCluster(buffer.str(), &cluster);
  if (!s.ok()) {
    std::fprintf(stderr, "muppetd: %s\n", s.ToString().c_str());
    return 2;
  }

  const NodeSpec* self = nullptr;
  for (const NodeSpec& n : cluster.nodes) {
    if (n.id == node_id) self = &n;
  }
  if (self == nullptr) {
    std::fprintf(stderr, "muppetd: node %u not in config\n", node_id);
    return 2;
  }
  int data_port = self->data_port;
  int admin_port = self->admin_port;
  const std::string data_port_flag = FlagValue(argc, argv, "data-port", "");
  const std::string admin_port_flag = FlagValue(argc, argv, "admin-port", "");
  if (!data_port_flag.empty()) data_port = std::atoi(data_port_flag.c_str());
  if (!admin_port_flag.empty())
    admin_port = std::atoi(admin_port_flag.c_str());

  // --- Application workflow.
  muppet::AppConfig app_config;
  std::string input_stream;
  s = BuildApp(cluster.app, &app_config, &input_stream);
  if (!s.ok()) {
    std::fprintf(stderr, "muppetd: %s\n", s.ToString().c_str());
    return 2;
  }

  // --- Engine options from the shared config: every node derives the
  // same num_machines and ring; only hosted_machines differs.
  muppet::EngineOptions options;
  muppet::MachineId max_machine = 0;
  for (const NodeSpec& n : cluster.nodes) {
    for (muppet::MachineId m : n.machines) {
      max_machine = std::max(max_machine, m);
    }
  }
  options.num_machines = static_cast<int>(max_machine) + 1;
  options.hosted_machines = self->machines;
  if (cluster.engine.is_object()) {
    options.threads_per_machine = static_cast<int>(
        cluster.engine.GetInt("threads_per_machine", 2));
    options.queue_capacity = static_cast<size_t>(
        cluster.engine.GetInt("queue_capacity", 1024));
    const std::string policy =
        cluster.engine.GetString("overflow_policy", "drop");
    if (policy == "overflow_stream") {
      options.overflow.policy = muppet::OverflowPolicy::kOverflowStream;
    } else if (policy == "throttle") {
      options.overflow.policy = muppet::OverflowPolicy::kThrottle;
    } else {
      options.overflow.policy = muppet::OverflowPolicy::kDrop;
    }
  } else {
    options.threads_per_machine = 2;
  }
  if (cluster.durability.is_object()) {
    const std::string mode = cluster.durability.GetString("mode", "lossy");
    if (mode == "at_least_once") {
      options.durability.consistency = muppet::Consistency::kAtLeastOnce;
    } else if (mode == "exactly_once") {
      options.durability.consistency = muppet::Consistency::kExactlyOnce;
    }
    const std::string dir = cluster.durability.GetString("dir", "");
    if (!dir.empty()) {
      // Per-node state directory: nodes on one host must not share
      // changelog segment files.
      options.durability.dir = dir + "/node" + std::to_string(node_id);
    }
  }
  if (cluster.slo.is_object()) {
    muppet::SloObjective objective;
    objective.stream = input_stream;
    const int64_t p99 = cluster.slo.GetInt("target_p99_micros", 0);
    if (p99 > 0) objective.target_p99_us = p99;
    options.slo.objectives.push_back(objective);
  }

  // --- TCP transport: peers = every other node.
  muppet::TcpTransportOptions net;
  net.node_id = node_id;
  net.listen_host = self->host;
  net.listen_port = data_port;
  for (const NodeSpec& n : cluster.nodes) {
    if (n.id == node_id) continue;
    muppet::TcpPeerConfig peer;
    peer.node_id = n.id;
    peer.host = n.host;
    peer.port = n.data_port;
    peer.machines = n.machines;
    net.peers.push_back(peer);
  }

  // Cross-process slate reads: proxy to the owner node's admin plane.
  std::vector<NodeSpec> nodes_copy = cluster.nodes;
  options.remote_fetch = [nodes_copy](muppet::MachineId owner,
                                      const std::string& updater,
                                      muppet::BytesView key)
      -> muppet::Result<muppet::Bytes> {
    for (const NodeSpec& n : nodes_copy) {
      for (muppet::MachineId m : n.machines) {
        if (m != owner) continue;
        muppet::HttpClientResponse resp;
        muppet::Status rs = muppet::HttpGet(
            n.host, n.admin_port,
            muppet::SlateService::SlateUri(updater, key), &resp,
            /*timeout_micros=*/2 * 1000 * 1000);
        if (!rs.ok()) return rs;
        if (resp.status == 404) {
          return muppet::Status::NotFound("no such slate");
        }
        if (resp.status != 200) {
          return muppet::Status::Unavailable(
              "remote slate fetch failed: http " +
              std::to_string(resp.status));
        }
        return muppet::Bytes(resp.body);
      }
    }
    return muppet::Status::Unavailable("no node hosts machine " +
                                       std::to_string(owner));
  };

  // Peer liveness -> the master's failure set. A peer that handshakes is
  // routable (its process restored its own slates before listening); a
  // lost connection is exactly the paper's failed-send detection (§4.3).
  // The engine is constructed after the transport, so the callbacks reach
  // it through an atomic holder set before Start().
  auto engine_holder =
      std::make_shared<std::atomic<muppet::Muppet2Engine*>>(nullptr);
  net.on_peer_up = [engine_holder](
                       uint32_t,
                       const std::vector<muppet::MachineId>& machines) {
    muppet::Muppet2Engine* e = engine_holder->load(std::memory_order_acquire);
    if (e == nullptr) return;
    for (muppet::MachineId m : machines) (void)e->master().ClearFailure(m);
  };
  net.on_peer_down = [engine_holder](
                         uint32_t,
                         const std::vector<muppet::MachineId>& machines) {
    muppet::Muppet2Engine* e = engine_holder->load(std::memory_order_acquire);
    if (e == nullptr) return;
    for (muppet::MachineId m : machines) (void)e->master().ReportFailure(m);
  };

  muppet::TcpTransport transport(net);
  options.transport_backend = &transport;

  muppet::Muppet2Engine engine(app_config, options);
  engine_holder->store(&engine, std::memory_order_release);

  // --- Engine first (registers handlers), then transport (dials).
  s = engine.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "muppetd: engine start: %s\n", s.ToString().c_str());
    return 1;
  }
  s = transport.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "muppetd: transport start: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // --- Admin plane on a real port.
  const muppet::MachineId view_machine =
      self->machines.empty() ? 0 : self->machines.front();
  muppet::AdminService admin(&engine, view_machine);
  muppet::SlateService slates(&engine);
  muppet::HttpServer server;
  admin.AttachTo(&server);
  slates.AttachTo(&server);
  std::atomic<bool> accepting{true};
  server.RegisterHandler(
      "/publish",
      [&engine, &accepting](const muppet::HttpRequest& req)
          -> muppet::HttpResponse {
        if (req.method != "POST") {
          return {405, "text/plain", "POST only\n"};
        }
        if (!accepting.load(std::memory_order_acquire)) {
          return {503, "text/plain", "shutting down\n"};
        }
        // /publish?stream=S&key=K, body = event value.
        std::string stream, key;
        std::stringstream qs(req.query);
        std::string param;
        while (std::getline(qs, param, '&')) {
          const size_t eq = param.find('=');
          if (eq == std::string::npos) continue;
          const std::string name = param.substr(0, eq);
          const std::string value =
              muppet::UrlDecode(param.substr(eq + 1));
          if (name == "stream") stream = value;
          if (name == "key") key = value;
        }
        if (stream.empty() || key.empty()) {
          return {400, "text/plain", "need stream= and key=\n"};
        }
        muppet::Status ps = engine.Publish(
            stream, key, req.body,
            muppet::SystemClock::Default()->Now());
        if (ps.ok()) return {200, "text/plain", "ok\n"};
        if (ps.code() == muppet::StatusCode::kResourceExhausted) {
          return {429, "text/plain", ps.ToString() + "\n"};
        }
        return {503, "text/plain", ps.ToString() + "\n"};
      });
  server.RegisterHandler(
      "/drainz",
      [&engine, &transport](const muppet::HttpRequest&)
          -> muppet::HttpResponse {
        muppet::Status fs =
            transport.FlushOutbound(/*timeout_micros=*/5 * 1000 * 1000);
        muppet::Status ds = engine.Drain();
        muppet::Json j = muppet::Json::MakeObject();
        j["outbound_flushed"] = fs.ok();
        j["drained"] = ds.ok();
        return {ds.ok() && fs.ok() ? 200 : 503, "application/json",
                j.Dump() + "\n"};
      });
  s = server.Start(admin_port);
  if (!s.ok()) {
    std::fprintf(stderr, "muppetd: admin bind: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("MUPPETD node=%u data_port=%d admin_port=%d machines=%zu\n",
              node_id, transport.listen_port(), server.port(),
              self->machines.size());
  std::fflush(stdout);
  if (!port_file.empty()) {
    muppet::Json ports = muppet::Json::MakeObject();
    ports["node"] = static_cast<int64_t>(node_id);
    ports["data_port"] = transport.listen_port();
    ports["admin_port"] = server.port();
    std::ofstream f(port_file);
    f << ports.Dump() << "\n";
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto started = std::chrono::steady_clock::now();
  while (!g_shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (run_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(run_seconds)) {
      break;
    }
  }

  // --- Clean shutdown: stop ingesting, push queued frames out, stop the
  // engine (drains local queues), then tear the sockets down.
  accepting.store(false, std::memory_order_release);
  (void)transport.FlushOutbound(/*timeout_micros=*/5 * 1000 * 1000);
  const bool engine_ok = engine.Stop().ok();
  transport.Stop();
  const bool server_ok = server.Stop().ok();
  std::printf("MUPPETD node=%u stopped clean=%d\n", node_id,
              engine_ok && server_ok ? 1 : 0);
  return engine_ok && server_ok ? 0 : 1;
}
