#include "apps/reputation.h"

#include <algorithm>

#include "common/logging.h"
#include "core/slate.h"
#include "json/json.h"

namespace muppet {
namespace apps {

ReputationMapper::ReputationMapper(const AppConfig& /*config*/,
                                   std::string name,
                                   std::string output_stream)
    : name_(std::move(name)), output_stream_(std::move(output_stream)) {}

void ReputationMapper::Map(PerformerUtilities& out, const Event& event) {
  Result<Json> tweet = Json::Parse(event.value);
  if (!tweet.ok()) return;
  const std::string author = tweet.value().GetString("user");
  if (author.empty()) return;
  Status s = out.Publish(output_stream_, author, event.value);
  if (!s.ok()) {
    MUPPET_LOG(kError) << "ReputationMapper: " << s.ToString();
  }
}

ReputationUpdater::ReputationUpdater(const AppConfig& /*config*/,
                                     std::string name,
                                     std::string mention_stream,
                                     ReputationParams params)
    : name_(std::move(name)),
      mention_stream_(std::move(mention_stream)),
      params_(params) {}

double ReputationUpdater::ScoreOf(BytesView slate, double initial_score) {
  Result<Json> parsed = Json::Parse(slate);
  if (!parsed.ok()) return initial_score;
  return parsed.value().GetDouble("score", initial_score);
}

void ReputationUpdater::Update(PerformerUtilities& out, const Event& event,
                               const Bytes* slate) {
  JsonSlate s(slate);
  double score = s.data().GetDouble("score", params_.initial_score);

  Result<Json> parsed = Json::Parse(event.value);
  if (!parsed.ok()) return;
  const Json& payload = parsed.value();

  if (payload.Contains("mention_score")) {
    // A mention event (this slate's user is B): B's score moves by a
    // function of A's score, which traveled inside the event.
    const double from_score = payload.GetDouble("mention_score");
    score += params_.mention_factor * from_score;
    s.data()["mentions"] = s.data().GetInt("mentions") + 1;
  } else {
    // A tweet by this slate's user (A): bump activity, and if the tweet
    // targets B, emit a mention event carrying A's *current* score.
    score += params_.tweet_bonus;
    s.data()["tweets"] = s.data().GetInt("tweets") + 1;
    std::string target = payload.GetString("retweet_of");
    if (target.empty()) target = payload.GetString("reply_to");
    if (!target.empty()) {
      Json mention = Json::MakeObject();
      mention["mention_score"] = score;
      mention["from"] = payload.GetString("user");
      Status st = out.Publish(mention_stream_, target, mention.Dump());
      if (!st.ok()) {
        MUPPET_LOG(kError) << "ReputationUpdater: " << st.ToString();
      }
    }
  }

  score = std::clamp(score, 0.0, params_.max_score);
  s.data()["score"] = score;
  (void)out.ReplaceSlate(s.Serialize());
}

Status BuildReputationApp(AppConfig* config, ReputationParams params,
                          ReputationAppNames names) {
  MUPPET_RETURN_IF_ERROR(config->DeclareInputStream(names.tweet_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.author_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.mention_stream));
  MUPPET_RETURN_IF_ERROR(config->AddMapper(
      names.mapper,
      [out = names.author_stream](const AppConfig& cfg,
                                  const std::string& name) {
        return std::make_unique<ReputationMapper>(cfg, name, out);
      },
      {names.tweet_stream}));
  // The updater subscribes to both the author stream and its own mention
  // stream — the workflow graph has a cycle, which §3's timestamp rule
  // keeps well-defined.
  MUPPET_RETURN_IF_ERROR(config->AddUpdater(
      names.updater,
      [mention = names.mention_stream, params](const AppConfig& cfg,
                                               const std::string& name) {
        return std::make_unique<ReputationUpdater>(cfg, name, mention,
                                                   params);
      },
      {names.author_stream, names.mention_stream}));
  return Status::OK();
}

}  // namespace apps
}  // namespace muppet
