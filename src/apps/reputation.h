// The user-reputation application (paper Example 3): maintain a reputation
// score per Twitter user, live. "If a user A retweets or replies to a user
// B, then the score of B may change, depending on the score of A."
//
// Workflow (a cyclic graph — the updater feeds itself):
//
//   S1 (tweets) --M1--> S2 (by author) --U1--> slates {score, tweets}
//                                       \--publishes--> S3 (mentions)
//   S3 (mentions, keyed by target) -----U1 (same updater)
//
// Processing a tweet under the *author's* slate lets U1 read A's current
// score and forward it inside the mention event, so B's slate update can
// depend on A's score without any cross-slate read — the MapUpdate way to
// express cross-entity dependencies.
#ifndef MUPPET_APPS_REPUTATION_H_
#define MUPPET_APPS_REPUTATION_H_

#include <string>

#include "core/operator.h"
#include "core/topology.h"

namespace muppet {
namespace apps {

struct ReputationParams {
  double initial_score = 1.0;
  double tweet_bonus = 0.01;       // author's score bump per tweet
  double mention_factor = 0.05;    // B += factor * score(A) per mention
  double max_score = 100.0;
};

class ReputationMapper final : public Mapper {
 public:
  ReputationMapper(const AppConfig& config, std::string name,
                   std::string output_stream);
  const std::string& GetName() const override { return name_; }
  // Re-keys each tweet by its author.
  void Map(PerformerUtilities& out, const Event& event) override;

 private:
  std::string name_;
  std::string output_stream_;
};

class ReputationUpdater final : public Updater {
 public:
  ReputationUpdater(const AppConfig& config, std::string name,
                    std::string mention_stream, ReputationParams params);
  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override;

  // Read a score out of a ReputationUpdater slate.
  static double ScoreOf(BytesView slate, double initial_score = 1.0);

 private:
  std::string name_;
  std::string mention_stream_;
  ReputationParams params_;
};

struct ReputationAppNames {
  std::string tweet_stream = "S1";
  std::string author_stream = "S2";
  std::string mention_stream = "S3";
  std::string mapper = "M1";
  std::string updater = "U1";
};

Status BuildReputationApp(AppConfig* config, ReputationParams params = {},
                          ReputationAppNames names = {});

}  // namespace apps
}  // namespace muppet

#endif  // MUPPET_APPS_REPUTATION_H_
