#include "apps/retailer.h"

#include "common/logging.h"
#include "core/slate.h"
#include "json/json.h"

namespace muppet {
namespace apps {

namespace {

struct RetailerPattern {
  const char* canonical;
  std::regex pattern;
};

const std::vector<RetailerPattern>& Patterns() {
  static const std::vector<RetailerPattern>* kPatterns = [] {
    auto* v = new std::vector<RetailerPattern>();
    const auto flags = std::regex::icase | std::regex::optimize;
    v->push_back({"Walmart", std::regex(".*wal.?mart.*", flags)});
    v->push_back({"Sam's Club", std::regex(".*sam.?s\\s*club.*", flags)});
    v->push_back({"Best Buy", std::regex(".*best\\s*buy.*", flags)});
    v->push_back({"JCPenney", std::regex(".*jc\\s*penney.*", flags)});
    v->push_back({"Target", std::regex(".*target.*", flags)});
    return v;
  }();
  return *kPatterns;
}

}  // namespace

RetailerMapper::RetailerMapper(const AppConfig& /*config*/, std::string name,
                               std::string output_stream)
    : name_(std::move(name)), output_stream_(std::move(output_stream)) {}

std::string RetailerMapper::MatchRetailer(const std::string& venue) {
  for (const RetailerPattern& p : Patterns()) {
    if (std::regex_match(venue, p.pattern)) return p.canonical;
  }
  return "";
}

void RetailerMapper::Map(PerformerUtilities& out, const Event& event) {
  Result<Json> checkin = Json::Parse(event.value);
  if (!checkin.ok()) return;  // malformed checkins are skipped
  const std::string venue = checkin.value().GetString("venue");
  const std::string retailer = MatchRetailer(venue);
  if (retailer.empty()) return;
  Status s = out.Publish(output_stream_, retailer, event.value);
  if (!s.ok()) {
    MUPPET_LOG(kError) << "RetailerMapper: could not publish: "
                       << s.ToString();
  }
}

CountingUpdater::CountingUpdater(const AppConfig& /*config*/,
                                 std::string name)
    : name_(std::move(name)) {}

int64_t CountingUpdater::CountOf(BytesView slate) {
  Result<Json> parsed = Json::Parse(slate);
  if (!parsed.ok()) return 0;
  return parsed.value().GetInt("count");
}

void CountingUpdater::Update(PerformerUtilities& out, const Event& /*event*/,
                             const Bytes* slate) {
  // First access initializes count = 0 (§3), then increments per event.
  JsonSlate s(slate);
  s.data()["count"] = s.data().GetInt("count") + 1;
  Status st = out.ReplaceSlate(s.Serialize());
  if (!st.ok()) {
    MUPPET_LOG(kError) << "CountingUpdater: " << st.ToString();
  }
}

Status BuildRetailerApp(AppConfig* config, RetailerAppNames names,
                        UpdaterOptions counter_options) {
  MUPPET_RETURN_IF_ERROR(config->DeclareInputStream(names.input_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.retailer_stream));
  MUPPET_RETURN_IF_ERROR(config->AddMapper(
      names.mapper,
      [out = names.retailer_stream](const AppConfig& cfg,
                                    const std::string& name) {
        return std::make_unique<RetailerMapper>(cfg, name, out);
      },
      {names.input_stream}));
  MUPPET_RETURN_IF_ERROR(config->AddUpdater(
      names.counter,
      [](const AppConfig& cfg, const std::string& name) {
        return std::make_unique<CountingUpdater>(cfg, name);
      },
      {names.retailer_stream}, counter_options));
  return Status::OK();
}

}  // namespace apps
}  // namespace muppet
