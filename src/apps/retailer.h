// The retailer-checkin application (paper Examples 1 & 4, Appendix A).
// A RetailerMapper inspects each Foursquare checkin and, when the venue is
// a recognized retailer, emits an event keyed by the retailer's canonical
// name; a CountingUpdater keeps one count slate per retailer. The output
// of the application is the set of slates maintained by the updater.
#ifndef MUPPET_APPS_RETAILER_H_
#define MUPPET_APPS_RETAILER_H_

#include <regex>
#include <string>
#include <vector>

#include "core/operator.h"
#include "core/topology.h"

namespace muppet {
namespace apps {

// Mirrors the paper's Appendix A RetailerMapper (regex venue matching),
// extended with the full retailer list used by the checkin generator.
class RetailerMapper final : public Mapper {
 public:
  RetailerMapper(const AppConfig& config, std::string name,
                 std::string output_stream);

  const std::string& GetName() const override { return name_; }
  void Map(PerformerUtilities& out, const Event& event) override;

  // Canonical retailer for a venue string, or "" if unrecognized.
  static std::string MatchRetailer(const std::string& venue);

 private:
  std::string name_;
  std::string output_stream_;
};

// Mirrors the Appendix A Counter. The slate is a JSON object {"count": n}.
class CountingUpdater final : public Updater {
 public:
  CountingUpdater(const AppConfig& config, std::string name);

  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override;

  // Parse a CountingUpdater slate back into a count.
  static int64_t CountOf(BytesView slate);

 private:
  std::string name_;
};

struct RetailerAppNames {
  std::string input_stream = "S1";
  std::string retailer_stream = "S2";
  std::string mapper = "M1";
  std::string counter = "U1";
};

// Declare the full Example 4 workflow on `config`:
//   S1 --M1--> S2 --U1--> (count slates)
Status BuildRetailerApp(AppConfig* config, RetailerAppNames names = {},
                        UpdaterOptions counter_options = {});

}  // namespace apps
}  // namespace muppet

#endif  // MUPPET_APPS_RETAILER_H_
