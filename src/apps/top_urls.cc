#include "apps/top_urls.h"

#include <algorithm>

#include "common/logging.h"
#include "core/slate.h"
#include "json/json.h"

namespace muppet {
namespace apps {

constexpr char UrlCountUpdater::kAggregationKey[];

UrlMapper::UrlMapper(const AppConfig& /*config*/, std::string name,
                     std::string output_stream)
    : name_(std::move(name)), output_stream_(std::move(output_stream)) {}

void UrlMapper::Map(PerformerUtilities& out, const Event& event) {
  Result<Json> tweet = Json::Parse(event.value);
  if (!tweet.ok()) return;
  const std::string url = tweet.value().GetString("url");
  if (url.empty()) return;
  Status s = out.Publish(output_stream_, url, "");
  if (!s.ok()) {
    MUPPET_LOG(kError) << "UrlMapper: " << s.ToString();
  }
}

UrlCountUpdater::UrlCountUpdater(const AppConfig& /*config*/,
                                 std::string name, std::string output_stream,
                                 int report_every)
    : name_(std::move(name)),
      output_stream_(std::move(output_stream)),
      report_every_(report_every < 1 ? 1 : report_every) {}

void UrlCountUpdater::Update(PerformerUtilities& out, const Event& event,
                             const Bytes* slate) {
  JsonSlate s(slate);
  const int64_t count = s.data().GetInt("count") + 1;
  s.data()["count"] = count;
  (void)out.ReplaceSlate(s.Serialize());

  if (count % report_every_ == 0) {
    Json report = Json::MakeObject();
    report["url"] = std::string(event.key);
    report["count"] = count;
    Status st = out.Publish(output_stream_, kAggregationKey, report.Dump());
    if (!st.ok()) {
      MUPPET_LOG(kError) << "UrlCountUpdater: " << st.ToString();
    }
  }
}

TopKUpdater::TopKUpdater(const AppConfig& /*config*/, std::string name,
                         int k)
    : name_(std::move(name)), k_(k < 1 ? 1 : k) {}

std::vector<std::pair<std::string, int64_t>> TopKUpdater::TopOf(
    BytesView slate) {
  std::vector<std::pair<std::string, int64_t>> out;
  Result<Json> parsed = Json::Parse(slate);
  if (!parsed.ok()) return out;
  const Json& top = parsed.value()["top"];
  if (!top.is_array()) return out;
  for (const Json& entry : top.AsArray()) {
    out.emplace_back(entry.GetString("url"), entry.GetInt("count"));
  }
  return out;
}

void TopKUpdater::Update(PerformerUtilities& out, const Event& event,
                         const Bytes* slate) {
  Result<Json> parsed = Json::Parse(event.value);
  if (!parsed.ok()) return;
  const std::string url = parsed.value().GetString("url");
  const int64_t count = parsed.value().GetInt("count");
  if (url.empty()) return;

  JsonSlate s(slate);
  // Rebuild the ranked list with this url's new count.
  std::vector<std::pair<std::string, int64_t>> top;
  const Json& existing = s.data()["top"];
  if (existing.is_array()) {
    for (const Json& entry : existing.AsArray()) {
      const std::string u = entry.GetString("url");
      if (u != url) top.emplace_back(u, entry.GetInt("count"));
    }
  }
  top.emplace_back(url, count);
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > static_cast<size_t>(k_)) {
    top.resize(static_cast<size_t>(k_));
  }

  Json array = Json::MakeArray();
  for (const auto& [u, c] : top) {
    Json entry = Json::MakeObject();
    entry["url"] = u;
    entry["count"] = c;
    array.Append(std::move(entry));
  }
  s.data()["top"] = std::move(array);
  (void)out.ReplaceSlate(s.Serialize());
}

Status BuildTopUrlsApp(AppConfig* config, int k, int report_every,
                       TopUrlsAppNames names) {
  MUPPET_RETURN_IF_ERROR(config->DeclareInputStream(names.tweet_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.url_stream));
  MUPPET_RETURN_IF_ERROR(config->DeclareStream(names.report_stream));
  MUPPET_RETURN_IF_ERROR(config->AddMapper(
      names.mapper,
      [out = names.url_stream](const AppConfig& cfg,
                               const std::string& name) {
        return std::make_unique<UrlMapper>(cfg, name, out);
      },
      {names.tweet_stream}));
  MUPPET_RETURN_IF_ERROR(config->AddUpdater(
      names.counter,
      [out = names.report_stream, report_every](const AppConfig& cfg,
                                                const std::string& name) {
        return std::make_unique<UrlCountUpdater>(cfg, name, out,
                                                 report_every);
      },
      {names.url_stream}));
  MUPPET_RETURN_IF_ERROR(config->AddUpdater(
      names.topk,
      [k](const AppConfig& cfg, const std::string& name) {
        return std::make_unique<TopKUpdater>(cfg, name, k);
      },
      {names.report_stream}));
  return Status::OK();
}

}  // namespace apps
}  // namespace muppet
