// The top-URLs application (paper §2: "maintaining the top-ten URLs being
// passed around on Twitter"). Global top-k over a keyed framework needs
// two stages: U1 counts per URL and periodically reports (url, count) under
// a single aggregation key; U2 keeps the current top-k list in one slate.
//
//   S1 (tweets) --M1--> S2 (by url) --U1--> S3 (count reports, key="top")
//   S3 --U2--> slate {top: [{url, count}, ...]}
#ifndef MUPPET_APPS_TOP_URLS_H_
#define MUPPET_APPS_TOP_URLS_H_

#include <string>
#include <vector>

#include "core/operator.h"
#include "core/topology.h"

namespace muppet {
namespace apps {

class UrlMapper final : public Mapper {
 public:
  UrlMapper(const AppConfig& config, std::string name,
            std::string output_stream);
  const std::string& GetName() const override { return name_; }
  void Map(PerformerUtilities& out, const Event& event) override;

 private:
  std::string name_;
  std::string output_stream_;
};

// Counts per URL; reports the count under the aggregation key every
// `report_every` increments (amortizing the single-key hotspot on U2).
class UrlCountUpdater final : public Updater {
 public:
  UrlCountUpdater(const AppConfig& config, std::string name,
                  std::string output_stream, int report_every);
  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override;

  static constexpr char kAggregationKey[] = "top";

 private:
  std::string name_;
  std::string output_stream_;
  int report_every_;
};

class TopKUpdater final : public Updater {
 public:
  TopKUpdater(const AppConfig& config, std::string name, int k);
  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override;

  // Decode the ranked (url, count) list from a TopKUpdater slate.
  static std::vector<std::pair<std::string, int64_t>> TopOf(BytesView slate);

 private:
  std::string name_;
  int k_;
};

struct TopUrlsAppNames {
  std::string tweet_stream = "S1";
  std::string url_stream = "S2";
  std::string report_stream = "S3";
  std::string mapper = "M1";
  std::string counter = "U1";
  std::string topk = "U2";
};

Status BuildTopUrlsApp(AppConfig* config, int k = 10, int report_every = 1,
                       TopUrlsAppNames names = {});

}  // namespace apps
}  // namespace muppet

#endif  // MUPPET_APPS_TOP_URLS_H_
