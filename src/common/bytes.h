// Byte-string helpers. Slates, event values, and KV-store values are opaque
// byte blobs; we represent them as std::string (contiguous, cheap to move,
// SSO for the small slates the paper recommends) and pass read-only views
// as std::string_view.
#ifndef MUPPET_COMMON_BYTES_H_
#define MUPPET_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace muppet {

using Bytes = std::string;
using BytesView = std::string_view;

// Fixed-width little-endian encoders. Used by the WAL, SSTable and message
// framing code, where layout must be stable across runs.
inline void PutFixed32(Bytes* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(Bytes* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Varint32/64 (LEB128), used to keep SSTable blocks and compressed payloads
// compact.
inline void PutVarint32(Bytes* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline void PutVarint64(Bytes* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

// Parse a varint from [*p, limit). On success advances *p past the varint,
// stores the value, and returns true. Returns false on truncation/overflow.
inline bool GetVarint32(const char** p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && *p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(**p);
    ++(*p);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

inline bool GetVarint64(const char** p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && *p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(**p);
    ++(*p);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

// Length-prefixed string, the framing primitive for WAL records and
// serialized events.
inline void PutLengthPrefixed(Bytes* dst, BytesView s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(const char** p, const char* limit,
                              BytesView* out) {
  uint32_t len = 0;
  if (!GetVarint32(p, limit, &len)) return false;
  if (static_cast<size_t>(limit - *p) < len) return false;
  *out = BytesView(*p, len);
  *p += len;
  return true;
}

}  // namespace muppet

#endif  // MUPPET_COMMON_BYTES_H_
