#include "common/clock.h"

#include <chrono>
#include <thread>

namespace muppet {

Timestamp SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepFor(Timestamp micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

SystemClock* SystemClock::Default() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace muppet
