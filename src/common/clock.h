// Time. MapUpdate assumes globally ordered timestamps across streams (§3).
// Timestamps are microseconds since the epoch (int64). The Clock interface
// lets production code read wall time while tests and the reference executor
// drive a simulated clock deterministically.
#ifndef MUPPET_COMMON_CLOCK_H_
#define MUPPET_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace muppet {

// Microseconds since epoch (or since simulation start for SimulatedClock).
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerMilli = 1000;
constexpr Timestamp kMicrosPerSecond = 1000 * 1000;
constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Timestamp kMicrosPerDay = 24 * 60 * kMicrosPerMinute;

// Minute-of-day in [0, 1439] for a timestamp, as used by the hot-topics
// application (paper Example 5: 00:14 -> 14, 23:59 -> 1439).
inline int MinuteOfDay(Timestamp ts) {
  const Timestamp in_day = ((ts % kMicrosPerDay) + kMicrosPerDay) % kMicrosPerDay;
  return static_cast<int>(in_day / kMicrosPerMinute);
}

// Day index since epoch for a timestamp.
inline int64_t DayIndex(Timestamp ts) { return ts / kMicrosPerDay; }

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp Now() const = 0;
  // Block (or logically advance) for the given duration.
  virtual void SleepFor(Timestamp micros) = 0;
};

// Real wall-clock time (steady for intervals, system for absolute).
class SystemClock final : public Clock {
 public:
  Timestamp Now() const override;
  void SleepFor(Timestamp micros) override;

  // Process-wide instance.
  static SystemClock* Default();
};

// Manually advanced clock for deterministic tests and simulations.
// Thread-safe: many workload threads may read while a driver advances.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override {
    return now_.load(std::memory_order_acquire);
  }
  void SleepFor(Timestamp micros) override { Advance(micros); }

  void Advance(Timestamp micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }
  void Set(Timestamp t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace muppet

#endif  // MUPPET_COMMON_CLOCK_H_
