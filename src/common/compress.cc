#include "common/compress.h"

#include <cstring>
#include <vector>

namespace muppet {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 3 + 128;       // control byte encodes 0..127
constexpr size_t kMaxLiteralRun = 128;
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr uint32_t kMaxDistance = 1u << 20;  // 1 MiB window

inline uint32_t HashQuad(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(const char* start, size_t n, Bytes* out) {
  while (n > 0) {
    size_t run = n < kMaxLiteralRun ? n : kMaxLiteralRun;
    out->push_back(static_cast<char>((run - 1) << 1));
    out->append(start, run);
    start += run;
    n -= run;
  }
}

}  // namespace

void CompressBytes(BytesView input, Bytes* output) {
  PutVarint64(output, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n < kMinMatch + 4) {
    if (n > 0) EmitLiterals(base, n, output);
    return;
  }

  // Single-probe hash chain: table maps a 4-byte hash to the latest position.
  std::vector<uint32_t> table(kHashSize, 0);
  std::vector<bool> valid(kHashSize, false);

  size_t i = 0;
  size_t literal_start = 0;
  const size_t limit = n - kMinMatch;  // last position where a match can start

  while (i <= limit) {
    const uint32_t h = HashQuad(base + i);
    size_t candidate = table[h];
    const bool have = valid[h];
    table[h] = static_cast<uint32_t>(i);
    valid[h] = true;

    if (have && i > candidate && i - candidate <= kMaxDistance &&
        std::memcmp(base + candidate, base + i, kMinMatch) == 0) {
      // Extend the match.
      size_t len = kMinMatch;
      const size_t max_len = (n - i) < kMaxMatch ? (n - i) : kMaxMatch;
      while (len < max_len && base[candidate + len] == base[i + len]) ++len;

      EmitLiterals(base + literal_start, i - literal_start, output);
      output->push_back(static_cast<char>(((len - kMinMatch) << 1) | 1));
      PutVarint32(output, static_cast<uint32_t>(i - candidate));

      // Index a couple of positions inside the match to improve later finds.
      const size_t end = i + len;
      for (size_t j = i + 1; j + kMinMatch <= end && j <= limit; j += 2) {
        const uint32_t hj = HashQuad(base + j);
        table[hj] = static_cast<uint32_t>(j);
        valid[hj] = true;
      }
      i = end;
      literal_start = i;
    } else {
      ++i;
    }
  }
  EmitLiterals(base + literal_start, n - literal_start, output);
}

Status DecompressBytes(BytesView input, Bytes* output) {
  const char* p = input.data();
  const char* limit = p + input.size();
  uint64_t expected = 0;
  if (!GetVarint64(&p, limit, &expected)) {
    return Status::Corruption("compress: missing length header");
  }
  const size_t out_base = output->size();
  output->reserve(out_base + expected);

  while (p < limit) {
    const uint8_t control = static_cast<uint8_t>(*p++);
    if ((control & 1) == 0) {
      const size_t run = (control >> 1) + 1;
      if (static_cast<size_t>(limit - p) < run) {
        return Status::Corruption("compress: truncated literal run");
      }
      output->append(p, run);
      p += run;
    } else {
      const size_t len = (control >> 1) + kMinMatch;
      uint32_t dist = 0;
      if (!GetVarint32(&p, limit, &dist) || dist == 0) {
        return Status::Corruption("compress: bad match distance");
      }
      const size_t produced = output->size() - out_base;
      if (dist > produced) {
        return Status::Corruption("compress: distance before start");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) replicate, which
      // is the RLE case and must be preserved.
      size_t src = output->size() - dist;
      for (size_t k = 0; k < len; ++k) {
        output->push_back((*output)[src + k]);
      }
    }
  }
  if (output->size() - out_base != expected) {
    return Status::Corruption("compress: length mismatch");
  }
  return Status::OK();
}

Bytes Compress(BytesView input) {
  Bytes out;
  CompressBytes(input, &out);
  return out;
}

Result<Bytes> Decompress(BytesView input) {
  Bytes out;
  Status s = DecompressBytes(input, &out);
  if (!s.ok()) return s;
  return out;
}

}  // namespace muppet
