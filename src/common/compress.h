// Byte-oriented LZ77-style compression, implemented from scratch.
// Muppet compresses each slate before persisting it in the key-value store
// (paper §4.2: "Muppet compresses each slate before storing it"); slates are
// JSON-encoded and highly repetitive, which this codec exploits.
//
// Format: a varint64 uncompressed length, then a token stream. Each token is
// a control byte: low bit 0 -> literal run (length = byte >> 1, 1..128
// literal bytes follow); low bit 1 -> match (length = (byte >> 1) + kMinMatch,
// followed by a varint32 backward distance).
#ifndef MUPPET_COMMON_COMPRESS_H_
#define MUPPET_COMMON_COMPRESS_H_

#include "common/bytes.h"
#include "common/status.h"

namespace muppet {

// Compress `input` and append to `*output` (which is not cleared).
// Worst case expansion is input.size() * (129/128) + ~12 bytes.
void CompressBytes(BytesView input, Bytes* output);

// Decompress a buffer produced by CompressBytes. Fails with Corruption on
// malformed input (truncated stream, distance past start, length mismatch).
Status DecompressBytes(BytesView input, Bytes* output);

// Convenience: round-trip helpers returning by value.
Bytes Compress(BytesView input);
Result<Bytes> Decompress(BytesView input);

}  // namespace muppet

#endif  // MUPPET_COMMON_COMPRESS_H_
