#include "common/hash.h"

#include <array>

namespace muppet {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t SeededHash(std::string_view data, uint64_t seed) {
  return Mix64(Fnv1a64(data) ^ Mix64(seed));
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace muppet
