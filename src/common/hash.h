// Hash functions used for event routing (hash ring), bloom filters, and
// checksums. All are implemented from scratch and deterministic across runs,
// which the engines rely on: every worker must compute the same
// <key, destination function> -> worker mapping (paper §4.1).
#ifndef MUPPET_COMMON_HASH_H_
#define MUPPET_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace muppet {

// FNV-1a 64-bit. Fast, good-enough dispersion for routing keys.
uint64_t Fnv1a64(std::string_view data);

// 64-bit avalanche mix (SplitMix64 finalizer). Use to derive independent
// hash functions from one base hash: Mix64(h ^ seed_i).
uint64_t Mix64(uint64_t x);

// Seeded hash for bloom filters and two-choice queue selection.
uint64_t SeededHash(std::string_view data, uint64_t seed);

// CRC32 (polynomial 0xEDB88320, table-driven). Guards WAL records and
// SSTable blocks against corruption.
uint32_t Crc32(std::string_view data);

// Combine two hashes (boost-style), for hashing composite keys such as
// <event key, destination function>.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace muppet

#endif  // MUPPET_COMMON_HASH_H_
