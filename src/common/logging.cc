#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/sync.h"

namespace muppet {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
// Innermost lock in the global hierarchy: any subsystem may log while
// holding its own locks.
Mutex g_sink_mutex{LockLevel::kLogging};
std::string* g_capture MUPPET_GUARDED_BY(g_sink_mutex) = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogCapture(std::string* capture) {
  MutexLock lock(g_sink_mutex);
  g_capture = capture;
}

void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg) {
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  MutexLock lock(g_sink_mutex);
  if (g_capture != nullptr) {
    g_capture->append(LevelName(level));
    g_capture->push_back(' ');
    g_capture->append(msg);
    g_capture->push_back('\n');
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

namespace logging_internal {

CheckFailure::CheckFailure(const char* file, int line, const char* cond)
    : file_(file), line_(line), cond_(cond) {}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s %s\n", file_, line_,
               cond_, stream_.str().c_str());
  std::abort();
}

}  // namespace logging_internal
}  // namespace muppet
