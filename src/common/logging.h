// Minimal leveled logger. Muppet workers log lost events, failures, and
// overflow actions (paper §4.3 "logged as lost"); tests lower the level to
// keep output quiet. Thread-safe; a single global sink.
#ifndef MUPPET_COMMON_LOGGING_H_
#define MUPPET_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace muppet {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global minimum level; messages below it are discarded (cheaply: the
// stream is still built by the macro's ostringstream, so keep hot-path
// logging at Debug level only).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Append a formatted line to the global sink (stderr by default).
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg);

// Redirect log output into a string buffer (for tests). Passing nullptr
// restores stderr.
void SetLogCapture(std::string* capture);

namespace logging_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal

#define MUPPET_LOG(level)                                              \
  if (::muppet::LogLevel::level < ::muppet::GetLogLevel()) {           \
  } else                                                               \
    ::muppet::logging_internal::LogMessage(::muppet::LogLevel::level,  \
                                           __FILE__, __LINE__)         \
        .stream()

// Invariant check that survives NDEBUG: aborts with a message. Used for
// conditions that indicate a bug in this library, not bad user input.
#define MUPPET_CHECK(cond)                                             \
  if (cond) {                                                          \
  } else                                                               \
    ::muppet::logging_internal::CheckFailure(__FILE__, __LINE__, #cond)\
        .stream()

namespace logging_internal {

class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* cond_;
  std::ostringstream stream_;
};

}  // namespace logging_internal
}  // namespace muppet

#endif  // MUPPET_COMMON_LOGGING_H_
