#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

namespace muppet {

Histogram::Histogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value < 1) value = 1;
  // Geometric buckets: bucket = floor(log(value) / log(1.08)).
  // Computed via bit tricks would be faster; this is not on the data path.
  static const double kInvLog = 1.0 / std::log(1.08);
  int b = static_cast<int>(std::log(static_cast<double>(value)) * kInvLog);
  if (b < 0) b = 0;
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  return b;
}

int64_t Histogram::BucketValue(int bucket) {
  // Geometric mid-point of the bucket.
  return static_cast<int64_t>(std::pow(1.08, bucket + 0.5));
}

void Histogram::Record(int64_t value) {
  if (value < 1) value = 1;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

int64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  int64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

int64_t Histogram::Percentile(double q) const {
  const int64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max();
  int64_t target = static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  if (target < 1) target = 1;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      int64_t v = BucketValue(i);
      return std::clamp<int64_t>(v, min(), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() > 0) {
    int64_t om = other.min();
    int64_t prev = min_.load(std::memory_order_relaxed);
    while (om < prev &&
           !min_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
    }
    int64_t ox = other.max();
    prev = max_.load(std::memory_order_relaxed);
    while (ox > prev &&
           !max_.compare_exchange_weak(prev, ox, std::memory_order_relaxed)) {
    }
  }
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << Mean()
     << " p50=" << Percentile(0.50) << " p95=" << Percentile(0.95)
     << " p99=" << Percentile(0.99) << " max=" << max();
  return os.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(mutex_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->Get();
  return out;
}

std::string MetricsRegistry::Report() const {
  MutexLock lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->Get() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": " << h->Summary() << "\n";
  }
  return os.str();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace muppet
