#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

namespace muppet {

Histogram::Histogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value < 1) value = 1;
  // Geometric buckets: bucket = floor(log(value) / log(1.08)).
  // Computed via bit tricks would be faster; this is not on the data path.
  static const double kInvLog = 1.0 / std::log(1.08);
  int b = static_cast<int>(std::log(static_cast<double>(value)) * kInvLog);
  if (b < 0) b = 0;
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  return b;
}

int64_t Histogram::BucketValue(int bucket) {
  // Geometric mid-point of the bucket.
  return static_cast<int64_t>(std::pow(1.08, bucket + 0.5));
}

void Histogram::Record(int64_t value) {
  if (value < 1) value = 1;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

int64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  int64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

int64_t Histogram::Percentile(double q) const {
  const int64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max();
  int64_t target = static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  if (target < 1) target = 1;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      int64_t v = BucketValue(i);
      return std::clamp<int64_t>(v, min(), max());
    }
  }
  return max();
}

int64_t Histogram::CumulativeCount(int64_t value) const {
  const int upto = BucketFor(value);
  int64_t seen = 0;
  for (int i = 0; i <= upto; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
  }
  return seen;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() > 0) {
    int64_t om = other.min();
    int64_t prev = min_.load(std::memory_order_relaxed);
    while (om < prev &&
           !min_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
    }
    int64_t ox = other.max();
    prev = max_.load(std::memory_order_relaxed);
    while (ox > prev &&
           !max_.compare_exchange_weak(prev, ox, std::memory_order_relaxed)) {
    }
  }
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << Mean()
     << " p50=" << Percentile(0.50) << " p95=" << Percentile(0.95)
     << " p99=" << Percentile(0.99) << " p999=" << Percentile(0.999)
     << " max=" << max();
  return os.str();
}

MetricLabels MetricsRegistry::Canonicalize(const MetricLabels& labels) {
  MetricLabels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetricsRegistry::LabelsKey(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

MetricsRegistry::Child* MetricsRegistry::GetChild(const std::string& name,
                                                  const MetricLabels& labels,
                                                  MetricType type) {
  Family& family = families_[name];
  if (family.children.empty()) family.type = type;
  MetricLabels canonical = Canonicalize(labels);
  Child& child = family.children[LabelsKey(canonical)];
  if (child.labels.empty() && !canonical.empty()) {
    child.labels = std::move(canonical);
  }
  return &child;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  MutexLock lock(mutex_);
  Child* child = GetChild(name, labels, MetricType::kCounter);
  if (!child->counter) child->counter = std::make_unique<Counter>();
  return child->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  MutexLock lock(mutex_);
  Child* child = GetChild(name, labels, MetricType::kGauge);
  if (!child->gauge) child->gauge = std::make_unique<Gauge>();
  return child->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) {
  MutexLock lock(mutex_);
  Child* child = GetChild(name, labels, MetricType::kHistogram);
  if (!child->histogram) child->histogram = std::make_unique<Histogram>();
  return child->histogram.get();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const MetricLabels& labels,
                                       MetricType type,
                                       std::function<int64_t()> callback) {
  MutexLock lock(mutex_);
  Child* child = GetChild(name, labels, type);
  child->callback = std::move(callback);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  // Callbacks may take subsystem locks below kMetrics in the hierarchy
  // (e.g. SlateCache::size()), so they must run after the registry mutex
  // is released; collect them alongside their sample index first.
  std::vector<std::pair<size_t, std::function<int64_t()>>> callbacks;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, family] : families_) {
      for (const auto& [key, child] : family.children) {
        Sample s;
        s.name = name;
        s.labels = child.labels;
        s.type = family.type;
        if (child.callback) {
          callbacks.emplace_back(out.size(), child.callback);
        } else if (child.counter) {
          s.value = child.counter->Get();
        } else if (child.gauge) {
          s.value = child.gauge->Get();
        } else if (child.histogram) {
          s.histogram = child.histogram.get();
        }
        out.push_back(std::move(s));
      }
    }
  }
  for (auto& [index, callback] : callbacks) {
    out[index].value = callback();
  }
  return out;
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(mutex_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, family] : families_) {
    if (family.type != MetricType::kCounter) continue;
    for (const auto& [key, child] : family.children) {
      if (!child.counter) continue;
      std::string full = key.empty() ? name : name + "{" + key + "}";
      out[full] = child.counter->Get();
    }
  }
  return out;
}

std::string MetricsRegistry::Report() const {
  std::ostringstream os;
  for (const Sample& s : Snapshot()) {
    os << s.name;
    if (!s.labels.empty()) os << "{" << LabelsKey(s.labels) << "}";
    if (s.histogram != nullptr) {
      os << ": " << s.histogram->Summary() << "\n";
    } else {
      os << " = " << s.value << "\n";
    }
  }
  return os.str();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [key, child] : family.children) {
      if (child.counter) child.counter->Reset();
      if (child.gauge) child.gauge->Reset();
      if (child.histogram) child.histogram->Reset();
    }
  }
}

}  // namespace muppet
