// Runtime metrics: counters, gauges, and latency histograms, organized
// into labeled metric families. The benchmark harness (EXPERIMENTS.md E4,
// E7, E9, E10) reads these to report the latency and loss figures the
// paper quotes ("latency of under 2 seconds", §5), and the admin service
// exposes the same registry as Prometheus text at /metrics (prom.h) — one
// source of truth, so the status page and the scrape can never disagree.
#ifndef MUPPET_COMMON_METRICS_H_
#define MUPPET_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace muppet {

// Monotonic event counter, thread-safe and wait-free.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A value that can go up and down (queue depths, cache occupancy,
// in-flight counts). Thread-safe and wait-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram for latency measurements (microseconds). Buckets
// grow geometrically (~8% relative error) from 1us to ~1.2 hours, so p99 of
// both microsecond in-process hops and multi-second backlog latencies fit.
class Histogram {
 public:
  Histogram();

  // Record a sample (values < 1 clamp to 1).
  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const;
  double Mean() const;

  // Approximate quantile in [0,1]; returns the representative value of the
  // bucket containing the q-th sample. 0 samples -> 0.
  int64_t Percentile(double q) const;

  // Samples recorded in buckets at or below the bucket containing `value`
  // — monotone nondecreasing in `value` by construction, which is what
  // the Prometheus `_bucket{le=...}` ladder requires (prom.cc).
  int64_t CumulativeCount(int64_t value) const;

  void Reset();

  // Merge another histogram's samples into this one.
  void MergeFrom(const Histogram& other);

  // "count=... mean=... p50=... p95=... p99=... p999=... max=..."
  std::string Summary() const;

  static constexpr int kNumBuckets = 256;

 private:
  static int BucketFor(int64_t value);
  static int64_t BucketValue(int bucket);

  std::atomic<int64_t> buckets_[kNumBuckets];
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

// Label set for one child of a metric family, e.g.
// {{"machine","0"},{"operator","count"}}. Canonicalized (sorted by key)
// on registration, so lookup order does not matter.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

// Named registry so engines, services, and benches share metric objects
// without plumbing. Pointers remain valid for the registry's lifetime.
// Metrics with the same name and different labels form one family (one
// # TYPE line in the Prometheus exposition).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name,
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {});

  // Register a metric whose value is computed on demand (queue depths,
  // cache occupancy, transport counters owned elsewhere). The callback is
  // invoked with no registry lock held, so it may take subsystem locks;
  // it must tolerate being called from any thread for the registry's
  // lifetime. Counter and gauge types only.
  void RegisterCallback(const std::string& name, const MetricLabels& labels,
                        MetricType type, std::function<int64_t()> callback);

  // Point-in-time view of one metric child, for encoders.
  struct Sample {
    std::string name;
    MetricLabels labels;  // canonical (sorted by key)
    MetricType type = MetricType::kCounter;
    int64_t value = 0;                   // counter / gauge
    const Histogram* histogram = nullptr;  // histogram only
  };

  // Snapshot of every metric, sorted by (name, labels). Callback metrics
  // are evaluated after the registry lock is released.
  std::vector<Sample> Snapshot() const;

  // Snapshot of all plain (non-callback) counters; labeled children are
  // keyed "name{k=v,...}".
  std::map<std::string, int64_t> CounterValues() const;
  // Multi-line human-readable dump of everything.
  std::string Report() const;

  // Reset every owned counter/gauge/histogram (callbacks excluded).
  void ResetAll();

  static constexpr LockLevel kLockLevel = LockLevel::kMetrics;

 private:
  struct Child {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<int64_t()> callback;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    // Key: canonical label encoding ("k=v,k2=v2").
    std::map<std::string, Child> children;
  };

  static MetricLabels Canonicalize(const MetricLabels& labels);
  static std::string LabelsKey(const MetricLabels& labels);

  Child* GetChild(const std::string& name, const MetricLabels& labels,
                  MetricType type) MUPPET_REQUIRES(mutex_);

  mutable Mutex mutex_{kLockLevel};
  std::map<std::string, Family> families_ MUPPET_GUARDED_BY(mutex_);
};

}  // namespace muppet

#endif  // MUPPET_COMMON_METRICS_H_
