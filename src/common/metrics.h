// Runtime metrics: counters and latency histograms. The benchmark harness
// (EXPERIMENTS.md E4, E7, E9, E10) reads these to report the latency and
// loss figures the paper quotes ("latency of under 2 seconds", §5).
#ifndef MUPPET_COMMON_METRICS_H_
#define MUPPET_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace muppet {

// Monotonic event counter, thread-safe and wait-free.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram for latency measurements (microseconds). Buckets
// grow geometrically (~8% relative error) from 1us to ~1.2 hours, so p99 of
// both microsecond in-process hops and multi-second backlog latencies fit.
class Histogram {
 public:
  Histogram();

  // Record a sample (values < 1 clamp to 1).
  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const;
  double Mean() const;

  // Approximate quantile in [0,1]; returns the representative value of the
  // bucket containing the q-th sample. 0 samples -> 0.
  int64_t Percentile(double q) const;

  void Reset();

  // Merge another histogram's samples into this one.
  void MergeFrom(const Histogram& other);

  // "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

  static constexpr int kNumBuckets = 256;

 private:
  static int BucketFor(int64_t value);
  static int64_t BucketValue(int bucket);

  std::atomic<int64_t> buckets_[kNumBuckets];
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

// Named registry so engines and benches can share metric objects without
// plumbing. Pointers remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Snapshot of all counters (name -> value).
  std::map<std::string, int64_t> CounterValues() const;
  // Multi-line human-readable dump of everything.
  std::string Report() const;

  void ResetAll();

  static constexpr LockLevel kLockLevel = LockLevel::kMetrics;

 private:
  mutable Mutex mutex_{kLockLevel};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MUPPET_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MUPPET_GUARDED_BY(mutex_);
};

}  // namespace muppet

#endif  // MUPPET_COMMON_METRICS_H_
