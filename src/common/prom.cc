#include "common/prom.h"

#include <cctype>
#include <sstream>

namespace muppet {
namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// Fixed le ladder in microseconds: 100us .. 10s, then +Inf. Coarse on
// purpose — the native 256-bucket histogram stays queryable in-process via
// /statusz; the exposition ladder only needs enough resolution for the
// paper's "under 2 seconds" claim to be visible on a dashboard.
constexpr int64_t kLeLadderUs[] = {100,     1000,     10000,
                                   100000,  1000000,  10000000};

void AppendLabels(std::ostringstream& os, const MetricLabels& labels,
                  const std::string& extra_key = "",
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << PromSanitizeName(k) << "=\"" << PromEscapeLabelValue(v) << '"';
  }
  if (!extra_key.empty()) {
    if (!first) os << ',';
    os << extra_key << "=\"" << extra_value << '"';
  }
  os << '}';
}

}  // namespace

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromSanitizeName(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (size_t i = 0; i < out.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(out[i]);
    const bool ok = std::isalpha(c) || c == '_' || c == ':' ||
                    (i > 0 && std::isdigit(c));
    if (!ok) out[i] = '_';
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  std::ostringstream os;
  std::string current_family;
  // Companion p999 gauges: the bucket ladder above is too coarse to read
  // a p999 off a dashboard, so each histogram family also exports
  // `<name>_p999{...}` from the native 256-bucket histogram. Collected
  // here and emitted after the main loop so every `_p999` family stays
  // contiguous under its own # TYPE line (valid exposition).
  std::ostringstream p999;
  std::string current_p999_family;
  for (const MetricsRegistry::Sample& s : registry.Snapshot()) {
    const std::string name = PromSanitizeName(s.name);
    if (name != current_family) {
      current_family = name;
      os << "# TYPE " << name << ' ' << TypeName(s.type) << '\n';
    }
    if (s.type == MetricType::kHistogram && s.histogram != nullptr) {
      const Histogram& h = *s.histogram;
      for (int64_t le : kLeLadderUs) {
        os << name << "_bucket";
        AppendLabels(os, s.labels, "le", std::to_string(le));
        os << ' ' << h.CumulativeCount(le) << '\n';
      }
      os << name << "_bucket";
      AppendLabels(os, s.labels, "le", "+Inf");
      os << ' ' << h.count() << '\n';
      os << name << "_sum";
      AppendLabels(os, s.labels);
      os << ' ' << h.sum() << '\n';
      os << name << "_count";
      AppendLabels(os, s.labels);
      os << ' ' << h.count() << '\n';
      const std::string p999_name = name + "_p999";
      if (p999_name != current_p999_family) {
        current_p999_family = p999_name;
        p999 << "# TYPE " << p999_name << " gauge\n";
      }
      p999 << p999_name;
      AppendLabels(p999, s.labels);
      p999 << ' ' << h.Percentile(0.999) << '\n';
    } else {
      os << name;
      AppendLabels(os, s.labels);
      os << ' ' << s.value << '\n';
    }
  }
  os << p999.str();
  return os.str();
}

}  // namespace muppet
