// Prometheus text exposition format (v0.0.4) encoder for MetricsRegistry.
// Serves /metrics on the admin service (service/admin_service.h) and the
// chaos flight-recorder dump (testing/scenario.cc). Output is validated
// in CI by tools/check_prom.py.
#ifndef MUPPET_COMMON_PROM_H_
#define MUPPET_COMMON_PROM_H_

#include <string>

#include "common/metrics.h"

namespace muppet {

// Content-Type for the exposition format.
inline const char* PrometheusContentType() {
  return "text/plain; version=0.0.4";
}

// Escape a label value: backslash, double-quote, and newline.
std::string PromEscapeLabelValue(const std::string& value);

// Sanitize a metric or label name to [a-zA-Z_:][a-zA-Z0-9_:]* (labels
// without the colon); invalid characters become '_'.
std::string PromSanitizeName(const std::string& name);

// Encode a full registry snapshot: one # TYPE line per family, children
// sorted by label key, histograms expanded into a cumulative
// _bucket{le=...} ladder plus _sum and _count.
std::string PrometheusText(const MetricsRegistry& registry);

}  // namespace muppet

#endif  // MUPPET_COMMON_PROM_H_
