// Deterministic pseudo-random generators for workloads and tests.
// We avoid std::mt19937 in hot paths (workload generators emit millions of
// events) and avoid std::*_distribution because their output differs across
// standard library implementations; these generators make workloads
// reproducible bit-for-bit.
#ifndef MUPPET_COMMON_RNG_H_
#define MUPPET_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace muppet {

// xoshiro256** seeded via SplitMix64. Fast, high-quality, 2^256 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n). Uses Lemire's multiply-shift; slight modulo bias is
  // irrelevant for workload generation but we debias via rejection anyway.
  uint64_t Uniform(uint64_t n) {
    if (n == 0) return 0;
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Zipf(s) sampler over {0, .., n-1} using the Gray-et-al. rejection-inversion
// method — O(1) per sample with no O(n) table, so we can model the paper's
// strongly skewed key distributions ("e.g., follow a Zipfian distribution",
// §5) over millions of keys.
class ZipfSampler {
 public:
  // skew == 0 degenerates to uniform. Typical values: 0.8 (mild), 1.2 (hot).
  ZipfSampler(uint64_t n, double skew)
      : n_(n == 0 ? 1 : n), s_(skew) {
    if (s_ > 1e-9) {
      dist_ = H(static_cast<double>(n_) + 0.5) - H(0.5);
    }
  }

  uint64_t Sample(Rng& rng) {
    if (s_ <= 1e-9) return rng.Uniform(n_);
    // Rejection-inversion (Hormann & Derflinger).
    while (true) {
      const double u = H(0.5) + rng.NextDouble() * dist_;
      const double x = Hinv(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (u >= H(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
        return k - 1;  // 0-based rank; rank 0 is hottest
      }
    }
  }

  uint64_t n() const { return n_; }
  double skew() const { return s_; }

 private:
  // H(x) = integral of x^-s  (cases for s == 1).
  double H(double x) const {
    if (std::abs(s_ - 1.0) < 1e-9) return std::log(x);
    return std::exp((1.0 - s_) * std::log(x)) / (1.0 - s_);
  }
  double Hinv(double u) const {
    if (std::abs(s_ - 1.0) < 1e-9) return std::exp(u);
    return std::exp(std::log((1.0 - s_) * u) / (1.0 - s_));
  }

  uint64_t n_;
  double s_;
  double dist_ = 0;
};

}  // namespace muppet

#endif  // MUPPET_COMMON_RNG_H_
