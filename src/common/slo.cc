#include "common/slo.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace muppet {
namespace {

// Error budget implied by a p99 objective: 1% of events may breach.
constexpr double kErrorBudget = 0.01;

std::string WindowLabel(Timestamp window_micros) {
  return std::to_string(window_micros / kMicrosPerSecond) + "s";
}

}  // namespace

CriticalPath ComputeCriticalPath(const std::vector<Span>& spans) {
  CriticalPath path;
  if (spans.empty()) return path;
  path.trace_id = spans.front().trace_id;
  path.spans = static_cast<int>(spans.size());

  Timestamp first_start = spans.front().start_us;
  Timestamp last_end = spans.front().end_us;
  std::vector<int32_t> machines;
  // Span ids of exec spans, to tell nested slate fetches (charged against
  // exec so the buckets stay disjoint) from any other fetch.
  std::vector<uint64_t> exec_ids;
  for (const Span& span : spans) {
    first_start = std::min(first_start, span.start_us);
    last_end = std::max(last_end, span.end_us);
    if (std::find(machines.begin(), machines.end(), span.machine) ==
        machines.end()) {
      machines.push_back(span.machine);
    }
    if (span.kind == SpanKind::kMapExec || span.kind == SpanKind::kUpdateExec) {
      exec_ids.push_back(span.span_id);
    }
  }
  path.machines = static_cast<int>(machines.size());
  path.total_us = std::max<Timestamp>(0, last_end - first_start);

  Timestamp nested_fetch = 0;
  for (const Span& span : spans) {
    const Timestamp d = std::max<Timestamp>(0, span.duration_us());
    switch (span.kind) {
      case SpanKind::kPublish:
        path.publish_us += d;
        if (path.stream.empty()) path.stream = span.name;
        break;
      case SpanKind::kQueueWait:
        path.queue_wait_us += d;
        break;
      case SpanKind::kMapExec:
      case SpanKind::kUpdateExec:
        path.exec_us += d;
        break;
      case SpanKind::kSlateFetch:
        path.slate_fetch_us += d;
        if (std::find(exec_ids.begin(), exec_ids.end(), span.parent_span) !=
            exec_ids.end()) {
          nested_fetch += d;
        }
        break;
      case SpanKind::kNetHop:
        path.net_hop_us += d;
        break;
    }
  }
  // Exec time exclusive of the slate fetches nested inside it.
  path.exec_us = std::max<Timestamp>(0, path.exec_us - nested_fetch);

  const Timestamp attributed = path.publish_us + path.queue_wait_us +
                               path.exec_us + path.slate_fetch_us +
                               path.net_hop_us;
  path.unattributed_us = std::max<Timestamp>(0, path.total_us - attributed);
  return path;
}

SloTracker::SloTracker(SloOptions options, MetricsRegistry* registry,
                       Clock* clock)
    : options_(std::move(options)),
      registry_(registry),
      clock_(clock),
      bucket_micros_([&] {
        Timestamp shortest = kMicrosPerMinute;
        for (Timestamp w : options_.burn_windows) {
          shortest = std::min(shortest, w);
        }
        return std::max<Timestamp>(1, shortest / 30);
      }()) {}

SloTracker::StreamState* SloTracker::StateFor(const std::string& stream) {
  auto it = streams_.find(stream);
  if (it != streams_.end()) return &it->second;

  StreamState state;
  for (const SloObjective& objective : options_.objectives) {
    if (objective.stream == stream) {
      state.objective = &objective;
      break;
    }
  }
  if (registry_ != nullptr) {
    // kSlo < kMetrics in the hierarchy, so taking the registry lock here
    // (with mutex_ held) is in order.
    const MetricLabels stream_label = {{"stream", stream}};
    state.latency =
        registry_->GetHistogram("muppet_slo_e2e_latency_us", stream_label);
    state.ok_events = registry_->GetCounter(
        "muppet_slo_events_total", {{"stream", stream}, {"outcome", "ok"}});
    state.breach_events = registry_->GetCounter(
        "muppet_slo_events_total", {{"stream", stream}, {"outcome", "breach"}});
    if (state.objective != nullptr && clock_ != nullptr) {
      for (Timestamp window : options_.burn_windows) {
        registry_->RegisterCallback(
            "muppet_slo_burn_rate_milli",
            {{"stream", stream}, {"window", WindowLabel(window)}},
            MetricType::kGauge, [this, stream, window]() -> int64_t {
              MutexLock lock(mutex_);
              auto sit = streams_.find(stream);
              if (sit == streams_.end()) return 0;
              return static_cast<int64_t>(std::llround(
                  BurnRate(sit->second, window, clock_->Now()) * 1000.0));
            });
      }
    }
  } else {
    state.own_latency = std::make_unique<Histogram>();
  }
  auto [inserted, _] = streams_.emplace(stream, std::move(state));
  return &inserted->second;
}

const Histogram* SloTracker::HistogramFor(const StreamState& state) const {
  return state.latency != nullptr ? state.latency : state.own_latency.get();
}

void SloTracker::Observe(uint64_t trace_id, const std::vector<Span>& spans,
                         Timestamp now) {
  if (spans.empty()) return;
  CriticalPath path = ComputeCriticalPath(spans);
  path.trace_id = trace_id;
  traces_observed_.Add();
  if (path.stream.empty()) traces_unattributed_.Add();

  MutexLock lock(mutex_);
  StreamState* state = StateFor(path.stream);
  Histogram* h =
      state->latency != nullptr ? state->latency : state->own_latency.get();
  if (h != nullptr) h->Record(path.total_us);
  const bool breach = state->objective != nullptr &&
                      path.total_us > state->objective->target_p99_us;
  if (state->ok_events != nullptr) {
    (breach ? state->breach_events : state->ok_events)->Add();
  }

  // Burn accounting: bucketed good/breach counts, advanced lazily.
  const int64_t bucket = now / bucket_micros_;
  if (state->buckets.empty() || state->buckets.back().index != bucket) {
    // Drop buckets older than the longest window.
    Timestamp longest = 0;
    for (Timestamp w : options_.burn_windows) longest = std::max(longest, w);
    const int64_t horizon = bucket - longest / bucket_micros_ - 1;
    while (!state->buckets.empty() &&
           state->buckets.front().index < horizon) {
      state->buckets.pop_front();
    }
    BurnBucket fresh;
    fresh.index = bucket;
    state->buckets.push_back(fresh);
  }
  state->buckets.back().events++;
  if (breach) state->buckets.back().breaches++;

  // Worst critical paths, slowest first, bounded.
  auto pos = std::upper_bound(
      state->worst.begin(), state->worst.end(), path,
      [](const CriticalPath& a, const CriticalPath& b) {
        return a.total_us > b.total_us;
      });
  state->worst.insert(pos, path);
  if (state->worst.size() > options_.worst_paths) {
    state->worst.resize(options_.worst_paths);
  }
}

void SloTracker::Harvest(const std::vector<TraceSink*>& sinks, Timestamp now,
                         bool drained) {
  // Stitch: one trace's spans are scattered across machines' sinks (the
  // publish span lands on the accepting machine, exec spans on owners).
  struct Pending {
    std::vector<Span> spans;
    Timestamp last_end_us = 0;
  };
  std::unordered_map<uint64_t, Pending> traces;
  for (TraceSink* sink : sinks) {
    if (sink == nullptr) continue;
    for (const std::vector<TraceSink::TraceRecord>& records :
         {sink->Recent(), sink->Slowest()}) {
      for (const TraceSink::TraceRecord& record : records) {
        bool seen;
        {
          MutexLock lock(mutex_);
          seen = seen_.count(record.trace_id) != 0;
        }
        if (seen) continue;
        Pending& pending = traces[record.trace_id];
        pending.last_end_us = std::max(pending.last_end_us, record.last_end_us);
        pending.spans.insert(pending.spans.end(), record.spans.begin(),
                             record.spans.end());
      }
    }
  }

  for (auto& [trace_id, pending] : traces) {
    if (!drained && pending.last_end_us + options_.settle_micros > now) {
      continue;  // may still grow; pick it up on a later harvest
    }
    {
      MutexLock lock(mutex_);
      if (!seen_.insert(trace_id).second) continue;
      seen_fifo_.push_back(trace_id);
      while (seen_fifo_.size() > options_.seen_capacity) {
        seen_.erase(seen_fifo_.front());
        seen_fifo_.pop_front();
      }
    }
    Observe(trace_id, pending.spans, now);
  }
}

double SloTracker::BurnRate(const StreamState& state, Timestamp window,
                            Timestamp now) const {
  const int64_t horizon = now / bucket_micros_ - window / bucket_micros_;
  int64_t events = 0;
  int64_t breaches = 0;
  for (const BurnBucket& bucket : state.buckets) {
    if (bucket.index < horizon) continue;
    events += bucket.events;
    breaches += bucket.breaches;
  }
  if (events == 0) return 0.0;
  const double breach_fraction =
      static_cast<double>(breaches) / static_cast<double>(events);
  return breach_fraction / kErrorBudget;
}

std::vector<SloTracker::StreamSnapshot> SloTracker::Snapshot(
    Timestamp now) const {
  std::vector<StreamSnapshot> out;
  MutexLock lock(mutex_);
  out.reserve(streams_.size());
  for (const auto& [stream, state] : streams_) {
    StreamSnapshot snap;
    snap.stream = stream;
    const Histogram* h = HistogramFor(state);
    if (h != nullptr) {
      snap.events = h->count();
      snap.mean_us = h->Mean();
      snap.p50_us = h->Percentile(0.50);
      snap.p95_us = h->Percentile(0.95);
      snap.p99_us = h->Percentile(0.99);
      snap.p999_us = h->Percentile(0.999);
      snap.max_us = h->max();
    }
    if (state.breach_events != nullptr) {
      snap.breaches = state.breach_events->Get();
    } else {
      for (const BurnBucket& bucket : state.buckets) {
        snap.breaches += bucket.breaches;
      }
    }
    if (state.objective != nullptr) {
      snap.has_objective = true;
      snap.objective = *state.objective;
      snap.meeting_objective =
          snap.events == 0 || snap.p99_us <= state.objective->target_p99_us;
      for (Timestamp window : options_.burn_windows) {
        BurnSnapshot burn;
        burn.window_micros = window;
        burn.rate = BurnRate(state, window, now);
        const int64_t horizon = now / bucket_micros_ - window / bucket_micros_;
        for (const BurnBucket& bucket : state.buckets) {
          if (bucket.index < horizon) continue;
          burn.events += bucket.events;
          burn.breaches += bucket.breaches;
        }
        snap.burn.push_back(burn);
      }
    }
    snap.worst = state.worst;
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<SloTracker::StreamSnapshot> SloTracker::Snapshot() const {
  return Snapshot(clock_ != nullptr ? clock_->Now() : 0);
}

}  // namespace muppet
