// End-to-end latency SLO tracking (DESIGN.md §14). The paper's headline
// claim is *latency* — "Muppet answers queries in sub-second time" (§5) —
// and this module is where the repro turns raw spans into an operator
// verdict: is each input stream actually meeting its latency objective?
//
// The SloTracker consumes completed traces from the per-machine
// TraceSinks (common/trace.h), stitches every machine's spans for one
// trace id back together, reduces them to a critical-path breakdown
// (publish -> queue-wait -> exec -> slate-fetch -> net-hop), and records
// the trace's end-to-end latency into a per-stream histogram evaluated
// against the objective declared in EngineOptions::slo (target p99 +
// window). Multi-window burn-rate counters — bad-event fraction over the
// error budget, the standard SRE alerting signal — are exported as
// labeled Prometheus families, and the worst critical paths are retained
// for /sloz and /tracez.
//
// Determinism: everything downstream of sampling is a pure function of
// the spans and the clock, and sampling itself is content-hash based
// (trace.h) — a chaos replay of the same seeded workload re-observes the
// same traces and reproduces the same SLO verdicts bit-for-bit.
#ifndef MUPPET_COMMON_SLO_H_
#define MUPPET_COMMON_SLO_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "common/trace.h"

namespace muppet {

// Declared latency objective for one input stream: "the p99 of
// end-to-end latency over `window_micros` stays at or below
// `target_p99_us`". Equivalently: at most 0.1% + 0.9% = 1% of events may
// exceed the target inside the window (the error budget burn rates are
// measured against).
struct SloObjective {
  std::string stream;
  // The paper's figure ("latency of under 2 seconds", §5) is the default.
  Timestamp target_p99_us = 2 * kMicrosPerSecond;
  // Objective evaluation window.
  Timestamp window_micros = kMicrosPerMinute;
};

struct SloOptions {
  // Per-stream objectives. Streams without one still get latency
  // histograms and critical paths, but no burn accounting.
  std::vector<SloObjective> objectives;
  // A trace counts as complete once no span has been recorded into it
  // for this long (or immediately when the engine reports itself
  // drained, since nothing can extend a trace with zero events in
  // flight).
  Timestamp settle_micros = 50 * kMicrosPerMilli;
  // Burn-rate windows, shortest first (the classic multi-window alert
  // pairs a fast window against a slow one).
  std::vector<Timestamp> burn_windows = {kMicrosPerMinute,
                                         10 * kMicrosPerMinute};
  // Worst critical paths retained per stream, slowest first.
  size_t worst_paths = 4;
  // Bounded memory of already-observed trace ids (FIFO eviction).
  size_t seen_capacity = 8192;
};

// Per-kind critical-path breakdown of one assembled trace. Exec time is
// exclusive of the slate fetches nested inside it, so the five buckets
// plus `unattributed_us` (scheduling gaps between spans, cross-machine
// skew) sum to `total_us`.
struct CriticalPath {
  uint64_t trace_id = 0;
  // Stream of the root publish span; empty when the root was not
  // captured (e.g. it fell out of the publish machine's ring).
  std::string stream;
  Timestamp total_us = 0;
  Timestamp publish_us = 0;
  Timestamp queue_wait_us = 0;
  Timestamp exec_us = 0;
  Timestamp slate_fetch_us = 0;
  Timestamp net_hop_us = 0;
  Timestamp unattributed_us = 0;
  int spans = 0;
  // Distinct machines the trace touched.
  int machines = 0;
};

// Reduce one trace's spans (any order, possibly gathered from several
// machines' sinks) to its critical-path breakdown. Pure function.
CriticalPath ComputeCriticalPath(const std::vector<Span>& spans);

// Thread-safe end-to-end SLO bookkeeping for one engine. Histograms and
// event counters live in the shared MetricsRegistry (so /metrics and
// /sloz can never disagree); burn windows and critical paths are owned
// here.
class SloTracker {
 public:
  struct BurnSnapshot {
    Timestamp window_micros = 0;
    // Fraction of the error budget consumed per unit time: 1.0 = burning
    // exactly at the sustainable rate, >1 = the objective fails if
    // sustained for the whole window.
    double rate = 0.0;
    int64_t events = 0;
    int64_t breaches = 0;
  };

  struct StreamSnapshot {
    std::string stream;
    int64_t events = 0;
    int64_t breaches = 0;  // events over the objective target
    double mean_us = 0.0;
    Timestamp p50_us = 0;
    Timestamp p95_us = 0;
    Timestamp p99_us = 0;
    Timestamp p999_us = 0;
    Timestamp max_us = 0;
    bool has_objective = false;
    SloObjective objective;
    bool meeting_objective = true;  // p99 <= target (trivially true when
                                    // no objective or no events)
    std::vector<BurnSnapshot> burn;        // one per configured window
    std::vector<CriticalPath> worst;       // slowest first
  };

  // `registry` and `clock` must outlive the tracker. `registry` may be
  // null (tests), in which case only in-tracker state is kept; `clock` is
  // only read by the burn-rate callback gauges registered per stream, so
  // it may be null when `registry` is.
  SloTracker(SloOptions options, MetricsRegistry* registry, Clock* clock);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Pull newly completed traces out of `sinks` (recent + slowest rings of
  // every machine), stitch spans across sinks by trace id, and observe
  // each trace not seen before. `drained` short-circuits the settle
  // window: with zero events in flight no trace can grow. Idempotent —
  // observed ids are remembered (bounded FIFO).
  void Harvest(const std::vector<TraceSink*>& sinks, Timestamp now,
               bool drained = false);

  // Observe one assembled trace directly (Harvest's inner step; exposed
  // for tests and for engines that assemble traces themselves).
  void Observe(uint64_t trace_id, const std::vector<Span>& spans,
               Timestamp now);

  // Point-in-time per-stream view, sorted by stream name. Burn rates are
  // evaluated as of `now`.
  std::vector<StreamSnapshot> Snapshot(Timestamp now) const;
  // As above at the tracker clock's current time (clock-free callers like
  // the admin service). Requires a non-null clock.
  std::vector<StreamSnapshot> Snapshot() const;

  int64_t traces_observed() const { return traces_observed_.Get(); }
  int64_t traces_unattributed() const { return traces_unattributed_.Get(); }

  static constexpr LockLevel kLockLevel = LockLevel::kSlo;

 private:
  struct BurnBucket {
    int64_t index = 0;  // now / bucket_micros_
    int64_t events = 0;
    int64_t breaches = 0;
  };

  struct StreamState {
    // Registry-owned cells (null when registry is null).
    Histogram* latency = nullptr;
    Counter* ok_events = nullptr;
    Counter* breach_events = nullptr;
    // Fallback histogram when no registry is attached.
    std::unique_ptr<Histogram> own_latency;
    const SloObjective* objective = nullptr;  // into options_.objectives
    std::deque<BurnBucket> buckets;           // oldest first
    std::vector<CriticalPath> worst;          // slowest first
  };

  StreamState* StateFor(const std::string& stream)
      MUPPET_REQUIRES(mutex_);
  const Histogram* HistogramFor(const StreamState& state) const;
  double BurnRate(const StreamState& state, Timestamp window,
                  Timestamp now) const MUPPET_REQUIRES(mutex_);

  const SloOptions options_;
  MetricsRegistry* const registry_;
  Clock* const clock_;
  // Burn-bucket granularity: fine enough that the shortest window spans
  // ~30 buckets.
  const Timestamp bucket_micros_;

  mutable Mutex mutex_{kLockLevel};
  std::map<std::string, StreamState> streams_ MUPPET_GUARDED_BY(mutex_);
  std::unordered_set<uint64_t> seen_ MUPPET_GUARDED_BY(mutex_);
  std::deque<uint64_t> seen_fifo_ MUPPET_GUARDED_BY(mutex_);

  Counter traces_observed_;
  // Traces whose root publish span was missing (attributed to "").
  Counter traces_unattributed_;
};

}  // namespace muppet

#endif  // MUPPET_COMMON_SLO_H_
