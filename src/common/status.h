// Status and Result<T>: exception-free error handling, in the style of
// RocksDB/Arrow. Library code returns Status (or Result<T>) instead of
// throwing; callers inspect with ok()/code()/message().
#ifndef MUPPET_COMMON_STATUS_H_
#define MUPPET_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace muppet {

// Error taxonomy for the whole library. Keep this small: a code identifies
// how a caller should react, the message carries the details.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,         // key/slate/file does not exist
  kInvalidArgument = 2,  // caller passed something malformed
  kCorruption = 3,       // stored bytes failed validation
  kIOError = 4,          // filesystem/socket failure
  kUnavailable = 5,      // machine/worker down or queue refused (retryable)
  kTimedOut = 6,         // deadline exceeded
  kResourceExhausted = 7,// queue/cache/memory limit reached
  kFailedPrecondition = 8,// operation illegal in current state
  kAlreadyExists = 9,    // duplicate registration
  kAborted = 10,         // operation abandoned (e.g. shutdown)
  kUnimplemented = 11,   // feature intentionally absent
  kInternal = 12,        // invariant violation: a bug in this library
};

// Human-readable name of a status code ("NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status TimedOut(std::string_view msg) {
    return Status(StatusCode::kTimedOut, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// A value-or-error. Holds T when status().ok(), otherwise only the Status.
template <typename T>
class Result {
 public:
  // Implicit from value: `return value;` in a Result-returning function.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  // Implicit from error status. Must not be OK (an OK Result needs a value).
  Result(Status status) : status_(std::move(status)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  // Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK Status to the caller.
#define MUPPET_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::muppet::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Evaluate a Result<T> expression; on error return its status, otherwise
// bind the value to `lhs`.
#define MUPPET_ASSIGN_OR_RETURN(lhs, expr)          \
  MUPPET_ASSIGN_OR_RETURN_IMPL(                     \
      MUPPET_STATUS_CONCAT(_res, __LINE__), lhs, expr)

#define MUPPET_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define MUPPET_STATUS_CONCAT_INNER(a, b) a##b
#define MUPPET_STATUS_CONCAT(a, b) MUPPET_STATUS_CONCAT_INNER(a, b)

}  // namespace muppet

#endif  // MUPPET_COMMON_STATUS_H_
