#include "common/sync.h"

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>

namespace muppet {
namespace sync_internal {
namespace {

constexpr int kMaxHeld = 16;
constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* lock;
  LockLevel level;
  bool shared;
  int frame_count;
  void* frames[kMaxFrames];
};

// Per-thread stack of currently held ordered locks. Fixed-size: the
// deepest legal chain in the hierarchy is ~6 locks; overflow saturates
// `dropped` and the extra acquisitions go unchecked rather than aborting.
struct ThreadLockState {
  HeldLock held[kMaxHeld];
  int count = 0;
  int dropped = 0;
};

thread_local ThreadLockState t_state;

#ifdef NDEBUG
constexpr bool kCheckByDefault = false;
#else
constexpr bool kCheckByDefault = true;
#endif

std::atomic<bool> g_enabled{kCheckByDefault};
std::atomic<bool> g_capture_stacks{kCheckByDefault};
std::atomic<LockOrderAbortHandler> g_abort_handler{nullptr};

void ReportViolation(const LockOrderViolation& v) {
  LockOrderAbortHandler handler = g_abort_handler.load();
  if (handler != nullptr) {
    handler(v);
    return;  // Test hook: record the acquisition and carry on.
  }
  std::fprintf(stderr,
               "[muppet/sync] lock-order violation: acquiring lock %p "
               "(level %d) while holding lock %p (level %d)%s\n",
               v.acquiring, static_cast<int>(v.acquiring_level), v.held,
               static_cast<int>(v.held_level),
               v.self_deadlock ? " -- same exclusive mutex: self-deadlock"
                               : " -- hierarchy inversion");
  if (v.held_frame_count > 0) {
    std::fprintf(stderr, "[muppet/sync] stack of the held acquisition:\n");
    backtrace_symbols_fd(const_cast<void* const*>(v.held_frames),
                         v.held_frame_count, /*fd=*/2);
  }
  void* now[kMaxFrames];
  int depth = backtrace(now, kMaxFrames);
  std::fprintf(stderr, "[muppet/sync] stack of the current acquisition:\n");
  backtrace_symbols_fd(now, depth, /*fd=*/2);
  std::abort();
}

}  // namespace

void OnAcquire(const void* lock, LockLevel level, bool shared) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (level == LockLevel::kUnordered) return;
  ThreadLockState& st = t_state;

  // Same-instance reacquisition: a guaranteed deadlock for exclusive
  // mutexes. Recursive shared acquisition of a SharedMutex is tolerated
  // (it is how publish-from-a-tap re-enters RunTaps); it is tracked again
  // so releases pair up, but skips the ordering check against itself.
  bool recursive_shared = false;
  for (int i = 0; i < st.count; ++i) {
    if (st.held[i].lock != lock) continue;
    if (shared && st.held[i].shared) {
      recursive_shared = true;
      break;
    }
    LockOrderViolation v;
    v.acquiring = lock;
    v.acquiring_level = level;
    v.held = st.held[i].lock;
    v.held_level = st.held[i].level;
    v.self_deadlock = true;
    v.held_frames = st.held[i].frames;
    v.held_frame_count = st.held[i].frame_count;
    ReportViolation(v);
    return;  // Hook path: don't double-record the instance.
  }

  if (!recursive_shared) {
    // The new level must be strictly greater than every level held.
    const HeldLock* worst = nullptr;
    for (int i = 0; i < st.count; ++i) {
      if (static_cast<int>(st.held[i].level) >= static_cast<int>(level) &&
          (worst == nullptr || static_cast<int>(st.held[i].level) >
                                   static_cast<int>(worst->level))) {
        worst = &st.held[i];
      }
    }
    if (worst != nullptr) {
      LockOrderViolation v;
      v.acquiring = lock;
      v.acquiring_level = level;
      v.held = worst->lock;
      v.held_level = worst->level;
      v.self_deadlock = false;
      v.held_frames = worst->frames;
      v.held_frame_count = worst->frame_count;
      ReportViolation(v);
      // Hook path: fall through and record so the matching unlock pairs.
    }
  }

  if (st.count >= kMaxHeld) {
    ++st.dropped;
    return;
  }
  HeldLock& h = st.held[st.count++];
  h.lock = lock;
  h.level = level;
  h.shared = shared;
  h.frame_count = 0;
  if (g_capture_stacks.load(std::memory_order_relaxed)) {
    h.frame_count = backtrace(h.frames, kMaxFrames);
  }
}

void OnRelease(const void* lock) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadLockState& st = t_state;
  if (st.dropped > 0) {
    // Can't tell which unlock belongs to an untracked acquisition; assume
    // LIFO and burn a dropped slot first.
    --st.dropped;
    return;
  }
  for (int i = st.count - 1; i >= 0; --i) {
    if (st.held[i].lock != lock) continue;
    for (int j = i; j + 1 < st.count; ++j) st.held[j] = st.held[j + 1];
    --st.count;
    return;
  }
  // Not found: acquired while checking was off, or an unordered lock.
}

}  // namespace sync_internal

LockOrderAbortHandler SetLockOrderAbortHandler(LockOrderAbortHandler handler) {
  return sync_internal::g_abort_handler.exchange(handler);
}

void SetLockOrderCheckingEnabled(bool enabled) {
  sync_internal::g_enabled.store(enabled);
}

bool LockOrderCheckingEnabled() { return sync_internal::g_enabled.load(); }

void SetLockOrderStackCaptureEnabled(bool enabled) {
  sync_internal::g_capture_stacks.store(enabled);
}

}  // namespace muppet
