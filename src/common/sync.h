// Concurrency contract layer: annotated mutex wrappers plus a runtime
// lock-order checker.
//
// Every lock in src/ goes through the wrappers in this header instead of
// naming std::mutex directly (tools/check_sync.py enforces this). The
// wrappers buy two things:
//
//  1. Clang thread-safety analysis. The MUPPET_* attribute macros expand
//     to Clang's capability attributes, so a Clang build with
//     -DMUPPET_WERROR_THREAD_SAFETY=ON statically proves that every
//     MUPPET_GUARDED_BY member is touched only under its mutex. On
//     GCC (the default toolchain here) the attributes compile away.
//
//  2. A runtime lock-order checker. Each Mutex/SharedMutex is constructed
//     with a LockLevel from the global hierarchy below. Whenever checking
//     is enabled (default: on in Debug builds, off when NDEBUG), acquiring
//     a lock whose level is not strictly greater than every lock already
//     held by the thread reports an inversion with both stacks — the one
//     recorded when the conflicting lock was taken and the current one —
//     and aborts (tests inject an abort hook instead). Acquiring the same
//     exclusive Mutex twice on one thread is reported as a guaranteed
//     self-deadlock.
//
// The global lock hierarchy (outer locks have SMALLER levels; a thread may
// only acquire a lock with a level strictly greater than everything it
// holds). DESIGN.md "Concurrency model" documents why each edge exists;
// tests/common/sync_test.cc pins this table against the levels each class
// actually assigns.
//
//   level  name             locks
//   -----  ---------------  ------------------------------------------
//     10   slate-stripe     Muppet2 per-machine striped slate locks
//     20   taps             engine tap registries (shared)
//     22   split-table      SplitTable live hot-key split registry (shared;
//                           read on the dispatch path under a stripe lock)
//     24   merge-dedupe     per-machine applied merge-delta id sets
//     25   ring-override    HashRing key->machine override table (shared)
//     26   dedup-table      exactly-once bounded event-identity dedup table
//                           (consulted on frame receive; seeded under the
//                           recovery path while the machine is unroutable)
//     30   transport        Transport machine registry (shared)
//     35   transport-rng    Transport loss-model RNG
//     36   fault-injector   FaultInjector decision/partition/action state
//     38   fault-hold       Transport reorder holdback buffer
//     39   heat             HeatTracker heavy-hitter sketch
//     40   queue            EventQueue mutex (items + stopped flag)
//     50   master           Master failed-set + listener registry
//     55   failed-set       per-machine failed-peer sets (both engines)
//     60   drain            engine drain_mutex_ (inflight condvar)
//     65   throttle         ThrottleGovernor delay state
//     70   slate-cache      SlateCache LRU + index
//     80   store-node       StorageNode column-family registry
//     90   store-tables     Shard SSTable list
//    100   store-io         MemTable map, WAL file, SSTable file handle
//    110   journal          EventJournal / SlateLogger append files
//    112   slate-changelog  SlateChangelog segment files + manifest cursor
//                           (appended under a slate-stripe lock on the
//                           update path; synced from the flusher thread)
//    115   service          HttpServer worker-thread registry
//    117   slo              SloTracker per-stream latency/burn state (reads
//                           trace stripes and registry cells while held)
//    118   incidents        IncidentLog watchdog incident ring
//    120   metrics          MetricsRegistry name->counter maps
//    122   trace-stripe     TraceSink per-stripe trace ring buffers
//    124   trace-slowest    TraceSink slowest-N retention list
//    130   logging          log sink capture hook (innermost: any
//                           subsystem may log while holding its locks)
#ifndef MUPPET_COMMON_SYNC_H_
#define MUPPET_COMMON_SYNC_H_

#include <atomic>
#include <condition_variable>  // wrapped below; do not use directly
#include <mutex>               // wrapped below; do not use directly
#include <shared_mutex>        // wrapped below; do not use directly

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops elsewhere). Names and usage
// follow the Clang ThreadSafetyAnalysis documentation.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define MUPPET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MUPPET_THREAD_ANNOTATION(x)
#endif

#define MUPPET_CAPABILITY(x) MUPPET_THREAD_ANNOTATION(capability(x))
#define MUPPET_SCOPED_CAPABILITY MUPPET_THREAD_ANNOTATION(scoped_lockable)
#define MUPPET_GUARDED_BY(x) MUPPET_THREAD_ANNOTATION(guarded_by(x))
#define MUPPET_PT_GUARDED_BY(x) MUPPET_THREAD_ANNOTATION(pt_guarded_by(x))
#define MUPPET_ACQUIRED_BEFORE(...) \
  MUPPET_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MUPPET_ACQUIRED_AFTER(...) \
  MUPPET_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define MUPPET_REQUIRES(...) \
  MUPPET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MUPPET_REQUIRES_SHARED(...) \
  MUPPET_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define MUPPET_ACQUIRE(...) \
  MUPPET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MUPPET_ACQUIRE_SHARED(...) \
  MUPPET_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MUPPET_RELEASE(...) \
  MUPPET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MUPPET_RELEASE_SHARED(...) \
  MUPPET_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MUPPET_RELEASE_GENERIC(...) \
  MUPPET_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define MUPPET_TRY_ACQUIRE(...) \
  MUPPET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MUPPET_TRY_ACQUIRE_SHARED(...) \
  MUPPET_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define MUPPET_EXCLUDES(...) \
  MUPPET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MUPPET_ASSERT_CAPABILITY(x) \
  MUPPET_THREAD_ANNOTATION(assert_capability(x))
#define MUPPET_RETURN_CAPABILITY(x) MUPPET_THREAD_ANNOTATION(lock_returned(x))
#define MUPPET_NO_THREAD_SAFETY_ANALYSIS \
  MUPPET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace muppet {

// Global lock hierarchy. Smaller value = outer lock. A thread may acquire a
// lock only when its level is strictly greater than the level of every lock
// it already holds; kUnordered locks opt out of checking entirely (tests,
// scratch locks). See the table at the top of this header.
enum class LockLevel : int {
  kUnordered = 0,
  kSlateStripe = 10,
  kTaps = 20,
  kSplitTable = 22,
  kMergeDedupe = 24,
  kRingOverride = 25,
  kDedupTable = 26,
  kTransport = 30,
  kTcpState = 31,
  kTcpWriteQueue = 32,
  kTransportRng = 35,
  kFaultInjector = 36,
  kFaultHold = 38,
  kHeat = 39,
  kQueue = 40,
  kMaster = 50,
  kFailedSet = 55,
  kDrain = 60,
  kThrottle = 65,
  kSlateCache = 70,
  kStoreNode = 80,
  kStoreTables = 90,
  kStoreIo = 100,
  kJournal = 110,
  kSlateChangelog = 112,
  kService = 115,
  kSlo = 117,
  kIncidents = 118,
  kMetrics = 120,
  kTraceStripe = 122,
  kTraceSlowest = 124,
  kLogging = 130,
};

namespace sync_internal {

// Acquisition bookkeeping, implemented in sync.cc. All entry points are
// cheap no-ops (one relaxed atomic load) when checking is disabled.
void OnAcquire(const void* lock, LockLevel level, bool shared);
void OnRelease(const void* lock);

}  // namespace sync_internal

// Details of a detected inversion, handed to the abort hook (or printed
// before std::abort when no hook is installed).
struct LockOrderViolation {
  // The lock being acquired and the conflicting lock already held.
  const void* acquiring = nullptr;
  LockLevel acquiring_level = LockLevel::kUnordered;
  const void* held = nullptr;
  LockLevel held_level = LockLevel::kUnordered;
  // True when `acquiring == held` (same-thread self-deadlock on an
  // exclusive mutex) rather than a hierarchy inversion.
  bool self_deadlock = false;
  // Stack recorded when `held` was acquired (empty unless stack capture
  // was enabled at that acquisition).
  void* const* held_frames = nullptr;
  int held_frame_count = 0;
};

// Hook invoked instead of aborting when a violation is detected; the
// acquisition then proceeds so the test can unwind. Returns the previous
// handler. Pass nullptr to restore the default print-both-stacks-and-abort
// behaviour.
using LockOrderAbortHandler = void (*)(const LockOrderViolation&);
LockOrderAbortHandler SetLockOrderAbortHandler(LockOrderAbortHandler handler);

// Runtime switches. Checking defaults to on in Debug builds (NDEBUG not
// defined) and off otherwise; stack capture follows the same default and
// only matters while checking is on.
void SetLockOrderCheckingEnabled(bool enabled);
bool LockOrderCheckingEnabled();
void SetLockOrderStackCaptureEnabled(bool enabled);

// Scoped enable/disable for tests (the tier-1 build is RelWithDebInfo, so
// sync_test and the drain stress test turn checking on explicitly).
class ScopedLockOrderEnforcement {
 public:
  explicit ScopedLockOrderEnforcement(bool enabled = true)
      : previous_(LockOrderCheckingEnabled()) {
    SetLockOrderCheckingEnabled(enabled);
  }
  ~ScopedLockOrderEnforcement() { SetLockOrderCheckingEnabled(previous_); }

  ScopedLockOrderEnforcement(const ScopedLockOrderEnforcement&) = delete;
  ScopedLockOrderEnforcement& operator=(const ScopedLockOrderEnforcement&) =
      delete;

 private:
  bool previous_;
};

// Exclusive mutex participating in the lock hierarchy.
class MUPPET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex(LockLevel::kUnordered) {}
  explicit Mutex(LockLevel level) : level_(level) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MUPPET_ACQUIRE() {
    sync_internal::OnAcquire(this, level_, /*shared=*/false);
    mu_.lock();
  }
  void unlock() MUPPET_RELEASE() {
    mu_.unlock();
    sync_internal::OnRelease(this);
  }
  bool try_lock() MUPPET_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot deadlock, but it still constrains every
    // later acquisition, so it is recorded (and checked) like lock().
    sync_internal::OnAcquire(this, level_, /*shared=*/false);
    return true;
  }

  LockLevel level() const { return level_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockLevel level_;
};

// Reader/writer mutex participating in the lock hierarchy.
class MUPPET_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : SharedMutex(LockLevel::kUnordered) {}
  explicit SharedMutex(LockLevel level) : level_(level) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MUPPET_ACQUIRE() {
    sync_internal::OnAcquire(this, level_, /*shared=*/false);
    mu_.lock();
  }
  void unlock() MUPPET_RELEASE() {
    mu_.unlock();
    sync_internal::OnRelease(this);
  }
  void lock_shared() MUPPET_ACQUIRE_SHARED() {
    sync_internal::OnAcquire(this, level_, /*shared=*/true);
    mu_.lock_shared();
  }
  void unlock_shared() MUPPET_RELEASE_SHARED() {
    mu_.unlock_shared();
    sync_internal::OnRelease(this);
  }

  LockLevel level() const { return level_; }

 private:
  std::shared_mutex mu_;
  const LockLevel level_;
};

// RAII exclusive lock. The two-argument form implements the
// try-then-block pattern the dispatch hot path uses to count stripe
// contention without a second atomic.
class MUPPET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MUPPET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(Mutex& mu, bool* contended) MUPPET_ACQUIRE(mu) : mu_(mu) {
    if (mu_.try_lock()) {
      *contended = false;
    } else {
      *contended = true;
      mu_.lock();
    }
  }
  ~MutexLock() MUPPET_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

// RAII shared (reader) lock on a SharedMutex.
class MUPPET_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) MUPPET_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() MUPPET_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII exclusive (writer) lock on a SharedMutex.
class MUPPET_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) MUPPET_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() MUPPET_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to muppet::Mutex. Wait() requires the mutex to
// be held (via MutexLock); the lock-order bookkeeping treats the mutex as
// continuously held across the wait, which is correct for every wait site
// in this codebase (no predicate takes further locks). Callers use
// explicit `while (!pred) cv.Wait(mu);` loops rather than a predicate
// overload so that Clang's analysis sees the guarded reads inside a scope
// that holds the lock (lambdas are analyzed with no capabilities held).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) MUPPET_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait; the
    // unique_lock must not unlock it on destruction (the enclosing
    // MutexLock owns the release).
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace muppet

#endif  // MUPPET_COMMON_SYNC_H_
