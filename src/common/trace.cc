#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace muppet {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPublish:
      return "publish";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kMapExec:
      return "map_exec";
    case SpanKind::kUpdateExec:
      return "update_exec";
    case SpanKind::kSlateFetch:
      return "slate_fetch";
    case SpanKind::kNetHop:
      return "net_hop";
  }
  return "unknown";
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceSink::TraceSink() : TraceSink(Options()) {}

TraceSink::TraceSink(Options options)
    : options_(options),
      per_stripe_capacity_(
          std::max<size_t>(1, options.recent_capacity / kStripes)) {}

void TraceSink::Record(Span span) {
  if (span.trace_id == 0) {
    spans_dropped_.Add();
    return;
  }
  spans_recorded_.Add();
  Stripe& stripe = stripes_[span.trace_id % kStripes];

  // A stripe eviction hands the record to the slowest-N list after the
  // stripe mutex is released; the lock levels still permit nesting
  // (stripe 122 < slowest 124) if that ever changes.
  TraceRecord evicted;
  bool have_evicted = false;
  {
    MutexLock lock(stripe.mutex);
    auto it = stripe.index.find(span.trace_id);
    if (it == stripe.index.end()) {
      stripe.lru.emplace_front();
      stripe.lru.front().trace_id = span.trace_id;
      stripe.lru.front().first_start_us = span.start_us;
      it = stripe.index.emplace(span.trace_id, stripe.lru.begin()).first;
      if (stripe.lru.size() > per_stripe_capacity_) {
        evicted = std::move(stripe.lru.back());
        stripe.index.erase(evicted.trace_id);
        stripe.lru.pop_back();
        have_evicted = true;
      }
    } else if (it->second != stripe.lru.begin()) {
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    }
    TraceRecord& record = *it->second;
    record.first_start_us = std::min(record.first_start_us, span.start_us);
    record.last_end_us = std::max(record.last_end_us, span.end_us);
    if (record.spans.size() < options_.max_spans_per_trace) {
      record.spans.push_back(std::move(span));
    } else {
      spans_dropped_.Add();
    }
  }
  if (have_evicted) {
    traces_evicted_.Add();
    OfferSlowest(std::move(evicted));
  }
}

void TraceSink::OfferSlowest(TraceRecord record) {
  if (options_.slowest_capacity == 0) return;
  MutexLock lock(slowest_mutex_);
  if (slowest_.size() < options_.slowest_capacity) {
    slowest_.push_back(std::move(record));
    return;
  }
  auto fastest = std::min_element(
      slowest_.begin(), slowest_.end(),
      [](const TraceRecord& a, const TraceRecord& b) {
        return a.duration_us() < b.duration_us();
      });
  if (record.duration_us() > fastest->duration_us()) {
    *fastest = std::move(record);
  }
}

std::vector<TraceSink::TraceRecord> TraceSink::Recent(size_t max) const {
  std::vector<TraceRecord> out;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (const TraceRecord& record : stripe.lru) out.push_back(record);
  }
  // Newest first: traces touched last have the largest end times.
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.last_end_us > b.last_end_us;
            });
  if (max != 0 && out.size() > max) out.resize(max);
  return out;
}

std::vector<TraceSink::TraceRecord> TraceSink::Slowest() const {
  std::vector<TraceRecord> out;
  {
    MutexLock lock(slowest_mutex_);
    out = slowest_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.duration_us() > b.duration_us();
            });
  return out;
}

void ScopedSpan::Begin(TraceSink* sink, Clock* clock,
                       const TraceContext& context, SpanKind kind,
                       int32_t machine, std::string name) {
  if (sink == nullptr || !context.sampled()) return;
  sink_ = sink;
  clock_ = clock;
  span_.trace_id = context.trace_id;
  span_.span_id = NextSpanId();
  span_.parent_span = context.parent_span;
  span_.kind = kind;
  span_.machine = machine;
  span_.name = std::move(name);
  span_.start_us = clock_->Now();
}

void ScopedSpan::End() {
  if (sink_ == nullptr) return;
  span_.end_us = clock_->Now();
  sink_->Record(std::move(span_));
  sink_ = nullptr;
}

}  // namespace muppet
