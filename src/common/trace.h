// Sampled distributed tracing for the observability plane. A TraceContext
// (trace id + parent span id) rides with every sampled event — including
// across machines in the wire frames (engine/wire.h) — and each layer the
// event passes through records a Span into the local machine's TraceSink:
// publish, queue wait, map/update execution, slate fetch (hit/miss/store
// round-trip), and the cross-machine hop. Stitching the spans of one
// trace id back together reconstructs the event's full path through the
// cluster (the "where did a slow event spend its time" question the
// paper's §5 latency claims beg).
//
// Sampling is deterministic in the event *content*: an event is traced
// iff Mix64(hash(key)) falls in the sample window. Engine-assigned state
// (seq numbers, wall-clock times) never feeds the decision, so a chaos
// replay of the same seeded workload re-samples exactly the same traces —
// the same property net/fault.h relies on for fault decisions.
#ifndef MUPPET_COMMON_TRACE_H_
#define MUPPET_COMMON_TRACE_H_

#include <array>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/sync.h"

namespace muppet {

// The per-event trace state carried on the wire. trace_id == 0 is the
// "sampled bit" cleared: the event is untraced and every tracing site is
// a single branch. parent_span links a downstream event to the span of
// the operator execution that emitted it.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  bool sampled() const { return trace_id != 0; }

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.parent_span == b.parent_span;
  }
};

// Span taxonomy (DESIGN.md §9). One span per layer an event crosses.
enum class SpanKind : uint8_t {
  kPublish = 0,     // external publish (the root span of a trace)
  kQueueWait = 1,   // enqueue -> dequeue on a worker queue
  kMapExec = 2,     // mapper invocation
  kUpdateExec = 3,  // updater invocation (slate lock held)
  kSlateFetch = 4,  // slate cache fetch, incl. store round-trip on miss
  kNetHop = 5,      // cross-machine transport send
};

const char* SpanKindName(SpanKind kind);

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  SpanKind kind = SpanKind::kPublish;
  // Machine the span was recorded on (-1 = unknown/external).
  int32_t machine = -1;
  // Operator or stream name; "->mN" for net hops.
  std::string name;
  // Kind-specific annotation, e.g. "hit" / "miss" / "miss+store".
  std::string note;
  Timestamp start_us = 0;
  Timestamp end_us = 0;

  Timestamp duration_us() const { return end_us - start_us; }
};

// Process-wide span id allocator; never returns 0.
uint64_t NextSpanId();

// Deterministic sampling decision: true iff the event keyed by `key_hash`
// is traced at 1-in-`sample_period`. period 1 traces everything; period 0
// disables tracing. Pure function of its arguments (chaos-replay safe).
inline bool TraceSampled(uint64_t key_hash, uint64_t sample_period) {
  if (sample_period == 0) return false;
  if (sample_period == 1) return true;
  return Mix64(key_hash) % sample_period == 0;
}

// Trace id for a freshly sampled event; mixes the publish seq in so two
// events with the same key get distinct traces. Never returns 0.
inline uint64_t MakeTraceId(uint64_t key_hash, uint64_t seq) {
  const uint64_t id = Mix64(key_hash ^ (seq * 0x9E3779B97F4A7C15ULL));
  return id == 0 ? 1 : id;
}

// Per-machine in-memory flight recorder: a lock-striped ring of the most
// recent traces plus a separate slowest-N retention list, so a burst of
// fast traces cannot wash out the outliers a latency investigation needs.
// Spans arrive from many worker threads; a trace's spans all land in the
// stripe picked by its trace id, so appends to one trace serialize on one
// stripe mutex and recording never blocks the whole sink.
class TraceSink {
 public:
  struct Options {
    // Traces retained in the recent ring (across all stripes).
    size_t recent_capacity = 256;
    // Slowest traces retained after falling out of the recent ring.
    size_t slowest_capacity = 16;
    // Hard cap on spans per trace (runaway cyclic workflows).
    size_t max_spans_per_trace = 128;
  };

  struct TraceRecord {
    uint64_t trace_id = 0;
    Timestamp first_start_us = 0;
    Timestamp last_end_us = 0;
    std::vector<Span> spans;

    Timestamp duration_us() const { return last_end_us - first_start_us; }
  };

  TraceSink();
  explicit TraceSink(Options options);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Append a span to its trace (creating the trace record if new). Spans
  // with trace_id == 0 are dropped.
  void Record(Span span);

  // The most recently touched traces, newest first; `max` 0 = all.
  std::vector<TraceRecord> Recent(size_t max = 0) const;

  // The slowest traces evicted from the recent ring, slowest first.
  std::vector<TraceRecord> Slowest() const;

  int64_t spans_recorded() const { return spans_recorded_.Get(); }
  int64_t spans_dropped() const { return spans_dropped_.Get(); }
  int64_t traces_evicted() const { return traces_evicted_.Get(); }

  // Lock-hierarchy levels (pinned by tests/common/sync_test.cc). Spans
  // are recorded while subsystem locks — slate stripes, queue mutexes —
  // are held, so both levels sit near the leaf end of the hierarchy;
  // the slowest list nests inside a stripe eviction.
  static constexpr LockLevel kStripeLockLevel = LockLevel::kTraceStripe;
  static constexpr LockLevel kSlowestLockLevel = LockLevel::kTraceSlowest;

 private:
  static constexpr size_t kStripes = 8;

  struct StripeMutex : Mutex {
    StripeMutex() : Mutex(kStripeLockLevel) {}
  };

  struct Stripe {
    mutable StripeMutex mutex;
    // Front = most recently touched.
    std::list<TraceRecord> lru MUPPET_GUARDED_BY(mutex);
    std::unordered_map<uint64_t, std::list<TraceRecord>::iterator> index
        MUPPET_GUARDED_BY(mutex);
  };

  // Offer an evicted trace to the slowest-N list.
  void OfferSlowest(TraceRecord record);

  Options options_;
  size_t per_stripe_capacity_;
  std::array<Stripe, kStripes> stripes_;

  mutable Mutex slowest_mutex_{kSlowestLockLevel};
  std::vector<TraceRecord> slowest_ MUPPET_GUARDED_BY(slowest_mutex_);

  Counter spans_recorded_;
  Counter spans_dropped_;
  Counter traces_evicted_;
};

// RAII span recorder: Begin() arms it, destruction (or End()) stamps the
// end time and records into the sink. Disarmed instances cost one branch,
// so call sites wrap untraced events for free. Handy where a span must
// cover a region with several exit paths (send retries, error returns).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Arm the span; start time is taken from `clock` now. `sink` and
  // `clock` must outlive the ScopedSpan.
  void Begin(TraceSink* sink, Clock* clock, const TraceContext& context,
             SpanKind kind, int32_t machine, std::string name);

  void set_note(std::string note) { span_.note = std::move(note); }

  // The armed span's id (0 when disarmed) — what emitted child events use
  // as their parent_span.
  uint64_t span_id() const { return sink_ != nullptr ? span_.span_id : 0; }

  // Record now; further End() calls are no-ops.
  void End();

 private:
  TraceSink* sink_ = nullptr;
  Clock* clock_ = nullptr;
  Span span_;
};

}  // namespace muppet

#endif  // MUPPET_COMMON_TRACE_H_
