// Build identity for the `muppet_build_info` gauge and /statusz. A single
// constant (not generated) keeps the build hermetic; bump alongside the PR
// sequence in CHANGES.md.
#ifndef MUPPET_COMMON_VERSION_H_
#define MUPPET_COMMON_VERSION_H_

namespace muppet {

// Repo-level version: 0.<PR sequence>.0.
inline constexpr char kMuppetVersion[] = "0.9.0";

}  // namespace muppet

#endif  // MUPPET_COMMON_VERSION_H_
