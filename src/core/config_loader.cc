#include "core/config_loader.h"

#include "json/json.h"

namespace muppet {

Status OperatorRegistry::RegisterMapper(const std::string& type,
                                        MapperFactory factory) {
  if (factory == nullptr) {
    return Status::InvalidArgument("registry: null mapper factory");
  }
  if (mappers_.count(type) > 0 || updaters_.count(type) > 0) {
    return Status::AlreadyExists("registry: type '" + type +
                                 "' already registered");
  }
  mappers_[type] = std::move(factory);
  return Status::OK();
}

Status OperatorRegistry::RegisterUpdater(const std::string& type,
                                         UpdaterFactory factory) {
  if (factory == nullptr) {
    return Status::InvalidArgument("registry: null updater factory");
  }
  if (mappers_.count(type) > 0 || updaters_.count(type) > 0) {
    return Status::AlreadyExists("registry: type '" + type +
                                 "' already registered");
  }
  updaters_[type] = std::move(factory);
  return Status::OK();
}

bool OperatorRegistry::HasMapper(const std::string& type) const {
  return mappers_.count(type) > 0;
}

bool OperatorRegistry::HasUpdater(const std::string& type) const {
  return updaters_.count(type) > 0;
}

const MapperFactory* OperatorRegistry::FindMapper(
    const std::string& type) const {
  auto it = mappers_.find(type);
  return it == mappers_.end() ? nullptr : &it->second;
}

const UpdaterFactory* OperatorRegistry::FindUpdater(
    const std::string& type) const {
  auto it = updaters_.find(type);
  return it == updaters_.end() ? nullptr : &it->second;
}

namespace {

Status ParseFlushPolicy(const std::string& text, SlateFlushPolicy* policy) {
  if (text == "write_through") {
    *policy = SlateFlushPolicy::kWriteThrough;
  } else if (text == "interval" || text.empty()) {
    *policy = SlateFlushPolicy::kInterval;
  } else if (text == "on_evict") {
    *policy = SlateFlushPolicy::kOnEvict;
  } else {
    return Status::InvalidArgument("config: unknown flush_policy '" + text +
                                   "'");
  }
  return Status::OK();
}

}  // namespace

Status LoadAppConfigFromJson(const std::string& json_text,
                             const OperatorRegistry& registry,
                             AppConfig* config) {
  Result<Json> parsed = Json::Parse(json_text);
  if (!parsed.ok()) return parsed.status();
  const Json& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("config: document must be an object");
  }

  if (doc.Contains("slate_column_family")) {
    config->set_slate_column_family(doc.GetString("slate_column_family"));
  }
  if (doc.Contains("settings")) {
    config->settings() = doc["settings"];
  }

  const Json& inputs = doc["input_streams"];
  if (!inputs.is_array()) {
    return Status::InvalidArgument("config: input_streams must be an array");
  }
  for (const Json& sid : inputs.AsArray()) {
    if (!sid.is_string()) {
      return Status::InvalidArgument("config: stream ids must be strings");
    }
    MUPPET_RETURN_IF_ERROR(config->DeclareInputStream(sid.AsString()));
  }
  if (doc.Contains("streams")) {
    const Json& streams = doc["streams"];
    if (!streams.is_array()) {
      return Status::InvalidArgument("config: streams must be an array");
    }
    for (const Json& sid : streams.AsArray()) {
      if (!sid.is_string()) {
        return Status::InvalidArgument("config: stream ids must be strings");
      }
      MUPPET_RETURN_IF_ERROR(config->DeclareStream(sid.AsString()));
    }
  }

  const Json& operators = doc["operators"];
  if (!operators.is_array()) {
    return Status::InvalidArgument("config: operators must be an array");
  }
  for (const Json& op : operators.AsArray()) {
    if (!op.is_object()) {
      return Status::InvalidArgument("config: operator entries are objects");
    }
    const std::string name = op.GetString("name");
    const std::string type = op.GetString("type");
    const std::string kind = op.GetString("kind");
    if (name.empty() || type.empty()) {
      return Status::InvalidArgument(
          "config: operator needs 'name' and 'type'");
    }
    std::vector<std::string> subscriptions;
    const Json& subs = op["subscribes"];
    if (!subs.is_array()) {
      return Status::InvalidArgument("config: operator '" + name +
                                     "' needs a 'subscribes' array");
    }
    for (const Json& sid : subs.AsArray()) {
      if (!sid.is_string()) {
        return Status::InvalidArgument("config: stream ids must be strings");
      }
      subscriptions.push_back(sid.AsString());
    }

    if (kind == "map") {
      const MapperFactory* factory = registry.FindMapper(type);
      if (factory == nullptr) {
        return Status::NotFound("config: no registered mapper type '" +
                                type + "' (operator '" + name + "')");
      }
      MUPPET_RETURN_IF_ERROR(
          config->AddMapper(name, *factory, std::move(subscriptions)));
    } else if (kind == "update") {
      const UpdaterFactory* factory = registry.FindUpdater(type);
      if (factory == nullptr) {
        return Status::NotFound("config: no registered updater type '" +
                                type + "' (operator '" + name + "')");
      }
      UpdaterOptions updater_options;
      updater_options.slate_ttl_micros =
          op.GetInt("slate_ttl_ms") * kMicrosPerMilli;
      MUPPET_RETURN_IF_ERROR(ParseFlushPolicy(
          op.GetString("flush_policy"), &updater_options.flush_policy));
      if (op.Contains("flush_interval_ms")) {
        updater_options.flush_interval_micros =
            op.GetInt("flush_interval_ms") * kMicrosPerMilli;
      }
      MUPPET_RETURN_IF_ERROR(config->AddUpdater(
          name, *factory, std::move(subscriptions), updater_options));
    } else {
      return Status::InvalidArgument("config: operator '" + name +
                                     "' has unknown kind '" + kind +
                                     "' (want 'map' or 'update')");
    }
  }

  return config->Validate();
}

std::string AppConfigToJson(const AppConfig& config) {
  Json doc = Json::MakeObject();
  doc["slate_column_family"] = config.slate_column_family();
  doc["settings"] = config.settings();
  Json inputs = Json::MakeArray();
  for (const std::string& sid : config.InputStreams()) inputs.Append(sid);
  doc["input_streams"] = std::move(inputs);
  Json streams = Json::MakeArray();
  for (const std::string& sid : config.AllStreams()) {
    if (!config.IsInputStream(sid)) streams.Append(sid);
  }
  doc["streams"] = std::move(streams);
  Json operators = Json::MakeArray();
  for (const auto& [name, spec] : config.operators()) {
    Json op = Json::MakeObject();
    op["name"] = name;
    op["kind"] = spec.kind == OperatorKind::kMapper ? "map" : "update";
    Json subs = Json::MakeArray();
    for (const std::string& sid : spec.subscriptions) subs.Append(sid);
    op["subscribes"] = std::move(subs);
    if (spec.kind == OperatorKind::kUpdater) {
      op["slate_ttl_ms"] =
          spec.updater_options.slate_ttl_micros / kMicrosPerMilli;
      switch (spec.updater_options.flush_policy) {
        case SlateFlushPolicy::kWriteThrough:
          op["flush_policy"] = "write_through";
          break;
        case SlateFlushPolicy::kInterval:
          op["flush_policy"] = "interval";
          break;
        case SlateFlushPolicy::kOnEvict:
          op["flush_policy"] = "on_evict";
          break;
      }
    }
    operators.Append(std::move(op));
  }
  doc["operators"] = std::move(operators);
  return doc.DumpPretty();
}

}  // namespace muppet
