// Workflow configuration files. The paper's developers write map/update
// functions "then a configuration file that includes the workflow graph"
// (§3); Appendix A's operators are constructed from (config, name) so one
// class can back several named functions. This loader reproduces that
// split: operator *code* registers factories under type names in an
// OperatorRegistry; a JSON document declares the graph and binds each
// function name to a registered type.
//
// Example document:
//
// {
//   "slate_column_family": "myapp",
//   "input_streams": ["S1"],
//   "streams": ["S2"],
//   "settings": {"threshold": 4},
//   "operators": [
//     {"name": "M1", "type": "retailer_mapper", "kind": "map",
//      "subscribes": ["S1"]},
//     {"name": "U1", "type": "counter", "kind": "update",
//      "subscribes": ["S2"], "slate_ttl_ms": 0,
//      "flush_policy": "interval", "flush_interval_ms": 100}
//   ]
// }
#ifndef MUPPET_CORE_CONFIG_LOADER_H_
#define MUPPET_CORE_CONFIG_LOADER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "core/topology.h"

namespace muppet {

// Registry of operator implementations by type name. The same registry is
// typically process-global and filled at startup by the application's
// operator library.
class OperatorRegistry {
 public:
  OperatorRegistry() = default;

  Status RegisterMapper(const std::string& type, MapperFactory factory);
  Status RegisterUpdater(const std::string& type, UpdaterFactory factory);

  bool HasMapper(const std::string& type) const;
  bool HasUpdater(const std::string& type) const;

  const MapperFactory* FindMapper(const std::string& type) const;
  const UpdaterFactory* FindUpdater(const std::string& type) const;

 private:
  std::map<std::string, MapperFactory> mappers_;
  std::map<std::string, UpdaterFactory> updaters_;
};

// Parse a JSON workflow document and populate `config`, resolving each
// operator's "type" through `registry`. The result still needs
// AppConfig::Validate() (called here as the final step). Errors carry the
// offending field.
Status LoadAppConfigFromJson(const std::string& json_text,
                             const OperatorRegistry& registry,
                             AppConfig* config);

// Serialize the declarative part of a config back to JSON (operator types
// are not recoverable — they are code — so "type" is omitted; useful for
// introspection/status pages).
std::string AppConfigToJson(const AppConfig& config);

}  // namespace muppet

#endif  // MUPPET_CORE_CONFIG_LOADER_H_
