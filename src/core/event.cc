#include "core/event.h"

namespace muppet {

void EncodeEvent(const Event& event, Bytes* out) {
  PutLengthPrefixed(out, event.stream);
  PutVarint64(out, static_cast<uint64_t>(event.ts));
  PutLengthPrefixed(out, event.key);
  PutLengthPrefixed(out, event.value);
  PutVarint64(out, event.seq);
  PutVarint64(out, static_cast<uint64_t>(event.origin_ts));
}

Status DecodeEvent(BytesView data, Event* event) {
  const char* p = data.data();
  const char* limit = p + data.size();
  BytesView stream, key, value;
  uint64_t ts = 0, seq = 0, origin = 0;
  if (!GetLengthPrefixed(&p, limit, &stream) || !GetVarint64(&p, limit, &ts) ||
      !GetLengthPrefixed(&p, limit, &key) ||
      !GetLengthPrefixed(&p, limit, &value) || !GetVarint64(&p, limit, &seq) ||
      !GetVarint64(&p, limit, &origin) || p != limit) {
    return Status::Corruption("event: malformed wire data");
  }
  event->stream.assign(stream);
  event->ts = static_cast<Timestamp>(ts);
  event->key.assign(key);
  event->value.assign(value);
  event->seq = seq;
  event->origin_ts = static_cast<Timestamp>(origin);
  return Status::OK();
}

}  // namespace muppet
