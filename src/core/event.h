// Events and streams (paper §3). An event is a tuple <sid, ts, k, v>:
// stream id, globally ordered timestamp, grouping key, and an opaque value
// blob. A stream is the sequence of events with one sid in increasing
// timestamp order, with a deterministic tie-break.
#ifndef MUPPET_CORE_EVENT_H_
#define MUPPET_CORE_EVENT_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/trace.h"

namespace muppet {

struct Event {
  // Stream id this event belongs to.
  std::string stream;
  // Global timestamp (microseconds). Output events must carry a timestamp
  // greater than their input event's, which keeps cyclic workflows
  // well-defined (§3).
  Timestamp ts = 0;
  // Grouping key; events with equal keys reach the same updater (and
  // therefore the same slate). Not necessarily unique.
  Bytes key;
  // Opaque payload ("any blob associated with the event").
  Bytes value;

  // Deterministic tie-breaker for events with equal timestamps: a
  // per-application publish sequence number. Assigned by the engine.
  uint64_t seq = 0;

  // Wall-clock time the event's external ancestor entered the system;
  // carried through the workflow for end-to-end latency measurement.
  Timestamp origin_ts = 0;

  // Sampled-tracing state (common/trace.h). Default (trace_id 0) means
  // untraced. Carried at the routed-event layer on the wire — EncodeEvent
  // below stays trace-free, so slate-ledger byte comparisons and fault
  // signatures are unaffected by whether an event happens to be sampled.
  // muppet-lint: allow(wire): rides the routed-event envelope instead
  TraceContext trace;
};

// The §3 stream order: (ts, then seq) — seq is the deterministic tie-break.
inline bool EventOrderLess(const Event& a, const Event& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.seq < b.seq;
}

// Wire form for cross-machine transport (and tests of it).
void EncodeEvent(const Event& event, Bytes* out);
Status DecodeEvent(BytesView data, Event* event);

}  // namespace muppet

#endif  // MUPPET_CORE_EVENT_H_
