#include "core/hash_ring.h"

#include <algorithm>

#include "common/hash.h"

namespace muppet {

struct HashRing::OverrideState {
  std::atomic<size_t> active{0};
  mutable SharedMutex mutex{kOverrideLockLevel};
  std::map<std::pair<std::string, Bytes>, MachineId> map
      MUPPET_GUARDED_BY(mutex);
};

HashRing::HashRing(int vnodes, uint64_t seed)
    : vnodes_(vnodes < 1 ? 1 : vnodes),
      seed_(seed),
      override_state_(std::make_unique<OverrideState>()) {}

HashRing::HashRing(HashRing&&) noexcept = default;
HashRing& HashRing::operator=(HashRing&&) noexcept = default;
HashRing::~HashRing() = default;

void HashRing::AddWorker(const std::string& function, WorkerRef worker) {
  FunctionRing& ring = rings_[function];
  if (!ring.workers.insert(worker).second) return;  // already present
  for (int v = 0; v < vnodes_; ++v) {
    const uint64_t h =
        Mix64(seed_ ^ Fnv1a64(function) ^
              (static_cast<uint64_t>(static_cast<uint32_t>(worker.machine))
               << 32) ^
              (static_cast<uint64_t>(static_cast<uint32_t>(worker.slot))
               << 8) ^
              static_cast<uint64_t>(v));
    ring.points.emplace_back(h, worker);
  }
  std::sort(ring.points.begin(), ring.points.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
}

Result<WorkerRef> HashRing::RouteNth(const std::string& function,
                                     BytesView key,
                                     const std::set<MachineId>& failed,
                                     int nth) const {
  auto it = rings_.find(function);
  if (it == rings_.end()) {
    return Status::NotFound("ring: unknown function '" + function + "'");
  }
  const FunctionRing& ring = it->second;
  if (ring.points.empty()) {
    return Status::Unavailable("ring: no workers for '" + function + "'");
  }

  WorkerRef overridden;
  if (OverrideFor(function, key, failed, &overridden)) {
    // Pinned placement: both routing choices collapse onto the override
    // target so the whole (function, key) stream lands on one machine.
    return overridden;
  }

  const uint64_t h = SeededHash(key, Fnv1a64(function));
  // First point at or after h.
  size_t pos = static_cast<size_t>(
      std::lower_bound(ring.points.begin(), ring.points.end(),
                       std::make_pair(h, WorkerRef{}),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       }) -
      ring.points.begin());

  std::vector<WorkerRef> seen;
  for (size_t walked = 0; walked < ring.points.size(); ++walked) {
    const auto& [hash, worker] = ring.points[(pos + walked) %
                                             ring.points.size()];
    if (failed.count(worker.machine) > 0) continue;
    if (std::find(seen.begin(), seen.end(), worker) != seen.end()) continue;
    if (static_cast<int>(seen.size()) == nth) return worker;
    seen.push_back(worker);
  }
  if (!seen.empty()) {
    // Fewer than nth+1 distinct survivors: wrap to the primary.
    return seen.front();
  }
  return Status::Unavailable("ring: all workers of '" + function +
                             "' are on failed machines");
}

Result<WorkerRef> HashRing::Route(const std::string& function, BytesView key,
                                  const std::set<MachineId>& failed) const {
  return RouteNth(function, key, failed, 0);
}

Result<WorkerRef> HashRing::RouteSecondary(
    const std::string& function, BytesView key,
    const std::set<MachineId>& failed) const {
  return RouteNth(function, key, failed, 1);
}

std::vector<WorkerRef> HashRing::WorkersOf(const std::string& function) const {
  auto it = rings_.find(function);
  if (it == rings_.end()) return {};
  return std::vector<WorkerRef>(it->second.workers.begin(),
                                it->second.workers.end());
}

std::map<MachineId, int> HashRing::OwnershipCounts(
    const std::string& function) const {
  std::map<MachineId, int> out;
  auto it = rings_.find(function);
  if (it == rings_.end()) return out;
  for (const auto& [hash, worker] : it->second.points) {
    ++out[worker.machine];
  }
  return out;
}

bool HashRing::OverrideFor(const std::string& function, BytesView key,
                           const std::set<MachineId>& failed,
                           WorkerRef* out) const {
  OverrideState& state = *override_state_;
  if (state.active.load(std::memory_order_acquire) == 0) return false;
  MachineId machine = kInvalidMachine;
  {
    ReaderMutexLock guard(state.mutex);
    auto it = state.map.find({function, Bytes(key)});
    if (it == state.map.end()) return false;
    machine = it->second;
  }
  if (failed.count(machine) > 0) return false;
  auto ring_it = rings_.find(function);
  if (ring_it == rings_.end()) return false;
  // The override names a machine; route to that machine's first worker
  // slot for the function (Muppet 2.0 registers exactly one).
  for (const WorkerRef& worker : ring_it->second.workers) {
    if (worker.machine == machine) {
      *out = worker;
      return true;
    }
  }
  return false;
}

bool HashRing::SetOverride(const std::string& function, BytesView key,
                           MachineId machine) {
  OverrideState& state = *override_state_;
  WriterMutexLock guard(state.mutex);
  auto it = state.map.find({function, Bytes(key)});
  if (it != state.map.end()) {
    it->second = machine;
    return true;
  }
  if (state.map.size() >= override_capacity_) return false;
  state.map[{function, Bytes(key)}] = machine;
  state.active.store(state.map.size(), std::memory_order_release);
  return true;
}

void HashRing::ClearOverride(const std::string& function, BytesView key) {
  OverrideState& state = *override_state_;
  WriterMutexLock guard(state.mutex);
  state.map.erase({function, Bytes(key)});
  state.active.store(state.map.size(), std::memory_order_release);
}

void HashRing::ClearAllOverrides() {
  OverrideState& state = *override_state_;
  WriterMutexLock guard(state.mutex);
  state.map.clear();
  state.active.store(0, std::memory_order_release);
}

size_t HashRing::override_count() const {
  OverrideState& state = *override_state_;
  ReaderMutexLock guard(state.mutex);
  return state.map.size();
}

std::vector<HashRing::OverrideEntry> HashRing::Overrides() const {
  OverrideState& state = *override_state_;
  ReaderMutexLock guard(state.mutex);
  std::vector<OverrideEntry> out;
  out.reserve(state.map.size());
  for (const auto& [fk, machine] : state.map) {
    out.push_back(OverrideEntry{fk.first, fk.second, machine});
  }
  return out;
}

std::vector<std::string> HashRing::Functions() const {
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) out.push_back(name);
  return out;
}

}  // namespace muppet
