// Worker-routing hash ring (paper §4.1, §4.3). Every worker carries the
// same ring, so after producing an event any worker "can instantly
// calculate which worker the event hashes to" from <event key, destination
// function> — no master on the data path. On machine failure the ring
// deterministically reroutes the failed workers' keys to surviving workers
// ("Since all workers use the same hash ring, from then on all events with
// the same key will be routed to worker C instead of the (now failed)
// worker B").
#ifndef MUPPET_CORE_HASH_RING_H_
#define MUPPET_CORE_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/transport.h"

namespace muppet {

// Identifies a worker: a machine and a per-machine worker slot.
struct WorkerRef {
  MachineId machine = kInvalidMachine;
  int32_t slot = 0;

  friend bool operator==(const WorkerRef& a, const WorkerRef& b) {
    return a.machine == b.machine && a.slot == b.slot;
  }
  friend bool operator<(const WorkerRef& a, const WorkerRef& b) {
    if (a.machine != b.machine) return a.machine < b.machine;
    return a.slot < b.slot;
  }
};

class HashRing {
 public:
  // `vnodes` controls placement smoothness; identical arguments produce an
  // identical ring on every machine (determinism is the whole point).
  explicit HashRing(int vnodes = 128, uint64_t seed = 0x9173ull);

  // Register a worker as running `function`. A function's events route
  // only among that function's workers (in Muppet 1.0 each worker runs
  // exactly one function).
  void AddWorker(const std::string& function, WorkerRef worker);

  // Route <key, function> to a worker, skipping workers on machines in
  // `failed`. Unavailable when the function has no surviving workers;
  // NotFound when the function is unknown.
  Result<WorkerRef> Route(const std::string& function, BytesView key,
                          const std::set<MachineId>& failed) const;

  // Second-choice routing for Muppet 2.0's two-queue dispatch: the next
  // distinct worker after the primary on the ring. Equals the primary if
  // the function has a single surviving worker.
  Result<WorkerRef> RouteSecondary(const std::string& function, BytesView key,
                                   const std::set<MachineId>& failed) const;

  // All workers of a function (sorted).
  std::vector<WorkerRef> WorkersOf(const std::string& function) const;

  // Vnode points of `function` owned per machine — the /statusz view of
  // how key space is spread across the cluster. Empty map for unknown
  // functions.
  std::map<MachineId, int> OwnershipCounts(const std::string& function) const;

  // Names of all functions with registered workers (sorted).
  std::vector<std::string> Functions() const;

 private:
  struct FunctionRing {
    // Sorted (hash, worker) circle.
    std::vector<std::pair<uint64_t, WorkerRef>> points;
    std::set<WorkerRef> workers;
  };

  // Walk the ring clockwise from hash(key), returning the nth distinct
  // surviving worker (n = 0 primary, 1 secondary).
  Result<WorkerRef> RouteNth(const std::string& function, BytesView key,
                             const std::set<MachineId>& failed,
                             int nth) const;

  int vnodes_;
  uint64_t seed_;
  std::map<std::string, FunctionRing> rings_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_HASH_RING_H_
