// Worker-routing hash ring (paper §4.1, §4.3). Every worker carries the
// same ring, so after producing an event any worker "can instantly
// calculate which worker the event hashes to" from <event key, destination
// function> — no master on the data path. On machine failure the ring
// deterministically reroutes the failed workers' keys to surviving workers
// ("Since all workers use the same hash ring, from then on all events with
// the same key will be routed to worker C instead of the (now failed)
// worker B").
#ifndef MUPPET_CORE_HASH_RING_H_
#define MUPPET_CORE_HASH_RING_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/transport.h"

namespace muppet {

// Identifies a worker: a machine and a per-machine worker slot.
struct WorkerRef {
  MachineId machine = kInvalidMachine;
  int32_t slot = 0;

  friend bool operator==(const WorkerRef& a, const WorkerRef& b) {
    return a.machine == b.machine && a.slot == b.slot;
  }
  friend bool operator<(const WorkerRef& a, const WorkerRef& b) {
    if (a.machine != b.machine) return a.machine < b.machine;
    return a.slot < b.slot;
  }
};

class HashRing {
 public:
  // `vnodes` controls placement smoothness; identical arguments produce an
  // identical ring on every machine (determinism is the whole point).
  explicit HashRing(int vnodes = 128, uint64_t seed = 0x9173ull);
  HashRing(HashRing&&) noexcept;
  HashRing& operator=(HashRing&&) noexcept;
  ~HashRing();

  // Register a worker as running `function`. A function's events route
  // only among that function's workers (in Muppet 1.0 each worker runs
  // exactly one function).
  void AddWorker(const std::string& function, WorkerRef worker);

  // Route <key, function> to a worker, skipping workers on machines in
  // `failed`. Unavailable when the function has no surviving workers;
  // NotFound when the function is unknown.
  Result<WorkerRef> Route(const std::string& function, BytesView key,
                          const std::set<MachineId>& failed) const;

  // Second-choice routing for Muppet 2.0's two-queue dispatch: the next
  // distinct worker after the primary on the ring. Equals the primary if
  // the function has a single surviving worker.
  Result<WorkerRef> RouteSecondary(const std::string& function, BytesView key,
                                   const std::set<MachineId>& failed) const;

  // All workers of a function (sorted).
  std::vector<WorkerRef> WorkersOf(const std::string& function) const;

  // Vnode points of `function` owned per machine — the /statusz view of
  // how key space is spread across the cluster. Empty map for unknown
  // functions.
  std::map<MachineId, int> OwnershipCounts(const std::string& function) const;

  // Names of all functions with registered workers (sorted).
  std::vector<std::string> Functions() const;

  // --- Placement override table -------------------------------------
  //
  // A bounded (function, key) -> machine table consulted before the
  // vnode walk, letting the load manager re-weight ownership online
  // without rebuilding the ring. Overrides are advisory: when the
  // override's machine is in `failed`, Route falls back to the normal
  // clockwise walk, so rerouting-around-failures (invariant D) is
  // unaffected. Thread-safe; the no-override fast path is one relaxed
  // atomic load.

  struct OverrideEntry {
    std::string function;
    Bytes key;
    MachineId machine = kInvalidMachine;
  };

  // Returns false when the table is at capacity and (function, key) is
  // not already present.
  bool SetOverride(const std::string& function, BytesView key,
                   MachineId machine);
  void ClearOverride(const std::string& function, BytesView key);
  void ClearAllOverrides();
  size_t override_count() const;
  std::vector<OverrideEntry> Overrides() const;
  size_t override_capacity() const { return override_capacity_; }

  static constexpr LockLevel kOverrideLockLevel = LockLevel::kRingOverride;

 private:
  struct FunctionRing {
    // Sorted (hash, worker) circle.
    std::vector<std::pair<uint64_t, WorkerRef>> points;
    std::set<WorkerRef> workers;
  };

  // Walk the ring clockwise from hash(key), returning the nth distinct
  // surviving worker (n = 0 primary, 1 secondary).
  Result<WorkerRef> RouteNth(const std::string& function, BytesView key,
                             const std::set<MachineId>& failed,
                             int nth) const;

  // Override for (function, key) if one exists and its machine hosts a
  // worker of `function` outside `failed`.
  bool OverrideFor(const std::string& function, BytesView key,
                   const std::set<MachineId>& failed, WorkerRef* out) const;

  int vnodes_;
  uint64_t seed_;
  std::map<std::string, FunctionRing> rings_;

  static constexpr size_t kDefaultOverrideCapacity = 64;
  size_t override_capacity_ = kDefaultOverrideCapacity;
  // Heap-held so HashRing stays movable (tests build rings by value);
  // allocated in the constructor, never null.
  struct OverrideState;
  std::unique_ptr<OverrideState> override_state_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_HASH_RING_H_
