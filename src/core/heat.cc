#include "core/heat.h"

#include <algorithm>

namespace muppet {

HeatTracker::HeatTracker(HeatTrackerOptions options) : options_(options) {}

void HeatTracker::Record(int32_t function_id, BytesView key) {
  samples_recorded_.fetch_add(1, std::memory_order_relaxed);
  MutexLock guard(mutex_);
  ++sampled_total_;
  auto it = cells_.find({function_id, Bytes(key)});
  if (it != cells_.end()) {
    ++it->second.count;
    return;
  }
  if (cells_.size() < std::max<size_t>(options_.capacity, 1)) {
    cells_[{function_id, Bytes(key)}] = Cell{1, 0};
    return;
  }
  // Space-saving eviction: replace the minimum-count entry; the newcomer
  // inherits min+1 with error=min (it may have arrived up to `min` times
  // while untracked).
  auto min_it = cells_.begin();
  for (auto cell = cells_.begin(); cell != cells_.end(); ++cell) {
    if (cell->second.count < min_it->second.count) min_it = cell;
  }
  const int64_t min_count = min_it->second.count;
  cells_.erase(min_it);
  cells_[{function_id, Bytes(key)}] = Cell{min_count + 1, min_count};
}

void HeatTracker::Decay(double factor) {
  if (factor < 0.0) factor = 0.0;
  if (factor >= 1.0) return;
  MutexLock guard(mutex_);
  sampled_total_ = static_cast<int64_t>(sampled_total_ * factor);
  for (auto it = cells_.begin(); it != cells_.end();) {
    it->second.count = static_cast<int64_t>(it->second.count * factor);
    it->second.error = static_cast<int64_t>(it->second.error * factor);
    if (it->second.count <= 0) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<HeatEntry> HeatTracker::TopK(size_t k) const {
  std::vector<HeatEntry> entries;
  {
    MutexLock guard(mutex_);
    entries.reserve(cells_.size());
    for (const auto& [id_key, cell] : cells_) {
      HeatEntry entry;
      entry.function_id = id_key.first;
      entry.key = id_key.second;
      entry.count = cell.count;
      entry.error = cell.error;
      entries.push_back(std::move(entry));
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const HeatEntry& a, const HeatEntry& b) {
                     return a.count > b.count;
                   });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

int64_t HeatTracker::sampled_total() const {
  MutexLock guard(mutex_);
  return sampled_total_;
}

}  // namespace muppet
