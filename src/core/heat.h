// Per-machine hotspot detection: a space-saving heavy-hitter sketch over
// (function, key) pairs, fed by uniform arrival sampling on the dispatch
// path. The sketch keeps a fixed number of counters; when a new pair
// arrives at a full sketch it evicts the minimum-count entry and inherits
// its count as the new entry's error bound (Metwally et al.'s
// space-saving algorithm). Sampling every Nth arrival through one relaxed
// atomic keeps the dispatch-path overhead well under 1%; the load manager
// reads TopK() periodically and Decay() ages counts so a key that cools
// off falls back out of the sketch.
#ifndef MUPPET_CORE_HEAT_H_
#define MUPPET_CORE_HEAT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/sync.h"

namespace muppet {

struct HeatTrackerOptions {
  // Number of (function, key) counters the sketch retains (min 1).
  size_t capacity = 64;
  // Record one arrival in `sample_period` (1 = record everything; min 1).
  uint32_t sample_period = 32;
};

struct HeatEntry {
  int32_t function_id = -1;
  Bytes key;
  // Estimated sampled arrivals (upper bound; true count >= count - error).
  int64_t count = 0;
  // Overestimation bound inherited from the entry this one evicted.
  int64_t error = 0;
};

class HeatTracker {
 public:
  explicit HeatTracker(HeatTrackerOptions options = {});

  // Dispatch-path gate: one relaxed fetch_add, true every Nth call. Call
  // Record() only when this returns true.
  bool ShouldSample() {
    const uint32_t period = options_.sample_period > 0 ? options_.sample_period : 1;
    return arrivals_.fetch_add(1, std::memory_order_relaxed) % period == 0;
  }

  // Slow path (amortized by the sampling period): fold one sampled
  // arrival for (function_id, key) into the sketch.
  void Record(int32_t function_id, BytesView key);

  // Multiply every count (and the sampled total) by `factor` in [0,1),
  // dropping entries that decay below one. Called by the load manager so
  // heat reflects recent traffic, not history.
  void Decay(double factor);

  // The hottest entries, hottest first, at most `k`.
  std::vector<HeatEntry> TopK(size_t k) const;

  // Decayed total of sampled arrivals — the denominator for "fraction of
  // traffic" heat estimates over TopK counts.
  int64_t sampled_total() const;

  // Monotone count of Record() calls (metrics; unaffected by Decay).
  int64_t samples_recorded() const {
    return samples_recorded_.load(std::memory_order_relaxed);
  }

  uint32_t sample_period() const { return options_.sample_period; }

  static constexpr LockLevel kLockLevel = LockLevel::kHeat;

 private:
  struct Cell {
    int64_t count = 0;
    int64_t error = 0;
  };

  const HeatTrackerOptions options_;
  std::atomic<uint64_t> arrivals_{0};
  std::atomic<int64_t> samples_recorded_{0};

  mutable Mutex mutex_{kLockLevel};
  // Keyed by (function_id, key) so distinct operators' heat never merges.
  std::map<std::pair<int32_t, Bytes>, Cell> cells_ MUPPET_GUARDED_BY(mutex_);
  int64_t sampled_total_ MUPPET_GUARDED_BY(mutex_) = 0;
};

}  // namespace muppet

#endif  // MUPPET_CORE_HEAT_H_
