#include "core/intern.h"

namespace muppet {

uint32_t NameInterner::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int32_t NameInterner::Find(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNotFound : static_cast<int32_t>(it->second);
}

}  // namespace muppet
