// Name interning: dense integer ids for the small, fixed sets of names an
// application declares (streams, operator functions). The Muppet 2.0 hot
// path resolves every routed event's destination; interning at Start()
// turns those per-event string-map probes into vector indexing, and lets a
// routed event carry its destination as a 32-bit id instead of a
// heap-allocated string (§4.5: keep the intra-machine path copy-free).
//
// The table is built once, single-threaded, before the engine starts its
// workers; afterwards it is read-only and therefore safe to share across
// threads without locks.
#ifndef MUPPET_CORE_INTERN_H_
#define MUPPET_CORE_INTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace muppet {

class NameInterner {
 public:
  static constexpr int32_t kNotFound = -1;

  // Intern `name`, returning its dense id; returns the existing id when the
  // name was interned before. Ids are assigned 0, 1, 2, ... in first-intern
  // order, so iteration order is deterministic.
  uint32_t Intern(std::string_view name);

  // Id of `name`, or kNotFound. Lock-free; safe concurrently with other
  // readers once building is done.
  int32_t Find(std::string_view name) const;

  // Inverse mapping; `id` must come from Intern()/Find().
  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  // Transparent hashing so Find(string_view) probes without constructing a
  // temporary std::string.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_INTERN_H_
