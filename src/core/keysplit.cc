#include "core/keysplit.h"

#include <charconv>

namespace muppet {

Bytes MakeSplitKey(BytesView base_key, int shard) {
  Bytes out;
  out.reserve(base_key.size() + 4);
  for (char c : base_key) {
    out.push_back(c);
    if (c == '#') out.push_back('#');  // escape
  }
  out.push_back('#');
  out.append(std::to_string(shard));
  return out;
}

Status ParseSplitKey(BytesView split_key, Bytes* base_key, int* shard) {
  // Find the unescaped '#' separator: scan from the end — the suffix after
  // it must be all digits, and the '#' must not be part of an "##" escape.
  size_t sep = Bytes::npos;
  for (size_t i = split_key.size(); i-- > 0;) {
    if (split_key[i] == '#') {
      // Count preceding '#'s; separator only if that count is even.
      size_t hashes = 0;
      size_t j = i;
      while (j > 0 && split_key[j - 1] == '#') {
        ++hashes;
        --j;
      }
      if (hashes % 2 == 0) {
        sep = i;
      }
      break;  // only the last run of '#'s can hold the separator
    }
    if (split_key[i] < '0' || split_key[i] > '9') break;
  }
  if (sep == Bytes::npos || sep + 1 >= split_key.size()) {
    return Status::InvalidArgument("keysplit: not a split key");
  }
  int value = 0;
  auto [p, ec] = std::from_chars(split_key.data() + sep + 1,
                                 split_key.data() + split_key.size(), value);
  if (ec != std::errc() || p != split_key.data() + split_key.size() ||
      value < 0) {
    return Status::InvalidArgument("keysplit: bad shard suffix");
  }
  // Unescape the base key.
  base_key->clear();
  for (size_t i = 0; i < sep; ++i) {
    base_key->push_back(split_key[i]);
    if (split_key[i] == '#') {
      if (i + 1 >= sep || split_key[i + 1] != '#') {
        return Status::InvalidArgument("keysplit: unescaped '#' in base key");
      }
      ++i;  // skip the escape twin
    }
  }
  *shard = value;
  return Status::OK();
}

KeySplitter::KeySplitter(int shards, std::map<Bytes, bool> hot_keys)
    : shards_(shards < 1 ? 1 : shards),
      split_all_(false),
      hot_keys_(std::move(hot_keys)) {}

KeySplitter::KeySplitter(int shards)
    : shards_(shards < 1 ? 1 : shards), split_all_(true) {}

bool KeySplitter::IsSplit(BytesView key) const {
  if (shards_ <= 1) return false;
  if (split_all_) return true;
  return hot_keys_.count(Bytes(key)) > 0;
}

Bytes KeySplitter::RouteKey(BytesView key) {
  if (!IsSplit(key)) return Bytes(key);
  uint64_t& cursor = cursors_[Bytes(key)];
  const int shard = static_cast<int>(cursor % static_cast<uint64_t>(shards_));
  ++cursor;
  return MakeSplitKey(key, shard);
}

}  // namespace muppet
