#include "core/keysplit.h"

#include <charconv>

namespace muppet {

Bytes MakeSplitKey(BytesView base_key, int shard) {
  // A negative shard would emit "key#-1", which ParseSplitKey (correctly)
  // rejects; clamp so every produced key round-trips.
  if (shard < 0) shard = 0;
  Bytes out;
  out.reserve(base_key.size() + 4);
  for (char c : base_key) {
    out.push_back(c);
    if (c == '#') out.push_back('#');  // escape
  }
  out.push_back('#');
  out.append(std::to_string(shard));
  return out;
}

Status ParseSplitKey(BytesView split_key, Bytes* base_key, int* shard) {
  // Find the unescaped '#' separator: scan from the end — the suffix after
  // it must be all digits, and the '#' must not be part of an "##" escape.
  size_t sep = Bytes::npos;
  for (size_t i = split_key.size(); i-- > 0;) {
    if (split_key[i] == '#') {
      // Count preceding '#'s; separator only if that count is even.
      size_t hashes = 0;
      size_t j = i;
      while (j > 0 && split_key[j - 1] == '#') {
        ++hashes;
        --j;
      }
      if (hashes % 2 == 0) {
        sep = i;
      }
      break;  // only the last run of '#'s can hold the separator
    }
    if (split_key[i] < '0' || split_key[i] > '9') break;
  }
  if (sep == Bytes::npos || sep + 1 >= split_key.size()) {
    return Status::InvalidArgument("keysplit: not a split key");
  }
  int value = 0;
  auto [p, ec] = std::from_chars(split_key.data() + sep + 1,
                                 split_key.data() + split_key.size(), value);
  if (ec != std::errc() || p != split_key.data() + split_key.size() ||
      value < 0) {
    return Status::InvalidArgument("keysplit: bad shard suffix");
  }
  // Unescape the base key.
  base_key->clear();
  for (size_t i = 0; i < sep; ++i) {
    base_key->push_back(split_key[i]);
    if (split_key[i] == '#') {
      if (i + 1 >= sep || split_key[i + 1] != '#') {
        return Status::InvalidArgument("keysplit: unescaped '#' in base key");
      }
      ++i;  // skip the escape twin
    }
  }
  *shard = value;
  return Status::OK();
}

KeySplitter::KeySplitter(int shards, std::map<Bytes, bool> hot_keys)
    : shards_(shards < 1 ? 1 : shards),
      split_all_(false),
      hot_keys_(std::move(hot_keys)) {}

KeySplitter::KeySplitter(int shards)
    : shards_(shards < 1 ? 1 : shards), split_all_(true) {}

bool KeySplitter::IsSplit(BytesView key) const {
  if (shards_ <= 1) return false;
  if (split_all_) return true;
  return hot_keys_.count(Bytes(key)) > 0;
}

Bytes KeySplitter::RouteKey(BytesView key) {
  if (!IsSplit(key)) return Bytes(key);
  uint64_t& cursor = cursors_[Bytes(key)];
  const int shard = static_cast<int>(cursor % static_cast<uint64_t>(shards_));
  ++cursor;
  return MakeSplitKey(key, shard);
}

SplitTable::SplitTable(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

bool SplitTable::Lookup(int32_t function_id, BytesView key,
                        State* state) const {
  ReaderMutexLock guard(mutex_);
  auto it = cells_.find({function_id, Bytes(key)});
  if (it == cells_.end()) return false;
  if (state != nullptr) *state = it->second.state;
  return true;
}

int SplitTable::RouteShard(int32_t function_id, BytesView key,
                           State* state) const {
  ReaderMutexLock guard(mutex_);
  auto it = cells_.find({function_id, Bytes(key)});
  if (it == cells_.end()) return -1;
  if (state != nullptr) *state = it->second.state;
  const Cell& cell = it->second;
  if (cell.state.draining || cell.state.shards <= 1) return -1;
  const uint64_t cursor =
      cell.cursor.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(cursor %
                          static_cast<uint64_t>(cell.state.shards));
}

bool SplitTable::Split(int32_t function_id, BytesView key, int shards) {
  if (shards <= 1) return false;
  WriterMutexLock guard(mutex_);
  auto it = cells_.find({function_id, Bytes(key)});
  if (it != cells_.end()) {
    // Never shrink a live split: narrowing would strand slates in the
    // dropped shards until the next merge.
    Cell& cell = it->second;
    if (cell.state.draining || shards <= cell.state.shards) return false;
    cell.state.shards = shards;
    ++cell.state.epoch;
    return true;
  }
  if (cells_.size() >= max_entries_) return false;
  Cell& cell = cells_[{function_id, Bytes(key)}];
  cell.state.shards = shards;
  cell.state.epoch = 1;
  active_.store(cells_.size(), std::memory_order_release);
  return true;
}

bool SplitTable::BeginMerge(int32_t function_id, BytesView key) {
  WriterMutexLock guard(mutex_);
  auto it = cells_.find({function_id, Bytes(key)});
  if (it == cells_.end() || it->second.state.draining) return false;
  it->second.state.draining = true;
  ++it->second.state.epoch;
  it->second.state.merge_found = 0;
  return true;
}

void SplitTable::NoteMergeFound(int32_t function_id, BytesView key,
                                int64_t bytes) {
  WriterMutexLock guard(mutex_);
  auto it = cells_.find({function_id, Bytes(key)});
  if (it == cells_.end()) return;
  it->second.state.merge_found += bytes;
}

int64_t SplitTable::TakeMergeFound(int32_t function_id, BytesView key) {
  WriterMutexLock guard(mutex_);
  auto it = cells_.find({function_id, Bytes(key)});
  if (it == cells_.end()) return 0;
  const int64_t found = it->second.state.merge_found;
  it->second.state.merge_found = 0;
  return found;
}

void SplitTable::Finish(int32_t function_id, BytesView key) {
  WriterMutexLock guard(mutex_);
  cells_.erase({function_id, Bytes(key)});
  active_.store(cells_.size(), std::memory_order_release);
}

std::vector<SplitTable::Entry> SplitTable::Entries() const {
  ReaderMutexLock guard(mutex_);
  std::vector<Entry> entries;
  entries.reserve(cells_.size());
  for (const auto& [id_key, cell] : cells_) {
    Entry entry;
    entry.function_id = id_key.first;
    entry.key = id_key.second;
    entry.state = cell.state;
    entries.push_back(std::move(entry));
  }
  return entries;
}

size_t SplitTable::size() const {
  ReaderMutexLock guard(mutex_);
  return cells_.size();
}

}  // namespace muppet
