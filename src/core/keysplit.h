// Hotspot mitigation by key splitting (paper §5, Example 6). When an
// update computation is associative and commutative, an overloaded key
// ("Best Buy") can be partitioned into sub-keys ("Best Buy#0", "Best
// Buy#1", ...) counted by independent updaters whose partial results are
// periodically re-aggregated under the original key by a downstream
// updater. These helpers implement the mechanical parts: sub-key naming,
// deterministic-but-balanced shard selection, and parsing back.
#ifndef MUPPET_CORE_KEYSPLIT_H_
#define MUPPET_CORE_KEYSPLIT_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace muppet {

// "key#shard". The separator '#' is escaped in the base key ("##") so
// parsing is unambiguous for arbitrary keys.
Bytes MakeSplitKey(BytesView base_key, int shard);

// Inverse. Returns InvalidArgument for inputs not produced by MakeSplitKey.
Status ParseSplitKey(BytesView split_key, Bytes* base_key, int* shard);

// Chooses a shard for each event of a hot key. Round-robin per key gives
// the even spread Example 6 wants; it is deterministic given the sequence
// of calls (the engines call it from the single mapper that owns the
// split).
class KeySplitter {
 public:
  // `shards` sub-keys per split key; keys not in `hot_keys` are passed
  // through unchanged (shards <= 1 disables splitting entirely).
  KeySplitter(int shards, std::map<Bytes, bool> hot_keys);

  // Convenience: split every key.
  explicit KeySplitter(int shards);

  // Returns the (possibly split) routing key for an event with `key`.
  Bytes RouteKey(BytesView key);

  int shards() const { return shards_; }
  bool IsSplit(BytesView key) const;

 private:
  int shards_;
  bool split_all_;
  std::map<Bytes, bool> hot_keys_;
  // Per-key round-robin cursors.
  std::map<Bytes, uint64_t> cursors_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_KEYSPLIT_H_
