// Hotspot mitigation by key splitting (paper §5, Example 6). When an
// update computation is associative and commutative, an overloaded key
// ("Best Buy") can be partitioned into sub-keys ("Best Buy#0", "Best
// Buy#1", ...) counted by independent updaters whose partial results are
// periodically re-aggregated under the original key by a downstream
// updater. These helpers implement the mechanical parts: sub-key naming,
// deterministic-but-balanced shard selection, and parsing back.
#ifndef MUPPET_CORE_KEYSPLIT_H_
#define MUPPET_CORE_KEYSPLIT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"

namespace muppet {

// "key#shard". The separator '#' is escaped in the base key ("##") so
// parsing is unambiguous for arbitrary keys.
Bytes MakeSplitKey(BytesView base_key, int shard);

// Inverse. Returns InvalidArgument for inputs not produced by MakeSplitKey.
Status ParseSplitKey(BytesView split_key, Bytes* base_key, int* shard);

// Chooses a shard for each event of a hot key. Round-robin per key gives
// the even spread Example 6 wants; it is deterministic given the sequence
// of calls (the engines call it from the single mapper that owns the
// split).
class KeySplitter {
 public:
  // `shards` sub-keys per split key; keys not in `hot_keys` are passed
  // through unchanged (shards <= 1 disables splitting entirely).
  KeySplitter(int shards, std::map<Bytes, bool> hot_keys);

  // Convenience: split every key.
  explicit KeySplitter(int shards);

  // Returns the (possibly split) routing key for an event with `key`.
  Bytes RouteKey(BytesView key);

  int shards() const { return shards_; }
  bool IsSplit(BytesView key) const;

 private:
  int shards_;
  bool split_all_;
  std::map<Bytes, bool> hot_keys_;
  // Per-key round-robin cursors.
  std::map<Bytes, uint64_t> cursors_;
};

// Live registry of dynamically split hot keys, shared between the dispatch
// path (readers) and the load manager (writer). Each split carries an
// epoch that is bumped on every state change and travels on the wire with
// routed events, so a processor can tell whether an event's shard
// assignment is still current; stale-epoch events are re-routed to the
// base key instead of resurrecting a drained shard slate.
//
// Lifecycle per (function, key):
//   Split(shards)   — active, events fan out round-robin over shards
//   BeginMerge()    — draining: new events route to the base key while
//                     merge sweeps collect the shard slates
//   Finish()        — entry removed; the key routes like any other
class SplitTable {
 public:
  struct State {
    int shards = 1;
    uint32_t epoch = 0;
    bool draining = false;
    // Bytes of shard slate found by merge sweeps since the last
    // TakeMergeFound (monotone while draining).
    int64_t merge_found = 0;
  };

  struct Entry {
    int32_t function_id = -1;
    Bytes key;
    State state;
  };

  explicit SplitTable(size_t max_entries = 64);

  // Dispatch fast path: one relaxed load; when false, Lookup cannot match.
  bool HasSplits() const {
    return active_.load(std::memory_order_acquire) > 0;
  }

  // Split state for (function_id, key); false when the key is not split.
  bool Lookup(int32_t function_id, BytesView key, State* state) const;

  // Lookup + round-robin shard pick in one call. Returns the shard to
  // route to, or -1 when the key is unsplit or draining.
  int RouteShard(int32_t function_id, BytesView key, State* state) const;

  // Install (or widen) a split. Bumps the epoch. Returns false when the
  // table is full or `shards` <= 1.
  bool Split(int32_t function_id, BytesView key, int shards);

  // Transition to draining; new events route unsplit. Returns false when
  // no active entry exists.
  bool BeginMerge(int32_t function_id, BytesView key);

  // Merge sweeps report recovered shard slate bytes here.
  void NoteMergeFound(int32_t function_id, BytesView key, int64_t bytes);

  // Reads and resets the merge_found accumulator (load-manager tick).
  int64_t TakeMergeFound(int32_t function_id, BytesView key);

  // Drop the entry entirely (merge complete).
  void Finish(int32_t function_id, BytesView key);

  std::vector<Entry> Entries() const;
  size_t size() const;

  static constexpr LockLevel kLockLevel = LockLevel::kSplitTable;

 private:
  struct Cell {
    State state;
    // Round-robin cursor; atomic so RouteShard works under the reader lock.
    mutable std::atomic<uint64_t> cursor{0};
  };

  const size_t max_entries_;
  std::atomic<size_t> active_{0};
  mutable SharedMutex mutex_{kLockLevel};
  std::map<std::pair<int32_t, Bytes>, Cell> cells_ MUPPET_GUARDED_BY(mutex_);
};

}  // namespace muppet

#endif  // MUPPET_CORE_KEYSPLIT_H_
