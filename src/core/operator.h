// The user-facing MapUpdate operator API. Mirrors the paper's Appendix A
// Java interfaces: applications implement `Mapper` and `Updater`, which are
// constructed from (config, function name) by registered factories (the
// same class can back several named functions), and interact with the
// runtime through `PerformerUtilities`.
#ifndef MUPPET_CORE_OPERATOR_H_
#define MUPPET_CORE_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "core/event.h"
#include "json/json.h"

namespace muppet {

class AppConfig;

// Handed to map/update calls for their side of the contract: publishing
// events downstream and (for updaters) replacing the slate.
//
// Timestamps: Publish() stamps the output event with a timestamp strictly
// greater than the input event's (input.ts + 1), preserving the §3
// well-definedness condition even in cyclic workflows. PublishAt() lets the
// operator choose a later timestamp explicitly (e.g. the hot-topics U1
// emits its per-minute count at the minute boundary).
class PerformerUtilities {
 public:
  virtual ~PerformerUtilities() = default;

  // Emit an event with the runtime-assigned timestamp input.ts + 1.
  // Fails with InvalidArgument if `stream` is not declared in the app
  // config; delivery errors surface per the engine's overflow policy.
  virtual Status Publish(const std::string& stream, BytesView key,
                         BytesView value) = 0;

  // Emit an event at an explicit timestamp, which must be greater than the
  // input event's timestamp (InvalidArgument otherwise).
  virtual Status PublishAt(const std::string& stream, BytesView key,
                           BytesView value, Timestamp ts) = 0;

  // Updaters only: replace the slate for (this updater, current key).
  // Calling it from a mapper returns FailedPrecondition.
  virtual Status ReplaceSlate(BytesView slate) = 0;

  // Updaters only: delete the slate for (this updater, current key).
  virtual Status DeleteSlate() = 0;

  // The event being processed.
  virtual const Event& current_event() const = 0;
};

// A map function: stateless, event in, zero or more events out (§3).
class Mapper {
 public:
  virtual ~Mapper() = default;

  // The function's unique name within the application.
  virtual const std::string& GetName() const = 0;

  // Process one event. `slate`-free by design ("memoryless", §3).
  virtual void Map(PerformerUtilities& out, const Event& event) = 0;
};

// An update function: stateful via slates. `slate` is nullptr on first
// touch of (this updater, event.key) — including after TTL expiry — in
// which case the updater must initialize its state (§3). To persist state
// changes the updater calls out.ReplaceSlate().
class Updater {
 public:
  virtual ~Updater() = default;

  virtual const std::string& GetName() const = 0;

  virtual void Update(PerformerUtilities& out, const Event& event,
                      const Bytes* slate) = 0;
};

// Factories mirror the Appendix A constructor signature
// `Performer(Config config, String name)`.
using MapperFactory = std::function<std::unique_ptr<Mapper>(
    const AppConfig& config, const std::string& name)>;
using UpdaterFactory = std::function<std::unique_ptr<Updater>(
    const AppConfig& config, const std::string& name)>;

// Convenience adaptors for lambda-style operators: wrap a callable into a
// Mapper/Updater so examples and tests need no boilerplate classes.
class LambdaMapper final : public Mapper {
 public:
  using Fn = std::function<void(PerformerUtilities&, const Event&)>;
  LambdaMapper(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& GetName() const override { return name_; }
  void Map(PerformerUtilities& out, const Event& event) override {
    fn_(out, event);
  }

 private:
  std::string name_;
  Fn fn_;
};

class LambdaUpdater final : public Updater {
 public:
  using Fn =
      std::function<void(PerformerUtilities&, const Event&, const Bytes*)>;
  LambdaUpdater(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& GetName() const override { return name_; }
  void Update(PerformerUtilities& out, const Event& event,
              const Bytes* slate) override {
    fn_(out, event, slate);
  }

 private:
  std::string name_;
  Fn fn_;
};

// Factory helpers for the adaptors.
MapperFactory MakeMapperFactory(LambdaMapper::Fn fn);
UpdaterFactory MakeUpdaterFactory(LambdaUpdater::Fn fn);

}  // namespace muppet

#endif  // MUPPET_CORE_OPERATOR_H_
