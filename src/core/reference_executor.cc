#include "core/reference_executor.h"

#include "common/logging.h"

namespace muppet {

// PerformerUtilities implementation scoped to one Deliver() call.
class ReferenceExecutor::Utilities final : public PerformerUtilities {
 public:
  Utilities(ReferenceExecutor* executor, const Event& event,
            const std::string& op_name, bool is_updater)
      : executor_(executor),
        event_(event),
        op_name_(op_name),
        is_updater_(is_updater) {}

  Status Publish(const std::string& stream, BytesView key,
                 BytesView value) override {
    return PublishAt(stream, key, value, event_.ts + 1);
  }

  Status PublishAt(const std::string& stream, BytesView key, BytesView value,
                   Timestamp ts) override {
    if (!executor_->config_.HasStream(stream)) {
      return Status::InvalidArgument("publish: undeclared stream '" + stream +
                                     "'");
    }
    if (executor_->config_.IsInputStream(stream)) {
      return Status::InvalidArgument(
          "publish: operators may not emit into input stream '" + stream +
          "'");
    }
    if (ts <= event_.ts) {
      return Status::InvalidArgument(
          "publish: output timestamp must exceed input timestamp");
    }
    Event out;
    out.stream = stream;
    out.ts = ts;
    out.key.assign(key);
    out.value.assign(value);
    out.origin_ts = event_.origin_ts;
    return executor_->Enqueue(std::move(out));
  }

  Status ReplaceSlate(BytesView slate) override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot replace a slate");
    }
    executor_->slates_[SlateId{op_name_, event_.key}] = Bytes(slate);
    return Status::OK();
  }

  Status DeleteSlate() override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot delete a slate");
    }
    executor_->slates_.erase(SlateId{op_name_, event_.key});
    return Status::OK();
  }

  const Event& current_event() const override { return event_; }

 private:
  ReferenceExecutor* executor_;
  const Event& event_;
  const std::string& op_name_;
  bool is_updater_;
};

ReferenceExecutor::ReferenceExecutor(const AppConfig& config)
    : config_(config) {}

Status ReferenceExecutor::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  MUPPET_RETURN_IF_ERROR(config_.Validate());
  for (const auto& [name, spec] : config_.operators()) {
    if (spec.kind == OperatorKind::kMapper) {
      mappers_[name] = spec.mapper_factory(config_, name);
      if (mappers_[name] == nullptr) {
        return Status::Internal("mapper factory returned null for " + name);
      }
    } else {
      updaters_[name] = spec.updater_factory(config_, name);
      if (updaters_[name] == nullptr) {
        return Status::Internal("updater factory returned null for " + name);
      }
    }
  }
  started_ = true;
  return Status::OK();
}

Status ReferenceExecutor::Publish(const std::string& stream, BytesView key,
                                  BytesView value, Timestamp ts) {
  if (!started_) return Status::FailedPrecondition("not started");
  if (!config_.IsInputStream(stream)) {
    return Status::InvalidArgument("'" + stream +
                                   "' is not a declared input stream");
  }
  Event event;
  event.stream = stream;
  event.ts = ts;
  event.key.assign(key);
  event.value.assign(value);
  event.origin_ts = ts;
  return Enqueue(std::move(event));
}

Status ReferenceExecutor::Enqueue(Event event) {
  event.seq = next_seq_++;
  queue_.push(QueuedEvent{std::move(event)});
  return Status::OK();
}

Status ReferenceExecutor::Deliver(const Event& event) {
  stream_logs_[event.stream].push_back(event);
  // Deterministic fan-out: subscribers in sorted name order.
  for (const std::string& sub : config_.SubscribersOf(event.stream)) {
    const OperatorSpec* spec = config_.FindOperator(sub);
    MUPPET_CHECK(spec != nullptr);
    if (spec->kind == OperatorKind::kMapper) {
      Utilities utils(this, event, sub, /*is_updater=*/false);
      mappers_[sub]->Map(utils, event);
    } else {
      Utilities utils(this, event, sub, /*is_updater=*/true);
      auto it = slates_.find(SlateId{sub, event.key});
      const Bytes* slate = it == slates_.end() ? nullptr : &it->second;
      updaters_[sub]->Update(utils, event, slate);
    }
  }
  return Status::OK();
}

Status ReferenceExecutor::Run(uint64_t max_events) {
  if (!started_) return Status::FailedPrecondition("not started");
  while (!queue_.empty()) {
    if (events_processed_ >= max_events) {
      return Status::Aborted("reference executor exceeded max_events (cyclic "
                             "workflow not converging?)");
    }
    Event event = queue_.top().event;
    queue_.pop();
    ++events_processed_;
    MUPPET_RETURN_IF_ERROR(Deliver(event));
  }
  return Status::OK();
}

const std::vector<Event>& ReferenceExecutor::StreamLog(
    const std::string& stream) const {
  static const std::vector<Event>* kEmpty = new std::vector<Event>();
  auto it = stream_logs_.find(stream);
  return it == stream_logs_.end() ? *kEmpty : it->second;
}

}  // namespace muppet
