// Reference executor: a single-threaded interpreter of the exact MapUpdate
// semantics of §3. Events are processed in increasing (timestamp, seq)
// order — seq being the deterministic tie-break — and each operator sees
// the events of its subscribed streams in that global order. Given
// deterministic map/update functions, the resulting streams and slate
// sequences are *the* well-defined output of the application; the paper
// says a distributed implementation "should try to [approximate] them as
// closely as possible". Tests compare both Muppet engines against this
// executor (exact equality for commutative applications after Drain).
#ifndef MUPPET_CORE_REFERENCE_EXECUTOR_H_
#define MUPPET_CORE_REFERENCE_EXECUTOR_H_

#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/event.h"
#include "core/operator.h"
#include "core/slate.h"
#include "core/topology.h"

namespace muppet {

class ReferenceExecutor {
 public:
  // `config` must outlive the executor and already Validate() OK.
  explicit ReferenceExecutor(const AppConfig& config);

  ReferenceExecutor(const ReferenceExecutor&) = delete;
  ReferenceExecutor& operator=(const ReferenceExecutor&) = delete;

  // Instantiate all operators. Call once before publishing.
  Status Start();

  // Inject an external event. `ts` orders it against everything else.
  Status Publish(const std::string& stream, BytesView key, BytesView value,
                 Timestamp ts);

  // Process events until the queue is empty. `max_events` guards cyclic
  // workflows against unbounded loops (Aborted when exceeded).
  Status Run(uint64_t max_events = 10'000'000);

  // Final slates: (updater, key) -> bytes. Slates deleted (or never
  // created) are absent. TTL is not modeled here: the reference semantics
  // of §3 are timeless; TTL is an operational storage policy.
  const std::map<SlateId, Bytes>& slates() const { return slates_; }

  // Every event ever published to `stream`, in processed order.
  const std::vector<Event>& StreamLog(const std::string& stream) const;

  uint64_t events_processed() const { return events_processed_; }

 private:
  class Utilities;

  struct QueuedEvent {
    Event event;
    // Min-heap by EventOrderLess.
    friend bool operator<(const QueuedEvent& a, const QueuedEvent& b) {
      return EventOrderLess(b.event, a.event);  // reversed: priority_queue
    }
  };

  Status Enqueue(Event event);
  Status Deliver(const Event& event);

  const AppConfig& config_;
  bool started_ = false;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;

  std::map<std::string, std::unique_ptr<Mapper>> mappers_;
  std::map<std::string, std::unique_ptr<Updater>> updaters_;

  std::priority_queue<QueuedEvent> queue_;
  std::map<SlateId, Bytes> slates_;
  std::map<std::string, std::vector<Event>> stream_logs_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_REFERENCE_EXECUTOR_H_
