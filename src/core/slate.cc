#include "core/slate.h"

#include "common/hash.h"

namespace muppet {

Bytes EncodeSlateId(const SlateId& id) {
  Bytes out;
  PutLengthPrefixed(&out, id.updater);
  out.append(id.key);
  return out;
}

Status DecodeSlateId(BytesView encoded, SlateId* id) {
  const char* p = encoded.data();
  const char* limit = p + encoded.size();
  BytesView updater;
  if (!GetLengthPrefixed(&p, limit, &updater)) {
    return Status::Corruption("slate id: malformed");
  }
  id->updater.assign(updater);
  id->key.assign(p, static_cast<size_t>(limit - p));
  return Status::OK();
}

size_t SlateIdHash::operator()(const SlateId& id) const {
  return static_cast<size_t>(
      HashCombine(Fnv1a64(id.updater), Fnv1a64(id.key)));
}

JsonSlate::JsonSlate(const Bytes* bytes) : fresh_(true) {
  if (bytes != nullptr && !bytes->empty()) {
    Result<Json> parsed = Json::Parse(*bytes);
    if (parsed.ok()) {
      data_ = std::move(parsed).value();
      fresh_ = false;
      return;
    }
  }
  data_ = Json::MakeObject();
}

}  // namespace muppet
