// Slates (paper §3): per-<update function, key> summaries — the explicit,
// first-class "memory" of an update function. At the byte level a slate is
// an opaque blob; SlateId names one, and JsonSlate is the convenience
// wrapper the examples use ("Our applications often use JSON to encode
// slates", §4.2).
#ifndef MUPPET_CORE_SLATE_H_
#define MUPPET_CORE_SLATE_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "json/json.h"

namespace muppet {

// Identifies a slate: the update function's name and the event key.
// "each pair <update U, key k> uniquely determines a slate" (§3).
struct SlateId {
  std::string updater;
  Bytes key;

  friend bool operator==(const SlateId& a, const SlateId& b) {
    return a.updater == b.updater && a.key == b.key;
  }
  friend bool operator<(const SlateId& a, const SlateId& b) {
    if (a.updater != b.updater) return a.updater < b.updater;
    return a.key < b.key;
  }
};

// Canonical single-string form, usable as a hash-map key.
Bytes EncodeSlateId(const SlateId& id);
Status DecodeSlateId(BytesView encoded, SlateId* id);

struct SlateIdHash {
  size_t operator()(const SlateId& id) const;
};

// Mutable JSON view over slate bytes. Typical updater shape:
//
//   JsonSlate s(slate);                     // nullptr-tolerant
//   s.data()["count"] = s.data().GetInt("count") + 1;
//   out.ReplaceSlate(s.Serialize());
class JsonSlate {
 public:
  // Parse existing bytes; nullptr or empty (or unparseable) begins a fresh
  // object — matching the §3 contract that the updater initializes its
  // variables on first access.
  explicit JsonSlate(const Bytes* bytes);

  Json& data() { return data_; }
  const Json& data() const { return data_; }

  // True if the constructor found no usable prior state.
  bool fresh() const { return fresh_; }

  Bytes Serialize() const { return data_.Dump(); }

 private:
  Json data_;
  bool fresh_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_SLATE_H_
