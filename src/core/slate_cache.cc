#include "core/slate_cache.h"

#include <limits>

#include "common/logging.h"

namespace muppet {

SlateCache::SlateCache(SlateCacheOptions options, WriteBack write_back)
    : options_(options), write_back_(std::move(write_back)) {
  MUPPET_CHECK(options_.capacity > 0);
  MUPPET_CHECK(write_back_ != nullptr);
}

SlateCache::Entry* SlateCache::UpsertLocked(const SlateId& id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return &*it->second;
  }
  lru_.push_front(Entry{id, Bytes(), false, false, 0});
  index_[id] = lru_.begin();
  return &lru_.front();
}

Status SlateCache::EvictIfNeededLocked() {
  while (lru_.size() > options_.capacity) {
    Entry& victim = lru_.back();
    if (victim.dirty) {
      DirtySlate out{victim.id, victim.value, /*deleted=*/false};
      Status s = write_back_(out);
      if (!s.ok()) {
        MUPPET_LOG(kWarning) << "slate cache: write-back on eviction failed: "
                             << s.ToString();
        // Drop anyway: the engine's store is the authority on durability;
        // a failed write-back loses the unflushed update, mirroring the
        // paper's failure semantics (§4.3).
      }
    }
    index_.erase(victim.id);
    lru_.pop_back();
    evictions_.Add();
  }
  return Status::OK();
}

Status SlateCache::Lookup(const SlateId& id, Bytes* value) {
  bool absent = false;
  MUPPET_RETURN_IF_ERROR(LookupWithAbsent(id, value, &absent));
  if (absent) return Status::NotFound("slate cache: negative entry");
  return Status::OK();
}

Status SlateCache::LookupWithAbsent(const SlateId& id, Bytes* value,
                                    bool* absent) {
  MutexLock lock(mutex_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    misses_.Add();
    return Status::NotFound("slate cache: miss");
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.Add();
  *absent = it->second->absent;
  if (!it->second->absent) *value = it->second->value;
  return Status::OK();
}

Status SlateCache::Insert(const SlateId& id, BytesView value) {
  MutexLock lock(mutex_);
  Entry* e = UpsertLocked(id);
  e->value.assign(value);
  e->absent = false;
  // A fetched slate is clean by definition.
  e->dirty = false;
  e->dirty_since = 0;
  return EvictIfNeededLocked();
}

void SlateCache::InsertAbsent(const SlateId& id) {
  MutexLock lock(mutex_);
  Entry* e = UpsertLocked(id);
  if (e->dirty) return;  // an update raced in; keep the real value
  e->value.clear();
  e->absent = true;
  (void)EvictIfNeededLocked();
}

Status SlateCache::Update(const SlateId& id, BytesView value, Timestamp now,
                          bool write_through) {
  {
    MutexLock lock(mutex_);
    Entry* e = UpsertLocked(id);
    e->value.assign(value);
    e->absent = false;
    if (write_through) {
      e->dirty = false;
      e->dirty_since = 0;
    } else {
      if (!e->dirty) e->dirty_since = now;
      e->dirty = true;
    }
    MUPPET_RETURN_IF_ERROR(EvictIfNeededLocked());
  }
  if (write_through) {
    return write_back_(DirtySlate{id, Bytes(value), /*deleted=*/false});
  }
  return Status::OK();
}

Status SlateCache::Delete(const SlateId& id) {
  {
    MutexLock lock(mutex_);
    auto it = index_.find(id);
    if (it != index_.end()) {
      // Keep a negative entry so a subsequent read doesn't refetch a value
      // the store may still hold briefly.
      it->second->value.clear();
      it->second->absent = true;
      it->second->dirty = false;
    }
  }
  return write_back_(DirtySlate{id, Bytes(), /*deleted=*/true});
}

Result<int> SlateCache::FlushDirty(Timestamp dirty_before) {
  return FlushDirtyFor("", dirty_before);
}

Result<int> SlateCache::FlushDirtyFor(const std::string& updater,
                                      Timestamp dirty_before) {
  struct Pending {
    DirtySlate slate;
    Timestamp dirty_since;
  };
  std::vector<Pending> to_flush;
  {
    MutexLock lock(mutex_);
    for (Entry& e : lru_) {
      if (!updater.empty() && e.id.updater != updater) continue;
      if (e.dirty && e.dirty_since < dirty_before) {
        to_flush.push_back(
            Pending{DirtySlate{e.id, e.value, false}, e.dirty_since});
        e.dirty = false;
        e.dirty_since = 0;
      }
    }
  }
  int flushed = 0;
  Status first_error = Status::OK();
  for (const Pending& p : to_flush) {
    Status s = write_back_(p.slate);
    if (s.ok()) {
      ++flushed;
      continue;
    }
    if (first_error.ok()) first_error = s;
    // The store refused (e.g. temporarily unavailable): the update must
    // not be silently dropped — re-mark the entry dirty so a later flush
    // retries. If the slate was updated again meanwhile it is already
    // dirty and this is a no-op.
    MutexLock lock(mutex_);
    auto it = index_.find(p.slate.id);
    if (it != index_.end() && !it->second->dirty && !it->second->absent) {
      it->second->dirty = true;
      it->second->dirty_since = p.dirty_since;
    }
  }
  if (!first_error.ok()) return first_error;
  return flushed;
}

void SlateCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

size_t SlateCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace muppet
