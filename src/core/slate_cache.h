// The slate cache (paper §4.2): slates live in the memory of the machine
// running the updater, backed by the durable key-value store. Muppet 1.0
// gave each worker process its own cache; Muppet 2.0 keeps "all slates ...
// in a single 'central' slate cache" per machine (§4.5) — both engines use
// this class, differing only in how many instances they create (E6
// measures the working-set consequence).
//
// Eviction is LRU by slate count. Dirty slates are written back through a
// caller-provided writer according to the per-updater flush policy
// (write-through / interval / on-evict, §4.2).
#ifndef MUPPET_CORE_SLATE_CACHE_H_
#define MUPPET_CORE_SLATE_CACHE_H_

#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/slate.h"

namespace muppet {

struct SlateCacheOptions {
  // Maximum number of cached slates (the paper sizes caches in slates:
  // "a slate cache of 100 slates", §4.5).
  size_t capacity = 10000;
};

class SlateCache {
 public:
  // Writer invoked to persist a dirty slate (on write-through, interval
  // flush, or eviction). An empty value with `deleted` set means the slate
  // was deleted.
  struct DirtySlate {
    SlateId id;
    Bytes value;
    bool deleted = false;
  };
  using WriteBack = std::function<Status(const DirtySlate&)>;

  SlateCache(SlateCacheOptions options, WriteBack write_back);

  SlateCache(const SlateCache&) = delete;
  SlateCache& operator=(const SlateCache&) = delete;

  // Cache lookup. OK -> *value filled. NotFound -> not cached (the caller
  // fetches from the store and calls Insert).
  Status Lookup(const SlateId& id, Bytes* value);

  // Insert a clean slate fetched from the store (may evict).
  Status Insert(const SlateId& id, BytesView value);

  // Record a slate update from an updater. `write_through` forces an
  // immediate write-back (SlateFlushPolicy::kWriteThrough); otherwise the
  // slate is marked dirty with `now` for interval flushing. May evict.
  Status Update(const SlateId& id, BytesView value, Timestamp now,
                bool write_through);

  // Delete a slate (tombstones the cache entry and writes the delete
  // through to the store).
  Status Delete(const SlateId& id);

  // Flush slates dirty since before `dirty_before`; pass INT64_MAX to
  // flush everything (shutdown). Returns the number flushed.
  Result<int> FlushDirty(Timestamp dirty_before);

  // As FlushDirty, restricted to one updater's slates — the central cache
  // of Muppet 2.0 holds slates of many updaters with different flush
  // intervals (§4.2), so the flusher sweeps per updater.
  Result<int> FlushDirtyFor(const std::string& updater,
                            Timestamp dirty_before);

  // Negative cache marker: remember that the store has no such slate, so
  // repeated first-touch events don't re-fetch. Represented as a cached
  // empty "absent" entry.
  void InsertAbsent(const SlateId& id);
  // Lookup including absent markers: returns OK with *absent=true for a
  // negative entry.
  Status LookupWithAbsent(const SlateId& id, Bytes* value, bool* absent);

  // Drop every entry *without* writing dirty slates back — crash
  // semantics: "whatever changes ... not yet been flushed to the
  // key-value store are lost" (§4.3).
  void Clear();

  size_t size() const MUPPET_EXCLUDES(mutex_);
  size_t capacity() const { return options_.capacity; }

  static constexpr LockLevel kLockLevel = LockLevel::kSlateCache;
  int64_t hits() const { return hits_.Get(); }
  int64_t misses() const { return misses_.Get(); }
  int64_t evictions() const { return evictions_.Get(); }

 private:
  struct Entry {
    SlateId id;
    Bytes value;
    bool dirty = false;
    bool absent = false;  // negative entry: store has nothing
    Timestamp dirty_since = 0;
  };
  using LruList = std::list<Entry>;

  // Evict LRU entries beyond capacity, writing dirty ones back. The
  // write-back runs under mutex_, which is why the cache sits above the
  // store in the lock hierarchy.
  Status EvictIfNeededLocked() MUPPET_REQUIRES(mutex_);
  // Insert or update; requires mutex_ held. Returns the entry.
  Entry* UpsertLocked(const SlateId& id) MUPPET_REQUIRES(mutex_);

  SlateCacheOptions options_;
  WriteBack write_back_;

  mutable Mutex mutex_{kLockLevel};
  LruList lru_ MUPPET_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<SlateId, LruList::iterator, SlateIdHash> index_
      MUPPET_GUARDED_BY(mutex_);

  Counter hits_;
  Counter misses_;
  Counter evictions_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_SLATE_CACHE_H_
