#include "core/slate_store.h"

#include "common/compress.h"

namespace muppet {

SlateStore::SlateStore(kv::KvCluster* cluster, SlateStoreOptions options)
    : cluster_(cluster), options_(std::move(options)) {}

Status SlateStore::Write(const SlateId& id, BytesView slate,
                         Timestamp ttl_micros) {
  kv::WriteOptions opts;
  opts.ttl_micros = ttl_micros;
  if (options_.compress) {
    Bytes compressed;
    CompressBytes(slate, &compressed);
    return cluster_->Put(options_.column_family, id.key, id.updater,
                         compressed, opts, options_.write_cl);
  }
  return cluster_->Put(options_.column_family, id.key, id.updater, slate,
                       opts, options_.write_cl);
}

Result<Bytes> SlateStore::Read(const SlateId& id) {
  Result<kv::Record> rec = cluster_->Get(options_.column_family, id.key,
                                         id.updater, options_.read_cl);
  if (!rec.ok()) return rec.status();
  if (!options_.compress) return std::move(rec).value().value;
  return Decompress(rec.value().value);
}

Status SlateStore::Delete(const SlateId& id) {
  return cluster_->Delete(options_.column_family, id.key, id.updater,
                          options_.write_cl);
}

Status SlateStore::ReadRow(
    BytesView key,
    std::vector<std::pair<std::string, Bytes>>* updater_slates) {
  std::vector<kv::Record> records;
  MUPPET_RETURN_IF_ERROR(cluster_->ScanRow(options_.column_family, key,
                                           &records, options_.read_cl));
  for (kv::Record& rec : records) {
    Bytes row, column;
    if (!kv::DecodeStorageKey(rec.key, &row, &column)) {
      return Status::Corruption("slate store: bad storage key");
    }
    if (options_.compress) {
      Result<Bytes> plain = Decompress(rec.value);
      if (!plain.ok()) return plain.status();
      updater_slates->emplace_back(std::string(column),
                                   std::move(plain).value());
    } else {
      updater_slates->emplace_back(std::string(column), std::move(rec.value));
    }
  }
  return Status::OK();
}

}  // namespace muppet
