// Binding between slates and the durable key-value store (paper §4.2):
// "Muppet stores slate S(U,k) ... as a value at row k and column U" within
// the application's configured column family, compressing each slate
// before the write and decompressing on fetch. Per-updater TTLs map to the
// store's per-write TTL.
#ifndef MUPPET_CORE_SLATE_STORE_H_
#define MUPPET_CORE_SLATE_STORE_H_

#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/slate.h"
#include "kvstore/cluster.h"

namespace muppet {

struct SlateStoreOptions {
  std::string column_family = "slates";
  bool compress = true;
  kv::ConsistencyLevel read_cl = kv::ConsistencyLevel::kOne;
  kv::ConsistencyLevel write_cl = kv::ConsistencyLevel::kOne;
};

class SlateStore {
 public:
  SlateStore(kv::KvCluster* cluster, SlateStoreOptions options);

  SlateStore(const SlateStore&) = delete;
  SlateStore& operator=(const SlateStore&) = delete;

  // Persist a slate. `ttl_micros` 0 = forever.
  Status Write(const SlateId& id, BytesView slate, Timestamp ttl_micros);

  // Fetch and decompress. NotFound if absent/expired.
  Result<Bytes> Read(const SlateId& id);

  Status Delete(const SlateId& id);

  // All slates of one updater for a given key-range scan is not supported
  // by the row/column layout (rows are keys); instead, bulk reads fetch
  // every column of a row: all updaters' slates for one key (§5 "Bulk
  // Reading of Slates" notes users must know the layout).
  Status ReadRow(BytesView key, std::vector<std::pair<std::string, Bytes>>*
                                    updater_slates);

  kv::KvCluster* cluster() { return cluster_; }
  const SlateStoreOptions& options() const { return options_; }

 private:
  kv::KvCluster* cluster_;
  SlateStoreOptions options_;
};

}  // namespace muppet

#endif  // MUPPET_CORE_SLATE_STORE_H_
