#include "core/topology.h"

#include <utility>

namespace muppet {

MapperFactory MakeMapperFactory(LambdaMapper::Fn fn) {
  return [fn = std::move(fn)](const AppConfig&, const std::string& name) {
    return std::make_unique<LambdaMapper>(name, fn);
  };
}

UpdaterFactory MakeUpdaterFactory(LambdaUpdater::Fn fn) {
  return [fn = std::move(fn)](const AppConfig&, const std::string& name) {
    return std::make_unique<LambdaUpdater>(name, fn);
  };
}

Status AppConfig::DeclareStreamInternal(const std::string& sid,
                                        bool is_input) {
  if (sid.empty()) {
    return Status::InvalidArgument("config: empty stream id");
  }
  if (streams_.count(sid) > 0) {
    return Status::AlreadyExists("config: stream '" + sid +
                                 "' already declared");
  }
  streams_.insert(sid);
  if (is_input) input_streams_.insert(sid);
  return Status::OK();
}

Status AppConfig::DeclareInputStream(const std::string& sid) {
  return DeclareStreamInternal(sid, /*is_input=*/true);
}

Status AppConfig::DeclareStream(const std::string& sid) {
  return DeclareStreamInternal(sid, /*is_input=*/false);
}

Status AppConfig::AddMapper(const std::string& name, MapperFactory factory,
                            std::vector<std::string> subscriptions) {
  if (name.empty()) return Status::InvalidArgument("config: empty name");
  if (factory == nullptr) {
    return Status::InvalidArgument("config: null mapper factory");
  }
  if (operators_.count(name) > 0) {
    return Status::AlreadyExists("config: operator '" + name +
                                 "' already declared");
  }
  OperatorSpec spec;
  spec.name = name;
  spec.kind = OperatorKind::kMapper;
  spec.subscriptions = std::move(subscriptions);
  spec.mapper_factory = std::move(factory);
  for (const std::string& sid : spec.subscriptions) {
    subscribers_[sid].insert(name);
  }
  operators_.emplace(name, std::move(spec));
  return Status::OK();
}

Status AppConfig::AddUpdater(const std::string& name, UpdaterFactory factory,
                             std::vector<std::string> subscriptions,
                             UpdaterOptions options) {
  if (name.empty()) return Status::InvalidArgument("config: empty name");
  if (factory == nullptr) {
    return Status::InvalidArgument("config: null updater factory");
  }
  if (operators_.count(name) > 0) {
    return Status::AlreadyExists("config: operator '" + name +
                                 "' already declared");
  }
  OperatorSpec spec;
  spec.name = name;
  spec.kind = OperatorKind::kUpdater;
  spec.subscriptions = std::move(subscriptions);
  spec.updater_factory = std::move(factory);
  spec.updater_options = options;
  for (const std::string& sid : spec.subscriptions) {
    subscribers_[sid].insert(name);
  }
  operators_.emplace(name, std::move(spec));
  return Status::OK();
}

Status AppConfig::Validate() const {
  if (operators_.empty()) {
    return Status::InvalidArgument("config: no map/update functions");
  }
  for (const auto& [name, spec] : operators_) {
    if (spec.subscriptions.empty()) {
      return Status::InvalidArgument("config: operator '" + name +
                                     "' subscribes to no streams");
    }
    for (const std::string& sid : spec.subscriptions) {
      if (streams_.count(sid) == 0) {
        return Status::InvalidArgument("config: operator '" + name +
                                       "' subscribes to undeclared stream '" +
                                       sid + "'");
      }
    }
    if (spec.updater_options.slate_ttl_micros < 0) {
      return Status::InvalidArgument("config: negative slate TTL on '" +
                                     name + "'");
    }
    if (spec.updater_options.associativity ==
            Associativity::kAssociativeCommutative &&
        !spec.updater_options.merger) {
      return Status::InvalidArgument(
          "config: updater '" + name +
          "' declared associative/commutative without a slate merger");
    }
  }
  if (input_streams_.empty()) {
    return Status::InvalidArgument("config: no input streams declared");
  }
  return Status::OK();
}

const OperatorSpec* AppConfig::FindOperator(const std::string& name) const {
  auto it = operators_.find(name);
  return it == operators_.end() ? nullptr : &it->second;
}

bool AppConfig::HasStream(const std::string& sid) const {
  return streams_.count(sid) > 0;
}

bool AppConfig::IsInputStream(const std::string& sid) const {
  return input_streams_.count(sid) > 0;
}

std::vector<std::string> AppConfig::SubscribersOf(
    const std::string& sid) const {
  auto it = subscribers_.find(sid);
  if (it == subscribers_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::string> AppConfig::InputStreams() const {
  return std::vector<std::string>(input_streams_.begin(),
                                  input_streams_.end());
}

std::vector<std::string> AppConfig::AllStreams() const {
  return std::vector<std::string>(streams_.begin(), streams_.end());
}

}  // namespace muppet
