// Application configuration: the "configuration file that includes the
// workflow graph" (§3). An application declares streams, map and update
// functions (with the streams each subscribes to), per-updater slate
// parameters (TTL, flush policy — §4.2), and free-form settings the
// operator factories can read.
//
// The workflow is a directed graph, cycles allowed: nodes are functions,
// edges are streams. Because operators publish dynamically, the static
// graph is defined by declarations: an event emitted to stream S is
// delivered to every function subscribed to S.
#ifndef MUPPET_CORE_TOPOLOGY_H_
#define MUPPET_CORE_TOPOLOGY_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/operator.h"
#include "json/json.h"

namespace muppet {

// When dirty slates are pushed to the durable key-value store (§4.2:
// "ranging from 'immediate write-through' to 'only when evicted from
// cache'").
enum class SlateFlushPolicy : uint8_t {
  kWriteThrough,  // every update writes to the store immediately
  kInterval,      // background flush of slates dirty longer than interval
  kOnEvict,       // only when evicted from the slate cache
};

// Whether an updater's computation commutes and associates over events of
// one key (paper §5, Example 6: counting is both). Only such updaters may
// be key-split by the load manager: their per-shard partial slates can be
// re-aggregated in any order without changing the result.
enum class Associativity : uint8_t {
  kNone,                    // order-sensitive; never split
  kAssociativeCommutative,  // partial slates merge via `merger`
};

// Folds a partial (shard) slate into an accumulator slate. `base` is
// nullptr when no accumulator exists yet (the merge result is then
// typically `part` itself). Must be pure: engines call it under slate
// locks, possibly concurrently for different keys.
using SlateMerger =
    std::function<Bytes(const Bytes* base, const Bytes& part)>;

struct UpdaterOptions {
  // Slate time-to-live; 0 = forever (§3). The store may garbage-collect a
  // slate not written for longer than this; the updater then sees nullptr
  // and re-initializes.
  Timestamp slate_ttl_micros = 0;
  SlateFlushPolicy flush_policy = SlateFlushPolicy::kInterval;
  // For kInterval: how long a slate may stay dirty before being flushed.
  Timestamp flush_interval_micros = 100 * kMicrosPerMilli;
  // Declares the updater safe for dynamic key splitting. When set to
  // kAssociativeCommutative, `merger` must be provided (Validate checks).
  Associativity associativity = Associativity::kNone;
  SlateMerger merger;
};

enum class OperatorKind : uint8_t { kMapper, kUpdater };

struct OperatorSpec {
  std::string name;
  OperatorKind kind;
  std::vector<std::string> subscriptions;  // streams fed to this function
  MapperFactory mapper_factory;            // kind == kMapper
  UpdaterFactory updater_factory;          // kind == kUpdater
  UpdaterOptions updater_options;          // kind == kUpdater
};

class AppConfig {
 public:
  AppConfig() = default;

  // Declare an external input stream (events enter via Engine::Publish;
  // no operator may publish into it — that restriction is what makes
  // source throttling deadlock-free, §5).
  Status DeclareInputStream(const std::string& sid);

  // Declare an internal stream (produced by operators).
  Status DeclareStream(const std::string& sid);

  Status AddMapper(const std::string& name, MapperFactory factory,
                   std::vector<std::string> subscriptions);

  Status AddUpdater(const std::string& name, UpdaterFactory factory,
                    std::vector<std::string> subscriptions,
                    UpdaterOptions options = {});

  // Check the workflow: unique names, every subscription refers to a
  // declared stream, every declared input stream exists, at least one
  // operator.
  Status Validate() const;

  // Accessors used by engines.
  const std::map<std::string, OperatorSpec>& operators() const {
    return operators_;
  }
  const OperatorSpec* FindOperator(const std::string& name) const;
  bool HasStream(const std::string& sid) const;
  bool IsInputStream(const std::string& sid) const;
  // Operator names subscribed to `sid`, sorted (deterministic fan-out).
  std::vector<std::string> SubscribersOf(const std::string& sid) const;
  std::vector<std::string> InputStreams() const;
  std::vector<std::string> AllStreams() const;

  // Free-form application settings, readable by operator factories
  // (mirrors the `Config` object of the paper's Appendix A).
  Json& settings() { return settings_; }
  const Json& settings() const { return settings_; }

  // Column family under which this application's slates are persisted.
  void set_slate_column_family(std::string cf) {
    slate_column_family_ = std::move(cf);
  }
  const std::string& slate_column_family() const {
    return slate_column_family_;
  }

 private:
  Status DeclareStreamInternal(const std::string& sid, bool is_input);

  std::map<std::string, OperatorSpec> operators_;
  std::set<std::string> streams_;
  std::set<std::string> input_streams_;
  // stream -> sorted subscriber names.
  std::map<std::string, std::set<std::string>> subscribers_;
  Json settings_ = Json::MakeObject();
  std::string slate_column_family_ = "slates";
};

}  // namespace muppet

#endif  // MUPPET_CORE_TOPOLOGY_H_
