#include "engine/engine.h"

#include <sstream>

namespace muppet {

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "published=" << events_published
     << " processed=" << events_processed << " emitted=" << events_emitted
     << " lost_failure=" << events_lost_failure
     << " dropped_overflow=" << events_dropped_overflow
     << " redirected_overflow=" << events_redirected_overflow
     << " throttle_signals=" << throttle_signals
     << " deadlocks_avoided=" << deadlocks_avoided << "\n"
     << "slate cache: hits=" << slate_cache_hits
     << " misses=" << slate_cache_misses
     << " evictions=" << slate_cache_evictions
     << " store_reads=" << slate_store_reads
     << " store_writes=" << slate_store_writes << "\n"
     << "failures_detected=" << failures_detected
     << " operator_instances=" << operator_instances << "\n"
     << "durability: appends=" << slatelog_appends
     << " synced=" << slatelog_synced_records
     << " replays=" << slatelog_replays
     << " replayed=" << slatelog_replayed_records
     << " torn_tails=" << slatelog_torn_tails
     << " checkpoints=" << checkpoints << " deduped=" << events_deduped
     << "\n"
     << "transport: sent=" << transport_messages_sent
     << " local=" << transport_messages_local
     << " frames=" << transport_frames_sent
     << " bytes=" << transport_bytes_sent
     << " faults: dropped=" << faults_dropped
     << " duplicated=" << faults_duplicated << " held=" << faults_held
     << "\n"
     << "latency us: mean=" << latency_mean_us << " p50=" << latency_p50_us
     << " p95=" << latency_p95_us << " p99=" << latency_p99_us
     << " p999=" << latency_p999_us << " max=" << latency_max_us;
  return os.str();
}

}  // namespace muppet
