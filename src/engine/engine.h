// The engine interface: what a running Muppet deployment exposes to the
// outside world. Both generations (Muppet1Engine, §4.1–4.4, and
// Muppet2Engine, §4.5) implement it, so applications, the slate service,
// tests, and benchmarks are engine-agnostic.
#ifndef MUPPET_ENGINE_ENGINE_H_
#define MUPPET_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/slate.h"
#include "core/slate_store.h"
#include "core/topology.h"
#include "engine/load_manager.h"
#include "engine/overflow.h"
#include "engine/slatelog.h"
#include "engine/throttle.h"
#include "engine/watchdog.h"
#include "net/transport.h"

namespace muppet {

struct EngineOptions {
  // Cluster shape.
  int num_machines = 1;
  // Muppet 1.0: worker processes per map/update function, spread
  // round-robin over machines.
  int workers_per_function = 1;
  // Muppet 2.0: worker threads per machine ("as large a number of threads
  // as the parallelization of the application code allows", §4.5).
  int threads_per_machine = 4;

  // Per-worker input queue capacity (events).
  size_t queue_capacity = 1024;
  // Slate cache capacity in slates. Muppet 2.0 gives the whole budget to
  // one central cache per machine; Muppet 1.0 divides it among each
  // function's workers on the machine (§4.5's 100-vs-125 discussion).
  size_t slate_cache_capacity = 16384;

  // Queue-overflow handling (§4.3).
  OverflowOptions overflow;
  ThrottleOptions throttle;

  // Self-tuning load management (engine/load_manager.h): hotspot
  // detection, dynamic key splitting of associative updaters,
  // occupancy-driven source pacing, and placement overrides. Off by
  // default; Muppet 2.0 only.
  LoadManagerOptions load_manager;

  // Muppet 2.0 dispatch: place the event on the secondary queue when it is
  // at least this many events shorter than the primary ("significantly
  // shorter").
  int secondary_queue_bias = 4;
  // Muppet 2.0: disable the secondary queue entirely (ablation for E7 —
  // degenerates to Muppet 1.0-style single ownership).
  bool enable_two_choice = true;

  // Durable slate store; nullptr runs cache-only (volatile slates).
  SlateStore* slate_store = nullptr;

  // Durability / consistency knob (engine/slatelog.h, DESIGN.md §12):
  // kLossy reproduces the paper (crash loses cached updates, zero cost);
  // kAtLeastOnce adds a per-machine slate changelog with buffered syncs
  // and replay-on-recovery; kExactlyOnce syncs every append and dedups
  // redelivered cross-machine batches after the recovery epoch cut.
  DurabilityOptions durability;

  // Background flusher cadence for SlateFlushPolicy::kInterval updaters.
  Timestamp flush_poll_micros = 10 * kMicrosPerMilli;

  // Simulated network between machines (used only when the engine builds
  // its own in-memory fabric, i.e. transport_backend is null).
  TransportOptions transport;

  // --- Multi-process deployment (net/tcp_transport.h, apps/muppetd.cc).
  // External transport backend carrying cross-machine frames. Not owned;
  // must outlive the engine and be Start()ed by the caller AFTER
  // Engine::Start() has registered its handlers. nullptr -> the engine
  // builds its own deterministic InMemoryTransport from `transport`.
  Transport* transport_backend = nullptr;
  // Machine ids hosted by THIS process. Empty -> all ids in
  // [0, num_machines) (the single-process default). The hash ring still
  // spans all num_machines ids — every muppetd process derives the same
  // ring from the shared cluster config — but only hosted machines get
  // queues, worker threads, caches, and transport registrations here.
  // Muppet 2.0 only.
  std::vector<MachineId> hosted_machines;
  // Cross-process slate fetch: FetchSlate for a key owned by a non-hosted
  // machine delegates here (muppetd wires an HTTP fetch against the
  // owner's admin endpoint). nullptr -> such fetches fail Unavailable.
  std::function<Result<Bytes>(MachineId owner, const std::string& updater,
                              BytesView key)>
      remote_fetch;

  // Hash ring shape.
  int ring_vnodes = 128;
  uint64_t ring_seed = 0x9173ull;

  // Clock for timestamps/latency (nullptr -> system clock).
  Clock* clock = nullptr;

  // End-to-end latency SLOs (common/slo.h): per-stream objectives the
  // SloTracker evaluates assembled traces against; /sloz and the
  // muppet_slo_* metric families surface the verdicts.
  SloOptions slo;

  // Stall watchdog (engine/watchdog.h): wedged-queue / stuck-drain /
  // changelog-stall / stuck-recovery detection feeding the incident log,
  // /healthz, and the flight recorder.
  WatchdogOptions watchdog;

  // Sampled distributed tracing (common/trace.h).
  struct TraceOptions {
    // Master switch; when false no spans are recorded and events carry a
    // zero TraceContext.
    bool enabled = true;
    // Trace 1-in-N events, decided by hash of the event key (deterministic
    // across runs and chaos replays). 1 = trace everything, 0 = nothing.
    uint64_t sample_period = 1024;
    // Per-machine TraceSink retention.
    size_t recent_traces = 256;
    size_t slowest_traces = 16;
  };
  TraceOptions trace;
};

// A point-in-time snapshot of engine counters.
struct EngineStats {
  int64_t events_published = 0;   // external events accepted
  int64_t events_processed = 0;   // operator invocations completed
  int64_t events_emitted = 0;     // operator-published events
  int64_t events_lost_failure = 0;    // lost to machine failure (§4.3)
  int64_t events_dropped_overflow = 0;  // dropped by overflow policy
  int64_t events_redirected_overflow = 0;  // sent to the overflow stream
  int64_t throttle_signals = 0;
  int64_t deadlocks_avoided = 0;  // self-emit blocking averted (§5)

  int64_t slate_cache_hits = 0;
  int64_t slate_cache_misses = 0;
  int64_t slate_cache_evictions = 0;
  int64_t slate_store_reads = 0;
  int64_t slate_store_writes = 0;

  int64_t failures_detected = 0;

  // Durability plane (engine/slatelog.h; all zero in kLossy mode).
  int64_t slatelog_appends = 0;          // changelog records written
  int64_t slatelog_synced_records = 0;   // records made durable (fsynced)
  int64_t slatelog_replays = 0;          // recovery replay passes completed
  int64_t slatelog_replayed_records = 0;  // records applied during replays
  int64_t slatelog_torn_tails = 0;       // replays that hit a torn tail
  int64_t slatelog_corrupt_segments = 0;  // non-final segments with a bad frame
  int64_t checkpoints = 0;               // incremental checkpoints taken
  int64_t events_deduped = 0;  // redelivered events suppressed (exactly-once)

  // Transport-level counters (net/transport.h; PR-1 datapath).
  int64_t transport_messages_sent = 0;   // cross-machine messages
  int64_t transport_messages_local = 0;  // same-machine fast-path deliveries
  int64_t transport_frames_sent = 0;     // batch frames sent
  int64_t transport_bytes_sent = 0;      // payload bytes sent
  // Fault-injection counters (net/fault.h; zero without an injector).
  int64_t faults_dropped = 0;
  int64_t faults_duplicated = 0;
  int64_t faults_held = 0;

  // End-to-end latency (external publish -> operator completion), usec.
  int64_t latency_p50_us = 0;
  int64_t latency_p95_us = 0;
  int64_t latency_p99_us = 0;
  int64_t latency_p999_us = 0;
  int64_t latency_max_us = 0;
  double latency_mean_us = 0.0;

  // Approximate peak memory devoted to operator code copies, in "operator
  // instances" (Muppet 1.0 constructs one per worker; 2.0 one per machine).
  int64_t operator_instances = 0;

  std::string ToString() const;
};

// One hot (function, key) pair as seen by the heat sketch, with its
// current split state — the /statusz hot-key panel row.
struct HotKeyInfo {
  std::string function;
  std::string key;
  // Decayed sampled arrivals across all machines (sketch estimate).
  int64_t sampled_count = 0;
  bool split = false;
  int shards = 1;
  uint32_t split_epoch = 0;
  bool draining = false;
};

// Point-in-time view of one machine's runtime state, for /statusz
// (service/admin_service.h) and operational tests.
struct MachineStatus {
  MachineId machine = 0;
  bool crashed = false;
  // Between Master::BeginRecovery and ClearFailure: transport may be live
  // for replay traffic but the machine is not routable — /healthz reports
  // it not-ready (DESIGN.md §14).
  bool recovering = false;
  // Depth of each worker queue on the machine (Muppet 2.0: one per
  // thread; Muppet 1.0: one per worker process hosted there).
  std::vector<size_t> queue_depths;
  size_t queue_capacity = 0;
  // Slate cache occupancy.
  size_t slate_cache_slates = 0;
  size_t slate_cache_capacity = 0;
  // Machines this machine currently believes failed (§4.3).
  std::vector<MachineId> known_failed;
  // Hash-ring ownership: function name -> vnode points owned by this
  // machine's workers.
  std::map<std::string, int> ring_ownership;

  // Durability panel (engine/slatelog.h; zeros in kLossy mode).
  std::string consistency;        // knob name ("lossy", "at-least-once", ...)
  uint64_t slatelog_lsn = 0;          // last appended changelog lsn
  uint64_t slatelog_synced_lsn = 0;   // last durable (fsynced) lsn
  uint64_t slatelog_segments = 0;     // live segment files
  uint64_t manifest_lsn = 0;          // checkpoint cursor
  int64_t replays = 0;                // recovery replays on this machine
  size_t dedup_entries = 0;           // dedup-table occupancy
  size_t dedup_capacity = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  // Build workers/threads, instantiate operators, start the cluster.
  virtual Status Start() = 0;

  // Inject an external event into a declared input stream, acting as the
  // paper's special mapper M0 (§4.1). `ts` must be nonnegative; pass
  // clock->Now() for live sources. Applies source throttling when the
  // overflow policy is kThrottle.
  virtual Status Publish(const std::string& stream, BytesView key,
                         BytesView value, Timestamp ts) = 0;

  // Block until every queue is empty and no event is in flight.
  virtual Status Drain() = 0;

  // Flush dirty slates and stop all threads. Idempotent.
  virtual Status Stop() = 0;

  // Live slate fetch (§4.4): reads the owning worker's cache (forwarding
  // across machines if needed) rather than the durable store, falling back
  // to the store only on a cache miss. NotFound if the slate does not
  // exist anywhere.
  virtual Result<Bytes> FetchSlate(const std::string& updater,
                                   BytesView key) = 0;

  // Crash a machine: its queued events and unflushed slate updates are
  // lost; senders detect the failure on their next send and the hash ring
  // reroutes (§4.3).
  virtual Status CrashMachine(MachineId machine) = 0;

  // Bring a crashed machine back: re-arm its queues, respawn its worker
  // threads, re-register it with the transport, and broadcast the recovery
  // through the master so peers shrink their failed sets. Test/ops path
  // only (the paper's Muppet fixes cluster membership for a run, §5).
  // FailedPrecondition if the machine is not crashed.
  virtual Status RestartMachine(MachineId machine) = 0;

  virtual EngineStats Stats() const = 0;

  virtual const AppConfig& config() const = 0;

  // --- Observability plane (optional; defaults are inert so alternative
  // engine implementations keep compiling).

  // Shared metrics registry backing /metrics; nullptr = none.
  virtual MetricsRegistry* metrics() { return nullptr; }

  // Per-machine trace ring; nullptr when tracing is off or the machine id
  // is unknown.
  virtual TraceSink* trace_sink(MachineId machine) {
    (void)machine;
    return nullptr;
  }

  // Per-machine runtime state for /statusz.
  virtual std::vector<MachineStatus> MachineStatuses() const { return {}; }

  // Hottest (function, key) pairs with their split state, hottest first
  // — the /statusz hot-key panel. Empty when no heat tracking runs.
  virtual std::vector<HotKeyInfo> HotKeys() const { return {}; }

  // Suspend the self-tuning load-manager control loop, blocking until the
  // in-progress tick (and its control-event injections) completes. No-op
  // for engines without one. The chaos harness pauses before its final
  // accounting so a mid-tick merge sweep cannot race the conservation
  // snapshot.
  virtual void PauseLoadManagement() {}

  // Events accepted but not yet fully processed.
  virtual int64_t InflightEvents() const { return 0; }

  // --- Health & SLO plane (DESIGN.md §14; defaults inert).

  // End-to-end SLO tracker; nullptr when the engine does not run one.
  virtual SloTracker* slo() { return nullptr; }

  // Pull newly completed traces from every machine's sink into the SLO
  // tracker now (the /sloz handler calls this so the page is fresh and a
  // drained engine's traces are observed without waiting for the settle
  // window). No-op without a tracker.
  virtual void HarvestSlo() {}

  // Watchdog incident log; nullptr when the engine does not run one.
  virtual const IncidentLog* incidents() const { return nullptr; }

  // Microseconds since Start() on the engine clock; 0 before Start().
  virtual Timestamp UptimeMicros() const { return 0; }
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_ENGINE_H_
