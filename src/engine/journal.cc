#include "engine/journal.h"

#include <cerrno>
#include <cstring>

#include "common/hash.h"

namespace muppet {

EventJournal::~EventJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status EventJournal::Open(const std::string& path) {
  MutexLock lock(mutex_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("journal: already open");
  }
  // Count existing records so indices continue.
  std::vector<JournaledEvent> existing;
  MUPPET_RETURN_IF_ERROR(Read(path, 0, &existing));
  next_index_.store(existing.size(), std::memory_order_release);

  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("journal: open " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

Status EventJournal::Record(const std::string& stream, BytesView key,
                            BytesView value, Timestamp ts) {
  Bytes payload;
  PutLengthPrefixed(&payload, stream);
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  PutVarint64(&payload, static_cast<uint64_t>(ts));

  Bytes frame;
  PutFixed32(&frame, Crc32(payload));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);

  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("journal: closed");
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("journal: short write");
  }
  next_index_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status EventJournal::Flush() {
  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) return Status::IOError("journal: flush");
  return Status::OK();
}

Status EventJournal::Close() {
  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("journal: close failed");
  return Status::OK();
}

Status EventJournal::Read(const std::string& path, uint64_t from_index,
                          std::vector<JournaledEvent>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // fresh journal
  Bytes header(8, '\0');
  Bytes payload;
  uint64_t index = 0;
  while (true) {
    const size_t got = std::fread(header.data(), 1, 8, f);
    if (got < 8) break;  // clean EOF or torn tail
    const uint32_t crc = DecodeFixed32(header.data());
    const uint32_t len = DecodeFixed32(header.data() + 4);
    if (len > (64u << 20)) break;
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) break;
    if (Crc32(payload) != crc) break;

    if (index >= from_index) {
      const char* p = payload.data();
      const char* limit = p + payload.size();
      BytesView stream, key, value;
      uint64_t ts = 0;
      if (!GetLengthPrefixed(&p, limit, &stream) ||
          !GetLengthPrefixed(&p, limit, &key) ||
          !GetLengthPrefixed(&p, limit, &value) ||
          !GetVarint64(&p, limit, &ts)) {
        break;
      }
      JournaledEvent event;
      event.stream.assign(stream);
      event.key.assign(key);
      event.value.assign(value);
      event.ts = static_cast<Timestamp>(ts);
      event.index = index;
      out->push_back(std::move(event));
    }
    ++index;
  }
  std::fclose(f);
  return Status::OK();
}

Result<int64_t> EventJournal::ReplayInto(const std::string& path,
                                         uint64_t from_index,
                                         Engine* engine) {
  std::vector<JournaledEvent> events;
  Status s = Read(path, from_index, &events);
  if (!s.ok()) return s;
  int64_t replayed = 0;
  for (const JournaledEvent& event : events) {
    MUPPET_RETURN_IF_ERROR(
        engine->Publish(event.stream, event.key, event.value, event.ts));
    ++replayed;
  }
  return replayed;
}

}  // namespace muppet
