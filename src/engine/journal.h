// Event replay journal — the capability the paper names as future work:
// "Developing a replay capability to recover the lost events is a subject
// of future work" (§4.3).
//
// Design: Muppet loses two classes of events on a machine crash — events
// queued on the dead machine and the events whose sends detected the
// failure. Replaying *internal* events exactly would require coordinated
// logging at every worker; instead (and sufficient for the §4.3 loss
// model) the journal records the application's *input* events at the
// source. After a failure window, the operator replays the window's input
// suffix: updaters whose computations are idempotent-on-replay or
// monotonic (counts re-derived from inputs, etc.) recover, and because
// input streams accept no operator emissions, replay cannot deadlock the
// workflow (§5).
//
// Format: WAL-style frames [u32 crc][u32 len][stream, key, value, ts, seq]
// with a torn tail tolerated, so a journal survives the source crashing
// mid-write too.
#ifndef MUPPET_ENGINE_JOURNAL_H_
#define MUPPET_ENGINE_JOURNAL_H_

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/event.h"
#include "engine/engine.h"

namespace muppet {

// One journaled input event.
struct JournaledEvent {
  std::string stream;
  Bytes key;
  Bytes value;
  Timestamp ts = 0;
  // Position in the journal (0-based append index), used to replay "from"
  // a checkpoint.
  uint64_t index = 0;
};

class EventJournal {
 public:
  EventJournal() = default;
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Open (append to) the journal at `path`. Counts existing records so
  // indices continue monotonically.
  Status Open(const std::string& path);

  // Record one input event. Call before (or atomically with) publishing.
  Status Record(const std::string& stream, BytesView key, BytesView value,
                Timestamp ts);

  Status Flush();
  Status Close();

  // Lock-free: Checkpoint() snapshots the index while sources may be
  // appending concurrently (writes happen under mutex_, publication is
  // release/acquire).
  uint64_t next_index() const {
    return next_index_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }

  static constexpr LockLevel kLockLevel = LockLevel::kJournal;

  // Read every intact record with index >= `from_index`.
  static Status Read(const std::string& path, uint64_t from_index,
                     std::vector<JournaledEvent>* out);

  // Re-publish journaled events [from_index, end) into `engine`.
  // Returns the number replayed.
  static Result<int64_t> ReplayInto(const std::string& path,
                                    uint64_t from_index, Engine* engine);

 private:
  Mutex mutex_{kLockLevel};
  std::FILE* file_ MUPPET_GUARDED_BY(mutex_) = nullptr;
  // muppet-lint: allow(guarded): written once in Open(), stable after
  std::string path_;
  // Monotonic append index: advanced under mutex_, read lock-free by
  // next_index().
  std::atomic<uint64_t> next_index_{0};
};

// Convenience source wrapper: journals then publishes, keeping the two in
// lockstep so a replay window is well-defined.
class JournalingPublisher {
 public:
  JournalingPublisher(Engine* engine, EventJournal* journal)
      : engine_(engine), journal_(journal) {}

  Status Publish(const std::string& stream, BytesView key, BytesView value,
                 Timestamp ts) {
    MUPPET_RETURN_IF_ERROR(journal_->Record(stream, key, value, ts));
    return engine_->Publish(stream, key, value, ts);
  }

  // Journal index to remember before a risky window; replay from it after.
  uint64_t Checkpoint() const { return journal_->next_index(); }

 private:
  Engine* engine_;
  EventJournal* journal_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_JOURNAL_H_
