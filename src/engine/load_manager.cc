#include "engine/load_manager.h"

#include <algorithm>

namespace muppet {

LoadController::LoadController(const LoadManagerOptions& options)
    : options_(options) {}

LoadActions LoadController::Tick(const LoadSignals& signals) {
  LoadActions actions;

  // Integral action on the hottest queue's occupancy: above target the
  // source pacing floor ramps up, below target it bleeds off. Clamped to
  // [0, max]; the error term is a fraction so the step size scales with
  // how far occupancy is from target, which is as PID-ish as a source-only
  // throttle needs to be (there is no actuator to overshoot — pacing just
  // slows Publish()).
  const double error = signals.max_queue_occupancy - options_.target_occupancy;
  floor_ += error * options_.throttle_gain *
            static_cast<double>(options_.max_floor_delay_micros);
  floor_ = std::clamp(floor_, 0.0,
                      static_cast<double>(options_.max_floor_delay_micros));
  actions.floor_delay_micros = static_cast<Timestamp>(floor_);

  if (signals.sampled_total < options_.min_samples) return actions;
  const double total = static_cast<double>(signals.sampled_total);

  auto split_for = [&](int32_t fid, const Bytes& key) {
    for (const auto& active : signals.active_splits) {
      if (active.function_id == fid && active.key == key) return &active;
    }
    return static_cast<const LoadSignals::ActiveSplit*>(nullptr);
  };

  // Splits: hot enough, not already split, room in the table.
  size_t live = signals.active_splits.size();
  for (const HeatReading& reading : signals.top) {
    if (live >= options_.max_splits) break;
    const double fraction = static_cast<double>(reading.count) / total;
    if (fraction < options_.split_heat_fraction) break;  // top is sorted
    if (split_for(reading.function_id, reading.key) != nullptr) continue;
    actions.splits.push_back(LoadActions::Split{
        reading.function_id, reading.key, options_.split_shards});
    ++live;
  }

  // Merges: split keys whose share of recent traffic stayed below the
  // merge threshold (including keys that left the sketch entirely) for
  // merge_cool_ticks consecutive ticks — one low tick is sampling noise.
  std::map<std::pair<int32_t, Bytes>, int> cool_next;
  for (const auto& active : signals.active_splits) {
    if (active.draining) continue;  // merge already in progress
    int64_t count = 0;
    for (const HeatReading& reading : signals.top) {
      if (reading.function_id == active.function_id &&
          reading.key == active.key) {
        count = reading.count;
        break;
      }
    }
    const double fraction = static_cast<double>(count) / total;
    if (fraction >= options_.merge_heat_fraction) continue;
    const std::pair<int32_t, Bytes> id{active.function_id, active.key};
    auto it = cool_.find(id);
    const int cool = (it != cool_.end() ? it->second : 0) + 1;
    if (cool >= options_.merge_cool_ticks) {
      actions.merges.emplace_back(active.function_id, active.key);
    } else {
      cool_next[id] = cool;
    }
  }
  // Entries absent from cool_next reset to zero: either the key warmed
  // back up this tick, its merge just began, or the split is gone.
  cool_ = std::move(cool_next);

  return actions;
}

}  // namespace muppet
