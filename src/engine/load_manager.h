// Self-tuning load management: the control loop that turns the heat
// sketch (core/heat.h), queue-depth gauges, and the placement advisor
// into runtime actions — dynamic key splits for associative updaters
// (paper §5, Example 6, automated), an occupancy-driven source-throttle
// floor (deadlock-free because only the source is paced, §5), and
// key->machine placement overrides applied through the hash ring's
// bounded override table.
//
// The decision logic lives in LoadController, a pure object with no
// threads or engine references: the engine's load-manager tick gathers a
// LoadSignals snapshot, calls Tick(), and applies the returned
// LoadActions. That keeps every policy decision unit-testable without a
// cluster.
#ifndef MUPPET_ENGINE_LOAD_MANAGER_H_
#define MUPPET_ENGINE_LOAD_MANAGER_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "core/heat.h"

namespace muppet {

struct LoadManagerOptions {
  // Master switch; everything below is inert when false.
  bool enabled = false;

  // Control-loop period.
  Timestamp tick_micros = 20 * kMicrosPerMilli;

  // Heat sketch shape (per machine).
  HeatTrackerOptions heat;
  // Per-tick multiplicative aging of the sketch, so heat reflects recent
  // traffic. 1.0 disables aging.
  double heat_decay = 0.8;

  // --- Key splitting -------------------------------------------------
  // Shards installed per split key.
  int split_shards = 8;
  // Split a key once it draws at least this fraction of sampled arrivals
  // (and the updater is declared associative/commutative).
  double split_heat_fraction = 0.20;
  // Merge a split key back once its fraction falls below this.
  double merge_heat_fraction = 0.05;
  // ... for this many consecutive ticks. One low tick is routinely just
  // sampling noise (a few samples per tick at modest rates), and a
  // spurious merge is expensive: the key re-serializes while draining and
  // the next hot tick re-splits it.
  int merge_cool_ticks = 3;
  // Ignore heat readings until this many samples accumulated.
  int64_t min_samples = 64;
  // Ceiling on concurrently split keys.
  size_t max_splits = 16;
  // A merge finishes after this many consecutive ticks whose sweeps found
  // no shard slates (two, because a sweep races in-flight shard events).
  int merge_quiet_ticks = 2;

  // --- Queue-occupancy throttling ------------------------------------
  // Target occupancy of the hottest queue, as a fraction of capacity.
  double target_occupancy = 0.5;
  // Integral gain: fraction of max_floor_delay_micros added to the pacing
  // floor per unit of occupancy error per tick.
  double throttle_gain = 0.2;
  // Ceiling on the occupancy-driven pacing floor.
  Timestamp max_floor_delay_micros = 5 * kMicrosPerMilli;

  // --- Placement feedback --------------------------------------------
  // Periodically rebalance via ring overrides (disabled under chaos runs
  // without a durable store: moving a key's owner mid-run would strand
  // cache-only slates).
  bool placement_enabled = false;
  // Re-run the placement advisor every this many ticks.
  int placement_period_ticks = 10;
  // At most this many concurrent ring overrides.
  size_t max_overrides = 32;
  double placement_balance_slack = 0.25;
};

// One machine-agnostic heat reading: (function, key) and its decayed
// sampled count.
struct HeatReading {
  int32_t function_id = -1;
  Bytes key;
  int64_t count = 0;
};

// Snapshot the engine hands the controller each tick.
struct LoadSignals {
  // Decayed total of sampled arrivals across all machines.
  int64_t sampled_total = 0;
  // Hottest (function, key) pairs, aggregated across machines.
  std::vector<HeatReading> top;
  // Depth/capacity of the fullest live queue.
  double max_queue_occupancy = 0.0;

  struct ActiveSplit {
    int32_t function_id = -1;
    Bytes key;
    bool draining = false;
  };
  std::vector<ActiveSplit> active_splits;
};

struct LoadActions {
  struct Split {
    int32_t function_id = -1;
    Bytes key;
    int shards = 1;
  };
  // Keys to split now (engine filters for associativity + table bounds).
  std::vector<Split> splits;
  // Active splits to begin merging (heat subsided).
  std::vector<std::pair<int32_t, Bytes>> merges;
  // New source-pacing floor.
  Timestamp floor_delay_micros = 0;
};

class LoadController {
 public:
  explicit LoadController(const LoadManagerOptions& options);

  LoadActions Tick(const LoadSignals& signals);

  Timestamp floor_delay_micros() const {
    return static_cast<Timestamp>(floor_);
  }

 private:
  const LoadManagerOptions options_;
  // Integral throttle state, in micros (double so sub-micro gains
  // accumulate across ticks).
  double floor_ = 0.0;
  // Consecutive ticks each active split has spent below the merge
  // threshold (merge_cool_ticks hysteresis).
  std::map<std::pair<int32_t, Bytes>, int> cool_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_LOAD_MANAGER_H_
