#include "engine/master.h"

#include "common/logging.h"

namespace muppet {

void Master::AddListener(FailureListener listener) {
  MutexLock lock(mutex_);
  listeners_.push_back(std::move(listener));
}

bool Master::ReportFailure(MachineId machine) {
  std::vector<FailureListener> listeners;
  {
    MutexLock lock(mutex_);
    if (!failed_.insert(machine).second) return false;  // already known
    listeners = listeners_;
  }
  failures_reported_.Add();
  MUPPET_LOG(kWarning) << "master: machine " << machine
                       << " reported failed; broadcasting";
  for (const FailureListener& l : listeners) l(machine);
  return true;
}

void Master::ClearFailure(MachineId machine) {
  MutexLock lock(mutex_);
  failed_.erase(machine);
}

std::set<MachineId> Master::failed() const {
  MutexLock lock(mutex_);
  return failed_;
}

bool Master::IsFailed(MachineId machine) const {
  MutexLock lock(mutex_);
  return failed_.count(machine) > 0;
}

}  // namespace muppet
