#include "engine/master.h"

#include "common/logging.h"

namespace muppet {

void Master::AddListener(FailureListener listener) {
  MutexLock lock(mutex_);
  listeners_.push_back(std::move(listener));
}

void Master::AddRecoveryListener(RecoveryListener listener) {
  MutexLock lock(mutex_);
  recovery_listeners_.push_back(std::move(listener));
}

bool Master::ReportFailure(MachineId machine) {
  std::vector<FailureListener> listeners;
  {
    MutexLock lock(mutex_);
    recovering_.erase(machine);  // a re-crash aborts any recovery in flight
    if (!failed_.insert(machine).second) return false;  // already known
    listeners = listeners_;
  }
  failures_reported_.Add();
  MUPPET_LOG(kWarning) << "master: machine " << machine
                       << " reported failed; broadcasting";
  for (const FailureListener& l : listeners) l(machine);
  return true;
}

bool Master::ClearFailure(MachineId machine) {
  std::vector<RecoveryListener> listeners;
  {
    MutexLock lock(mutex_);
    if (failed_.erase(machine) == 0) return false;  // was not failed
    recovering_.erase(machine);
    listeners = recovery_listeners_;
  }
  recoveries_reported_.Add();
  MUPPET_LOG(kInfo) << "master: machine " << machine
                    << " recovered; broadcasting";
  for (const RecoveryListener& l : listeners) l(machine);
  return true;
}

bool Master::BeginRecovery(MachineId machine) {
  MutexLock lock(mutex_);
  if (failed_.count(machine) == 0) return false;
  return recovering_.insert(machine).second;
}

bool Master::IsRecovering(MachineId machine) const {
  MutexLock lock(mutex_);
  return recovering_.count(machine) > 0;
}

std::set<MachineId> Master::failed() const {
  MutexLock lock(mutex_);
  return failed_;
}

bool Master::IsFailed(MachineId machine) const {
  MutexLock lock(mutex_);
  return failed_.count(machine) > 0;
}

}  // namespace muppet
