// The Muppet master (§4.1, §4.3). Deliberately *off* the data path: "Muppet
// lets the workers pass events directly to one another without going
// through any master. (The master in Muppet is used for handling
// failures.)" A worker that cannot contact a machine reports it here; the
// master broadcasts the failure so every worker updates its failed-machine
// list and the shared hash ring reroutes that machine's keys.
#ifndef MUPPET_ENGINE_MASTER_H_
#define MUPPET_ENGINE_MASTER_H_

#include <functional>
#include <set>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "net/transport.h"

namespace muppet {

class Master {
 public:
  // Invoked (synchronously, on the reporter's thread) once per newly
  // failed machine — the "broadcast".
  using FailureListener = std::function<void(MachineId)>;

  // Invoked once per machine whose failure is cleared (recovery
  // broadcast). Test/ops path only — see ClearFailure.
  using RecoveryListener = std::function<void(MachineId)>;

  Master() = default;

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  void AddListener(FailureListener listener);
  void AddRecoveryListener(RecoveryListener listener);

  // Report a machine as failed. Idempotent: only the first report
  // broadcasts. Returns true if this was the first report.
  bool ReportFailure(MachineId machine);

  // Bring a machine back (test/ops path; the paper's Muppet cannot change
  // cluster membership on the fly, §5 — we keep the same restriction for
  // production workers and only use this for store-level tests and the
  // chaos harness's scripted restarts). Idempotent: only clearing a
  // machine actually marked failed broadcasts to recovery listeners.
  // Returns true if the machine was failed.
  //
  // Durable recovery ordering (DESIGN.md §12): ClearFailure is the point
  // where peers erase the machine from their failed sets and the ring
  // starts routing to it again — so an engine must finish restoring the
  // machine's slates (changelog replay) BEFORE calling it. BeginRecovery
  // marks the intermediate state: the machine is coming back (its
  // transport endpoint may be live for replay traffic) but it is still
  // failed for routing purposes until ClearFailure.
  bool ClearFailure(MachineId machine);

  // Mark a failed machine as recovering. The machine stays in failed()
  // (unroutable) and no recovery broadcast fires. Returns false if the
  // machine is not failed or already recovering.
  bool BeginRecovery(MachineId machine);

  bool IsRecovering(MachineId machine) const MUPPET_EXCLUDES(mutex_);

  std::set<MachineId> failed() const MUPPET_EXCLUDES(mutex_);
  bool IsFailed(MachineId machine) const MUPPET_EXCLUDES(mutex_);
  int64_t failures_reported() const { return failures_reported_.Get(); }
  int64_t recoveries_reported() const { return recoveries_reported_.Get(); }

  // Leaf on the failure-report path: listeners are copied out and invoked
  // after the lock is released, so no listener callback ever runs under
  // the master mutex.
  static constexpr LockLevel kLockLevel = LockLevel::kMaster;

 private:
  mutable Mutex mutex_{kLockLevel};
  std::set<MachineId> failed_ MUPPET_GUARDED_BY(mutex_);
  std::set<MachineId> recovering_ MUPPET_GUARDED_BY(mutex_);
  std::vector<FailureListener> listeners_ MUPPET_GUARDED_BY(mutex_);
  std::vector<RecoveryListener> recovery_listeners_ MUPPET_GUARDED_BY(mutex_);
  Counter failures_reported_;
  Counter recoveries_reported_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_MASTER_H_
