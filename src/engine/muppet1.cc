#include "engine/muppet1.h"

#include <algorithm>

#include "common/logging.h"
#include "common/version.h"
#include "engine/wire.h"

namespace muppet {

namespace engine_internal {

// Collects the outputs of one map/update call for serialization back to
// the conductor.
class TaskProcessor::CollectingUtilities final : public PerformerUtilities {
 public:
  CollectingUtilities(const AppConfig& config, const Event& event,
                      bool is_updater)
      : config_(config), event_(event), is_updater_(is_updater) {}

  Status Publish(const std::string& stream, BytesView key,
                 BytesView value) override {
    return PublishAt(stream, key, value, event_.ts + 1);
  }

  Status PublishAt(const std::string& stream, BytesView key, BytesView value,
                   Timestamp ts) override {
    if (!config_.HasStream(stream)) {
      return Status::InvalidArgument("publish: undeclared stream '" + stream +
                                     "'");
    }
    if (config_.IsInputStream(stream)) {
      return Status::InvalidArgument(
          "publish: operators may not emit into input stream '" + stream +
          "'");
    }
    if (ts <= event_.ts) {
      return Status::InvalidArgument(
          "publish: output timestamp must exceed input timestamp");
    }
    Event out;
    out.stream = stream;
    out.ts = ts;
    out.key.assign(key);
    out.value.assign(value);
    out.origin_ts = event_.origin_ts;
    outputs.push_back(std::move(out));
    return Status::OK();
  }

  Status ReplaceSlate(BytesView slate) override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot replace a slate");
    }
    slate_action = 1;
    new_slate.assign(slate);
    return Status::OK();
  }

  Status DeleteSlate() override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot delete a slate");
    }
    slate_action = 2;
    new_slate.clear();
    return Status::OK();
  }

  const Event& current_event() const override { return event_; }

  std::vector<Event> outputs;
  uint8_t slate_action = 0;
  Bytes new_slate;

 private:
  const AppConfig& config_;
  const Event& event_;
  bool is_updater_;
};

TaskProcessor::TaskProcessor(const AppConfig& config,
                             const OperatorSpec& spec)
    : config_(config), spec_(spec) {
  if (spec_.kind == OperatorKind::kMapper) {
    mapper_ = spec_.mapper_factory(config_, spec_.name);
  } else {
    updater_ = spec_.updater_factory(config_, spec_.name);
  }
}

void TaskProcessor::EncodeRequest(const Event& event, const Bytes* slate,
                                  Bytes* out) {
  Bytes event_bytes;
  EncodeEvent(event, &event_bytes);
  PutLengthPrefixed(out, event_bytes);
  out->push_back(slate != nullptr ? 1 : 0);
  if (slate != nullptr) PutLengthPrefixed(out, *slate);
}

Status TaskProcessor::DecodeResponse(BytesView data, Response* out) {
  const char* p = data.data();
  const char* limit = p + data.size();
  uint32_t n = 0;
  if (!GetVarint32(&p, limit, &n)) {
    return Status::Corruption("taskproc: bad response header");
  }
  out->outputs.clear();
  out->outputs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BytesView event_bytes;
    if (!GetLengthPrefixed(&p, limit, &event_bytes)) {
      return Status::Corruption("taskproc: truncated output event");
    }
    Event event;
    MUPPET_RETURN_IF_ERROR(DecodeEvent(event_bytes, &event));
    out->outputs.push_back(std::move(event));
  }
  if (p >= limit) return Status::Corruption("taskproc: missing slate action");
  out->slate_action = static_cast<uint8_t>(*p++);
  if (out->slate_action == 1) {
    BytesView slate;
    if (!GetLengthPrefixed(&p, limit, &slate)) {
      return Status::Corruption("taskproc: truncated slate");
    }
    out->slate.assign(slate);
  }
  if (p != limit) return Status::Corruption("taskproc: trailing bytes");
  return Status::OK();
}

Status TaskProcessor::Process(BytesView request, Bytes* response) {
  // Decode the request (the conductor -> task-processor copy).
  const char* p = request.data();
  const char* limit = p + request.size();
  BytesView event_bytes;
  if (!GetLengthPrefixed(&p, limit, &event_bytes) || p >= limit) {
    return Status::Corruption("taskproc: bad request");
  }
  Event event;
  MUPPET_RETURN_IF_ERROR(DecodeEvent(event_bytes, &event));
  const bool has_slate = *p++ != 0;
  Bytes slate;
  if (has_slate) {
    BytesView slate_view;
    if (!GetLengthPrefixed(&p, limit, &slate_view)) {
      return Status::Corruption("taskproc: truncated request slate");
    }
    slate.assign(slate_view);
  }

  CollectingUtilities utils(config_, event,
                            spec_.kind == OperatorKind::kUpdater);
  if (spec_.kind == OperatorKind::kMapper) {
    mapper_->Map(utils, event);
  } else {
    updater_->Update(utils, event, has_slate ? &slate : nullptr);
  }

  // Encode the response (the task-processor -> conductor copy).
  PutVarint32(response, static_cast<uint32_t>(utils.outputs.size()));
  for (const Event& out : utils.outputs) {
    Bytes out_bytes;
    EncodeEvent(out, &out_bytes);
    PutLengthPrefixed(response, out_bytes);
  }
  response->push_back(static_cast<char>(utils.slate_action));
  if (utils.slate_action == 1) {
    PutLengthPrefixed(response, utils.new_slate);
  }
  return Status::OK();
}

}  // namespace engine_internal

Muppet1Engine::Muppet1Engine(const AppConfig& config, EngineOptions options)
    : config_(config),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      transport_([&] {
        TransportOptions t = options.transport;
        if (t.clock == nullptr) t.clock = options.clock;
        // Settle fault-injection deliveries that bypass the synchronous
        // send path: late losses debit the in-flight count, duplicate
        // copies pre-charge it, so Drain() stays balanced under chaos.
        if (t.on_async_loss == nullptr) {
          t.on_async_loss = [this](int64_t n) {
            lost_failure_->Add(n);
            DecInflight(n);
          };
        }
        if (t.on_extra_delivery == nullptr) {
          t.on_extra_delivery = [this](int64_t n) {
            inflight_.fetch_add(n, std::memory_order_acq_rel);
          };
        }
        return t;
      }()),
      ring_(options.ring_vnodes, options.ring_seed),
      throttle_(options.throttle, clock_),
      incident_log_(options.watchdog.incident_capacity),
      published_(metrics_.GetCounter("muppet_events_published_total")),
      processed_(metrics_.GetCounter("muppet_events_processed_total")),
      emitted_(metrics_.GetCounter("muppet_events_emitted_total")),
      lost_failure_(metrics_.GetCounter("muppet_events_lost_failure_total")),
      dropped_overflow_(
          metrics_.GetCounter("muppet_events_dropped_overflow_total")),
      redirected_overflow_(
          metrics_.GetCounter("muppet_events_redirected_overflow_total")),
      deadlocks_avoided_(
          metrics_.GetCounter("muppet_deadlocks_avoided_total")),
      store_reads_(metrics_.GetCounter("muppet_slate_store_reads_total")),
      store_writes_(metrics_.GetCounter("muppet_slate_store_writes_total")),
      operator_instances_(
          metrics_.GetCounter("muppet_operator_instances_total")),
      slatelog_appends_(
          metrics_.GetCounter("muppet_slatelog_appends_total")),
      slatelog_replays_(
          metrics_.GetCounter("muppet_slatelog_replays_total")),
      slatelog_replayed_(
          metrics_.GetCounter("muppet_slatelog_replayed_records_total")),
      slatelog_torn_tails_(
          metrics_.GetCounter("muppet_slatelog_torn_tails_total")),
      slatelog_corrupt_segments_(metrics_.GetCounter(
          "muppet_slatelog_corrupt_segments_total")),
      checkpoints_(metrics_.GetCounter("muppet_checkpoints_total")),
      deduped_(metrics_.GetCounter("muppet_events_deduped_total")),
      latency_(metrics_.GetHistogram("muppet_e2e_latency_us")) {}

Muppet1Engine::~Muppet1Engine() { (void)Stop(); }

Status Muppet1Engine::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  MUPPET_RETURN_IF_ERROR(config_.Validate());
  if (options_.num_machines < 1 || options_.workers_per_function < 1) {
    return Status::InvalidArgument("engine: bad cluster shape");
  }
  if (options_.overflow.policy == OverflowPolicy::kOverflowStream) {
    if (!config_.HasStream(options_.overflow.overflow_stream)) {
      return Status::InvalidArgument(
          "engine: overflow stream is not declared");
    }
  }
  if (durable() && options_.durability.dir.empty()) {
    return Status::InvalidArgument(
        "engine: durability requires a changelog directory "
        "(EngineOptions::durability.dir)");
  }

  for (int m = 0; m < options_.num_machines; ++m) {
    auto machine = std::make_unique<MachineCtx>();
    machine->id = m;
    if (options_.trace.enabled && options_.trace.sample_period != 0) {
      TraceSink::Options trace_options;
      trace_options.recent_capacity = options_.trace.recent_traces;
      trace_options.slowest_capacity = options_.trace.slowest_traces;
      machine->trace_sink = std::make_unique<TraceSink>(trace_options);
    }
    if (durable()) {
      SlateChangelog::Options log_options;
      log_options.sync_every_records =
          exactly_once() ? 1 : options_.durability.sync_every_records;
      machine->changelog = std::make_unique<SlateChangelog>(
          options_.durability.dir, static_cast<uint64_t>(m), log_options);
      MUPPET_RETURN_IF_ERROR(machine->changelog->Open());
      if (exactly_once()) {
        machine->dedup =
            std::make_unique<DedupTable>(options_.durability.dedup_capacity);
      }
    }
    machines_.push_back(std::move(machine));
  }

  for (const std::string& sid : config_.InputStreams()) {
    stream_published_[sid] = metrics_.GetCounter(
        "muppet_stream_published_total", {{"stream", sid}});
  }

  // Heat observation for the /statusz hot-key panel. Muppet 1.0 runs no
  // control loop (no splitting, no placement — load_manager actions are
  // 2.0-only), but the same sketch feeds the panel and metrics. The
  // sketch keys on a dense function id; build the ad-hoc name<->id map
  // from the (sorted) operator table so ids are deterministic.
  if (options_.load_manager.enabled) {
    for (const auto& [name, spec] : config_.operators()) {
      (void)spec;
      heat_fn_ids_[name] = static_cast<int32_t>(heat_fn_names_.size());
      heat_fn_names_.push_back(name);
    }
    heat_ = std::make_unique<HeatTracker>(options_.load_manager.heat);
  }

  // One set of workers per function, round-robin over machines.
  std::vector<int32_t> next_slot(static_cast<size_t>(options_.num_machines),
                                 0);
  // Count updater workers per machine first, to divide the cache budget
  // (§4.5: Muppet 1.0 scatters the machine's slate cache across workers).
  std::vector<int> updater_workers(
      static_cast<size_t>(options_.num_machines), 0);
  for (const auto& [name, spec] : config_.operators()) {
    if (spec.kind != OperatorKind::kUpdater) continue;
    for (int i = 0; i < options_.workers_per_function; ++i) {
      ++updater_workers[static_cast<size_t>(i % options_.num_machines)];
    }
  }

  for (const auto& [name, spec] : config_.operators()) {
    for (int i = 0; i < options_.workers_per_function; ++i) {
      const MachineId machine_id = i % options_.num_machines;
      MachineCtx* machine = machines_[static_cast<size_t>(machine_id)].get();

      auto worker = std::make_unique<Worker>();
      worker->function = name;
      worker->kind = spec.kind;
      worker->ref =
          WorkerRef{machine_id, next_slot[static_cast<size_t>(machine_id)]++};
      worker->queue = std::make_unique<EventQueue>(options_.queue_capacity);
      worker->task =
          std::make_unique<engine_internal::TaskProcessor>(config_, spec);
      worker->processed_counter = metrics_.GetCounter(
          "muppet_operator_processed_total", {{"operator", name}});
      operator_instances_->Add();
      if (spec.kind == OperatorKind::kUpdater) {
        worker->updater_options = spec.updater_options;
        const size_t share = std::max<size_t>(
            1, options_.slate_cache_capacity /
                   std::max(1, updater_workers[static_cast<size_t>(
                                   machine_id)]));
        worker->cache = std::make_unique<SlateCache>(
            SlateCacheOptions{share},
            MakeWriteBack(name, spec.updater_options.slate_ttl_micros));
      }
      ring_.AddWorker(name, worker->ref);
      machine->workers.push_back(worker.get());
      machine->by_slot[{name, worker->ref.slot}] = worker.get();
      workers_.push_back(std::move(worker));
    }
  }

  RegisterCallbackMetrics();

  for (auto& machine : machines_) {
    const MachineId id = machine->id;
    MUPPET_RETURN_IF_ERROR(transport_.RegisterMachine(
        id, [this, id](MachineId /*from*/, BytesView payload) {
          return HandleIncoming(id, payload);
        }));
  }

  // Failure broadcast: every machine keeps its own failed list (§4.3).
  master_.AddListener([this](MachineId failed) {
    for (auto& machine : machines_) {
      MutexLock lock(machine->failed_mutex);
      machine->failed.insert(failed);
    }
  });
  master_.AddRecoveryListener([this](MachineId recovered) {
    for (auto& machine : machines_) {
      MutexLock lock(machine->failed_mutex);
      machine->failed.erase(recovered);
    }
  });

  // Cold-start replay (warm process restart in a durable mode): re-home
  // every machine's logged slates into their owning workers' caches
  // before any conductor runs.
  if (durable()) {
    for (auto& machine : machines_) {
      MUPPET_RETURN_IF_ERROR(ReplayChangelog(machine.get()));
    }
  }

  // Health & SLO plane (DESIGN.md §14): the tracker shares the engine
  // registry so /sloz and /metrics read the same cells; incidents dump
  // flight-recorder artifacts on the chaos artifact path.
  slo_ = std::make_unique<SloTracker>(options_.slo, &metrics_, clock_);
  incident_log_.SetDumpHook([this](const Incident& incident) {
    std::vector<TraceSink*> sinks;
    for (const auto& m : machines_) sinks.push_back(m->trace_sink.get());
    (void)DumpWatchdogArtifacts("muppet1", incident, sinks, &metrics_);
  });

  // Spin up conductors and per-machine flushers.
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { ConductorLoop(w); });
  }
  for (auto& machine : machines_) {
    MachineCtx* m = machine.get();
    m->flusher = std::thread([this, m] { FlusherLoop(m); });
  }
  if (options_.watchdog.enabled) {
    watchdog_ = std::make_unique<Watchdog>(options_.watchdog, &incident_log_);
    wd_thread_ = std::thread([this] { WatchdogLoop(); });
  }

  started_at_.store(clock_->Now(), std::memory_order_release);
  started_ = true;
  return Status::OK();
}

SlateCache::WriteBack Muppet1Engine::MakeWriteBack(const std::string& updater,
                                                   Timestamp ttl) {
  return [this, updater, ttl](const SlateCache::DirtySlate& dirty) -> Status {
    if (options_.slate_store == nullptr) return Status::OK();
    store_writes_->Add();
    if (dirty.deleted) {
      return options_.slate_store->Delete(dirty.id);
    }
    return options_.slate_store->Write(dirty.id, dirty.value, ttl);
  };
}

std::set<MachineId> Muppet1Engine::FailedSetFor(MachineId machine) const {
  if (machine >= 0 &&
      machine < static_cast<MachineId>(machines_.size())) {
    const MachineCtx* m = machines_[static_cast<size_t>(machine)].get();
    MutexLock lock(m->failed_mutex);
    return m->failed;
  }
  return master_.failed();
}

void Muppet1Engine::TapStream(const std::string& stream,
                              std::function<void(const Event&)> tap) {
  WriterMutexLock lock(taps_mutex_);
  taps_[stream].push_back(std::move(tap));
}

void Muppet1Engine::RunTaps(const Event& event) {
  ReaderMutexLock lock(taps_mutex_);
  auto it = taps_.find(event.stream);
  if (it == taps_.end()) return;
  for (const auto& tap : it->second) tap(event);
}

Status Muppet1Engine::Publish(const std::string& stream, BytesView key,
                              BytesView value, Timestamp ts) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("engine not running");
  }
  if (!config_.IsInputStream(stream)) {
    return Status::InvalidArgument("'" + stream +
                                   "' is not a declared input stream");
  }
  if (options_.overflow.policy == OverflowPolicy::kThrottle) {
    // Source throttling (§5): safe because nothing emits into input
    // streams, so slowing here cannot deadlock the workflow.
    throttle_.PaceSource();
  }
  Event event;
  event.stream = stream;
  event.ts = ts;
  event.key.assign(key);
  event.value.assign(value);
  event.seq = NextSeq();
  event.origin_ts = clock_->Now();
  published_->Add();
  auto sp = stream_published_.find(stream);
  if (sp != stream_published_.end()) sp->second->Add();

  // Deterministic sampling: the decision is a pure function of the key,
  // so a chaos replay of the same workload traces the same events.
  if (options_.trace.enabled &&
      TraceSampled(Fnv1a64(event.key), options_.trace.sample_period)) {
    event.trace.trace_id = MakeTraceId(Fnv1a64(event.key), event.seq);
    TraceSink* sink = SinkFor(0);
    if (sink != nullptr) {
      // Root span: the external publish itself (machine 0 plays the
      // paper's M0 and accepts all external events).
      Span root;
      root.trace_id = event.trace.trace_id;
      root.span_id = NextSpanId();
      root.kind = SpanKind::kPublish;
      root.machine = 0;
      root.name = stream;
      root.start_us = event.origin_ts;
      root.end_us = clock_->Now();
      event.trace.parent_span = root.span_id;
      sink->Record(std::move(root));
    }
  }
  // The paper's special mapper M0 reads the input stream on one machine
  // and hashes events out to workers (§4.1); machine 0 plays that role.
  DeliverEvent(/*from=*/0, /*sender=*/nullptr, event);
  return Status::OK();
}

void Muppet1Engine::DeliverEvent(MachineId from, const Worker* sender,
                                 const Event& event) {
  RunTaps(event);
  for (const std::string& function : config_.SubscribersOf(event.stream)) {
    SendToWorker(from, sender, function, event);
  }
}

void Muppet1Engine::SendToWorker(MachineId from, const Worker* sender,
                                 const std::string& function,
                                 const Event& event) {
  if (heat_ != nullptr && heat_->ShouldSample()) {
    const auto it = heat_fn_ids_.find(function);
    if (it != heat_fn_ids_.end()) heat_->Record(it->second, event.key);
  }
  const std::set<MachineId> failed = FailedSetFor(from);
  Result<WorkerRef> target = ring_.Route(function, event.key, failed);
  if (!target.ok()) {
    lost_failure_->Add();
    MUPPET_LOG(kWarning) << "engine: no live worker for " << function
                         << ", event lost";
    return;
  }

  RoutedEvent re{function, event};
  re.event.seq = NextSeq();
  // Exactly-once: stamp the delivery identity the receiver dedups on
  // (engine/slatelog.h). Derived after the final seq assignment so each
  // routed copy is a distinct delivery.
  if (exactly_once()) {
    re.dedup = DedupIdentity(
        HashCombine(Fnv1a64(function), Fnv1a64(event.key)), re.event.ts,
        re.event.seq);
  }
  Bytes payload;
  PutVarint32(&payload, static_cast<uint32_t>(target.value().slot));
  EncodeRoutedEvent(re, &payload);

  // Net-hop span on the sender's sink; the RAII scope covers the retry
  // loop, so the span absorbs throttle waits like a real wire would. 1.0
  // serializes even same-machine sends, but only a cross-machine send is
  // a network hop.
  ScopedSpan hop;
  if (target.value().machine != from) {
    hop.Begin(SinkFor(from), clock_, event.trace, SpanKind::kNetHop, from,
              "->m" + std::to_string(target.value().machine));
  }

  const uint64_t signature = EventFaultSignature(re);
  int attempts = 0;
  const int kMaxThrottleRetries = 50;
  while (true) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    Status s =
        transport_.Send(from, target.value().machine, payload, signature);
    if (s.ok()) return;
    DecInflight(1);

    if (s.IsUnavailable()) {
      // Failure detected on send (§4.3): report to the master, which
      // broadcasts; the event itself is lost, not re-dispatched.
      master_.ReportFailure(target.value().machine);
      lost_failure_->Add();
      MUPPET_LOG(kWarning) << "engine: machine " << target.value().machine
                           << " unreachable; event logged as lost";
      return;
    }
    if (!s.IsResourceExhausted()) {
      lost_failure_->Add();
      return;
    }

    // Queue overflow (§4.3): apply the configured policy.
    switch (options_.overflow.policy) {
      case OverflowPolicy::kDrop:
        dropped_overflow_->Add();
        MUPPET_LOG(kDebug) << "engine: queue full, event dropped";
        return;
      case OverflowPolicy::kOverflowStream: {
        if (event.stream == options_.overflow.overflow_stream) {
          dropped_overflow_->Add();  // the degraded path is itself full
          return;
        }
        redirected_overflow_->Add();
        Event redirected = event;
        redirected.stream = options_.overflow.overflow_stream;
        DeliverEvent(from, sender, redirected);
        return;
      }
      case OverflowPolicy::kThrottle: {
        throttle_.NoteOverflow();
        // Emitting back into a queue this worker itself drains can never
        // succeed by waiting — that is the paper's §5 deadlock scenario.
        if (sender != nullptr && target.value() == sender->ref) {
          deadlocks_avoided_->Add();
          dropped_overflow_->Add();
          return;
        }
        if (++attempts > kMaxThrottleRetries) {
          dropped_overflow_->Add();
          return;
        }
        clock_->SleepFor(200);
        continue;
      }
    }
  }
}

Status Muppet1Engine::HandleIncoming(MachineId to, BytesView payload) {
  MachineCtx* machine = machines_[static_cast<size_t>(to)].get();
  if (machine->crashed.load()) {
    return Status::Unavailable("machine crashed");
  }
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint32_t slot = 0;
  if (!GetVarint32(&p, limit, &slot)) {
    return Status::Corruption("engine: bad payload");
  }
  RoutedEvent re;
  MUPPET_RETURN_IF_ERROR(DecodeRoutedEvent(
      BytesView(p, static_cast<size_t>(limit - p)), &re));
  auto it = machine->by_slot.find({re.function, static_cast<int32_t>(slot)});
  if (it == machine->by_slot.end()) {
    return Status::NotFound("engine: no such worker slot");
  }
  if (re.event.trace.sampled()) re.enqueue_ts = clock_->Now();
  // Exactly-once suppression (engine/slatelog.h): an identity this
  // machine already processed settles as deduped. The identity is
  // reserved atomically BEFORE the push — check-then-record would let two
  // concurrent deliveries of the same identity both pass the check — and
  // unwound on a declined (queue-full) send so the sender's retry is not
  // mistaken for a duplicate.
  const uint64_t dedup_id =
      (re.ctl == kCtlNone && machine->dedup != nullptr) ? re.dedup : 0;
  if (dedup_id != 0 && !machine->dedup->CheckAndInsert(dedup_id)) {
    deduped_->Add();
    DecInflight(1);
    return Status::OK();
  }
  // The queue declines when full; the decline propagates to the sender.
  Status s = it->second->queue->TryPush(std::move(re));
  if (!s.ok() && dedup_id != 0) machine->dedup->Remove(dedup_id);
  return s;
}

void Muppet1Engine::ConductorLoop(Worker* worker) {
  RoutedEvent re;
  while (worker->queue->Pop(&re)) {
    if (re.event.trace.sampled() && re.enqueue_ts != 0) {
      TraceSink* sink = SinkFor(worker->ref.machine);
      if (sink != nullptr) {
        Span wait;
        wait.trace_id = re.event.trace.trace_id;
        wait.span_id = NextSpanId();
        wait.parent_span = re.event.trace.parent_span;
        wait.kind = SpanKind::kQueueWait;
        wait.machine = worker->ref.machine;
        wait.name = worker->function;
        wait.start_us = re.enqueue_ts;
        wait.end_us = clock_->Now();
        sink->Record(std::move(wait));
      }
    }
    Status s = ProcessOne(worker, re.event, re.dedup);
    if (!s.ok()) {
      MUPPET_LOG(kError) << "worker " << worker->function << "@"
                         << worker->ref.machine << ": " << s.ToString();
    }
    DecInflight(1);
  }
}

Status Muppet1Engine::FetchSlateForWorker(Worker* worker, BytesView key,
                                          Bytes* slate,
                                          const char** source) {
  const SlateId id{worker->function, Bytes(key)};
  bool absent = false;
  Status s = worker->cache->LookupWithAbsent(id, slate, &absent);
  if (s.ok()) {
    if (source != nullptr) *source = absent ? "absent_cached" : "hit";
    if (absent) return Status::NotFound("slate absent (cached)");
    return Status::OK();
  }
  // Cache miss: fetch from the durable store (§4.2).
  if (options_.slate_store != nullptr) {
    store_reads_->Add();
    Result<Bytes> fetched = options_.slate_store->Read(id);
    if (fetched.ok()) {
      if (source != nullptr) *source = "store";
      *slate = std::move(fetched).value();
      (void)worker->cache->Insert(id, *slate);
      return Status::OK();
    }
    if (!fetched.status().IsNotFound()) return fetched.status();
  }
  // Nowhere: "Muppet initializes a new slate in the cache" — we model the
  // fresh slate as a negative entry so the updater sees nullptr and
  // initializes its variables (§3).
  if (source != nullptr) *source = "store_absent";
  worker->cache->InsertAbsent(id);
  return Status::NotFound("slate absent");
}

Status Muppet1Engine::ProcessOne(Worker* worker, const Event& event,
                                 uint64_t dedup) {
  // Execution span: covers the slate fetch, the task-processor round
  // trip, the slate write-back, and the delivery of emitted events (the
  // same window the 2.0 engine's exec span covers). Outputs emitted here
  // parent to it.
  ScopedSpan exec;
  exec.Begin(SinkFor(worker->ref.machine), clock_, event.trace,
             worker->kind == OperatorKind::kUpdater ? SpanKind::kUpdateExec
                                                    : SpanKind::kMapExec,
             worker->ref.machine, worker->function);

  // Conductor: gather the slate, serialize the request, cross the
  // process boundary, decode the response.
  Bytes slate;
  bool has_slate = false;
  if (worker->kind == OperatorKind::kUpdater) {
    const char* fetch_source = nullptr;
    ScopedSpan fetch;
    fetch.Begin(SinkFor(worker->ref.machine), clock_,
                TraceContext{event.trace.trace_id, exec.span_id()},
                SpanKind::kSlateFetch, worker->ref.machine,
                worker->function);
    Status s = FetchSlateForWorker(worker, event.key, &slate, &fetch_source);
    if (fetch_source != nullptr) fetch.set_note(fetch_source);
    fetch.End();
    if (s.ok()) {
      has_slate = true;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }

  Bytes request;
  engine_internal::TaskProcessor::EncodeRequest(
      event, has_slate ? &slate : nullptr, &request);
  Bytes response;
  MUPPET_RETURN_IF_ERROR(worker->task->Process(request, &response));
  engine_internal::TaskProcessor::Response decoded;
  MUPPET_RETURN_IF_ERROR(
      engine_internal::TaskProcessor::DecodeResponse(response, &decoded));

  MachineCtx* machine =
      machines_[static_cast<size_t>(worker->ref.machine)].get();
  if (worker->kind == OperatorKind::kUpdater) {
    const SlateId id{worker->function, event.key};
    if (decoded.slate_action == 1) {
      const bool write_through = worker->updater_options.flush_policy ==
                                 SlateFlushPolicy::kWriteThrough;
      MUPPET_RETURN_IF_ERROR(worker->cache->Update(
          id, decoded.slate, clock_->Now(), write_through));
      AppendSlateLog(machine, SlateLogKind::kUpdate, worker->function,
                     event.key, decoded.slate, event, dedup);
    } else if (decoded.slate_action == 2) {
      MUPPET_RETURN_IF_ERROR(worker->cache->Delete(id));
      AppendSlateLog(machine, SlateLogKind::kDelete, worker->function,
                     event.key, BytesView(), event, dedup);
    } else if (dedup != 0 && machine->changelog != nullptr) {
      // No slate effect, but the processed identity must survive into
      // replay seeding (exactly-once epoch cut).
      AppendSlateLog(machine, SlateLogKind::kMark, worker->function,
                     event.key, BytesView(), event, dedup);
    }
  } else if (dedup != 0 && machine->changelog != nullptr) {
    AppendSlateLog(machine, SlateLogKind::kMark, worker->function, event.key,
                   BytesView(), event, dedup);
  }

  for (Event& out : decoded.outputs) {
    // Child events parent to this execution span (the TaskProcessor codec
    // deliberately carries no trace state — it models the 1.0 IPC
    // boundary — so the conductor re-attaches it here).
    out.trace.trace_id = event.trace.trace_id;
    out.trace.parent_span = exec.span_id();
    emitted_->Add();
    DeliverEvent(worker->ref.machine, worker, out);
  }
  exec.End();

  worker->processed_counter->Add();
  processed_->Add();
  if (event.origin_ts > 0) {
    latency_->Record(clock_->Now() - event.origin_ts);
  }
  return Status::OK();
}

void Muppet1Engine::FlusherLoop(MachineCtx* machine) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    clock_->SleepFor(options_.flush_poll_micros);
    if (machine->crashed.load()) return;
    const Timestamp now = clock_->Now();
    for (Worker* worker : machine->workers) {
      if (worker->cache == nullptr) continue;
      if (worker->updater_options.flush_policy != SlateFlushPolicy::kInterval) {
        continue;
      }
      (void)worker->cache->FlushDirty(
          now - worker->updater_options.flush_interval_micros);
    }
    if (machine->changelog != nullptr) MaybeCheckpoint(machine);
  }
}

void Muppet1Engine::AppendSlateLog(MachineCtx* machine, SlateLogKind kind,
                                   const std::string& updater, BytesView key,
                                   BytesView value, const Event& event,
                                   uint64_t dedup) {
  if (machine->changelog == nullptr) return;
  SlateLogRecord rec;
  rec.kind = static_cast<uint8_t>(kind);
  rec.updater = updater;
  rec.key.assign(key);
  rec.value.assign(value);
  rec.ts = event.ts;
  rec.seq = event.seq;
  rec.work = HashCombine(Fnv1a64(updater), Fnv1a64(key));
  rec.dedup = dedup;
  Result<uint64_t> lsn = machine->changelog->Append(std::move(rec));
  if (!lsn.ok()) {
    MUPPET_LOG(kError) << "slatelog: append failed on machine "
                       << machine->id << ": " << lsn.status().ToString();
    return;
  }
  slatelog_appends_->Add();
  machine->appends_since_checkpoint.fetch_add(1, std::memory_order_acq_rel);
}

void Muppet1Engine::MaybeCheckpoint(MachineCtx* machine) {
  // Bound the at-least-once loss window across workload pauses.
  (void)machine->changelog->Sync();

  const uint64_t every = options_.durability.checkpoint_every_records;
  if (every == 0 || options_.slate_store == nullptr) return;
  if (machine->appends_since_checkpoint.load(std::memory_order_acquire) <
      every) {
    return;
  }

  const uint64_t cut = machine->changelog->last_lsn();
  machine->appends_since_checkpoint.store(0, std::memory_order_release);
  // 1.0 scatters the machine's slates over per-worker caches; a
  // checkpoint flushes them all.
  for (Worker* worker : machine->workers) {
    if (worker->cache == nullptr) continue;
    Result<int> flushed = worker->cache->FlushDirty(INT64_MAX);
    if (!flushed.ok()) {
      MUPPET_LOG(kError) << "slatelog: checkpoint flush failed on machine "
                         << machine->id << ": "
                         << flushed.status().ToString();
      return;
    }
  }

  (void)machine->changelog->RotateSegment();

  CheckpointManifest manifest;
  manifest.machine = static_cast<uint64_t>(machine->id);
  manifest.lsn = cut;
  manifest.segment = machine->changelog->active_segment();
  manifest.ts = clock_->Now();
  Status s = SlateChangelog::WriteManifestFile(options_.durability.dir,
                                               manifest);
  if (!s.ok()) {
    MUPPET_LOG(kError) << "slatelog: manifest write failed on machine "
                       << machine->id << ": " << s.ToString();
    return;
  }
  machine->manifest_lsn.store(cut, std::memory_order_release);

  Bytes payload;
  EncodeCheckpointManifest(manifest, &payload);
  (void)options_.slate_store->cluster()->Put(
      kCheckpointColumnFamily,
      "machine-" + std::to_string(machine->id), "manifest", payload);

  (void)machine->changelog->DropSegmentsCoveredBy(cut);
  checkpoints_->Add();
}

Status Muppet1Engine::ReplayChangelog(MachineCtx* machine) {
  if (machine->changelog == nullptr) return Status::OK();
  CheckpointManifest manifest;
  MUPPET_RETURN_IF_ERROR(SlateChangelog::ReadManifestFile(
      options_.durability.dir, static_cast<uint64_t>(machine->id),
      &manifest));
  machine->manifest_lsn.store(manifest.lsn, std::memory_order_release);

  // Re-home each logged slate into its owning worker's cache. Routing
  // uses the steady-state (no-failures) ring view: the records were
  // written by this machine's workers under stable membership, so their
  // keys route back to the same slots.
  const std::set<MachineId> no_failed;
  const Timestamp now = clock_->Now();
  const size_t seed_window = options_.durability.replay_seed_window;
  std::deque<uint64_t> identities;
  SlateLogReplayStats replay_stats;
  Status s = SlateChangelog::Replay(
      options_.durability.dir, static_cast<uint64_t>(machine->id),
      manifest.lsn,
      [&](const SlateLogRecord& rec) {
        if (rec.dedup != 0 && machine->dedup != nullptr) {
          identities.push_back(rec.dedup);
          if (identities.size() > seed_window) identities.pop_front();
        }
        const SlateLogKind kind = static_cast<SlateLogKind>(rec.kind);
        if (kind == SlateLogKind::kMark) return;
        Result<WorkerRef> target =
            ring_.Route(rec.updater, rec.key, no_failed);
        if (!target.ok() || target.value().machine != machine->id) return;
        auto it = machine->by_slot.find({rec.updater, target.value().slot});
        if (it == machine->by_slot.end() || it->second->cache == nullptr) {
          return;
        }
        if (kind == SlateLogKind::kUpdate) {
          (void)it->second->cache->Update(SlateId{rec.updater, rec.key},
                                          rec.value, now,
                                          /*write_through=*/false);
        } else {
          (void)it->second->cache->Delete(SlateId{rec.updater, rec.key});
        }
      },
      &replay_stats);
  if (!s.ok()) return s;

  if (machine->dedup != nullptr) {
    for (const uint64_t id : identities) machine->dedup->Seed(id);
  }

  slatelog_replays_->Add();
  slatelog_replayed_->Add(static_cast<int64_t>(replay_stats.records));
  if (replay_stats.truncated_tail) slatelog_torn_tails_->Add();
  if (replay_stats.corrupt_segments > 0) {
    slatelog_corrupt_segments_->Add(
        static_cast<int64_t>(replay_stats.corrupt_segments));
  }
  machine->replays.fetch_add(1, std::memory_order_acq_rel);
  MUPPET_LOG(kInfo) << "slatelog: machine " << machine->id << " replayed "
                    << replay_stats.records << " records ("
                    << replay_stats.skipped << " below manifest lsn "
                    << manifest.lsn << ", torn_tail="
                    << (replay_stats.truncated_tail ? "yes" : "no")
                    << ", corrupt_segments=" << replay_stats.corrupt_segments
                    << ")";
  return Status::OK();
}

void Muppet1Engine::DecInflight(int64_t n) {
  if (n <= 0) return;
  if (inflight_.fetch_sub(n, std::memory_order_acq_rel) <= n) {
    // Reached (or crossed) zero: wake Drain(). `<=` rather than `==` so a
    // batched decrement that skips past zero still notifies. Taking the
    // mutex orders the notify against a drainer that just checked the
    // predicate and is about to block.
    MutexLock lock(drain_mutex_);
    drain_cv_.NotifyAll();
  }
}

Status Muppet1Engine::Drain() {
  if (!started_) return Status::FailedPrecondition("engine not started");
  drain_waiters_.fetch_add(1, std::memory_order_acq_rel);
  {
    MutexLock lock(drain_mutex_);
    while (inflight_.load(std::memory_order_acquire) > 0) {
      drain_cv_.Wait(drain_mutex_);
    }
  }
  drain_waiters_.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Muppet1Engine::Stop() {
  if (!started_ || stopped_) return Status::OK();
  stopped_ = true;

  // Let in-flight work finish, flush slates, then tear down.
  (void)Drain();
  // Final SLO harvest: the engine is drained, so every sampled trace is
  // complete and can be observed before the sinks are torn down.
  HarvestSlo();
  shutdown_.store(true, std::memory_order_release);
  if (wd_thread_.joinable()) wd_thread_.join();
  for (auto& machine : machines_) {
    if (machine->flusher.joinable()) machine->flusher.join();
  }
  for (auto& worker : workers_) {
    if (worker->cache != nullptr && !machines_[static_cast<size_t>(
                                        worker->ref.machine)]
                                        ->crashed.load()) {
      (void)worker->cache->FlushDirty(INT64_MAX);
    }
    worker->queue->Stop();
  }
  // Graceful shutdown syncs each changelog tail: stop/start in a durable
  // mode is lossless (only crashes lose the unsynced tail).
  for (auto& machine : machines_) {
    if (machine->changelog != nullptr && !machine->crashed.load()) {
      (void)machine->changelog->Close();
    }
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& machine : machines_) {
    transport_.UnregisterMachine(machine->id);
  }
  return Status::OK();
}

Result<Bytes> Muppet1Engine::FetchSlate(const std::string& updater,
                                        BytesView key) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  const OperatorSpec* spec = config_.FindOperator(updater);
  if (spec == nullptr || spec->kind != OperatorKind::kUpdater) {
    return Status::NotFound("no such updater: " + updater);
  }
  // §4.4: resolve the owning worker and read its cache (forwarding
  // "internally" — here, direct access), not the durable store. Machines
  // this engine instance knows are crashed count as failed even before a
  // data-path send has detected them.
  std::set<MachineId> failed = master_.failed();
  for (const auto& machine : machines_) {
    if (machine->crashed.load()) failed.insert(machine->id);
  }
  Result<WorkerRef> target = ring_.Route(updater, key, failed);
  if (!target.ok()) return target.status();
  MachineCtx* machine =
      machines_[static_cast<size_t>(target.value().machine)].get();
  auto it = machine->by_slot.find({updater, target.value().slot});
  if (it == machine->by_slot.end()) {
    return Status::Internal("ring routed to unknown worker");
  }
  Worker* worker = it->second;
  Bytes slate;
  Status s = FetchSlateForWorker(worker, key, &slate);
  if (!s.ok()) return s;
  return slate;
}

Status Muppet1Engine::CrashMachine(MachineId machine_id) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  if (machine_id < 0 ||
      machine_id >= static_cast<MachineId>(machines_.size())) {
    return Status::InvalidArgument("no such machine");
  }
  MachineCtx* machine = machines_[static_cast<size_t>(machine_id)].get();
  if (machine->crashed.exchange(true)) return Status::OK();

  transport_.Crash(machine_id);
  // Queued events are lost with the machine (§4.3), as are unflushed slate
  // changes (the caches die with the process).
  for (Worker* worker : machine->workers) {
    const size_t lost = worker->queue->Clear();
    worker->queue->Stop();
    lost_failure_->Add(static_cast<int64_t>(lost));
    DecInflight(static_cast<int64_t>(lost));
  }
  for (Worker* worker : machine->workers) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // The caches die with the machine's processes: unflushed updates lost.
  for (Worker* worker : machine->workers) {
    if (worker->cache != nullptr) worker->cache->Clear();
  }
  // Durability plane: unsynced changelog appends die with the machine's
  // memory (the durable prefix stays for replay); the dedup table is
  // volatile and re-seeded from the changelog at recovery.
  if (machine->changelog != nullptr) machine->changelog->CrashClose();
  if (machine->dedup != nullptr) machine->dedup->Clear();
  return Status::OK();
}

Status Muppet1Engine::RestartMachine(MachineId machine_id) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  if (machine_id < 0 ||
      machine_id >= static_cast<MachineId>(machines_.size())) {
    return Status::InvalidArgument("no such machine");
  }
  MachineCtx* machine = machines_[static_cast<size_t>(machine_id)].get();
  if (!machine->crashed.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("machine not crashed");
  }

  // Recovery ordering (Master::ClearFailure doc): the machine stays
  // unroutable until its slates are restored.
  (void)master_.BeginRecovery(machine_id);

  // FlusherLoop exits once it observes crashed; the conductor threads were
  // joined by CrashMachine. Join the flusher before respawning either.
  if (machine->flusher.joinable()) machine->flusher.join();

  // Restore durable state before any traffic can reach the machine.
  if (machine->changelog != nullptr) {
    MUPPET_RETURN_IF_ERROR(machine->changelog->Open());
    MUPPET_RETURN_IF_ERROR(ReplayChangelog(machine));
  }

  for (Worker* worker : machine->workers) {
    worker->queue->Restart();
  }
  machine->crashed.store(false, std::memory_order_release);
  for (Worker* worker : machine->workers) {
    worker->thread = std::thread([this, worker] { ConductorLoop(worker); });
  }
  machine->flusher =
      std::thread([this, machine] { FlusherLoop(machine); });
  transport_.Restore(machine_id);
  master_.ClearFailure(machine_id);
  return Status::OK();
}

EngineStats Muppet1Engine::Stats() const {
  EngineStats stats;
  stats.events_published = published_->Get();
  stats.events_processed = processed_->Get();
  stats.events_emitted = emitted_->Get();
  stats.events_lost_failure = lost_failure_->Get();
  stats.events_dropped_overflow = dropped_overflow_->Get();
  stats.events_redirected_overflow = redirected_overflow_->Get();
  stats.throttle_signals = throttle_.overflow_signals();
  stats.deadlocks_avoided = deadlocks_avoided_->Get();
  for (const auto& worker : workers_) {
    if (worker->cache != nullptr) {
      stats.slate_cache_hits += worker->cache->hits();
      stats.slate_cache_misses += worker->cache->misses();
      stats.slate_cache_evictions += worker->cache->evictions();
    }
  }
  stats.slate_store_reads = store_reads_->Get();
  stats.slate_store_writes = store_writes_->Get();
  stats.failures_detected = master_.failures_reported();
  stats.slatelog_appends = slatelog_appends_->Get();
  for (const auto& machine : machines_) {
    if (machine->changelog != nullptr) {
      stats.slatelog_synced_records +=
          static_cast<int64_t>(machine->changelog->synced_lsn());
    }
  }
  stats.slatelog_replays = slatelog_replays_->Get();
  stats.slatelog_replayed_records = slatelog_replayed_->Get();
  stats.slatelog_torn_tails = slatelog_torn_tails_->Get();
  stats.slatelog_corrupt_segments = slatelog_corrupt_segments_->Get();
  stats.checkpoints = checkpoints_->Get();
  stats.events_deduped = deduped_->Get();
  stats.transport_messages_sent = transport_.messages_sent();
  stats.transport_messages_local = transport_.messages_local();
  stats.transport_frames_sent = transport_.frames_sent();
  stats.transport_bytes_sent = transport_.bytes_sent();
  stats.faults_dropped = transport_.messages_dropped();
  stats.faults_duplicated = transport_.messages_duplicated();
  stats.faults_held = transport_.messages_held();
  stats.latency_p50_us = latency_->Percentile(0.50);
  stats.latency_p95_us = latency_->Percentile(0.95);
  stats.latency_p99_us = latency_->Percentile(0.99);
  stats.latency_p999_us = latency_->Percentile(0.999);
  stats.latency_max_us = latency_->max();
  stats.latency_mean_us = latency_->Mean();
  stats.operator_instances = operator_instances_->Get();
  return stats;
}

std::vector<MachineStatus> Muppet1Engine::MachineStatuses() const {
  std::vector<MachineStatus> out;
  if (!started_) return out;
  for (const auto& machine : machines_) {
    MachineStatus ms;
    ms.machine = machine->id;
    ms.crashed = machine->crashed.load(std::memory_order_acquire);
    ms.recovering = master_.IsRecovering(machine->id);
    for (const Worker* worker : machine->workers) {
      ms.queue_depths.push_back(worker->queue->size());
      // 1.0 scatters the machine's slate cache across its updater
      // workers; report the machine-level aggregate.
      if (worker->cache != nullptr) {
        ms.slate_cache_slates += worker->cache->size();
        ms.slate_cache_capacity += worker->cache->capacity();
      }
    }
    ms.queue_capacity = options_.queue_capacity;
    {
      MutexLock lock(machine->failed_mutex);
      ms.known_failed.assign(machine->failed.begin(), machine->failed.end());
    }
    for (const std::string& function : ring_.Functions()) {
      auto counts = ring_.OwnershipCounts(function);
      auto it = counts.find(machine->id);
      if (it != counts.end()) ms.ring_ownership[function] = it->second;
    }
    ms.consistency = ConsistencyName(options_.durability.consistency);
    if (machine->changelog != nullptr) {
      ms.slatelog_lsn = machine->changelog->last_lsn();
      ms.slatelog_synced_lsn = machine->changelog->synced_lsn();
      ms.slatelog_segments = machine->changelog->segment_count();
      ms.manifest_lsn =
          machine->manifest_lsn.load(std::memory_order_acquire);
      ms.replays = machine->replays.load(std::memory_order_acquire);
    }
    if (machine->dedup != nullptr) {
      ms.dedup_entries = machine->dedup->size();
      ms.dedup_capacity = machine->dedup->capacity();
    }
    out.push_back(std::move(ms));
  }
  return out;
}

std::vector<HotKeyInfo> Muppet1Engine::HotKeys() const {
  std::vector<HotKeyInfo> out;
  if (heat_ == nullptr) return out;
  for (const HeatEntry& e : heat_->TopK(16)) {
    if (e.function_id < 0 ||
        e.function_id >= static_cast<int32_t>(heat_fn_names_.size())) {
      continue;
    }
    HotKeyInfo info;
    info.function = heat_fn_names_[static_cast<size_t>(e.function_id)];
    info.key = e.key;
    info.sampled_count = e.count;
    out.push_back(std::move(info));
  }
  return out;
}

void Muppet1Engine::HarvestSlo() {
  if (slo_ == nullptr) return;
  std::vector<TraceSink*> sinks;
  sinks.reserve(machines_.size());
  for (const auto& machine : machines_) {
    sinks.push_back(machine->trace_sink.get());
  }
  slo_->Harvest(sinks, clock_->Now(),
                inflight_.load(std::memory_order_acquire) == 0);
}

Timestamp Muppet1Engine::UptimeMicros() const {
  const Timestamp started = started_at_.load(std::memory_order_acquire);
  if (started == 0 && !started_.load(std::memory_order_acquire)) return 0;
  return clock_->Now() - started;
}

WatchdogSignals Muppet1Engine::GatherWatchdogSignals() const {
  WatchdogSignals signals;
  signals.now = clock_->Now();
  for (const auto& machine : machines_) {
    WatchdogSignals::Machine m;
    m.machine = machine->id;
    m.crashed = machine->crashed.load(std::memory_order_acquire);
    m.recovering = master_.IsRecovering(machine->id);
    if (machine->changelog != nullptr) {
      m.changelog_lsn = machine->changelog->last_lsn();
      m.changelog_synced_lsn = machine->changelog->synced_lsn();
    }
    signals.machines.push_back(std::move(m));
    // 1.0 queues are per-worker, not per-thread-slot; index by the
    // worker's position on its machine so incident details are stable.
    for (size_t i = 0; i < machine->workers.size(); ++i) {
      const Worker* worker = machine->workers[i];
      WatchdogSignals::Queue q;
      q.machine = machine->id;
      q.queue_index = static_cast<int32_t>(i);
      q.depth = worker->queue->size();
      q.capacity = worker->queue->capacity();
      q.pops = worker->queue->pops();
      signals.queues.push_back(q);
    }
  }
  signals.draining = drain_waiters_.load(std::memory_order_acquire) > 0;
  signals.inflight = inflight_.load(std::memory_order_acquire);
  return signals;
}

void Muppet1Engine::WatchdogLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    clock_->SleepFor(options_.watchdog.tick_micros);
    if (shutdown_.load(std::memory_order_acquire)) break;
    watchdog_->Tick(GatherWatchdogSignals());
    // Opportunistic SLO harvest on the same cadence, so burn windows
    // advance and settle without requiring a /sloz scrape.
    HarvestSlo();
  }
}

void Muppet1Engine::RegisterCallbackMetrics() {
  // Scrape hygiene: a constant-1 gauge whose labels carry the build and
  // config identity, plus engine uptime — what muppet-doctor keys off to
  // tell apart machines running different builds or knobs.
  metrics_.RegisterCallback(
      "muppet_build_info",
      {{"version", kMuppetVersion},
       {"engine", "muppet1"},
       {"consistency", ConsistencyName(options_.durability.consistency)}},
      MetricType::kGauge, [] { return 1; });
  metrics_.RegisterCallback(
      "muppet_uptime_seconds", {}, MetricType::kGauge,
      [this] { return UptimeMicros() / kMicrosPerSecond; });
  // Watchdog incident families (DESIGN.md §14 incident taxonomy).
  for (int k = 0; k < kNumIncidentKinds; ++k) {
    const IncidentKind kind = static_cast<IncidentKind>(k);
    metrics_.RegisterCallback(
        "muppet_watchdog_incidents_total", {{"kind", IncidentKindName(kind)}},
        MetricType::kCounter,
        [this, kind] { return incident_log_.opened(kind); });
  }
  metrics_.RegisterCallback(
      "muppet_watchdog_open_incidents", {}, MetricType::kGauge,
      [this] { return static_cast<int64_t>(incident_log_.open_count()); });

  // Transport-level counters: owned by the transport, surfaced here so
  // /metrics carries the datapath and fault-injection counters.
  metrics_.RegisterCallback(
      "muppet_transport_messages_sent_total", {}, MetricType::kCounter,
      [this] { return transport_.messages_sent(); });
  metrics_.RegisterCallback(
      "muppet_transport_messages_local_total", {}, MetricType::kCounter,
      [this] { return transport_.messages_local(); });
  metrics_.RegisterCallback(
      "muppet_transport_messages_dropped_total", {}, MetricType::kCounter,
      [this] { return transport_.messages_dropped(); });
  metrics_.RegisterCallback(
      "muppet_transport_messages_declined_total", {}, MetricType::kCounter,
      [this] { return transport_.messages_declined(); });
  metrics_.RegisterCallback("muppet_transport_frames_sent_total", {},
                            MetricType::kCounter,
                            [this] { return transport_.frames_sent(); });
  metrics_.RegisterCallback("muppet_transport_bytes_sent_total", {},
                            MetricType::kCounter,
                            [this] { return transport_.bytes_sent(); });
  metrics_.RegisterCallback(
      "muppet_faults_duplicated_total", {}, MetricType::kCounter,
      [this] { return transport_.messages_duplicated(); });
  metrics_.RegisterCallback("muppet_faults_held_total", {},
                            MetricType::kCounter,
                            [this] { return transport_.messages_held(); });
  metrics_.RegisterCallback(
      "muppet_inflight_events", {}, MetricType::kGauge,
      [this] { return inflight_.load(std::memory_order_acquire); });
  // Source-pacing visibility: the delay PaceSource() would apply right
  // now (decayed overflow pressure, clamped to the adaptive floor).
  metrics_.RegisterCallback(
      "muppet_throttle_delay_micros", {}, MetricType::kGauge,
      [this] { return throttle_.CurrentDelayMicros(); });
  if (heat_ != nullptr) {
    metrics_.RegisterCallback("muppet_heat_samples_total", {},
                              MetricType::kCounter,
                              [this] { return heat_->samples_recorded(); });
  }

  for (const auto& machine_ptr : machines_) {
    MachineCtx* machine = machine_ptr.get();
    const MetricLabels m_label = {{"machine", std::to_string(machine->id)}};
    metrics_.RegisterCallback("muppet_machine_up", m_label,
                              MetricType::kGauge, [machine] {
                                return machine->crashed.load(
                                           std::memory_order_acquire)
                                           ? 0
                                           : 1;
                              });
    // Machine-level aggregates over the per-worker cache partitions.
    metrics_.RegisterCallback(
        "muppet_slate_cache_slates", m_label, MetricType::kGauge, [machine] {
          int64_t total = 0;
          for (const Worker* w : machine->workers) {
            if (w->cache != nullptr) {
              total += static_cast<int64_t>(w->cache->size());
            }
          }
          return total;
        });
    metrics_.RegisterCallback(
        "muppet_slate_cache_capacity", m_label, MetricType::kGauge,
        [machine] {
          int64_t total = 0;
          for (const Worker* w : machine->workers) {
            if (w->cache != nullptr) {
              total += static_cast<int64_t>(w->cache->capacity());
            }
          }
          return total;
        });
    metrics_.RegisterCallback(
        "muppet_slate_cache_hits_total", m_label, MetricType::kCounter,
        [machine] {
          int64_t total = 0;
          for (const Worker* w : machine->workers) {
            if (w->cache != nullptr) total += w->cache->hits();
          }
          return total;
        });
    metrics_.RegisterCallback(
        "muppet_slate_cache_misses_total", m_label, MetricType::kCounter,
        [machine] {
          int64_t total = 0;
          for (const Worker* w : machine->workers) {
            if (w->cache != nullptr) total += w->cache->misses();
          }
          return total;
        });
    if (machine->changelog != nullptr) {
      SlateChangelog* log = machine->changelog.get();
      metrics_.RegisterCallback(
          "muppet_slatelog_lsn", m_label, MetricType::kGauge,
          [log] { return static_cast<int64_t>(log->last_lsn()); });
      metrics_.RegisterCallback(
          "muppet_slatelog_synced_lsn", m_label, MetricType::kGauge,
          [log] { return static_cast<int64_t>(log->synced_lsn()); });
      metrics_.RegisterCallback(
          "muppet_slatelog_segments", m_label, MetricType::kGauge,
          [log] { return static_cast<int64_t>(log->segment_count()); });
      metrics_.RegisterCallback(
          "muppet_slatelog_manifest_lsn", m_label, MetricType::kGauge,
          [machine] {
            return static_cast<int64_t>(
                machine->manifest_lsn.load(std::memory_order_acquire));
          });
      metrics_.RegisterCallback(
          "muppet_slatelog_machine_replays_total", m_label,
          MetricType::kCounter, [machine] {
            return machine->replays.load(std::memory_order_acquire);
          });
    }
    if (machine->dedup != nullptr) {
      DedupTable* dedup = machine->dedup.get();
      metrics_.RegisterCallback(
          "muppet_dedup_entries", m_label, MetricType::kGauge,
          [dedup] { return static_cast<int64_t>(dedup->size()); });
    }
    for (Worker* worker : machine->workers) {
      MetricLabels q_label = m_label;
      q_label.emplace_back("operator", worker->function);
      q_label.emplace_back("slot", std::to_string(worker->ref.slot));
      metrics_.RegisterCallback(
          "muppet_queue_depth", q_label, MetricType::kGauge,
          [worker] { return static_cast<int64_t>(worker->queue->size()); });
    }
  }
}

}  // namespace muppet
