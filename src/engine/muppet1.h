// Muppet 1.0 (§4.1–4.4). Each worker is the paper's pair of tightly coupled
// processes: a *conductor* (Muppet logistics: its input queue, slate
// fetches, hashing and enqueueing output events) and a *task processor*
// (runs the map/update code). We model the pair as one thread whose
// conductor half talks to the task-processor half exclusively through
// serialized byte buffers, reproducing 1.0's IPC copy cost; each worker
// also constructs its own operator instance and owns its own slate-cache
// partition, reproducing 1.0's duplicated code/cache memory (§4.5).
#ifndef MUPPET_ENGINE_MUPPET1_H_
#define MUPPET_ENGINE_MUPPET1_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/trace.h"
#include "core/hash_ring.h"
#include "core/heat.h"
#include "core/slate_cache.h"
#include "engine/engine.h"
#include "engine/master.h"
#include "engine/queue.h"

namespace muppet {

namespace engine_internal {

// The "JVM task processor": owns one operator instance for one function and
// processes serialized requests into serialized responses. Shared by both
// the real Muppet1Engine and its tests.
class TaskProcessor {
 public:
  TaskProcessor(const AppConfig& config, const OperatorSpec& spec);

  // Request:  len-prefixed event bytes, u8 has_slate, [len-prefixed slate].
  // Response: varint32 n_outputs, n * len-prefixed event bytes,
  //           u8 slate_action (0 none / 1 replace / 2 delete),
  //           [len-prefixed slate if action==1].
  Status Process(BytesView request, Bytes* response);

  static void EncodeRequest(const Event& event, const Bytes* slate,
                            Bytes* out);
  struct Response {
    std::vector<Event> outputs;
    uint8_t slate_action = 0;  // 0 none, 1 replace, 2 delete
    Bytes slate;
  };
  static Status DecodeResponse(BytesView data, Response* out);

  const OperatorSpec& spec() const { return spec_; }

 private:
  class CollectingUtilities;

  const AppConfig& config_;
  const OperatorSpec& spec_;
  std::unique_ptr<Mapper> mapper_;
  std::unique_ptr<Updater> updater_;
};

}  // namespace engine_internal

class Muppet1Engine final : public Engine {
 public:
  // `config` must outlive the engine and Validate() OK at Start().
  Muppet1Engine(const AppConfig& config, EngineOptions options);
  ~Muppet1Engine() override;

  Status Start() override;
  Status Publish(const std::string& stream, BytesView key, BytesView value,
                 Timestamp ts) override;
  Status Drain() override;
  Status Stop() override;
  Result<Bytes> FetchSlate(const std::string& updater,
                           BytesView key) override;
  Status CrashMachine(MachineId machine) override;
  Status RestartMachine(MachineId machine) override;
  EngineStats Stats() const override;
  const AppConfig& config() const override { return config_; }

  // Observability plane (engine.h).
  MetricsRegistry* metrics() override { return &metrics_; }
  TraceSink* trace_sink(MachineId machine) override {
    return SinkFor(machine);
  }
  std::vector<MachineStatus> MachineStatuses() const override;
  // Heat observation only: Muppet 1.0 never splits keys (load_manager
  // control loops are 2.0-only), so rows report split=false.
  std::vector<HotKeyInfo> HotKeys() const override;
  int64_t InflightEvents() const override {
    return inflight_.load(std::memory_order_acquire);
  }
  SloTracker* slo() override { return slo_.get(); }
  void HarvestSlo() override;
  const IncidentLog* incidents() const override { return &incident_log_; }
  Timestamp UptimeMicros() const override;

  // Observe events published to `stream` (tests/examples; invoked inline
  // on the publishing thread). Register before Start().
  void TapStream(const std::string& stream,
                 std::function<void(const Event&)> tap);

  // Introspection for tests and the slate service.
  Transport& transport() { return transport_; }
  Master& master() { return master_; }
  ThrottleGovernor& throttle() { return throttle_; }
  int64_t events_lost() const { return lost_failure_->Get(); }
  // The failed-machine set as known on machine `m` (chaos harness asserts
  // every live machine's view converges to the master's after a drain).
  std::set<MachineId> KnownFailedOn(MachineId m) const {
    return FailedSetFor(m);
  }

 private:
  struct Worker {
    std::string function;
    OperatorKind kind = OperatorKind::kMapper;
    WorkerRef ref;
    std::unique_ptr<EventQueue> queue;
    std::unique_ptr<engine_internal::TaskProcessor> task;
    std::unique_ptr<SlateCache> cache;  // updaters only
    UpdaterOptions updater_options;
    std::thread thread;
    // Per-operator processed counter (registry child, set at Start()).
    Counter* processed_counter = nullptr;
  };

  struct MachineCtx {
    MachineId id = kInvalidMachine;
    std::vector<Worker*> workers;
    // (function, slot) -> worker for incoming dispatch.
    std::map<std::pair<std::string, int32_t>, Worker*> by_slot;
    mutable Mutex failed_mutex{LockLevel::kFailedSet};
    std::set<MachineId> failed MUPPET_GUARDED_BY(failed_mutex);
    std::atomic<bool> crashed{false};
    std::thread flusher;
    // Per-machine trace ring (null when tracing is disabled).
    std::unique_ptr<TraceSink> trace_sink;
    // Durability plane (engine/slatelog.h); both null in kLossy mode,
    // dedup additionally null below kExactlyOnce. One changelog per
    // machine even though 1.0 scatters slates over per-worker caches —
    // records carry (updater, key), so replay re-homes each slate.
    std::unique_ptr<SlateChangelog> changelog;
    std::unique_ptr<DedupTable> dedup;
    std::atomic<uint64_t> manifest_lsn{0};
    std::atomic<uint64_t> appends_since_checkpoint{0};
    std::atomic<int64_t> replays{0};
  };

  void ConductorLoop(Worker* worker);
  void FlusherLoop(MachineCtx* machine);
  void WatchdogLoop();
  WatchdogSignals GatherWatchdogSignals() const;
  Status ProcessOne(Worker* worker, const Event& event, uint64_t dedup);

  // --- Durability plane (engine/slatelog.h; DESIGN.md §12). Same
  // semantics as the 2.0 engine's: changelog appends on every slate
  // write, checkpoints from the flusher, replay before rejoin.
  bool durable() const {
    return options_.durability.consistency != Consistency::kLossy;
  }
  bool exactly_once() const {
    return options_.durability.consistency == Consistency::kExactlyOnce;
  }
  void AppendSlateLog(MachineCtx* machine, SlateLogKind kind,
                      const std::string& updater, BytesView key,
                      BytesView value, const Event& event, uint64_t dedup);
  void MaybeCheckpoint(MachineCtx* machine);
  Status ReplayChangelog(MachineCtx* machine);

  // Fetch the slate for (worker's updater, key): worker cache, then store.
  // Returns NotFound if absent everywhere. `source`, when non-null,
  // reports the slate-fetch span note: "hit", "absent_cached", "store",
  // "store_absent".
  Status FetchSlateForWorker(Worker* worker, BytesView key, Bytes* slate,
                             const char** source = nullptr);

  TraceSink* SinkFor(MachineId machine) const {
    if (machine < 0 || machine >= static_cast<MachineId>(machines_.size())) {
      return nullptr;
    }
    return machines_[static_cast<size_t>(machine)]->trace_sink.get();
  }

  // Register the callback-backed gauges/counters once the cluster is
  // built.
  void RegisterCallbackMetrics();

  // Route an emitted/published event to all subscribers of its stream.
  // `sender` is the emitting worker (nullptr for external publishes).
  void DeliverEvent(MachineId from, const Worker* sender, const Event& event);

  // Send one routed event to a specific worker, applying failure handling
  // and the overflow policy.
  void SendToWorker(MachineId from, const Worker* sender,
                    const std::string& function, const Event& event);

  Status HandleIncoming(MachineId to, BytesView payload);

  std::set<MachineId> FailedSetFor(MachineId machine) const;
  SlateCache::WriteBack MakeWriteBack(const std::string& updater,
                                      Timestamp ttl);
  void RunTaps(const Event& event);
  uint64_t NextSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  // Decrement in-flight count, waking Drain() when it reaches zero.
  void DecInflight(int64_t n);

  const AppConfig& config_;
  EngineOptions options_;
  Clock* clock_;
  InMemoryTransport transport_;
  Master master_;
  HashRing ring_;
  ThrottleGovernor throttle_;

  // Engine-wide heat sketch (created at Start() when
  // options_.load_manager.enabled; 1.0 has no per-machine dispatch point,
  // every send funnels through SendToWorker). The sketch keys on a dense
  // function id; 1.0 has no interner, so Start() builds this ad-hoc map.
  std::unique_ptr<HeatTracker> heat_;
  std::map<std::string, int32_t> heat_fn_ids_;
  std::vector<std::string> heat_fn_names_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<MachineCtx>> machines_;

  std::atomic<uint64_t> seq_{1};
  std::atomic<int64_t> inflight_{0};
  std::atomic<bool> shutdown_{false};

  // Health & SLO plane (DESIGN.md §14). Declared before metrics_ users
  // but after the registry dependencies; incident_log_ is initialized in
  // the ctor from options_.watchdog.
  std::unique_ptr<SloTracker> slo_;
  IncidentLog incident_log_;
  std::unique_ptr<Watchdog> watchdog_;
  std::thread wd_thread_;
  std::atomic<int> drain_waiters_{0};
  std::atomic<Timestamp> started_at_{0};

  Mutex drain_mutex_{LockLevel::kDrain};
  CondVar drain_cv_;

  mutable SharedMutex taps_mutex_{LockLevel::kTaps};
  std::map<std::string, std::vector<std::function<void(const Event&)>>> taps_
      MUPPET_GUARDED_BY(taps_mutex_);

  // Shared registry backing /metrics; the counters below are registry
  // children so the admin endpoints and EngineStats read the same cells.
  // Declared before the pointers (initialization order).
  MetricsRegistry metrics_;
  Counter* published_;
  Counter* processed_;
  Counter* emitted_;
  Counter* lost_failure_;
  Counter* dropped_overflow_;
  Counter* redirected_overflow_;
  Counter* deadlocks_avoided_;
  Counter* store_reads_;
  Counter* store_writes_;
  Counter* operator_instances_;
  Counter* slatelog_appends_;
  Counter* slatelog_replays_;
  Counter* slatelog_replayed_;
  Counter* slatelog_torn_tails_;
  Counter* slatelog_corrupt_segments_;
  Counter* checkpoints_;
  Counter* deduped_;
  Histogram* latency_;
  // Per-input-stream published counters (built at Start()).
  std::map<std::string, Counter*> stream_published_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_MUPPET1_H_
