#include "engine/muppet2.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "engine/wire.h"

namespace muppet {

// PerformerUtilities that routes outputs immediately — no serialization
// within the machine (the 1.0 IPC cost 2.0 eliminates, §4.5). Slate
// mutations are applied to the central cache as they happen.
class Muppet2Engine::DirectUtilities final : public PerformerUtilities {
 public:
  DirectUtilities(Muppet2Engine* engine, MachineCtx* machine,
                  const Event& event, const std::string& function,
                  bool is_updater, uint64_t work,
                  const UpdaterOptions* updater_options)
      : engine_(engine),
        machine_(machine),
        event_(event),
        function_(function),
        is_updater_(is_updater),
        work_(work),
        updater_options_(updater_options) {}

  Status Publish(const std::string& stream, BytesView key,
                 BytesView value) override {
    return PublishAt(stream, key, value, event_.ts + 1);
  }

  Status PublishAt(const std::string& stream, BytesView key, BytesView value,
                   Timestamp ts) override {
    const AppConfig& config = engine_->config_;
    if (!config.HasStream(stream)) {
      return Status::InvalidArgument("publish: undeclared stream '" + stream +
                                     "'");
    }
    if (config.IsInputStream(stream)) {
      return Status::InvalidArgument(
          "publish: operators may not emit into input stream '" + stream +
          "'");
    }
    if (ts <= event_.ts) {
      return Status::InvalidArgument(
          "publish: output timestamp must exceed input timestamp");
    }
    Event out;
    out.stream = stream;
    out.ts = ts;
    out.key.assign(key);
    out.value.assign(value);
    out.origin_ts = event_.origin_ts;
    engine_->emitted_.Add();
    engine_->DeliverEvent(machine_->id, work_, out);
    return Status::OK();
  }

  Status ReplaceSlate(BytesView slate) override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot replace a slate");
    }
    const bool write_through = updater_options_->flush_policy ==
                               SlateFlushPolicy::kWriteThrough;
    return machine_->cache->Update(SlateId{function_, event_.key}, slate,
                                   engine_->clock_->Now(), write_through);
  }

  Status DeleteSlate() override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot delete a slate");
    }
    return machine_->cache->Delete(SlateId{function_, event_.key});
  }

  const Event& current_event() const override { return event_; }

 private:
  Muppet2Engine* engine_;
  MachineCtx* machine_;
  const Event& event_;
  const std::string& function_;
  bool is_updater_;
  uint64_t work_;
  const UpdaterOptions* updater_options_;
};

Muppet2Engine::Muppet2Engine(const AppConfig& config, EngineOptions options)
    : config_(config),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      transport_([&] {
        TransportOptions t = options.transport;
        if (t.clock == nullptr) t.clock = options.clock;
        return t;
      }()),
      ring_(options.ring_vnodes, options.ring_seed),
      throttle_(options.throttle, clock_) {}

Muppet2Engine::~Muppet2Engine() { (void)Stop(); }

uint64_t Muppet2Engine::WorkHash(const std::string& function,
                                 BytesView key) {
  uint64_t h = HashCombine(Fnv1a64(function), Fnv1a64(key));
  if (h == 0) h = 1;  // 0 means "idle"
  return h;
}

Status Muppet2Engine::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  MUPPET_RETURN_IF_ERROR(config_.Validate());
  if (options_.num_machines < 1 || options_.threads_per_machine < 1) {
    return Status::InvalidArgument("engine: bad cluster shape");
  }
  if (options_.overflow.policy == OverflowPolicy::kOverflowStream &&
      !config_.HasStream(options_.overflow.overflow_stream)) {
    return Status::InvalidArgument("engine: overflow stream is not declared");
  }

  for (int m = 0; m < options_.num_machines; ++m) {
    auto machine = std::make_unique<MachineCtx>();
    machine->id = m;

    // Central slate cache; the write-back resolves each updater's TTL.
    machine->cache = std::make_unique<SlateCache>(
        SlateCacheOptions{options_.slate_cache_capacity},
        [this](const SlateCache::DirtySlate& dirty) -> Status {
          if (options_.slate_store == nullptr) return Status::OK();
          store_writes_.Add();
          if (dirty.deleted) return options_.slate_store->Delete(dirty.id);
          Timestamp ttl = 0;
          const OperatorSpec* spec = config_.FindOperator(dirty.id.updater);
          if (spec != nullptr) ttl = spec->updater_options.slate_ttl_micros;
          return options_.slate_store->Write(dirty.id, dirty.value, ttl);
        });

    // One shared operator instance per function per machine.
    for (const auto& [name, spec] : config_.operators()) {
      if (spec.kind == OperatorKind::kMapper) {
        machine->mappers[name] = spec.mapper_factory(config_, name);
      } else {
        machine->updaters[name] = spec.updater_factory(config_, name);
      }
      operator_instances_.Add();
      // Every machine hosts every function; the ring routes keys among
      // machines.
      if (m == 0) {
        for (int mm = 0; mm < options_.num_machines; ++mm) {
          ring_.AddWorker(name, WorkerRef{mm, 0});
        }
      }
    }

    for (int t = 0; t < options_.threads_per_machine; ++t) {
      auto thread_ctx = std::make_unique<ThreadCtx>();
      thread_ctx->index = t;
      thread_ctx->queue = std::make_unique<EventQueue>(options_.queue_capacity);
      machine->threads.push_back(std::move(thread_ctx));
    }
    machines_.push_back(std::move(machine));
  }

  for (auto& machine : machines_) {
    const MachineId id = machine->id;
    MUPPET_RETURN_IF_ERROR(transport_.RegisterMachine(
        id, [this, id](MachineId /*from*/, BytesView payload) {
          return HandleIncoming(id, payload);
        }));
  }

  master_.AddListener([this](MachineId failed) {
    for (auto& machine : machines_) {
      std::lock_guard<std::mutex> lock(machine->failed_mutex);
      machine->failed.insert(failed);
    }
  });

  for (auto& machine : machines_) {
    MachineCtx* m = machine.get();
    for (auto& thread_ctx : m->threads) {
      ThreadCtx* t = thread_ctx.get();
      t->thread = std::thread([this, m, t] { WorkerLoop(m, t); });
    }
    m->flusher = std::thread([this, m] { FlusherLoop(m); });
  }

  started_ = true;
  return Status::OK();
}

void Muppet2Engine::TapStream(const std::string& stream,
                              std::function<void(const Event&)> tap) {
  std::unique_lock lock(taps_mutex_);
  taps_[stream].push_back(std::move(tap));
}

void Muppet2Engine::RunTaps(const Event& event) {
  std::shared_lock lock(taps_mutex_);
  auto it = taps_.find(event.stream);
  if (it == taps_.end()) return;
  for (const auto& tap : it->second) tap(event);
}

std::set<MachineId> Muppet2Engine::FailedSetFor(MachineId machine) const {
  if (machine >= 0 && machine < static_cast<MachineId>(machines_.size())) {
    const MachineCtx* m = machines_[static_cast<size_t>(machine)].get();
    std::lock_guard<std::mutex> lock(m->failed_mutex);
    return m->failed;
  }
  return master_.failed();
}

Status Muppet2Engine::Publish(const std::string& stream, BytesView key,
                              BytesView value, Timestamp ts) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("engine not running");
  }
  if (!config_.IsInputStream(stream)) {
    return Status::InvalidArgument("'" + stream +
                                   "' is not a declared input stream");
  }
  if (options_.overflow.policy == OverflowPolicy::kThrottle) {
    throttle_.PaceSource();
  }
  Event event;
  event.stream = stream;
  event.ts = ts;
  event.key.assign(key);
  event.value.assign(value);
  event.seq = NextSeq();
  event.origin_ts = clock_->Now();
  published_.Add();
  DeliverEvent(/*from=*/0, /*sender_work=*/0, event);
  return Status::OK();
}

void Muppet2Engine::DeliverEvent(MachineId from, uint64_t sender_work,
                                 const Event& event) {
  RunTaps(event);
  for (const std::string& function : config_.SubscribersOf(event.stream)) {
    SendToMachine(from, sender_work, function, event);
  }
}

void Muppet2Engine::SendToMachine(MachineId from, uint64_t sender_work,
                                  const std::string& function,
                                  const Event& event) {
  const std::set<MachineId> failed = FailedSetFor(from);
  Result<WorkerRef> target = ring_.Route(function, event.key, failed);
  if (!target.ok()) {
    lost_failure_.Add();
    return;
  }

  RoutedEvent re{function, event};
  re.event.seq = NextSeq();
  Bytes payload;
  EncodeRoutedEvent(re, &payload);

  int attempts = 0;
  const int kMaxThrottleRetries = 50;
  while (true) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    Status s = transport_.Send(from, target.value().machine, payload);
    if (s.ok()) return;
    inflight_.fetch_sub(1, std::memory_order_acq_rel);

    if (s.IsUnavailable()) {
      master_.ReportFailure(target.value().machine);
      lost_failure_.Add();
      return;
    }
    if (!s.IsResourceExhausted()) {
      lost_failure_.Add();
      return;
    }

    switch (options_.overflow.policy) {
      case OverflowPolicy::kDrop:
        dropped_overflow_.Add();
        return;
      case OverflowPolicy::kOverflowStream: {
        if (event.stream == options_.overflow.overflow_stream) {
          dropped_overflow_.Add();
          return;
        }
        redirected_overflow_.Add();
        Event redirected = event;
        redirected.stream = options_.overflow.overflow_stream;
        DeliverEvent(from, sender_work, redirected);
        return;
      }
      case OverflowPolicy::kThrottle: {
        throttle_.NoteOverflow();
        // A worker emitting to its own (function,key) work unit while its
        // queues are full can never make progress by waiting (§5).
        if (sender_work != 0 &&
            WorkHash(function, event.key) == sender_work &&
            target.value().machine == from) {
          deadlocks_avoided_.Add();
          dropped_overflow_.Add();
          return;
        }
        if (++attempts > kMaxThrottleRetries) {
          dropped_overflow_.Add();
          return;
        }
        clock_->SleepFor(200);
        continue;
      }
    }
  }
}

Status Muppet2Engine::HandleIncoming(MachineId to, BytesView payload) {
  MachineCtx* machine = machines_[static_cast<size_t>(to)].get();
  if (machine->crashed.load()) {
    return Status::Unavailable("machine crashed");
  }
  RoutedEvent re;
  MUPPET_RETURN_IF_ERROR(DecodeRoutedEvent(payload, &re));
  return Dispatch(machine, std::move(re));
}

Status Muppet2Engine::Dispatch(MachineCtx* machine, RoutedEvent re) {
  const size_t W = machine->threads.size();
  const uint64_t work = WorkHash(re.function, re.event.key);
  const size_t primary = Mix64(work) % W;
  size_t secondary = Mix64(work ^ 0x5ec0dULL) % W;
  if (secondary == primary) secondary = (primary + 1) % W;

  if (!options_.enable_two_choice || W == 1) {
    return machine->threads[primary]->queue->TryPush(std::move(re));
  }

  // "an incoming event locks no more than two queues": the pick itself is
  // serialized, then at most the two candidate queues are touched.
  std::lock_guard<std::mutex> lock(machine->dispatch_mutex);
  ThreadCtx* tp = machine->threads[primary].get();
  ThreadCtx* ts = machine->threads[secondary].get();

  size_t choice;
  if (tp->current.load(std::memory_order_acquire) == work) {
    choice = primary;
  } else if (ts->current.load(std::memory_order_acquire) == work) {
    choice = secondary;
  } else if (ts->queue->size() +
                 static_cast<size_t>(options_.secondary_queue_bias) <
             tp->queue->size()) {
    choice = secondary;
  } else {
    choice = primary;
  }
  if (choice == secondary) secondary_dispatch_.Add();

  Status s = machine->threads[choice]->queue->TryPush(re);
  if (s.IsResourceExhausted()) {
    // Try the other candidate before declining to the sender.
    const size_t other = (choice == primary) ? secondary : primary;
    if (other == secondary) secondary_dispatch_.Add();
    s = machine->threads[other]->queue->TryPush(std::move(re));
  }
  return s;
}

void Muppet2Engine::WorkerLoop(MachineCtx* machine, ThreadCtx* thread) {
  RoutedEvent re;
  while (thread->queue->Pop(&re)) {
    const uint64_t work = WorkHash(re.function, re.event.key);
    thread->current.store(work, std::memory_order_release);
    Status s = ProcessOne(machine, re);
    if (!s.ok()) {
      MUPPET_LOG(kError) << "worker thread " << thread->index << "@"
                         << machine->id << ": " << s.ToString();
    }
    thread->current.store(0, std::memory_order_release);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

Status Muppet2Engine::FetchSlateOnMachine(MachineCtx* machine,
                                          const std::string& updater,
                                          BytesView key, Bytes* slate) {
  const SlateId id{updater, Bytes(key)};
  bool absent = false;
  Status s = machine->cache->LookupWithAbsent(id, slate, &absent);
  if (s.ok()) {
    if (absent) return Status::NotFound("slate absent (cached)");
    return Status::OK();
  }
  if (options_.slate_store != nullptr) {
    store_reads_.Add();
    Result<Bytes> fetched = options_.slate_store->Read(id);
    if (fetched.ok()) {
      *slate = std::move(fetched).value();
      (void)machine->cache->Insert(id, *slate);
      return Status::OK();
    }
    if (!fetched.status().IsNotFound()) return fetched.status();
  }
  machine->cache->InsertAbsent(id);
  return Status::NotFound("slate absent");
}

Status Muppet2Engine::ProcessOne(MachineCtx* machine, const RoutedEvent& re) {
  const OperatorSpec* spec = config_.FindOperator(re.function);
  if (spec == nullptr) return Status::NotFound("unknown function");
  const Event& event = re.event;
  const uint64_t work = WorkHash(re.function, event.key);

  if (spec->kind == OperatorKind::kMapper) {
    DirectUtilities utils(this, machine, event, re.function,
                          /*is_updater=*/false, work, nullptr);
    machine->mappers[re.function]->Map(utils, event);
  } else {
    // Up to two threads can vie for the same slate (§4.5); the striped
    // lock serializes the contending pair.
    std::mutex& slate_lock =
        machine->slate_locks[work % kSlateLockStripes];
    if (!slate_lock.try_lock()) {
      slate_contention_.Add();
      slate_lock.lock();
    }
    std::lock_guard<std::mutex> guard(slate_lock, std::adopt_lock);

    Bytes slate;
    bool has_slate = false;
    Status s = FetchSlateOnMachine(machine, re.function, event.key, &slate);
    if (s.ok()) {
      has_slate = true;
    } else if (!s.IsNotFound()) {
      return s;
    }
    DirectUtilities utils(this, machine, event, re.function,
                          /*is_updater=*/true, work,
                          &spec->updater_options);
    machine->updaters[re.function]->Update(utils, event,
                                           has_slate ? &slate : nullptr);
  }

  processed_.Add();
  if (event.origin_ts > 0) {
    latency_.Record(clock_->Now() - event.origin_ts);
  }
  return Status::OK();
}

void Muppet2Engine::FlusherLoop(MachineCtx* machine) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    clock_->SleepFor(options_.flush_poll_micros);
    if (machine->crashed.load()) return;
    const Timestamp now = clock_->Now();
    for (const auto& [name, spec] : config_.operators()) {
      if (spec.kind != OperatorKind::kUpdater) continue;
      if (spec.updater_options.flush_policy != SlateFlushPolicy::kInterval) {
        continue;
      }
      (void)machine->cache->FlushDirtyFor(
          name, now - spec.updater_options.flush_interval_micros);
    }
  }
}

Status Muppet2Engine::Drain() {
  if (!started_) return Status::FailedPrecondition("engine not started");
  while (inflight_.load(std::memory_order_acquire) > 0) {
    SystemClock::Default()->SleepFor(100);
  }
  return Status::OK();
}

Status Muppet2Engine::Stop() {
  if (!started_ || stopped_) return Status::OK();
  stopped_ = true;

  (void)Drain();
  shutdown_.store(true, std::memory_order_release);
  for (auto& machine : machines_) {
    if (machine->flusher.joinable()) machine->flusher.join();
  }
  for (auto& machine : machines_) {
    if (!machine->crashed.load()) {
      (void)machine->cache->FlushDirty(INT64_MAX);
    }
    for (auto& thread_ctx : machine->threads) {
      thread_ctx->queue->Stop();
    }
  }
  for (auto& machine : machines_) {
    for (auto& thread_ctx : machine->threads) {
      if (thread_ctx->thread.joinable()) thread_ctx->thread.join();
    }
    transport_.UnregisterMachine(machine->id);
  }
  return Status::OK();
}

Result<Bytes> Muppet2Engine::FetchSlate(const std::string& updater,
                                        BytesView key) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  const OperatorSpec* spec = config_.FindOperator(updater);
  if (spec == nullptr || spec->kind != OperatorKind::kUpdater) {
    return Status::NotFound("no such updater: " + updater);
  }
  std::set<MachineId> failed = master_.failed();
  for (const auto& m : machines_) {
    if (m->crashed.load()) failed.insert(m->id);
  }
  Result<WorkerRef> target = ring_.Route(updater, key, failed);
  if (!target.ok()) return target.status();
  MachineCtx* machine =
      machines_[static_cast<size_t>(target.value().machine)].get();
  Bytes slate;
  Status s = FetchSlateOnMachine(machine, updater, key, &slate);
  if (!s.ok()) return s;
  return slate;
}

Status Muppet2Engine::CrashMachine(MachineId machine_id) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  if (machine_id < 0 ||
      machine_id >= static_cast<MachineId>(machines_.size())) {
    return Status::InvalidArgument("no such machine");
  }
  MachineCtx* machine = machines_[static_cast<size_t>(machine_id)].get();
  if (machine->crashed.exchange(true)) return Status::OK();

  transport_.Crash(machine_id);
  for (auto& thread_ctx : machine->threads) {
    const size_t lost = thread_ctx->queue->Clear();
    thread_ctx->queue->Stop();
    lost_failure_.Add(static_cast<int64_t>(lost));
    inflight_.fetch_sub(static_cast<int64_t>(lost),
                        std::memory_order_acq_rel);
  }
  for (auto& thread_ctx : machine->threads) {
    if (thread_ctx->thread.joinable()) thread_ctx->thread.join();
  }
  // The central slate cache dies with the machine: unflushed updates lost.
  machine->cache->Clear();
  return Status::OK();
}

size_t Muppet2Engine::LargestQueueDepth() const {
  size_t largest = 0;
  for (const auto& machine : machines_) {
    for (const auto& thread_ctx : machine->threads) {
      largest = std::max(largest, thread_ctx->queue->size());
    }
  }
  return largest;
}

EngineStats Muppet2Engine::Stats() const {
  EngineStats stats;
  stats.events_published = published_.Get();
  stats.events_processed = processed_.Get();
  stats.events_emitted = emitted_.Get();
  stats.events_lost_failure = lost_failure_.Get();
  stats.events_dropped_overflow = dropped_overflow_.Get();
  stats.events_redirected_overflow = redirected_overflow_.Get();
  stats.throttle_signals = throttle_.overflow_signals();
  stats.deadlocks_avoided = deadlocks_avoided_.Get();
  for (const auto& machine : machines_) {
    stats.slate_cache_hits += machine->cache->hits();
    stats.slate_cache_misses += machine->cache->misses();
    stats.slate_cache_evictions += machine->cache->evictions();
  }
  stats.slate_store_reads = store_reads_.Get();
  stats.slate_store_writes = store_writes_.Get();
  stats.failures_detected = master_.failures_reported();
  stats.latency_p50_us = latency_.Percentile(0.50);
  stats.latency_p95_us = latency_.Percentile(0.95);
  stats.latency_p99_us = latency_.Percentile(0.99);
  stats.latency_max_us = latency_.max();
  stats.latency_mean_us = latency_.Mean();
  stats.operator_instances = operator_instances_.Get();
  return stats;
}

}  // namespace muppet
