#include "engine/muppet2.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/version.h"
#include "engine/placement.h"
#include "engine/wire.h"

namespace muppet {

namespace {
// Route-time view of "no machines failed" — the overwhelmingly common
// case, served without copying a set under a lock.
const std::set<MachineId> kNoFailed;
}  // namespace

// PerformerUtilities that routes outputs immediately — no serialization
// within the machine (the 1.0 IPC cost 2.0 eliminates, §4.5). Slate
// mutations are applied to the central cache as they happen.
class Muppet2Engine::DirectUtilities final : public PerformerUtilities {
 public:
  // `exec_span` is the span id of the surrounding operator execution (0
  // when untraced); emitted events parent to it.
  // `slate_key` is the key the updater's slate lives under: the event key
  // normally, the shard sub-key (core/keysplit.h) when the event was
  // routed to a shard of a split hot key.
  DirectUtilities(Muppet2Engine* engine, MachineCtx* machine,
                  const Event& event, const std::string& function,
                  bool is_updater, uint64_t work,
                  const UpdaterOptions* updater_options, uint64_t exec_span,
                  BytesView slate_key = {}, uint64_t dedup = 0)
      : engine_(engine),
        machine_(machine),
        event_(event),
        function_(function),
        is_updater_(is_updater),
        work_(work),
        updater_options_(updater_options),
        exec_span_(exec_span),
        slate_key_(slate_key.empty() ? BytesView(event.key) : slate_key),
        dedup_(dedup) {}

  Status Publish(const std::string& stream, BytesView key,
                 BytesView value) override {
    return PublishAt(stream, key, value, event_.ts + 1);
  }

  Status PublishAt(const std::string& stream, BytesView key, BytesView value,
                   Timestamp ts) override {
    const AppConfig& config = engine_->config_;
    if (!config.HasStream(stream)) {
      return Status::InvalidArgument("publish: undeclared stream '" + stream +
                                     "'");
    }
    if (config.IsInputStream(stream)) {
      return Status::InvalidArgument(
          "publish: operators may not emit into input stream '" + stream +
          "'");
    }
    if (ts <= event_.ts) {
      return Status::InvalidArgument(
          "publish: output timestamp must exceed input timestamp");
    }
    Event out;
    out.stream = stream;
    out.ts = ts;
    out.key.assign(key);
    out.value.assign(value);
    out.origin_ts = event_.origin_ts;
    // A traced input's outputs stay in its trace, parented to this
    // operator execution.
    out.trace.trace_id = event_.trace.trace_id;
    out.trace.parent_span = exec_span_;
    engine_->emitted_->Add();
    engine_->DeliverEvent(machine_->id, work_, std::move(out));
    return Status::OK();
  }

  Status ReplaceSlate(BytesView slate) override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot replace a slate");
    }
    const bool write_through = updater_options_->flush_policy ==
                               SlateFlushPolicy::kWriteThrough;
    Status s = machine_->cache->Update(SlateId{function_, Bytes(slate_key_)},
                                       slate, engine_->clock_->Now(),
                                       write_through);
    if (s.ok()) {
      wrote_slate_ = true;
      engine_->AppendSlateLog(machine_, SlateLogKind::kUpdate, function_,
                              slate_key_, slate, event_, work_, dedup_);
    }
    return s;
  }

  Status DeleteSlate() override {
    if (!is_updater_) {
      return Status::FailedPrecondition("mapper cannot delete a slate");
    }
    Status s = machine_->cache->Delete(SlateId{function_, Bytes(slate_key_)});
    if (s.ok()) {
      wrote_slate_ = true;
      engine_->AppendSlateLog(machine_, SlateLogKind::kDelete, function_,
                              slate_key_, BytesView(), event_, work_, dedup_);
    }
    return s;
  }

  const Event& current_event() const override { return event_; }

  // Whether the operator wrote (or deleted) its slate — an exactly-once
  // event with no slate effect still needs a kMark record so its identity
  // survives into replay seeding.
  bool wrote_slate() const { return wrote_slate_; }

 private:
  Muppet2Engine* engine_;
  MachineCtx* machine_;
  const Event& event_;
  const std::string& function_;
  bool is_updater_;
  uint64_t work_;
  const UpdaterOptions* updater_options_;
  uint64_t exec_span_;
  BytesView slate_key_;
  uint64_t dedup_;
  bool wrote_slate_ = false;
};

Muppet2Engine::Muppet2Engine(const AppConfig& config, EngineOptions options)
    : config_(config),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      ring_(options.ring_vnodes, options.ring_seed),
      throttle_(options.throttle, clock_),
      incident_log_(options.watchdog.incident_capacity),
      published_(metrics_.GetCounter("muppet_events_published_total")),
      processed_(metrics_.GetCounter("muppet_events_processed_total")),
      emitted_(metrics_.GetCounter("muppet_events_emitted_total")),
      lost_failure_(metrics_.GetCounter("muppet_events_lost_failure_total")),
      dropped_overflow_(
          metrics_.GetCounter("muppet_events_dropped_overflow_total")),
      redirected_overflow_(
          metrics_.GetCounter("muppet_events_redirected_overflow_total")),
      deadlocks_avoided_(
          metrics_.GetCounter("muppet_deadlocks_avoided_total")),
      store_reads_(metrics_.GetCounter("muppet_slate_store_reads_total")),
      store_writes_(metrics_.GetCounter("muppet_slate_store_writes_total")),
      operator_instances_(
          metrics_.GetCounter("muppet_operator_instances_total")),
      secondary_dispatch_(
          metrics_.GetCounter("muppet_secondary_dispatch_total")),
      slate_contention_(
          metrics_.GetCounter("muppet_slate_contention_total")),
      splits_installed_(metrics_.GetCounter("muppet_key_splits_total")),
      merges_completed_(metrics_.GetCounter("muppet_key_merges_total")),
      slatelog_appends_(
          metrics_.GetCounter("muppet_slatelog_appends_total")),
      slatelog_replays_(
          metrics_.GetCounter("muppet_slatelog_replays_total")),
      slatelog_replayed_(
          metrics_.GetCounter("muppet_slatelog_replayed_records_total")),
      slatelog_torn_tails_(
          metrics_.GetCounter("muppet_slatelog_torn_tails_total")),
      slatelog_corrupt_segments_(metrics_.GetCounter(
          "muppet_slatelog_corrupt_segments_total")),
      checkpoints_(metrics_.GetCounter("muppet_checkpoints_total")),
      deduped_(metrics_.GetCounter("muppet_events_deduped_total")),
      latency_(metrics_.GetHistogram("muppet_e2e_latency_us")),
      queue_wait_(metrics_.GetHistogram("muppet_queue_wait_us")) {
  if (options_.transport_backend != nullptr) {
    // External backend (muppetd's TcpTransport): not owned, carries its
    // own loss accounting, started by the caller after Start().
    transport_ = options_.transport_backend;
  } else {
    TransportOptions t = options_.transport;
    if (t.clock == nullptr) t.clock = options_.clock;
    // Settle fault-injection deliveries that bypass the synchronous
    // send path: late losses debit the in-flight count, duplicate
    // copies pre-charge it, so Drain() stays balanced under chaos.
    if (t.on_async_loss == nullptr) {
      t.on_async_loss = [this](int64_t n) {
        lost_failure_->Add(n);
        DecInflight(n);
      };
    }
    if (t.on_extra_delivery == nullptr) {
      t.on_extra_delivery = [this](int64_t n) {
        inflight_.fetch_add(n, std::memory_order_acq_rel);
      };
    }
    owned_transport_ = std::make_unique<InMemoryTransport>(t);
    transport_ = owned_transport_.get();
  }
}

Muppet2Engine::~Muppet2Engine() { (void)Stop(); }

uint64_t Muppet2Engine::CombineWork(uint64_t function_hash,
                                    uint64_t key_hash) {
  uint64_t h = HashCombine(function_hash, key_hash);
  if (h == 0) h = 1;  // 0 means "idle"
  return h;
}

uint64_t Muppet2Engine::WorkHash(const std::string& function,
                                 BytesView key) {
  return CombineWork(Fnv1a64(function), Fnv1a64(key));
}

Status Muppet2Engine::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  MUPPET_RETURN_IF_ERROR(config_.Validate());
  if (options_.num_machines < 1 || options_.threads_per_machine < 1) {
    return Status::InvalidArgument("engine: bad cluster shape");
  }
  // Hosted subset (multi-process deployment): this process builds worker
  // state only for the listed ids; the ring still spans all num_machines,
  // every process deriving the same ring from the shared cluster config.
  std::vector<bool> hosted(static_cast<size_t>(options_.num_machines),
                           options_.hosted_machines.empty());
  if (!options_.hosted_machines.empty()) {
    for (const MachineId id : options_.hosted_machines) {
      if (id < 0 || id >= options_.num_machines) {
        return Status::InvalidArgument(
            "engine: hosted machine " + std::to_string(id) +
            " outside [0, num_machines)");
      }
      hosted[static_cast<size_t>(id)] = true;
    }
  }
  publish_machine_ = kInvalidMachine;
  for (int m = 0; m < options_.num_machines; ++m) {
    if (hosted[static_cast<size_t>(m)]) {
      publish_machine_ = m;
      break;
    }
  }
  if (publish_machine_ == kInvalidMachine) {
    return Status::InvalidArgument("engine: hosts no machines");
  }
  if (options_.overflow.policy == OverflowPolicy::kOverflowStream &&
      !config_.HasStream(options_.overflow.overflow_stream)) {
    return Status::InvalidArgument("engine: overflow stream is not declared");
  }
  if (durable() && options_.durability.dir.empty()) {
    return Status::InvalidArgument(
        "engine: durability requires a changelog directory "
        "(EngineOptions::durability.dir)");
  }

  // Intern operator and stream names into dense ids; precompute the
  // function half of every work hash and each stream's subscriber list.
  // operators() is an ordered map, so ids are deterministic across
  // machines and runs — which is what lets ids travel in wire frames.
  for (const auto& [name, spec] : config_.operators()) {
    const uint32_t fid = op_names_.Intern(name);
    (void)fid;
    ops_.push_back(OpInfo{&spec, Fnv1a64(name)});
    op_processed_.push_back(metrics_.GetCounter(
        "muppet_operator_processed_total", {{"operator", name}}));
  }
  for (const std::string& sid : config_.InputStreams()) {
    stream_published_[sid] = metrics_.GetCounter(
        "muppet_stream_published_total", {{"stream", sid}});
  }
  for (const std::string& sid : config_.AllStreams()) {
    const uint32_t stream_id = stream_names_.Intern(sid);
    if (subscribers_.size() <= stream_id) subscribers_.resize(stream_id + 1);
    for (const std::string& sub : config_.SubscribersOf(sid)) {
      subscribers_[stream_id].push_back(
          static_cast<uint32_t>(op_names_.Find(sub)));
    }
  }

  // Every machine hosts every function; the ring routes keys among all
  // num_machines ids, hosted here or not.
  for (const auto& [name, spec] : config_.operators()) {
    (void)spec;
    for (int mm = 0; mm < options_.num_machines; ++mm) {
      ring_.AddWorker(name, WorkerRef{mm, 0});
    }
  }

  for (int m = 0; m < options_.num_machines; ++m) {
    if (!hosted[static_cast<size_t>(m)]) {
      machines_.push_back(nullptr);
      continue;
    }
    auto machine = std::make_unique<MachineCtx>();
    machine->id = m;

    // Central slate cache; the write-back resolves each updater's TTL.
    machine->cache = std::make_unique<SlateCache>(
        SlateCacheOptions{options_.slate_cache_capacity},
        [this](const SlateCache::DirtySlate& dirty) -> Status {
          if (options_.slate_store == nullptr) return Status::OK();
          store_writes_->Add();
          if (dirty.deleted) return options_.slate_store->Delete(dirty.id);
          Timestamp ttl = 0;
          const OperatorSpec* spec = config_.FindOperator(dirty.id.updater);
          if (spec != nullptr) ttl = spec->updater_options.slate_ttl_micros;
          return options_.slate_store->Write(dirty.id, dirty.value, ttl);
        });

    // One shared operator instance per function per machine, indexed by
    // interned id so the hot path never probes a string map.
    machine->mappers.resize(ops_.size());
    machine->updaters.resize(ops_.size());
    for (size_t fid = 0; fid < ops_.size(); ++fid) {
      const OperatorSpec& spec = *ops_[fid].spec;
      if (spec.kind == OperatorKind::kMapper) {
        machine->mappers[fid] = spec.mapper_factory(config_, spec.name);
      } else {
        machine->updaters[fid] = spec.updater_factory(config_, spec.name);
      }
      operator_instances_->Add();
    }

    if (options_.load_manager.enabled) {
      machine->heat =
          std::make_unique<HeatTracker>(options_.load_manager.heat);
    }

    if (durable()) {
      SlateChangelog::Options log_options;
      // Exactly-once pays for its guarantee: every record is durable
      // before the update is acknowledged.
      log_options.sync_every_records =
          exactly_once() ? 1 : options_.durability.sync_every_records;
      machine->changelog = std::make_unique<SlateChangelog>(
          options_.durability.dir, static_cast<uint64_t>(m), log_options);
      MUPPET_RETURN_IF_ERROR(machine->changelog->Open());
      if (exactly_once()) {
        machine->dedup =
            std::make_unique<DedupTable>(options_.durability.dedup_capacity);
      }
    }

    for (int t = 0; t < options_.threads_per_machine; ++t) {
      auto thread_ctx = std::make_unique<ThreadCtx>();
      thread_ctx->index = t;
      thread_ctx->queue = std::make_unique<EventQueue>(options_.queue_capacity);
      machine->threads.push_back(std::move(thread_ctx));
    }
    if (options_.trace.enabled && options_.trace.sample_period != 0) {
      TraceSink::Options trace_options;
      trace_options.recent_capacity = options_.trace.recent_traces;
      trace_options.slowest_capacity = options_.trace.slowest_traces;
      machine->trace_sink = std::make_unique<TraceSink>(trace_options);
    }
    machines_.push_back(std::move(machine));
  }
  RegisterCallbackMetrics();

  for (auto& machine : machines_) {
    if (machine == nullptr) continue;
    const MachineId id = machine->id;
    MUPPET_RETURN_IF_ERROR(transport_->RegisterMachine(
        id, [this, id](MachineId from, BytesView payload) {
          return HandleIncoming(from, id, payload);
        }));
    MUPPET_RETURN_IF_ERROR(transport_->RegisterBatchHandler(
        id, [this, id](MachineId from, BytesView frame, size_t count,
                       size_t* accepted) {
          return HandleIncomingFrame(from, id, frame, count, accepted);
        }));
  }

  master_.AddListener([this](MachineId failed) {
    for (auto& machine : machines_) {
      if (machine == nullptr) continue;
      MutexLock lock(machine->failed_mutex);
      machine->failed.insert(failed);
      machine->failed_count.store(machine->failed.size(),
                                  std::memory_order_release);
    }
  });
  master_.AddRecoveryListener([this](MachineId recovered) {
    for (auto& machine : machines_) {
      if (machine == nullptr) continue;
      MutexLock lock(machine->failed_mutex);
      machine->failed.erase(recovered);
      machine->failed_count.store(machine->failed.size(),
                                  std::memory_order_release);
    }
  });

  // Cold-start replay: a changelog directory left by a previous engine
  // (warm process restart) restores every machine's slates before any
  // worker thread runs, so a stop/start cycle in a durable mode loses
  // nothing past the last sync.
  if (durable()) {
    for (auto& machine : machines_) {
      if (machine == nullptr) continue;
      MUPPET_RETURN_IF_ERROR(ReplayChangelog(machine.get()));
    }
  }

  // Health & SLO plane (DESIGN.md §14): the tracker shares the engine
  // registry so /sloz and /metrics read the same cells; incidents dump
  // flight-recorder artifacts on the chaos artifact path.
  slo_ = std::make_unique<SloTracker>(options_.slo, &metrics_, clock_);
  incident_log_.SetDumpHook([this](const Incident& incident) {
    std::vector<TraceSink*> sinks;
    for (const auto& m : machines_) {
      if (m != nullptr) sinks.push_back(m->trace_sink.get());
    }
    (void)DumpWatchdogArtifacts("muppet2", incident, sinks, &metrics_);
  });

  for (auto& machine : machines_) {
    if (machine == nullptr) continue;
    MachineCtx* m = machine.get();
    for (auto& thread_ctx : m->threads) {
      ThreadCtx* t = thread_ctx.get();
      t->thread = std::thread([this, m, t] { WorkerLoop(m, t); });
    }
    m->flusher = std::thread([this, m] { FlusherLoop(m); });
  }

  if (options_.load_manager.enabled) {
    lm_controller_ = std::make_unique<LoadController>(options_.load_manager);
    lm_thread_ = std::thread([this] { LoadManagerLoop(); });
  }
  if (options_.watchdog.enabled) {
    watchdog_ = std::make_unique<Watchdog>(options_.watchdog, &incident_log_);
    wd_thread_ = std::thread([this] { WatchdogLoop(); });
  }

  started_at_.store(clock_->Now(), std::memory_order_release);
  started_ = true;
  return Status::OK();
}

void Muppet2Engine::TapStream(const std::string& stream,
                              std::function<void(const Event&)> tap) {
  WriterMutexLock lock(taps_mutex_);
  taps_[stream].push_back(std::move(tap));
  has_taps_.store(true, std::memory_order_release);
}

void Muppet2Engine::RunTaps(const Event& event) {
  ReaderMutexLock lock(taps_mutex_);
  auto it = taps_.find(event.stream);
  if (it == taps_.end()) return;
  for (const auto& tap : it->second) tap(event);
}

std::set<MachineId> Muppet2Engine::FailedSetFor(MachineId machine) const {
  const MachineCtx* m = Ctx(machine);
  if (m != nullptr) {
    MutexLock lock(m->failed_mutex);
    return m->failed;
  }
  return master_.failed();
}

Status Muppet2Engine::Publish(const std::string& stream, BytesView key,
                              BytesView value, Timestamp ts) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("engine not running");
  }
  if (!config_.IsInputStream(stream)) {
    return Status::InvalidArgument("'" + stream +
                                   "' is not a declared input stream");
  }
  if (options_.overflow.policy == OverflowPolicy::kThrottle ||
      options_.load_manager.enabled) {
    // The load manager's occupancy floor paces the source even when the
    // overflow policy is not kThrottle — pacing only ever slows Publish,
    // so the §5 deadlock-freedom argument is unaffected.
    throttle_.PaceSource();
  }
  Event event;
  event.stream = stream;
  event.ts = ts;
  event.key.assign(key);
  event.value.assign(value);
  event.seq = NextSeq();
  event.origin_ts = clock_->Now();
  published_->Add();
  auto sp = stream_published_.find(stream);
  if (sp != stream_published_.end()) sp->second->Add();

  // Deterministic sampling: the decision is a pure function of the key,
  // so a chaos replay of the same workload traces the same events.
  if (options_.trace.enabled &&
      TraceSampled(Fnv1a64(event.key), options_.trace.sample_period)) {
    event.trace.trace_id = MakeTraceId(Fnv1a64(event.key), event.seq);
    TraceSink* sink = SinkFor(publish_machine_);
    if (sink != nullptr) {
      // Root span: the external publish itself (the lowest machine this
      // process hosts accepts all external events published here).
      Span root;
      root.trace_id = event.trace.trace_id;
      root.span_id = NextSpanId();
      root.kind = SpanKind::kPublish;
      root.machine = publish_machine_;
      root.name = stream;
      root.start_us = event.origin_ts;
      root.end_us = clock_->Now();
      event.trace.parent_span = root.span_id;
      sink->Record(std::move(root));
    }
  }
  DeliverEvent(/*from=*/publish_machine_, /*sender_work=*/0,
               std::move(event));
  return Status::OK();
}

void Muppet2Engine::DeliverEvent(MachineId from, uint64_t sender_work,
                                 Event event) {
  if (has_taps_.load(std::memory_order_acquire)) RunTaps(event);

  const int32_t stream_id = stream_names_.Find(event.stream);
  if (stream_id < 0) return;
  const std::vector<uint32_t>& subs =
      subscribers_[static_cast<size_t>(stream_id)];
  if (subs.empty()) return;

  // The key half of the work hash is shared by every subscriber; hash it
  // once per event (the function half was hashed at Start()).
  const uint64_t key_hash = Fnv1a64(event.key);

  const MachineCtx* sender = Ctx(from);
  std::set<MachineId> failed_copy;
  const std::set<MachineId>* failed = &kNoFailed;
  if (sender == nullptr) {
    failed_copy = master_.failed();
    failed = &failed_copy;
  } else if (sender->failed_count.load(std::memory_order_acquire) > 0) {
    failed_copy = FailedSetFor(from);
    failed = &failed_copy;
  }

  // Heat sampling (core/heat.h): one relaxed atomic on the common path,
  // the sketch fold only every Nth arrival. Sampled on the sender's
  // machine so the sketches shard naturally with the event flow.
  HeatTracker* heat = nullptr;
  if (options_.load_manager.enabled) {
    heat = (sender != nullptr ? sender : Ctx(publish_machine_))->heat.get();
  }

  // Remote targets coalesce into one frame per destination machine.
  std::vector<std::pair<MachineId, std::vector<RoutedEvent>>> remote;

  // A one-machine cluster with nothing failed has exactly one possible
  // destination; skip the ring hash + vnode search per event.
  const bool trivial_route = machines_.size() == 1 && failed->empty();

  // Lock-free fast path: no key is split almost always.
  const bool maybe_split = split_table_.HasSplits();

  const size_t n = subs.size();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t fid = subs[i];
    const OpInfo& op = ops_[fid];

    if (heat != nullptr && heat->ShouldSample()) {
      heat->Record(static_cast<int32_t>(fid), event.key);
    }

    // Dynamic key splitting: a hot key of an associative updater fans out
    // round-robin over shard sub-keys. The event's own key is never
    // rewritten — the shard widens routing and slate addressing only, and
    // travels with the event alongside the epoch it was decided under.
    int32_t shard = -1;
    uint32_t split_epoch = 0;
    uint64_t route_key_hash = key_hash;
    Bytes shard_key;
    BytesView route_key = event.key;
    if (maybe_split && op.spec->kind == OperatorKind::kUpdater) {
      SplitTable::State state;
      const int picked =
          split_table_.RouteShard(static_cast<int32_t>(fid), event.key,
                                  &state);
      if (picked >= 0) {
        shard = picked;
        split_epoch = state.epoch;
        shard_key = MakeSplitKey(event.key, picked);
        route_key = shard_key;
        route_key_hash = Fnv1a64(route_key);
      }
    }

    MachineId to = 0;
    if (!trivial_route) {
      Result<WorkerRef> target = ring_.Route(op.spec->name, route_key,
                                             *failed);
      if (!target.ok()) {
        lost_failure_->Add();
        continue;
      }
      to = target.value().machine;
    }
    RoutedEvent re;
    re.function_id = static_cast<int32_t>(fid);
    re.work = CombineWork(op.name_hash, route_key_hash);
    re.shard = shard;
    re.split_epoch = split_epoch;
    // The last subscriber takes the event by move — for the common
    // single-subscriber workflow the payload is never copied.
    if (i + 1 == n) {
      re.event = std::move(event);
    } else {
      re.event = event;
    }
    re.event.seq = NextSeq();
    // Exactly-once: stamp the delivery identity the receiver dedups on.
    // Derived after the final seq assignment so each routed copy (one per
    // subscriber) is a distinct delivery.
    if (exactly_once()) {
      re.dedup = DedupIdentity(re.work, re.event.ts, re.event.seq);
    }

    if (to == from) {
      LocalDeliver(from, sender_work, std::move(re));
    } else {
      auto it = std::find_if(remote.begin(), remote.end(),
                             [to](const auto& p) { return p.first == to; });
      if (it == remote.end()) {
        remote.emplace_back(to, std::vector<RoutedEvent>());
        it = remote.end() - 1;
      }
      it->second.push_back(std::move(re));
    }
  }

  for (auto& [to, batch] : remote) {
    FlushRemoteBatch(from, sender_work, to, std::move(batch));
  }
}

void Muppet2Engine::LocalDeliver(MachineId machine_id, uint64_t sender_work,
                                 RoutedEvent re) {
  MachineCtx* machine = Ctx(machine_id);
  if (machine == nullptr) {
    // Only reachable for a hosted sender (to == from implies hosted).
    lost_failure_->Add();
    return;
  }
  if (machine->crashed.load(std::memory_order_acquire)) {
    // Matches the transport Unavailable path: a failed delivery is how
    // crashes are detected (§4.3).
    master_.ReportFailure(machine_id);
    lost_failure_->Add();
    return;
  }
  transport_->CountLocalDelivery();

  int attempts = 0;
  const int kMaxThrottleRetries = 50;
  while (true) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    Status s = Dispatch(machine, &re);
    if (s.ok()) return;
    DecInflight(1);

    if (!s.IsResourceExhausted()) {
      lost_failure_->Add();
      return;
    }
    switch (options_.overflow.policy) {
      case OverflowPolicy::kDrop:
        dropped_overflow_->Add();
        return;
      case OverflowPolicy::kOverflowStream: {
        if (re.event.stream == options_.overflow.overflow_stream) {
          dropped_overflow_->Add();
          return;
        }
        redirected_overflow_->Add();
        Event redirected = std::move(re.event);
        redirected.stream = options_.overflow.overflow_stream;
        DeliverEvent(machine_id, sender_work, std::move(redirected));
        return;
      }
      case OverflowPolicy::kThrottle: {
        throttle_.NoteOverflow();
        // A worker emitting to its own (function,key) work unit while its
        // queues are full can never make progress by waiting (§5).
        if (sender_work != 0 && re.work == sender_work) {
          deadlocks_avoided_->Add();
          dropped_overflow_->Add();
          return;
        }
        if (++attempts > kMaxThrottleRetries) {
          dropped_overflow_->Add();
          return;
        }
        clock_->SleepFor(200);
        continue;
      }
    }
  }
}

void Muppet2Engine::FlushRemoteBatch(MachineId from, uint64_t sender_work,
                                     MachineId to,
                                     std::vector<RoutedEvent> batch) {
  Bytes frame;
  EncodeRoutedEventFrame(batch, &frame);
  const size_t n = batch.size();
  size_t accepted = 0;

  // Net-hop spans, recorded on the sender's sink: one per sampled event in
  // the frame, all sharing the frame's send window.
  TraceSink* sink = SinkFor(from);
  Timestamp hop_start = 0;
  if (sink != nullptr) {
    for (const RoutedEvent& re : batch) {
      if (re.event.trace.sampled()) {
        hop_start = clock_->Now();
        break;
      }
    }
  }

  // Cross-process destinations settle in the receiving process: its
  // handler charges its own inflight_ per event, so the sender counting
  // too would double-book (and Drain() here could never observe the
  // remote completion anyway).
  const bool tracked = Hosted(to);
  if (tracked) {
    inflight_.fetch_add(static_cast<int64_t>(n), std::memory_order_acq_rel);
  }
  Status s = transport_->SendBatch(from, to, frame, n, &accepted,
                                  FrameFaultSignature(batch));
  if (hop_start != 0) {
    const Timestamp hop_end = clock_->Now();
    for (const RoutedEvent& re : batch) {
      if (!re.event.trace.sampled()) continue;
      Span hop;
      hop.trace_id = re.event.trace.trace_id;
      hop.span_id = NextSpanId();
      hop.parent_span = re.event.trace.parent_span;
      hop.kind = SpanKind::kNetHop;
      hop.machine = from;
      hop.name = "->m" + std::to_string(to);
      hop.start_us = hop_start;
      hop.end_us = hop_end;
      sink->Record(std::move(hop));
    }
  }
  if (s.ok()) return;
  if (tracked) DecInflight(static_cast<int64_t>(n - accepted));

  if (s.IsUnavailable()) {
    master_.ReportFailure(to);
    lost_failure_->Add(static_cast<int64_t>(n - accepted));
    return;
  }
  if (!s.IsResourceExhausted()) {
    lost_failure_->Add(static_cast<int64_t>(n - accepted));
    return;
  }
  // The receiver took a prefix and declined the rest; the remainder goes
  // through the per-event overflow path (§4.3).
  for (size_t i = accepted; i < n; ++i) {
    RemoteDeliverOne(from, sender_work, to, std::move(batch[i]));
  }
}

void Muppet2Engine::RemoteDeliverOne(MachineId from, uint64_t sender_work,
                                     MachineId to, RoutedEvent re) {
  Bytes frame;
  uint64_t signature = 0;
  {
    // Frame of one; encoded once, resent verbatim on throttle retries.
    std::vector<RoutedEvent> one;
    one.push_back(std::move(re));
    EncodeRoutedEventFrame(one, &frame);
    signature = FrameFaultSignature(one);
    re = std::move(one.front());
  }

  // One hop span covering the whole retry loop (ends at any return).
  ScopedSpan hop;
  hop.Begin(SinkFor(from), clock_, re.event.trace, SpanKind::kNetHop, from,
            "->m" + std::to_string(to));

  const bool tracked = Hosted(to);
  int attempts = 0;
  const int kMaxThrottleRetries = 50;
  while (true) {
    size_t accepted = 0;
    if (tracked) inflight_.fetch_add(1, std::memory_order_acq_rel);
    Status s = transport_->SendBatch(from, to, frame, 1, &accepted, signature);
    if (s.ok()) return;
    if (tracked) DecInflight(1);

    if (s.IsUnavailable()) {
      master_.ReportFailure(to);
      lost_failure_->Add();
      return;
    }
    if (!s.IsResourceExhausted()) {
      lost_failure_->Add();
      return;
    }
    switch (options_.overflow.policy) {
      case OverflowPolicy::kDrop:
        dropped_overflow_->Add();
        return;
      case OverflowPolicy::kOverflowStream: {
        if (re.event.stream == options_.overflow.overflow_stream) {
          dropped_overflow_->Add();
          return;
        }
        redirected_overflow_->Add();
        Event redirected = std::move(re.event);
        redirected.stream = options_.overflow.overflow_stream;
        DeliverEvent(from, sender_work, std::move(redirected));
        return;
      }
      case OverflowPolicy::kThrottle: {
        throttle_.NoteOverflow();
        if (sender_work != 0 && re.work == sender_work && to == from) {
          deadlocks_avoided_->Add();
          dropped_overflow_->Add();
          return;
        }
        if (++attempts > kMaxThrottleRetries) {
          dropped_overflow_->Add();
          return;
        }
        clock_->SleepFor(200);
        continue;
      }
    }
  }
}

Status Muppet2Engine::HandleIncoming(MachineId from, MachineId to,
                                     BytesView payload) {
  MachineCtx* machine = Ctx(to);
  if (machine == nullptr) {
    return Status::Unavailable("machine not hosted here");
  }
  if (machine->crashed.load()) {
    return Status::Unavailable("machine crashed");
  }
  RoutedEvent re;
  MUPPET_RETURN_IF_ERROR(DecodeRoutedEvent(payload, &re));
  const int32_t fid = op_names_.Find(re.function);
  if (fid < 0) return Status::NotFound("unknown function");
  re.function_id = fid;
  re.work = CombineWork(ops_[static_cast<size_t>(fid)].name_hash,
                        Fnv1a64(re.event.key));
  // A sender in another process never touched this engine's inflight_;
  // charge it here so Drain()/watchdog accounting tracks the event until
  // a worker settles it (the DecInflight calls below balance this charge
  // exactly as they balance an in-process sender's).
  const bool external = !Hosted(from);
  if (external) inflight_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t dedup_id =
      (re.ctl == kCtlNone && machine->dedup != nullptr) ? re.dedup : 0;
  // Reserve the identity atomically before dispatch: a check-then-record
  // pattern would let two concurrent deliveries of the same identity (a
  // redelivered batch racing the original during recovery) both pass the
  // check and double-apply the event.
  if (dedup_id != 0 && !machine->dedup->CheckAndInsert(dedup_id)) {
    deduped_->Add();
    DecInflight(1);
    return Status::OK();
  }
  Status s = Dispatch(machine, &re);
  // A declined push (queue full) is retried by the sender; unwind the
  // reservation so the retry is not mistaken for a duplicate.
  if (!s.ok()) {
    if (dedup_id != 0) machine->dedup->Remove(dedup_id);
    if (external) DecInflight(1);
  }
  return s;
}

Status Muppet2Engine::HandleIncomingFrame(MachineId from, MachineId to,
                                          BytesView frame, size_t count,
                                          size_t* accepted) {
  (void)count;
  // *accepted carries the resume offset IN: events at the head of the frame
  // that a previous partial delivery of this exact frame already settled
  // (the TCP backend re-presents a frame after a queue-full decline; the
  // in-memory transport always passes 0). Those are skipped wholesale —
  // re-running them through dedup would double-count deduped_ and, for
  // control events with no dedup identity, double-apply them.
  const size_t skip = *accepted;
  MachineCtx* machine = Ctx(to);
  if (machine == nullptr) {
    return Status::Unavailable("machine not hosted here");
  }
  if (machine->crashed.load()) {
    return Status::Unavailable("machine crashed");
  }
  // A sender in another process never touched this engine's inflight_;
  // charge each event here so Drain()/watchdog accounting tracks it until
  // a worker settles it. In-process senders pre-charged in FlushRemoteBatch.
  const bool external = !Hosted(from);
  RoutedEventFrameReader reader(frame);
  RoutedEvent re;
  size_t index = 0;
  while (reader.Next(&re)) {
    if (index < skip) {
      ++index;
      continue;
    }
    ++index;
    if (re.function_id < 0 ||
        static_cast<size_t>(re.function_id) >= ops_.size()) {
      return Status::Corruption("wire: frame names unknown function id");
    }
    if (external) inflight_.fetch_add(1, std::memory_order_acq_rel);
    // Exactly-once suppression: a data event whose delivery identity this
    // machine already processed (a redelivered batch after the recovery
    // epoch cut, or an injector duplicate) settles here as deduped. The
    // identity is reserved atomically BEFORE dispatch — check-then-record
    // would let two concurrent deliveries of the same identity both pass
    // the check — and unwound if the push is declined (queue full) so the
    // sender's retry is not mistaken for a duplicate.
    const uint64_t dedup_id =
        (re.ctl == kCtlNone && machine->dedup != nullptr) ? re.dedup : 0;
    if (dedup_id != 0 && !machine->dedup->CheckAndInsert(dedup_id)) {
      deduped_->Add();
      DecInflight(1);
      ++*accepted;
      continue;
    }
    Status s = Dispatch(machine, &re);
    if (!s.ok()) {
      if (dedup_id != 0) machine->dedup->Remove(dedup_id);
      if (external) DecInflight(1);
      return s;
    }
    ++*accepted;
  }
  if (reader.corrupt()) {
    return Status::Corruption("wire: malformed routed event frame");
  }
  return Status::OK();
}

Status Muppet2Engine::Dispatch(MachineCtx* machine, RoutedEvent* re) {
  // All enqueue paths (local fast path, remote frames, legacy payloads)
  // funnel through here, so the queue-wait measurement starts now: a span
  // for traced events, the muppet_queue_wait_us histogram for all events
  // (the load manager's before/after-split p99 signal).
  re->enqueue_ts = clock_->Now();

  const size_t W = machine->threads.size();
  const uint64_t work = re->work;
  const size_t primary = Mix64(work) % W;

  if (!options_.enable_two_choice || W == 1) {
    return machine->threads[primary]->queue->TryPushMove(re);
  }

  size_t secondary = Mix64(work ^ 0x5ec0dULL) % W;
  if (secondary == primary) secondary = (primary + 1) % W;

  // "an incoming event locks no more than two queues": the sticky-owner
  // check reads the candidates' `current` atomics, the balance check reads
  // their lock-free sizes, and the push locks only the chosen queue (plus,
  // at worst, the other candidate on fallback). Concurrent dispatchers may
  // pick from a stale size — the pick is a heuristic — but every event for
  // a given work unit still lands on one of the same two queues, which is
  // what bounds slate ownership to two threads (§4.5).
  ThreadCtx* tp = machine->threads[primary].get();
  ThreadCtx* ts = machine->threads[secondary].get();

  size_t choice;
  if (tp->current.load(std::memory_order_acquire) == work) {
    choice = primary;
  } else if (ts->current.load(std::memory_order_acquire) == work) {
    choice = secondary;
  } else if (ts->queue->size() +
                 static_cast<size_t>(options_.secondary_queue_bias) <
             tp->queue->size()) {
    choice = secondary;
  } else {
    choice = primary;
  }
  if (choice == secondary) secondary_dispatch_->Add();

  Status s = machine->threads[choice]->queue->TryPushMove(re);
  if (s.IsResourceExhausted()) {
    // Try the other candidate before declining to the sender.
    const size_t other = (choice == primary) ? secondary : primary;
    if (other == secondary) secondary_dispatch_->Add();
    s = machine->threads[other]->queue->TryPushMove(re);
  }
  return s;
}

void Muppet2Engine::WorkerLoop(MachineCtx* machine, ThreadCtx* thread) {
  std::vector<RoutedEvent> batch;
  batch.reserve(kWorkerPopBatch);
  while (thread->queue->PopBatch(&batch, kWorkerPopBatch)) {
    for (RoutedEvent& re : batch) {
      if (re.enqueue_ts != 0) {
        queue_wait_->Record(clock_->Now() - re.enqueue_ts);
      }
      if (re.event.trace.sampled() && machine->trace_sink != nullptr &&
          re.enqueue_ts != 0) {
        Span wait;
        wait.trace_id = re.event.trace.trace_id;
        wait.span_id = NextSpanId();
        wait.parent_span = re.event.trace.parent_span;
        wait.kind = SpanKind::kQueueWait;
        wait.machine = machine->id;
        wait.name = ops_[static_cast<size_t>(re.function_id)].spec->name;
        wait.start_us = re.enqueue_ts;
        wait.end_us = clock_->Now();
        machine->trace_sink->Record(std::move(wait));
      }
      thread->current.store(re.work, std::memory_order_release);
      Status s = ProcessOne(machine, re);
      if (!s.ok()) {
        MUPPET_LOG(kError) << "worker thread " << thread->index << "@"
                           << machine->id << ": " << s.ToString();
      }
      thread->current.store(0, std::memory_order_release);
      DecInflight(1);
    }
    batch.clear();
  }
}

Status Muppet2Engine::FetchSlateOnMachine(MachineCtx* machine,
                                          const std::string& updater,
                                          BytesView key, Bytes* slate,
                                          const char** source) {
  const SlateId id{updater, Bytes(key)};
  bool absent = false;
  Status s = machine->cache->LookupWithAbsent(id, slate, &absent);
  if (s.ok()) {
    if (source != nullptr) *source = absent ? "absent_cached" : "hit";
    if (absent) return Status::NotFound("slate absent (cached)");
    return Status::OK();
  }
  if (options_.slate_store != nullptr) {
    store_reads_->Add();
    Result<Bytes> fetched = options_.slate_store->Read(id);
    if (fetched.ok()) {
      if (source != nullptr) *source = "store";
      *slate = std::move(fetched).value();
      (void)machine->cache->Insert(id, *slate);
      return Status::OK();
    }
    if (!fetched.status().IsNotFound()) return fetched.status();
  }
  if (source != nullptr) *source = "store_absent";
  machine->cache->InsertAbsent(id);
  return Status::NotFound("slate absent");
}

Status Muppet2Engine::ProcessOne(MachineCtx* machine, const RoutedEvent& re) {
  if (re.ctl != kCtlNone) return ProcessControl(machine, re);

  const size_t fid = static_cast<size_t>(re.function_id);
  const OpInfo& op = ops_[fid];
  const OperatorSpec& spec = *op.spec;
  const Event& event = re.event;
  const uint64_t work = re.work;

  // Exec span: wraps the operator invocation; emitted events and the
  // slate fetch parent to it. Disarmed (one branch) for untraced events.
  ScopedSpan exec;
  TraceSink* sink = event.trace.sampled() ? machine->trace_sink.get() : nullptr;

  if (spec.kind == OperatorKind::kMapper) {
    exec.Begin(sink, clock_, event.trace, SpanKind::kMapExec, machine->id,
               spec.name);
    DirectUtilities utils(this, machine, event, spec.name,
                          /*is_updater=*/false, work, nullptr,
                          exec.span_id());
    machine->mappers[fid]->Map(utils, event);
    // Mappers never write slates; in exactly-once mode the processed
    // identity still has to reach the changelog (kMark) so replay can
    // re-seed the dedup table past the crash.
    if (re.dedup != 0 && machine->changelog != nullptr) {
      AppendSlateLog(machine, SlateLogKind::kMark, spec.name, event.key,
                     BytesView(), event, work, re.dedup);
    }
  } else {
    // Up to two threads can vie for the same slate (§4.5); the striped
    // lock serializes the contending pair.
    bool contended = false;
    MutexLock guard(machine->slate_locks[work % kSlateLockStripes],
                    &contended);
    if (contended) slate_contention_->Add();

    // Shard validation, inside the stripe lock so it cannot race a merge
    // sweep of the same shard: an event routed under a split epoch that
    // has since moved on (split widened, merge begun or finished) must
    // not touch the stale shard slate — it re-enters delivery under its
    // base key instead.
    Bytes shard_key;
    BytesView slate_key = event.key;
    if (re.shard >= 0) {
      SplitTable::State state;
      const bool live =
          split_table_.Lookup(re.function_id, event.key, &state) &&
          state.epoch == re.split_epoch && !state.draining;
      if (!live) {
        ReshardToBase(machine, re);
        return Status::OK();
      }
      shard_key = MakeSplitKey(event.key, re.shard);
      slate_key = shard_key;
    }

    exec.Begin(sink, clock_, event.trace, SpanKind::kUpdateExec, machine->id,
               spec.name);

    Bytes slate;
    bool has_slate = false;
    const char* fetch_source = nullptr;
    {
      ScopedSpan fetch;
      fetch.Begin(sink, clock_,
                  TraceContext{event.trace.trace_id, exec.span_id()},
                  SpanKind::kSlateFetch, machine->id, spec.name);
      Status s = FetchSlateOnMachine(machine, spec.name, slate_key, &slate,
                                     &fetch_source);
      if (fetch_source != nullptr) fetch.set_note(fetch_source);
      if (s.ok()) {
        has_slate = true;
      } else if (!s.IsNotFound()) {
        return s;
      }
    }
    DirectUtilities utils(this, machine, event, spec.name,
                          /*is_updater=*/true, work,
                          &spec.updater_options, exec.span_id(), slate_key,
                          re.dedup);
    machine->updaters[fid]->Update(utils, event,
                                   has_slate ? &slate : nullptr);
    // An updater that chose not to touch its slate still consumed the
    // event; mark the identity for exactly-once replay seeding.
    if (re.dedup != 0 && !utils.wrote_slate() &&
        machine->changelog != nullptr) {
      AppendSlateLog(machine, SlateLogKind::kMark, spec.name, slate_key,
                     BytesView(), event, work, re.dedup);
    }
  }
  exec.End();

  op_processed_[fid]->Add();
  processed_->Add();
  if (event.origin_ts > 0) {
    latency_->Record(clock_->Now() - event.origin_ts);
  }
  return Status::OK();
}

// Merge sweeps and deltas run as engine-level control events, never
// reaching operator code. Both count processed_ when consumed (their
// injection counted emitted_), keeping chaos conservation accounting
// exact; neither counts op_processed_ or latency (origin_ts is 0).
Status Muppet2Engine::ProcessControl(MachineCtx* machine,
                                     const RoutedEvent& re) {
  const OpInfo& op = ops_[static_cast<size_t>(re.function_id)];
  const std::string& name = op.spec->name;

  if (re.ctl == kCtlMergeSweep) {
    // Read-and-delete the shard slate under its stripe lock (the same
    // lock shard events serialize on), then forward the bytes toward the
    // base key's owner. Safe under any interleaving: an associative fold
    // moves slate mass, never duplicates or drops it — even a straggler
    // sweep arriving after the merge finished (or after the key re-split)
    // just moves that shard's mass home early.
    const Bytes shard_key = MakeSplitKey(re.event.key, re.shard);
    Bytes slate;
    bool found = false;
    {
      MutexLock guard(machine->slate_locks[re.work % kSlateLockStripes]);
      Status s = FetchSlateOnMachine(machine, name, shard_key, &slate);
      if (s.ok()) {
        found = true;
        (void)machine->cache->Delete(SlateId{name, shard_key});
      }
    }
    if (found) {
      split_table_.NoteMergeFound(re.function_id, re.event.key,
                                  static_cast<int64_t>(slate.size()));
      RoutedEvent delta;
      delta.function_id = re.function_id;
      delta.work = CombineWork(op.name_hash, Fnv1a64(re.event.key));
      delta.shard = re.shard;
      delta.split_epoch = re.split_epoch;  // merge round id rides along
      delta.ctl = kCtlMergeDelta;
      delta.event.key = re.event.key;
      delta.event.value = std::move(slate);
      delta.event.seq = NextSeq();
      SendControl(machine->id, re.work, re.event.key, std::move(delta));
    }
    processed_->Add();
    return Status::OK();
  }

  // kCtlMergeDelta: fold the carried shard slate into the base slate via
  // the updater's merger — exactly once per (shard, round), because the
  // fault injector can duplicate the frame and a second fold would
  // overcount.
  const uint64_t dedupe_key = HashCombine(
      HashCombine(HashCombine(static_cast<uint64_t>(re.function_id),
                              Fnv1a64(re.event.key)),
                  static_cast<uint64_t>(re.shard)),
      static_cast<uint64_t>(re.split_epoch));
  {
    MutexLock guard(machine->slate_locks[re.work % kSlateLockStripes]);
    bool fresh = false;
    {
      MutexLock dedupe(machine->merge_dedupe_mutex);
      fresh = machine->merge_applied.insert(dedupe_key).second;
    }
    const SlateMerger& merger = op.spec->updater_options.merger;
    if (fresh && merger != nullptr) {
      Bytes base;
      Status s = FetchSlateOnMachine(machine, name, re.event.key, &base);
      const Bytes merged = merger(s.ok() ? &base : nullptr, re.event.value);
      const bool write_through = op.spec->updater_options.flush_policy ==
                                 SlateFlushPolicy::kWriteThrough;
      (void)machine->cache->Update(SlateId{name, re.event.key}, merged,
                                   clock_->Now(), write_through);
    }
  }
  processed_->Add();
  return Status::OK();
}

void Muppet2Engine::ReshardToBase(MachineCtx* machine,
                                  const RoutedEvent& re) {
  const OpInfo& op = ops_[static_cast<size_t>(re.function_id)];
  RoutedEvent base = re;
  base.shard = -1;
  base.split_epoch = 0;
  base.work = CombineWork(op.name_hash, Fnv1a64(base.event.key));
  base.event.seq = NextSeq();
  if (exactly_once()) {
    base.dedup = DedupIdentity(base.work, base.event.ts, base.event.seq);
  }
  const std::set<MachineId> failed = FailedSetFor(machine->id);
  Result<WorkerRef> target =
      ring_.Route(op.spec->name, base.event.key, failed);
  if (!target.ok()) {
    lost_failure_->Add();
    return;
  }
  const MachineId to = target.value().machine;
  if (to == machine->id) {
    LocalDeliver(machine->id, re.work, std::move(base));
  } else {
    RemoteDeliverOne(machine->id, re.work, to, std::move(base));
  }
}

void Muppet2Engine::SendControl(MachineId from, uint64_t sender_work,
                                BytesView route_key, RoutedEvent re) {
  const OpInfo& op = ops_[static_cast<size_t>(re.function_id)];
  // Injection counts emitted_; every downstream path settles it exactly
  // once (processed on consumption, lost/dropped on failure) through the
  // shared delivery machinery.
  emitted_->Add();
  const std::set<MachineId> failed = FailedSetFor(from);
  Result<WorkerRef> target = ring_.Route(op.spec->name, route_key, failed);
  if (!target.ok()) {
    lost_failure_->Add();
    return;
  }
  const MachineId to = target.value().machine;
  if (to == from) {
    LocalDeliver(from, sender_work, std::move(re));
  } else {
    RemoteDeliverOne(from, sender_work, to, std::move(re));
  }
}

void Muppet2Engine::FlusherLoop(MachineCtx* machine) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    clock_->SleepFor(options_.flush_poll_micros);
    if (machine->crashed.load()) return;
    const Timestamp now = clock_->Now();
    for (const auto& [name, spec] : config_.operators()) {
      if (spec.kind != OperatorKind::kUpdater) continue;
      if (spec.updater_options.flush_policy != SlateFlushPolicy::kInterval) {
        continue;
      }
      (void)machine->cache->FlushDirtyFor(
          name, now - spec.updater_options.flush_interval_micros);
    }
    if (machine->changelog != nullptr) MaybeCheckpoint(machine);
  }
}

void Muppet2Engine::AppendSlateLog(MachineCtx* machine, SlateLogKind kind,
                                   const std::string& updater,
                                   BytesView slate_key, BytesView value,
                                   const Event& event, uint64_t work,
                                   uint64_t dedup) {
  if (machine->changelog == nullptr) return;
  SlateLogRecord rec;
  rec.kind = static_cast<uint8_t>(kind);
  rec.updater = updater;
  rec.key.assign(slate_key);
  rec.value.assign(value);
  rec.ts = event.ts;
  rec.seq = event.seq;
  rec.work = work;
  rec.dedup = dedup;
  Result<uint64_t> lsn = machine->changelog->Append(std::move(rec));
  if (!lsn.ok()) {
    MUPPET_LOG(kError) << "slatelog: append failed on machine "
                       << machine->id << ": " << lsn.status().ToString();
    return;
  }
  slatelog_appends_->Add();
  machine->appends_since_checkpoint.fetch_add(1, std::memory_order_acq_rel);
}

void Muppet2Engine::MaybeCheckpoint(MachineCtx* machine) {
  // Sync the buffered tail on every flusher pass, so the at-least-once
  // loss window is bounded by sync_every_records even when the workload
  // pauses mid-cadence.
  (void)machine->changelog->Sync();

  const uint64_t every = options_.durability.checkpoint_every_records;
  if (every == 0 || options_.slate_store == nullptr) return;
  if (machine->appends_since_checkpoint.load(std::memory_order_acquire) <
      every) {
    return;
  }

  // Everything appended up to `cut` is captured by the dirty flush below;
  // records appended during the flush are simply re-replayed next time
  // (absolute values — replay is idempotent), so the cut is conservative,
  // never wrong.
  const uint64_t cut = machine->changelog->last_lsn();
  machine->appends_since_checkpoint.store(0, std::memory_order_release);
  Result<int> flushed = machine->cache->FlushDirty(INT64_MAX);
  if (!flushed.ok()) {
    MUPPET_LOG(kError) << "slatelog: checkpoint flush failed on machine "
                       << machine->id << ": "
                       << flushed.status().ToString();
    return;
  }

  // Close the pre-cut history into its own file so it can be dropped
  // wholesale once the manifest is durable.
  (void)machine->changelog->RotateSegment();

  CheckpointManifest manifest;
  manifest.machine = static_cast<uint64_t>(machine->id);
  manifest.lsn = cut;
  manifest.segment = machine->changelog->active_segment();
  manifest.ts = clock_->Now();
  Status s = SlateChangelog::WriteManifestFile(options_.durability.dir,
                                               manifest);
  if (!s.ok()) {
    MUPPET_LOG(kError) << "slatelog: manifest write failed on machine "
                       << machine->id << ": " << s.ToString();
    return;
  }
  machine->manifest_lsn.store(cut, std::memory_order_release);

  // Ops mirror in the kvstore (the manifest file is authoritative; this
  // makes the cursor visible to store-level tooling).
  Bytes payload;
  EncodeCheckpointManifest(manifest, &payload);
  (void)options_.slate_store->cluster()->Put(
      kCheckpointColumnFamily,
      "machine-" + std::to_string(machine->id), "manifest", payload);

  (void)machine->changelog->DropSegmentsCoveredBy(cut);
  checkpoints_->Add();
}

Status Muppet2Engine::ReplayChangelog(MachineCtx* machine) {
  if (machine->changelog == nullptr) return Status::OK();
  CheckpointManifest manifest;
  MUPPET_RETURN_IF_ERROR(SlateChangelog::ReadManifestFile(
      options_.durability.dir, static_cast<uint64_t>(machine->id),
      &manifest));
  machine->manifest_lsn.store(manifest.lsn, std::memory_order_release);

  // Slates at or below the manifest live in the kvstore and fault in
  // through the ordinary miss path; replay applies only the suffix.
  // Updates re-enter the cache dirty (not written through) so the next
  // flush persists them — replayed state must survive a later eviction.
  const Timestamp now = clock_->Now();
  const size_t seed_window = options_.durability.replay_seed_window;
  std::deque<uint64_t> identities;
  SlateLogReplayStats replay_stats;
  Status s = SlateChangelog::Replay(
      options_.durability.dir, static_cast<uint64_t>(machine->id),
      manifest.lsn,
      [&](const SlateLogRecord& rec) {
        switch (static_cast<SlateLogKind>(rec.kind)) {
          case SlateLogKind::kUpdate:
            (void)machine->cache->Update(SlateId{rec.updater, rec.key},
                                         rec.value, now,
                                         /*write_through=*/false);
            break;
          case SlateLogKind::kDelete:
            (void)machine->cache->Delete(SlateId{rec.updater, rec.key});
            break;
          case SlateLogKind::kMark:
            break;
        }
        if (rec.dedup != 0 && machine->dedup != nullptr) {
          identities.push_back(rec.dedup);
          if (identities.size() > seed_window) identities.pop_front();
        }
      },
      &replay_stats);
  if (!s.ok()) return s;

  // Epoch cut: the most recent identities re-arm the dedup table so a
  // redelivered pre-crash batch is suppressed, not re-applied.
  if (machine->dedup != nullptr) {
    for (const uint64_t id : identities) machine->dedup->Seed(id);
  }

  slatelog_replays_->Add();
  slatelog_replayed_->Add(static_cast<int64_t>(replay_stats.records));
  if (replay_stats.truncated_tail) slatelog_torn_tails_->Add();
  if (replay_stats.corrupt_segments > 0) {
    slatelog_corrupt_segments_->Add(
        static_cast<int64_t>(replay_stats.corrupt_segments));
  }
  machine->replays.fetch_add(1, std::memory_order_acq_rel);
  MUPPET_LOG(kInfo) << "slatelog: machine " << machine->id << " replayed "
                    << replay_stats.records << " records ("
                    << replay_stats.skipped << " below manifest lsn "
                    << manifest.lsn << ", torn_tail="
                    << (replay_stats.truncated_tail ? "yes" : "no")
                    << ", corrupt_segments=" << replay_stats.corrupt_segments
                    << ")";
  return Status::OK();
}

void Muppet2Engine::DecInflight(int64_t n) {
  if (n <= 0) return;
  if (inflight_.fetch_sub(n, std::memory_order_acq_rel) <= n) {
    // Reached (or crossed) zero: wake Drain(). `<=` rather than `==` so
    // that a batched decrement that skips past zero still notifies —
    // with `==` only the decrement landing exactly on zero wakes the
    // drainer, and Drain() would hang forever if counts ever crossed.
    // Taking the mutex orders the notify against a drainer that just
    // checked the predicate and is about to block.
    MutexLock lock(drain_mutex_);
    drain_cv_.NotifyAll();
  }
}

Status Muppet2Engine::Drain() {
  if (!started_) return Status::FailedPrecondition("engine not started");
  drain_waiters_.fetch_add(1, std::memory_order_acq_rel);
  {
    MutexLock lock(drain_mutex_);
    while (inflight_.load(std::memory_order_acquire) > 0) {
      drain_cv_.Wait(drain_mutex_);
    }
  }
  drain_waiters_.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Muppet2Engine::Stop() {
  if (!started_ || stopped_) return Status::OK();
  stopped_ = true;

  (void)Drain();
  // Final SLO harvest: the engine is drained, so every sampled trace is
  // complete and can be observed before the sinks are torn down.
  HarvestSlo();
  shutdown_.store(true, std::memory_order_release);
  if (lm_thread_.joinable()) lm_thread_.join();
  if (wd_thread_.joinable()) wd_thread_.join();
  for (auto& machine : machines_) {
    if (machine == nullptr) continue;
    if (machine->flusher.joinable()) machine->flusher.join();
  }
  for (auto& machine : machines_) {
    if (machine == nullptr) continue;
    if (!machine->crashed.load()) {
      (void)machine->cache->FlushDirty(INT64_MAX);
      // Graceful shutdown syncs the changelog tail: a stop/start cycle in
      // a durable mode is lossless (only crashes lose the unsynced tail).
      if (machine->changelog != nullptr) (void)machine->changelog->Close();
    }
    for (auto& thread_ctx : machine->threads) {
      thread_ctx->queue->Stop();
    }
  }
  for (auto& machine : machines_) {
    if (machine == nullptr) continue;
    for (auto& thread_ctx : machine->threads) {
      if (thread_ctx->thread.joinable()) thread_ctx->thread.join();
    }
    transport_->UnregisterMachine(machine->id);
  }
  return Status::OK();
}

Status Muppet2Engine::FetchRoutedSlate(const std::string& updater,
                                       BytesView key,
                                       const std::set<MachineId>& failed,
                                       Bytes* slate) {
  Result<WorkerRef> target = ring_.Route(updater, key, failed);
  if (!target.ok()) return target.status();
  MachineCtx* machine = Ctx(target.value().machine);
  if (machine == nullptr) {
    // The ring routed the key to a machine hosted by another process. A
    // deployment (muppetd) supplies remote_fetch to proxy the read; without
    // it the caller learns the slate is not locally readable.
    if (options_.remote_fetch != nullptr) {
      Result<Bytes> remote =
          options_.remote_fetch(target.value().machine, updater, key);
      if (!remote.ok()) return remote.status();
      *slate = std::move(remote).value();
      return Status::OK();
    }
    return Status::Unavailable("slate owner hosted remotely");
  }
  return FetchSlateOnMachine(machine, updater, key, slate);
}

Result<Bytes> Muppet2Engine::FetchSlate(const std::string& updater,
                                        BytesView key) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  const OperatorSpec* spec = config_.FindOperator(updater);
  if (spec == nullptr || spec->kind != OperatorKind::kUpdater) {
    return Status::NotFound("no such updater: " + updater);
  }
  std::set<MachineId> failed = master_.failed();
  for (const auto& m : machines_) {
    if (m != nullptr && m->crashed.load()) failed.insert(m->id);
  }

  // A split key's state is spread over the base slate plus one slate per
  // shard; fold them with the updater's merger at read time (paper §5
  // Example 6's re-aggregation). Draining entries aggregate the same way
  // — shards the merge sweeps have not collected yet still count here.
  const int32_t fid = op_names_.Find(updater);
  SplitTable::State state;
  if (fid >= 0 && split_table_.Lookup(fid, key, &state) &&
      spec->updater_options.merger != nullptr) {
    Bytes acc;
    bool has = false;
    Bytes part;
    if (FetchRoutedSlate(updater, key, failed, &part).ok()) {
      acc = std::move(part);
      has = true;
    }
    for (int shard = 0; shard < state.shards; ++shard) {
      const Bytes shard_key = MakeSplitKey(key, shard);
      part.clear();
      if (FetchRoutedSlate(updater, shard_key, failed, &part).ok()) {
        acc = spec->updater_options.merger(has ? &acc : nullptr, part);
        has = true;
      }
    }
    if (!has) return Status::NotFound("slate absent");
    return acc;
  }

  Bytes slate;
  Status s = FetchRoutedSlate(updater, key, failed, &slate);
  if (!s.ok()) return s;
  return slate;
}

Status Muppet2Engine::CrashMachine(MachineId machine_id) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  MachineCtx* machine = Ctx(machine_id);
  if (machine == nullptr) {
    return Status::InvalidArgument("no such machine hosted here");
  }
  if (machine->crashed.exchange(true)) return Status::OK();

  transport_->Crash(machine_id);
  int64_t lost_total = 0;
  for (auto& thread_ctx : machine->threads) {
    const size_t lost = thread_ctx->queue->Clear();
    thread_ctx->queue->Stop();
    lost_total += static_cast<int64_t>(lost);
  }
  lost_failure_->Add(lost_total);
  DecInflight(lost_total);
  for (auto& thread_ctx : machine->threads) {
    if (thread_ctx->thread.joinable()) thread_ctx->thread.join();
  }
  // The central slate cache dies with the machine: unflushed updates lost.
  machine->cache->Clear();
  // Crash model for the durability plane: buffered-but-unsynced changelog
  // appends are lost with the machine's memory (the durable prefix stays
  // on disk for replay); the dedup table is volatile and rebuilt from the
  // changelog at recovery.
  if (machine->changelog != nullptr) machine->changelog->CrashClose();
  if (machine->dedup != nullptr) machine->dedup->Clear();
  return Status::OK();
}

Status Muppet2Engine::RestartMachine(MachineId machine_id) {
  if (!started_) return Status::FailedPrecondition("engine not started");
  MachineCtx* machine = Ctx(machine_id);
  if (machine == nullptr) {
    return Status::InvalidArgument("no such machine hosted here");
  }
  if (!machine->crashed.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("machine not crashed");
  }

  // Recovery ordering (Master::ClearFailure doc): the machine must stay
  // unroutable — failed on every peer, absent from the ring's live view —
  // until its slates are restored. BeginRecovery marks the intermediate
  // state (no-op if no sender ever noticed the crash, in which case no
  // peer routed away from it either).
  (void)master_.BeginRecovery(machine_id);

  // FlusherLoop exits once it observes crashed; the worker threads were
  // joined by CrashMachine. Join the flusher before respawning either.
  if (machine->flusher.joinable()) machine->flusher.join();

  // Restore the durable state BEFORE any traffic can reach the machine:
  // reopen the changelog (continuing the lsn sequence past the durable
  // prefix), then replay the suffix past the manifest into the cache and
  // re-seed the dedup table. Only after that do the queues re-arm, the
  // transport endpoint come back, and the failure clear.
  if (machine->changelog != nullptr) {
    MUPPET_RETURN_IF_ERROR(machine->changelog->Open());
    MUPPET_RETURN_IF_ERROR(ReplayChangelog(machine));
  }

  for (auto& thread_ctx : machine->threads) {
    thread_ctx->queue->Restart();
  }
  machine->crashed.store(false, std::memory_order_release);
  for (auto& thread_ctx : machine->threads) {
    ThreadCtx* t = thread_ctx.get();
    t->thread = std::thread([this, machine, t] { WorkerLoop(machine, t); });
  }
  machine->flusher = std::thread([this, machine] { FlusherLoop(machine); });
  transport_->Restore(machine_id);
  master_.ClearFailure(machine_id);
  return Status::OK();
}

size_t Muppet2Engine::LargestQueueDepth() const {
  size_t largest = 0;
  for (const auto& machine : machines_) {
    if (machine == nullptr) continue;
    for (const auto& thread_ctx : machine->threads) {
      largest = std::max(largest, thread_ctx->queue->size());
    }
  }
  return largest;
}

EngineStats Muppet2Engine::Stats() const {
  EngineStats stats;
  stats.events_published = published_->Get();
  stats.events_processed = processed_->Get();
  stats.events_emitted = emitted_->Get();
  stats.events_lost_failure = lost_failure_->Get();
  stats.events_dropped_overflow = dropped_overflow_->Get();
  stats.events_redirected_overflow = redirected_overflow_->Get();
  stats.throttle_signals = throttle_.overflow_signals();
  stats.deadlocks_avoided = deadlocks_avoided_->Get();
  for (const auto& machine : machines_) {
    if (machine == nullptr) continue;
    stats.slate_cache_hits += machine->cache->hits();
    stats.slate_cache_misses += machine->cache->misses();
    stats.slate_cache_evictions += machine->cache->evictions();
  }
  stats.slate_store_reads = store_reads_->Get();
  stats.slate_store_writes = store_writes_->Get();
  stats.failures_detected = master_.failures_reported();
  stats.slatelog_appends = slatelog_appends_->Get();
  // synced_lsn counts durable records exactly (lsns are dense and survive
  // restarts), so the sum across machines is the synced-record total.
  for (const auto& machine : machines_) {
    if (machine != nullptr && machine->changelog != nullptr) {
      stats.slatelog_synced_records +=
          static_cast<int64_t>(machine->changelog->synced_lsn());
    }
  }
  stats.slatelog_replays = slatelog_replays_->Get();
  stats.slatelog_replayed_records = slatelog_replayed_->Get();
  stats.slatelog_torn_tails = slatelog_torn_tails_->Get();
  stats.slatelog_corrupt_segments = slatelog_corrupt_segments_->Get();
  stats.checkpoints = checkpoints_->Get();
  stats.events_deduped = deduped_->Get();
  stats.transport_messages_sent = transport_->messages_sent();
  stats.transport_messages_local = transport_->messages_local();
  stats.transport_frames_sent = transport_->frames_sent();
  stats.transport_bytes_sent = transport_->bytes_sent();
  stats.faults_dropped = transport_->messages_dropped();
  stats.faults_duplicated = transport_->messages_duplicated();
  stats.faults_held = transport_->messages_held();
  stats.latency_p50_us = latency_->Percentile(0.50);
  stats.latency_p95_us = latency_->Percentile(0.95);
  stats.latency_p99_us = latency_->Percentile(0.99);
  stats.latency_p999_us = latency_->Percentile(0.999);
  stats.latency_max_us = latency_->max();
  stats.latency_mean_us = latency_->Mean();
  stats.operator_instances = operator_instances_->Get();
  return stats;
}

std::vector<MachineStatus> Muppet2Engine::MachineStatuses() const {
  std::vector<MachineStatus> out;
  if (!started_) return out;
  for (const auto& machine : machines_) {
    if (machine == nullptr) continue;
    MachineStatus ms;
    ms.machine = machine->id;
    ms.crashed = machine->crashed.load(std::memory_order_acquire);
    ms.recovering = master_.IsRecovering(machine->id);
    for (const auto& thread_ctx : machine->threads) {
      ms.queue_depths.push_back(thread_ctx->queue->size());
    }
    ms.queue_capacity = options_.queue_capacity;
    ms.slate_cache_slates = machine->cache->size();
    ms.slate_cache_capacity = machine->cache->capacity();
    {
      MutexLock lock(machine->failed_mutex);
      ms.known_failed.assign(machine->failed.begin(), machine->failed.end());
    }
    for (const std::string& function : ring_.Functions()) {
      auto counts = ring_.OwnershipCounts(function);
      auto it = counts.find(machine->id);
      if (it != counts.end()) ms.ring_ownership[function] = it->second;
    }
    ms.consistency = ConsistencyName(options_.durability.consistency);
    if (machine->changelog != nullptr) {
      ms.slatelog_lsn = machine->changelog->last_lsn();
      ms.slatelog_synced_lsn = machine->changelog->synced_lsn();
      ms.slatelog_segments = machine->changelog->segment_count();
      ms.manifest_lsn =
          machine->manifest_lsn.load(std::memory_order_acquire);
      ms.replays = machine->replays.load(std::memory_order_acquire);
    }
    if (machine->dedup != nullptr) {
      ms.dedup_entries = machine->dedup->size();
      ms.dedup_capacity = machine->dedup->capacity();
    }
    out.push_back(std::move(ms));
  }
  return out;
}

void Muppet2Engine::HarvestSlo() {
  if (slo_ == nullptr) return;
  std::vector<TraceSink*> sinks;
  sinks.reserve(machines_.size());
  for (const auto& machine : machines_) {
    if (machine != nullptr) sinks.push_back(machine->trace_sink.get());
  }
  slo_->Harvest(sinks, clock_->Now(),
                inflight_.load(std::memory_order_acquire) == 0);
}

Timestamp Muppet2Engine::UptimeMicros() const {
  const Timestamp started = started_at_.load(std::memory_order_acquire);
  if (started == 0 && !started_.load(std::memory_order_acquire)) return 0;
  return clock_->Now() - started;
}

WatchdogSignals Muppet2Engine::GatherWatchdogSignals() const {
  WatchdogSignals signals;
  signals.now = clock_->Now();
  for (const auto& machine : machines_) {
    if (machine == nullptr) continue;
    WatchdogSignals::Machine m;
    m.machine = machine->id;
    m.crashed = machine->crashed.load(std::memory_order_acquire);
    m.recovering = master_.IsRecovering(machine->id);
    if (machine->changelog != nullptr) {
      m.changelog_lsn = machine->changelog->last_lsn();
      m.changelog_synced_lsn = machine->changelog->synced_lsn();
    }
    signals.machines.push_back(std::move(m));
    for (const auto& thread_ctx : machine->threads) {
      WatchdogSignals::Queue q;
      q.machine = machine->id;
      q.queue_index = thread_ctx->index;
      q.depth = thread_ctx->queue->size();
      q.capacity = thread_ctx->queue->capacity();
      q.pops = thread_ctx->queue->pops();
      signals.queues.push_back(q);
    }
  }
  signals.draining = drain_waiters_.load(std::memory_order_acquire) > 0;
  signals.inflight = inflight_.load(std::memory_order_acquire);
  return signals;
}

void Muppet2Engine::WatchdogLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    clock_->SleepFor(options_.watchdog.tick_micros);
    if (shutdown_.load(std::memory_order_acquire)) break;
    watchdog_->Tick(GatherWatchdogSignals());
    // Opportunistic SLO harvest on the same cadence, so burn windows
    // advance and settle without requiring a /sloz scrape.
    HarvestSlo();
  }
}

void Muppet2Engine::LoadManagerLoop() {
  int tick = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    clock_->SleepFor(options_.load_manager.tick_micros);
    if (shutdown_.load(std::memory_order_acquire)) break;
    // Pause handshake (seq_cst on purpose: the store of idle_ must be
    // ordered against the load of paused_, and the pauser's store of
    // paused_ against its load of idle_ — release/acquire alone permits
    // both sides to miss each other and a tick to run after
    // PauseLoadManagement returned).
    lm_idle_.store(false);
    if (lm_paused_.load()) {
      lm_idle_.store(true);
      continue;
    }
    LoadManagerTick(tick++);
    lm_idle_.store(true);
  }
  lm_idle_.store(true);
}

void Muppet2Engine::PauseLoadManagement() {
  if (!options_.load_manager.enabled) return;
  lm_paused_.store(true);
  while (!lm_idle_.load()) {
    // Settle spin against the load-manager thread: waits on lm_idle_,
    // not on simulated time, so routing it through Clock would deadlock
    // a paused virtual clock.
    // muppet-lint: allow(determinism): bounded real-time settle spin
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Muppet2Engine::LoadManagerTick(int tick) {
  const LoadManagerOptions& opt = options_.load_manager;

  // --- Gather signals: decayed heat aggregated across machines, hottest
  // queue occupancy, and the live split set.
  LoadSignals signals;
  std::map<std::pair<int32_t, Bytes>, int64_t> agg;
  for (const auto& machine : machines_) {
    if (machine == nullptr || machine->heat == nullptr ||
        machine->crashed.load(std::memory_order_acquire)) {
      continue;
    }
    machine->heat->Decay(opt.heat_decay);
    signals.sampled_total += machine->heat->sampled_total();
    for (HeatEntry& e : machine->heat->TopK(opt.heat.capacity)) {
      agg[{e.function_id, std::move(e.key)}] += e.count;
    }
  }
  signals.top.reserve(agg.size());
  for (const auto& [fk, count] : agg) {
    signals.top.push_back(HeatReading{fk.first, fk.second, count});
  }
  std::stable_sort(signals.top.begin(), signals.top.end(),
                   [](const HeatReading& a, const HeatReading& b) {
                     return a.count > b.count;
                   });
  for (const auto& machine : machines_) {
    if (machine == nullptr) continue;
    if (machine->crashed.load(std::memory_order_acquire)) continue;
    for (const auto& thread_ctx : machine->threads) {
      const double occ =
          static_cast<double>(thread_ctx->queue->size()) /
          static_cast<double>(std::max<size_t>(1, options_.queue_capacity));
      signals.max_queue_occupancy =
          std::max(signals.max_queue_occupancy, occ);
    }
  }
  std::vector<SplitTable::Entry> entries = split_table_.Entries();
  for (const auto& e : entries) {
    signals.active_splits.push_back(
        LoadSignals::ActiveSplit{e.function_id, e.key, e.state.draining});
  }

  LoadActions actions = lm_controller_->Tick(signals);

  // --- Throttle: occupancy-driven floor under the decaying overflow
  // signal (source-only, so deadlock-free; §5).
  throttle_.SetFloorDelayMicros(actions.floor_delay_micros);

  // --- Splits: only updaters that declared their computation associative
  // and commutative (and provided a merger) may split (§5, Example 6).
  for (const auto& split : actions.splits) {
    if (split.function_id < 0 ||
        static_cast<size_t>(split.function_id) >= ops_.size()) {
      continue;
    }
    const OperatorSpec& spec =
        *ops_[static_cast<size_t>(split.function_id)].spec;
    if (spec.kind != OperatorKind::kUpdater) continue;
    if (spec.updater_options.associativity !=
        Associativity::kAssociativeCommutative) {
      continue;
    }
    if (spec.updater_options.merger == nullptr) continue;
    if (split_table_.Split(split.function_id, split.key, split.shards)) {
      splits_installed_->Add();
    }
  }

  // --- Merges: flip cooled-off splits to draining...
  for (const auto& [mfid, mkey] : actions.merges) {
    if (split_table_.BeginMerge(mfid, mkey)) {
      merge_progress_[{mfid, mkey}] = MergeProgress{};
    }
  }

  // ...and drive the draining ones: one sweep round per tick per key,
  // finishing after merge_quiet_ticks consecutive rounds that found no
  // shard slate (one quiet round can race the last in-flight shard
  // events; two in a row cannot, since draining keys route unsplit).
  entries = split_table_.Entries();
  for (const auto& e : entries) {
    if (!e.state.draining) continue;
    MergeProgress& progress = merge_progress_[{e.function_id, e.key}];
    const int64_t found =
        split_table_.TakeMergeFound(e.function_id, e.key);
    if (progress.rounds > 0) {
      progress.quiet = found > 0 ? 0 : progress.quiet + 1;
    }
    if (progress.quiet >= opt.merge_quiet_ticks) {
      split_table_.Finish(e.function_id, e.key);
      merge_progress_.erase({e.function_id, e.key});
      merges_completed_->Add();
      continue;
    }
    InjectMergeSweeps(e.function_id, e.key, e.state);
    ++progress.rounds;
  }

  // --- Placement feedback, every placement_period_ticks.
  if (opt.placement_enabled && opt.placement_period_ticks > 0 &&
      (tick + 1) % opt.placement_period_ticks == 0) {
    ApplyPlacement();
  }
}

void Muppet2Engine::InjectMergeSweeps(int32_t function_id, const Bytes& key,
                                      const SplitTable::State& state) {
  const uint32_t round =
      merge_round_seq_.fetch_add(1, std::memory_order_relaxed);
  const OpInfo& op = ops_[static_cast<size_t>(function_id)];
  for (int shard = 0; shard < state.shards; ++shard) {
    const Bytes shard_key = MakeSplitKey(key, shard);
    RoutedEvent re;
    re.function_id = function_id;
    re.work = CombineWork(op.name_hash, Fnv1a64(shard_key));
    re.shard = shard;
    re.split_epoch = round;  // merge round id, not a split epoch
    re.ctl = kCtlMergeSweep;
    re.event.key = key;
    re.event.seq = NextSeq();
    // The publisher machine (lowest hosted id; §4.1, never a chaos crash
    // victim) originates engine-wide control traffic.
    SendControl(publish_machine_, /*sender_work=*/0, shard_key,
                std::move(re));
  }
}

void Muppet2Engine::ApplyPlacement() {
  const LoadManagerOptions& opt = options_.load_manager;
  PlacementAdvisor advisor(options_.num_machines,
                           opt.placement_balance_slack);
  for (const auto& machine : machines_) {
    if (machine == nullptr || machine->heat == nullptr) continue;
    for (const HeatEntry& e : machine->heat->TopK(opt.heat.capacity)) {
      if (e.function_id < 0 ||
          static_cast<size_t>(e.function_id) >= ops_.size()) {
        continue;
      }
      advisor.ObserveFlow(machine->id,
                          ops_[static_cast<size_t>(e.function_id)].spec->name,
                          e.key, e.count);
    }
  }
  if (advisor.total_events() == 0) return;

  PlacementAdvisor::Analysis analysis;
  std::vector<PlacementAdvisor::Assignment> proposal =
      advisor.Propose(&analysis);
  std::stable_sort(
      proposal.begin(), proposal.end(),
      [](const PlacementAdvisor::Assignment& a,
         const PlacementAdvisor::Assignment& b) { return a.events > b.events; });
  ring_.ClearAllOverrides();
  size_t applied = 0;
  for (const auto& a : proposal) {
    if (applied >= opt.max_overrides) break;
    // Split keys route per shard; pinning their base key would fight the
    // split. Skip them.
    const int32_t fid = op_names_.Find(a.function);
    SplitTable::State state;
    if (fid >= 0 && split_table_.Lookup(fid, a.key, &state)) continue;
    if (ring_.SetOverride(a.function, a.key, a.machine)) ++applied;
  }
}

std::vector<HotKeyInfo> Muppet2Engine::HotKeys() const {
  std::vector<HotKeyInfo> out;
  if (!started_) return out;
  std::map<std::pair<int32_t, Bytes>, int64_t> agg;
  for (const auto& machine : machines_) {
    if (machine == nullptr || machine->heat == nullptr) continue;
    for (HeatEntry& e :
         machine->heat->TopK(options_.load_manager.heat.capacity)) {
      agg[{e.function_id, std::move(e.key)}] += e.count;
    }
  }
  // Splits stay on the panel even when their heat has decayed away.
  for (const auto& e : split_table_.Entries()) {
    agg.emplace(std::make_pair(e.function_id, e.key), 0);
  }
  for (const auto& [fk, count] : agg) {
    if (fk.first < 0 || static_cast<size_t>(fk.first) >= ops_.size()) {
      continue;
    }
    HotKeyInfo info;
    info.function = ops_[static_cast<size_t>(fk.first)].spec->name;
    info.key = fk.second;
    info.sampled_count = count;
    SplitTable::State state;
    if (split_table_.Lookup(fk.first, fk.second, &state)) {
      info.split = true;
      info.shards = state.shards;
      info.split_epoch = state.epoch;
      info.draining = state.draining;
    }
    out.push_back(std::move(info));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const HotKeyInfo& a, const HotKeyInfo& b) {
                     return a.sampled_count > b.sampled_count;
                   });
  return out;
}

void Muppet2Engine::RegisterCallbackMetrics() {
  // Scrape hygiene: a constant-1 gauge whose labels carry the build and
  // config identity, plus engine uptime — what muppet-doctor keys off to
  // tell apart machines running different builds or knobs.
  metrics_.RegisterCallback(
      "muppet_build_info",
      {{"version", kMuppetVersion},
       {"engine", "muppet2"},
       {"consistency", ConsistencyName(options_.durability.consistency)}},
      MetricType::kGauge, [] { return 1; });
  metrics_.RegisterCallback(
      "muppet_uptime_seconds", {}, MetricType::kGauge,
      [this] { return UptimeMicros() / kMicrosPerSecond; });
  // Watchdog incident families (DESIGN.md §14 incident taxonomy).
  for (int k = 0; k < kNumIncidentKinds; ++k) {
    const IncidentKind kind = static_cast<IncidentKind>(k);
    metrics_.RegisterCallback(
        "muppet_watchdog_incidents_total", {{"kind", IncidentKindName(kind)}},
        MetricType::kCounter,
        [this, kind] { return incident_log_.opened(kind); });
  }
  metrics_.RegisterCallback(
      "muppet_watchdog_open_incidents", {}, MetricType::kGauge,
      [this] { return static_cast<int64_t>(incident_log_.open_count()); });

  // Transport-level counters: owned by the transport, surfaced here so
  // /metrics carries the PR-1 datapath and PR-3 fault counters.
  metrics_.RegisterCallback(
      "muppet_transport_messages_sent_total", {}, MetricType::kCounter,
      [this] { return transport_->messages_sent(); });
  metrics_.RegisterCallback(
      "muppet_transport_messages_local_total", {}, MetricType::kCounter,
      [this] { return transport_->messages_local(); });
  metrics_.RegisterCallback(
      "muppet_transport_messages_dropped_total", {}, MetricType::kCounter,
      [this] { return transport_->messages_dropped(); });
  metrics_.RegisterCallback(
      "muppet_transport_messages_declined_total", {}, MetricType::kCounter,
      [this] { return transport_->messages_declined(); });
  metrics_.RegisterCallback("muppet_transport_frames_sent_total", {},
                            MetricType::kCounter,
                            [this] { return transport_->frames_sent(); });
  metrics_.RegisterCallback("muppet_transport_bytes_sent_total", {},
                            MetricType::kCounter,
                            [this] { return transport_->bytes_sent(); });
  metrics_.RegisterCallback(
      "muppet_faults_duplicated_total", {}, MetricType::kCounter,
      [this] { return transport_->messages_duplicated(); });
  metrics_.RegisterCallback("muppet_faults_held_total", {},
                            MetricType::kCounter,
                            [this] { return transport_->messages_held(); });
  metrics_.RegisterCallback(
      "muppet_inflight_events", {}, MetricType::kGauge,
      [this] { return inflight_.load(std::memory_order_acquire); });
  // Load-management plane: the live source-pacing delay (decayed overflow
  // signal clamped below by the occupancy floor), the floor itself, the
  // live split count, and the ring's placement overrides.
  metrics_.RegisterCallback(
      "muppet_throttle_delay_micros", {}, MetricType::kGauge,
      [this] {
        return static_cast<int64_t>(throttle_.CurrentDelayMicros());
      });
  metrics_.RegisterCallback(
      "muppet_throttle_floor_micros", {}, MetricType::kGauge,
      [this] {
        return static_cast<int64_t>(throttle_.floor_delay_micros());
      });
  metrics_.RegisterCallback(
      "muppet_active_splits", {}, MetricType::kGauge,
      [this] { return static_cast<int64_t>(split_table_.size()); });
  metrics_.RegisterCallback(
      "muppet_ring_overrides", {}, MetricType::kGauge,
      [this] { return static_cast<int64_t>(ring_.override_count()); });

  for (const auto& machine_ptr : machines_) {
    if (machine_ptr == nullptr) continue;
    MachineCtx* machine = machine_ptr.get();
    const MetricLabels m_label = {{"machine", std::to_string(machine->id)}};
    metrics_.RegisterCallback("muppet_machine_up", m_label,
                              MetricType::kGauge, [machine] {
                                return machine->crashed.load(
                                           std::memory_order_acquire)
                                           ? 0
                                           : 1;
                              });
    metrics_.RegisterCallback(
        "muppet_slate_cache_slates", m_label, MetricType::kGauge,
        [machine] { return static_cast<int64_t>(machine->cache->size()); });
    metrics_.RegisterCallback("muppet_slate_cache_capacity", m_label,
                              MetricType::kGauge, [machine] {
                                return static_cast<int64_t>(
                                    machine->cache->capacity());
                              });
    metrics_.RegisterCallback(
        "muppet_slate_cache_hits_total", m_label, MetricType::kCounter,
        [machine] { return machine->cache->hits(); });
    metrics_.RegisterCallback(
        "muppet_slate_cache_misses_total", m_label, MetricType::kCounter,
        [machine] { return machine->cache->misses(); });
    if (machine->heat != nullptr) {
      HeatTracker* heat = machine->heat.get();
      metrics_.RegisterCallback(
          "muppet_heat_samples_total", m_label, MetricType::kCounter,
          [heat] { return heat->samples_recorded(); });
    }
    if (machine->changelog != nullptr) {
      SlateChangelog* changelog = machine->changelog.get();
      metrics_.RegisterCallback(
          "muppet_slatelog_lsn", m_label, MetricType::kGauge, [changelog] {
            return static_cast<int64_t>(changelog->last_lsn());
          });
      metrics_.RegisterCallback(
          "muppet_slatelog_synced_lsn", m_label, MetricType::kGauge,
          [changelog] {
            return static_cast<int64_t>(changelog->synced_lsn());
          });
      metrics_.RegisterCallback(
          "muppet_slatelog_segments", m_label, MetricType::kGauge,
          [changelog] {
            return static_cast<int64_t>(changelog->segment_count());
          });
      metrics_.RegisterCallback(
          "muppet_slatelog_manifest_lsn", m_label, MetricType::kGauge,
          [machine] {
            return static_cast<int64_t>(
                machine->manifest_lsn.load(std::memory_order_acquire));
          });
      metrics_.RegisterCallback(
          "muppet_slatelog_machine_replays_total", m_label,
          MetricType::kCounter, [machine] {
            return machine->replays.load(std::memory_order_acquire);
          });
    }
    if (machine->dedup != nullptr) {
      DedupTable* dedup = machine->dedup.get();
      metrics_.RegisterCallback(
          "muppet_dedup_entries", m_label, MetricType::kGauge,
          [dedup] { return static_cast<int64_t>(dedup->size()); });
    }
    for (const auto& thread_ptr : machine->threads) {
      ThreadCtx* thread = thread_ptr.get();
      MetricLabels qt_label = m_label;
      qt_label.emplace_back("thread", std::to_string(thread->index));
      metrics_.RegisterCallback(
          "muppet_queue_depth", qt_label, MetricType::kGauge,
          [thread] { return static_cast<int64_t>(thread->queue->size()); });
    }
  }
}

}  // namespace muppet
