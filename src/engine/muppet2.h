// Muppet 2.0 (§4.5). Per machine: a dedicated pool of worker threads, any
// of which can run any map or update function; one shared operator
// instance per function; a single central slate cache; a background
// flusher thread for store I/O; and two-choice event dispatch — each
// incoming event hashes to a primary and a secondary queue and is placed
// on the one already processing its (function, key), else on the primary
// unless the secondary is significantly shorter. This bounds slate
// contention to two threads per slate while relieving hotspots.
//
// Datapath (the §4.5 "no serialization within the machine" argument,
// implemented literally):
//  * stream and function names are interned into dense ids at Start();
//    routed events carry the id plus a work hash computed exactly once;
//  * an event routed to the sender's own machine moves straight into
//    dispatch — no wire encode, no transport hop, no decode;
//  * dispatch locks at most the two candidate queues (sticky-owner check
//    via per-thread atomics, lock-free queue size reads) — there is no
//    per-machine dispatch lock;
//  * cross-machine events for one destination are coalesced into a single
//    batch frame, and workers pop events in batches, so both sides of a
//    remote hop amortize per-message overhead and condvar wakeups.
#ifndef MUPPET_ENGINE_MUPPET2_H_
#define MUPPET_ENGINE_MUPPET2_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/trace.h"
#include "core/hash_ring.h"
#include "core/heat.h"
#include "core/intern.h"
#include "core/keysplit.h"
#include "core/slate_cache.h"
#include "engine/engine.h"
#include "engine/master.h"
#include "engine/queue.h"

namespace muppet {

class Muppet2Engine final : public Engine {
 public:
  Muppet2Engine(const AppConfig& config, EngineOptions options);
  ~Muppet2Engine() override;

  Status Start() override;
  Status Publish(const std::string& stream, BytesView key, BytesView value,
                 Timestamp ts) override;
  Status Drain() override;
  Status Stop() override;
  Result<Bytes> FetchSlate(const std::string& updater,
                           BytesView key) override;
  Status CrashMachine(MachineId machine) override;
  Status RestartMachine(MachineId machine) override;
  EngineStats Stats() const override;
  const AppConfig& config() const override { return config_; }

  // Observability plane (engine.h).
  MetricsRegistry* metrics() override { return &metrics_; }
  TraceSink* trace_sink(MachineId machine) override {
    return SinkFor(machine);
  }
  std::vector<MachineStatus> MachineStatuses() const override;
  std::vector<HotKeyInfo> HotKeys() const override;
  void PauseLoadManagement() override;
  int64_t InflightEvents() const override {
    return inflight_.load(std::memory_order_acquire);
  }
  SloTracker* slo() override { return slo_.get(); }
  void HarvestSlo() override;
  const IncidentLog* incidents() const override { return &incident_log_; }
  Timestamp UptimeMicros() const override;

  // Observe events published to `stream` (register before Start()).
  void TapStream(const std::string& stream,
                 std::function<void(const Event&)> tap);

  // Test/bench introspection.
  Transport& transport() { return *transport_; }
  Master& master() { return master_; }
  ThrottleGovernor& throttle() { return throttle_; }
  // Events that went to their secondary rather than primary queue.
  int64_t secondary_dispatches() const { return secondary_dispatch_->Get(); }
  // Peak distinct threads that ever held the same slate concurrently is
  // bounded by 2 by construction; this counts lock contentions observed.
  int64_t slate_contentions() const { return slate_contention_->Get(); }
  // Same-machine deliveries that took the zero-serialization fast path.
  int64_t local_fast_path_deliveries() const {
    return transport_->messages_local();
  }
  // Status endpoint data (§4.5: "basic status information (such as the
  // event count of the largest event queues)").
  size_t LargestQueueDepth() const;
  // Live split registry (test/bench introspection; the load manager is
  // the only writer during normal operation).
  SplitTable& split_table() { return split_table_; }
  // Keys split / merges completed by the load manager.
  int64_t key_splits() const { return splits_installed_->Get(); }
  int64_t key_merges() const { return merges_completed_->Get(); }
  // The failed-machine set as known on machine `m` (chaos harness asserts
  // every live machine's view converges to the master's after a drain).
  std::set<MachineId> KnownFailedOn(MachineId m) const {
    return FailedSetFor(m);
  }

  // Lock-hierarchy levels for the engine's own locks (pinned by
  // tests/common/sync_test.cc against DESIGN.md). The slate stripe is the
  // outermost lock in the system: an updater's publishes — and so queue,
  // transport, cache, and store acquisitions — all happen under it.
  static constexpr LockLevel kSlateStripeLockLevel = LockLevel::kSlateStripe;
  static constexpr LockLevel kTapsLockLevel = LockLevel::kTaps;
  static constexpr LockLevel kFailedSetLockLevel = LockLevel::kFailedSet;
  static constexpr LockLevel kDrainLockLevel = LockLevel::kDrain;
  static constexpr LockLevel kMergeDedupeLockLevel = LockLevel::kMergeDedupe;

 private:
  static constexpr size_t kSlateLockStripes = 64;
  // Max events a worker drains from its queue per lock acquisition.
  static constexpr size_t kWorkerPopBatch = 32;

  struct ThreadCtx {
    int index = 0;
    std::unique_ptr<EventQueue> queue;
    std::thread thread;
    // Hash of the (function, key) currently being processed; 0 = idle.
    std::atomic<uint64_t> current{0};
  };

  // A Mutex pre-leveled for the slate stripes so the stripe array can be
  // default-constructed.
  struct SlateStripeMutex : Mutex {
    SlateStripeMutex() : Mutex(kSlateStripeLockLevel) {}
  };

  struct MachineCtx {
    MachineId id = kInvalidMachine;
    std::vector<std::unique_ptr<ThreadCtx>> threads;
    std::unique_ptr<SlateCache> cache;  // the central cache
    // One shared instance per function ("constructed only once and shared
    // by all threads"), indexed by interned function id; the slot of the
    // other kind is null.
    std::vector<std::unique_ptr<Mapper>> mappers;
    std::vector<std::unique_ptr<Updater>> updaters;
    // Striped per-slate locks: the two contending threads serialize here.
    std::array<SlateStripeMutex, kSlateLockStripes> slate_locks;
    mutable Mutex failed_mutex{kFailedSetLockLevel};
    std::set<MachineId> failed MUPPET_GUARDED_BY(failed_mutex);
    // Lock-free emptiness check so the hot path skips the failed-set copy.
    std::atomic<size_t> failed_count{0};
    std::atomic<bool> crashed{false};
    std::thread flusher;
    // Per-machine trace ring (null when tracing is disabled).
    std::unique_ptr<TraceSink> trace_sink;
    // Heat sketch fed by this machine's dispatches (null when the load
    // manager is disabled).
    std::unique_ptr<HeatTracker> heat;
    // Merge-delta dedupe: the fault injector may duplicate a frame, and
    // folding the same shard slate into the base key twice would
    // overcount. Keyed by hash of (function, base key, shard, round).
    mutable Mutex merge_dedupe_mutex{kMergeDedupeLockLevel};
    std::set<uint64_t> merge_applied MUPPET_GUARDED_BY(merge_dedupe_mutex);
    // Durability plane (engine/slatelog.h); both null in kLossy mode,
    // dedup additionally null below kExactlyOnce.
    std::unique_ptr<SlateChangelog> changelog;
    std::unique_ptr<DedupTable> dedup;
    // Checkpoint cursor as of the last checkpoint or replay.
    std::atomic<uint64_t> manifest_lsn{0};
    // Changelog appends since the last checkpoint (cadence trigger, read
    // by the flusher thread).
    std::atomic<uint64_t> appends_since_checkpoint{0};
    // Recovery replays completed on this machine (cold-start included).
    std::atomic<int64_t> replays{0};
  };

  // Interned per-function routing state, indexed by function id.
  struct OpInfo {
    const OperatorSpec* spec = nullptr;
    // Fnv1a64(name), combined with the event's key hash into the work
    // hash — the function half is hashed once per run, not per event.
    uint64_t name_hash = 0;
  };

  class DirectUtilities;

  void WorkerLoop(MachineCtx* machine, ThreadCtx* thread);
  void FlusherLoop(MachineCtx* machine);
  Status ProcessOne(MachineCtx* machine, const RoutedEvent& re);

  // --- Durability plane (engine/slatelog.h; DESIGN.md §12).
  bool durable() const {
    return options_.durability.consistency != Consistency::kLossy;
  }
  bool exactly_once() const {
    return options_.durability.consistency == Consistency::kExactlyOnce;
  }
  // Append one changelog record for a slate write/delete/mark on
  // `machine`. No-op in kLossy mode; append failures are logged, never
  // fail the update (durability degrades, the data path does not stop).
  void AppendSlateLog(MachineCtx* machine, SlateLogKind kind,
                      const std::string& updater, BytesView slate_key,
                      BytesView value, const Event& event, uint64_t work,
                      uint64_t dedup);
  // Flusher-thread checkpoint pass: sync the changelog tail; when the
  // cadence fires (and a slate store is configured) flush dirty slates,
  // persist + mirror the manifest, rotate the segment and drop covered
  // history.
  void MaybeCheckpoint(MachineCtx* machine);
  // Recovery replay: restore the machine's slates from the changelog
  // suffix past the manifest cursor and re-seed the dedup table with the
  // most recent event identities (the epoch cut). Must complete before
  // the machine becomes routable again (Master::BeginRecovery doc).
  Status ReplayChangelog(MachineCtx* machine);

  // Control-plane events (merge sweeps/deltas), intercepted by ProcessOne
  // before the operator would run.
  Status ProcessControl(MachineCtx* machine, const RoutedEvent& re);

  // An event whose shard routing went stale (the split epoch moved on
  // while it was in flight) re-enters delivery under its base key instead
  // of resurrecting a drained shard slate. Counts neither emitted nor
  // processed — like an overflow redirect, the logical event settles once,
  // wherever it finally lands.
  void ReshardToBase(MachineCtx* machine, const RoutedEvent& re);

  // Inject one engine-manufactured control event, routed by `route_key`
  // over the live ring. Counts emitted_ (the consumer counts processed_),
  // so chaos conservation accounting stays exact.
  void SendControl(MachineId from, uint64_t sender_work, BytesView route_key,
                   RoutedEvent re);

  // Stall-watchdog control loop (one engine-wide thread) and its signal
  // collection pass — all lock-free reads (queue sizes/pops, inflight,
  // changelog cursors), so the watchdog never blocks the data path.
  void WatchdogLoop();
  WatchdogSignals GatherWatchdogSignals() const;

  // Self-tuning load-management control loop (one engine-wide thread).
  void LoadManagerLoop();
  void LoadManagerTick(int tick);
  // One merge-sweep round: a kCtlMergeSweep per shard of a draining key.
  void InjectMergeSweeps(int32_t function_id, const Bytes& key,
                         const SplitTable::State& state);
  // Placement feedback: rebuild ring overrides from the heat sketches.
  void ApplyPlacement();

  // Two-choice dispatch of an arrived event into one of the machine's
  // thread queues; locks at most the two candidate queues. On success *re
  // is consumed; on error it is left intact for the caller's overflow
  // handling. ResourceExhausted when both candidate queues are full.
  Status Dispatch(MachineCtx* machine, RoutedEvent* re);

  // Legacy name-addressed single-event payloads (Muppet 1.0 wire format).
  // `from` distinguishes in-process senders (which pre-charged inflight_)
  // from remote processes (the receiver charges it here).
  Status HandleIncoming(MachineId from, MachineId to, BytesView payload);
  // Id-addressed batch frames — the 2.0 cross-machine format. *accepted
  // is in-out (the Transport::BatchHandler resume contract): events below
  // the entry value were accepted by an earlier partial delivery of this
  // same frame and are skipped, not re-applied.
  Status HandleIncomingFrame(MachineId from, MachineId to, BytesView frame,
                             size_t count, size_t* accepted);

  // Fan an event out to its stream's subscribers: same-machine targets go
  // straight to Dispatch (zero serialization); remote targets are grouped
  // per destination and flushed as batch frames.
  void DeliverEvent(MachineId from, uint64_t sender_work, Event event);

  // Same-machine delivery with overflow-policy handling; no transport hop.
  void LocalDeliver(MachineId machine, uint64_t sender_work, RoutedEvent re);

  // One coalesced frame to a remote machine; declined suffixes fall back
  // to the per-event path.
  void FlushRemoteBatch(MachineId from, uint64_t sender_work, MachineId to,
                        std::vector<RoutedEvent> batch);

  // Per-event remote send with the §4.3 overflow/retry policy.
  void RemoteDeliverOne(MachineId from, uint64_t sender_work, MachineId to,
                        RoutedEvent re);

  // `source`, when non-null, reports where the slate came from for the
  // slate-fetch span note: "hit", "absent_cached", "store", "store_absent".
  Status FetchSlateOnMachine(MachineCtx* machine,
                             const std::string& updater, BytesView key,
                             Bytes* slate, const char** source = nullptr);

  // FetchSlate helper: route `key` over the live ring and read the owning
  // machine's cache/store.
  Status FetchRoutedSlate(const std::string& updater, BytesView key,
                          const std::set<MachineId>& failed, Bytes* slate);

  TraceSink* SinkFor(MachineId machine) const {
    if (machine < 0 || machine >= static_cast<MachineId>(machines_.size()) ||
        machines_[static_cast<size_t>(machine)] == nullptr) {
      return nullptr;
    }
    return machines_[static_cast<size_t>(machine)]->trace_sink.get();
  }

  // True when machine `m` runs in THIS process (has a MachineCtx). With
  // the default single-process deployment every id is hosted; under
  // muppetd only the slots named in options_.hosted_machines are.
  bool Hosted(MachineId m) const {
    return m >= 0 && m < static_cast<MachineId>(machines_.size()) &&
           machines_[static_cast<size_t>(m)] != nullptr;
  }
  MachineCtx* Ctx(MachineId m) const {
    return Hosted(m) ? machines_[static_cast<size_t>(m)].get() : nullptr;
  }

  // Register the callback-backed gauges/counters (queue depths, cache
  // occupancy, transport and fault counters) once the cluster is built.
  void RegisterCallbackMetrics();

  std::set<MachineId> FailedSetFor(MachineId machine) const;
  void RunTaps(const Event& event);
  uint64_t NextSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  // Decrement in-flight count, waking Drain() when it reaches zero.
  void DecInflight(int64_t n);

  static uint64_t WorkHash(const std::string& function, BytesView key);
  // Work hash from precomputed halves; never returns 0 ("idle").
  static uint64_t CombineWork(uint64_t function_hash, uint64_t key_hash);

  const AppConfig& config_;
  EngineOptions options_;
  Clock* clock_;
  // Owned only in the single-process default; with an external
  // transport_backend the unique_ptr stays null and transport_ aliases
  // the caller's backend.
  std::unique_ptr<Transport> owned_transport_;
  Transport* transport_ = nullptr;
  Master master_;
  HashRing ring_;
  ThrottleGovernor throttle_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Sized num_machines; slots for machines hosted by other processes stay
  // null (see Hosted()).
  std::vector<std::unique_ptr<MachineCtx>> machines_;
  // Where external Publish() and engine-manufactured control events enter
  // the cluster: the lowest hosted machine id (0 in single-process runs).
  MachineId publish_machine_ = 0;

  // Built once at Start(), read-only afterwards (lock-free on hot path).
  NameInterner op_names_;
  NameInterner stream_names_;
  std::vector<OpInfo> ops_;
  // stream id -> subscriber function ids (sorted by name, deterministic).
  std::vector<std::vector<uint32_t>> subscribers_;

  std::atomic<uint64_t> seq_{1};
  std::atomic<int64_t> inflight_{0};
  std::atomic<bool> shutdown_{false};

  Mutex drain_mutex_{kDrainLockLevel};
  CondVar drain_cv_;

  std::atomic<bool> has_taps_{false};
  mutable SharedMutex taps_mutex_{kTapsLockLevel};
  std::map<std::string, std::vector<std::function<void(const Event&)>>> taps_
      MUPPET_GUARDED_BY(taps_mutex_);

  // --- Self-tuning load management (engine/load_manager.h). The split
  // table is read on the dispatch path (lock-free fast path when no key
  // is split); the controller and the merge bookkeeping below belong to
  // the single load-manager thread.
  SplitTable split_table_;
  std::unique_ptr<LoadController> lm_controller_;
  std::thread lm_thread_;
  // Pause handshake: PauseLoadManagement() raises paused_ and waits for
  // idle_ so no tick (or its control-event injection) is mid-flight.
  std::atomic<bool> lm_paused_{false};
  std::atomic<bool> lm_idle_{true};
  // Merge rounds get globally unique ids (carried in the control events'
  // split_epoch field) so delta dedupe distinguishes rounds.
  std::atomic<uint32_t> merge_round_seq_{1};
  // Load-manager-thread-only: per draining key, sweep rounds injected and
  // consecutive quiet (nothing-found) ticks.
  struct MergeProgress {
    int rounds = 0;
    int quiet = 0;
  };
  // muppet-lint: allow(guarded): confined to the load-manager thread
  std::map<std::pair<int32_t, Bytes>, MergeProgress> merge_progress_;

  // --- Health & SLO plane (DESIGN.md §14).
  std::unique_ptr<SloTracker> slo_;
  IncidentLog incident_log_;
  std::unique_ptr<Watchdog> watchdog_;
  std::thread wd_thread_;
  // Live Drain() waiters — the watchdog's drain-stall signal.
  std::atomic<int> drain_waiters_{0};
  // Engine clock reading at Start(); 0 before Start().
  std::atomic<Timestamp> started_at_{0};

  // Shared registry backing /metrics; the counters below are registry
  // children so the admin endpoints and EngineStats read the same cells.
  // Declared before the pointers (initialization order).
  MetricsRegistry metrics_;
  Counter* published_;
  Counter* processed_;
  Counter* emitted_;
  Counter* lost_failure_;
  Counter* dropped_overflow_;
  Counter* redirected_overflow_;
  Counter* deadlocks_avoided_;
  Counter* store_reads_;
  Counter* store_writes_;
  Counter* operator_instances_;
  Counter* secondary_dispatch_;
  Counter* slate_contention_;
  Counter* splits_installed_;
  Counter* merges_completed_;
  Counter* slatelog_appends_;
  Counter* slatelog_replays_;
  Counter* slatelog_replayed_;
  Counter* slatelog_torn_tails_;
  Counter* slatelog_corrupt_segments_;
  Counter* checkpoints_;
  Counter* deduped_;
  Histogram* latency_;
  // Time events spend queued before a worker pops them (recorded for
  // every event; the bench's before/after-split p99 comparison).
  Histogram* queue_wait_;
  // Per-operator processed counters, indexed by interned function id
  // (built at Start(), read-only afterwards).
  std::vector<Counter*> op_processed_;
  // Per-input-stream published counters (built at Start()).
  std::map<std::string, Counter*> stream_published_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_MUPPET2_H_
