// Muppet 2.0 (§4.5). Per machine: a dedicated pool of worker threads, any
// of which can run any map or update function; one shared operator
// instance per function; a single central slate cache; a background
// flusher thread for store I/O; and two-choice event dispatch — each
// incoming event hashes to a primary and a secondary queue and is placed
// on the one already processing its (function, key), else on the primary
// unless the secondary is significantly shorter. This bounds slate
// contention to two threads per slate while relieving hotspots.
#ifndef MUPPET_ENGINE_MUPPET2_H_
#define MUPPET_ENGINE_MUPPET2_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/hash_ring.h"
#include "core/slate_cache.h"
#include "engine/engine.h"
#include "engine/master.h"
#include "engine/queue.h"

namespace muppet {

class Muppet2Engine final : public Engine {
 public:
  Muppet2Engine(const AppConfig& config, EngineOptions options);
  ~Muppet2Engine() override;

  Status Start() override;
  Status Publish(const std::string& stream, BytesView key, BytesView value,
                 Timestamp ts) override;
  Status Drain() override;
  Status Stop() override;
  Result<Bytes> FetchSlate(const std::string& updater,
                           BytesView key) override;
  Status CrashMachine(MachineId machine) override;
  EngineStats Stats() const override;
  const AppConfig& config() const override { return config_; }

  // Observe events published to `stream` (register before Start()).
  void TapStream(const std::string& stream,
                 std::function<void(const Event&)> tap);

  // Test/bench introspection.
  Transport& transport() { return transport_; }
  Master& master() { return master_; }
  ThrottleGovernor& throttle() { return throttle_; }
  // Events that went to their secondary rather than primary queue.
  int64_t secondary_dispatches() const { return secondary_dispatch_.Get(); }
  // Peak distinct threads that ever held the same slate concurrently is
  // bounded by 2 by construction; this counts lock contentions observed.
  int64_t slate_contentions() const { return slate_contention_.Get(); }
  // Status endpoint data (§4.5: "basic status information (such as the
  // event count of the largest event queues)").
  size_t LargestQueueDepth() const;

 private:
  static constexpr size_t kSlateLockStripes = 64;

  struct ThreadCtx {
    int index = 0;
    std::unique_ptr<EventQueue> queue;
    std::thread thread;
    // Hash of the (function, key) currently being processed; 0 = idle.
    std::atomic<uint64_t> current{0};
  };

  struct MachineCtx {
    MachineId id = kInvalidMachine;
    std::vector<std::unique_ptr<ThreadCtx>> threads;
    std::unique_ptr<SlateCache> cache;  // the central cache
    // One shared instance per function ("constructed only once and shared
    // by all threads").
    std::map<std::string, std::unique_ptr<Mapper>> mappers;
    std::map<std::string, std::unique_ptr<Updater>> updaters;
    // Serializes the two-queue pick so an event locks at most two queues.
    std::mutex dispatch_mutex;
    // Striped per-slate locks: the two contending threads serialize here.
    std::array<std::mutex, kSlateLockStripes> slate_locks;
    mutable std::mutex failed_mutex;
    std::set<MachineId> failed;
    std::atomic<bool> crashed{false};
    std::thread flusher;
  };

  class DirectUtilities;

  void WorkerLoop(MachineCtx* machine, ThreadCtx* thread);
  void FlusherLoop(MachineCtx* machine);
  Status ProcessOne(MachineCtx* machine, const RoutedEvent& re);

  // Two-choice dispatch of an arrived event into one of the machine's
  // thread queues. ResourceExhausted when both candidate queues are full.
  Status Dispatch(MachineCtx* machine, RoutedEvent re);

  Status HandleIncoming(MachineId to, BytesView payload);
  void DeliverEvent(MachineId from, uint64_t sender_work, const Event& event);
  void SendToMachine(MachineId from, uint64_t sender_work,
                     const std::string& function, const Event& event);

  Status FetchSlateOnMachine(MachineCtx* machine,
                             const std::string& updater, BytesView key,
                             Bytes* slate);

  std::set<MachineId> FailedSetFor(MachineId machine) const;
  void RunTaps(const Event& event);
  uint64_t NextSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  static uint64_t WorkHash(const std::string& function, BytesView key);

  const AppConfig& config_;
  EngineOptions options_;
  Clock* clock_;
  Transport transport_;
  Master master_;
  HashRing ring_;
  ThrottleGovernor throttle_;

  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::unique_ptr<MachineCtx>> machines_;

  std::atomic<uint64_t> seq_{1};
  std::atomic<int64_t> inflight_{0};
  std::atomic<bool> shutdown_{false};

  mutable std::shared_mutex taps_mutex_;
  std::map<std::string, std::vector<std::function<void(const Event&)>>> taps_;

  Counter published_;
  Counter processed_;
  Counter emitted_;
  Counter lost_failure_;
  Counter dropped_overflow_;
  Counter redirected_overflow_;
  Counter deadlocks_avoided_;
  Counter store_reads_;
  Counter store_writes_;
  Counter operator_instances_;
  Counter secondary_dispatch_;
  Counter slate_contention_;
  Histogram latency_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_MUPPET2_H_
