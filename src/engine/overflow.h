// Queue-overflow policies (§4.3). When worker B's queue declines an event,
// worker A's overflow mechanism takes one of three actions the paper
// enumerates: drop (and log) the event; redirect it to a designated
// "overflow" stream whose subscribers implement degraded service; or slow
// the pace of event passing (source throttling, §5).
#ifndef MUPPET_ENGINE_OVERFLOW_H_
#define MUPPET_ENGINE_OVERFLOW_H_

#include <string>

#include "common/metrics.h"

namespace muppet {

enum class OverflowPolicy : uint8_t {
  kDrop,            // drop + log (the default; latency over completeness)
  kOverflowStream,  // redirect to `overflow_stream` (degraded service)
  kThrottle,        // signal the source-throttling governor
};

struct OverflowOptions {
  OverflowPolicy policy = OverflowPolicy::kDrop;
  // Target stream for kOverflowStream. Its subscribers should be cheap
  // ("substituting expensive operations ... with approximate operations").
  std::string overflow_stream;
};

// Shared counters so engines and benches report consistent numbers.
struct OverflowStats {
  Counter dropped;        // events dropped by policy
  Counter redirected;     // events diverted to the overflow stream
  Counter throttle_hits;  // overflow signals forwarded to the governor
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_OVERFLOW_H_
