#include "engine/placement.h"

#include <algorithm>
#include <numeric>

namespace muppet {

PlacementAdvisor::PlacementAdvisor(int num_machines, double balance_slack)
    : num_machines_(num_machines < 1 ? 1 : num_machines),
      balance_slack_(balance_slack < 0 ? 0 : balance_slack) {}

void PlacementAdvisor::ObserveFlow(MachineId source_machine,
                                   const std::string& function, BytesView key,
                                   int64_t count) {
  if (count <= 0) return;
  flows_[FlowKey{function, Bytes(key)}][source_machine] += count;
  total_events_ += count;
}

PlacementAdvisor::Analysis PlacementAdvisor::AnalyzeRing(
    const HashRing& ring) const {
  Analysis analysis;
  analysis.machine_load.assign(static_cast<size_t>(num_machines_), 0);
  for (const auto& [flow, sources] : flows_) {
    Result<WorkerRef> target = ring.Route(flow.function, flow.key, {});
    const MachineId machine =
        target.ok() ? target.value().machine : kInvalidMachine;
    for (const auto& [source, count] : sources) {
      analysis.total_events += count;
      if (machine == kInvalidMachine || source != machine) {
        analysis.cross_machine_events += count;
      }
      if (machine >= 0 && machine < num_machines_) {
        analysis.machine_load[static_cast<size_t>(machine)] += count;
      }
    }
  }
  return analysis;
}

std::vector<PlacementAdvisor::Assignment> PlacementAdvisor::Propose(
    Analysis* analysis) const {
  // Heaviest flows first: they matter most and should claim their best
  // machine before the balance cap fills up.
  struct Item {
    const FlowKey* flow;
    const std::map<MachineId, int64_t>* sources;
    int64_t events;
  };
  std::vector<Item> items;
  items.reserve(flows_.size());
  for (const auto& [flow, sources] : flows_) {
    int64_t events = 0;
    for (const auto& [source, count] : sources) events += count;
    items.push_back(Item{&flow, &sources, events});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.events > b.events;
  });

  const double cap =
      (1.0 + balance_slack_) * static_cast<double>(total_events_) /
      static_cast<double>(num_machines_);
  std::vector<int64_t> load(static_cast<size_t>(num_machines_), 0);
  std::vector<Assignment> proposal;
  proposal.reserve(items.size());
  int64_t cross = 0;

  for (const Item& item : items) {
    // Candidate machines by descending local traffic for this flow.
    std::vector<std::pair<int64_t, MachineId>> candidates;
    for (const auto& [source, count] : *item.sources) {
      if (source >= 0 && source < num_machines_) {
        candidates.emplace_back(count, source);
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());

    MachineId chosen = kInvalidMachine;
    for (const auto& [count, machine] : candidates) {
      if (static_cast<double>(load[static_cast<size_t>(machine)] +
                              item.events) <= cap) {
        chosen = machine;
        break;
      }
    }
    if (chosen == kInvalidMachine) {
      // Balance first: least-loaded machine takes it.
      chosen = static_cast<MachineId>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    load[static_cast<size_t>(chosen)] += item.events;
    for (const auto& [source, count] : *item.sources) {
      if (source != chosen) cross += count;
    }
    proposal.push_back(
        Assignment{item.flow->function, item.flow->key, chosen, item.events});
  }

  if (analysis != nullptr) {
    analysis->cross_machine_events = cross;
    analysis->total_events = total_events_;
    analysis->machine_load = std::move(load);
  }
  return proposal;
}

}  // namespace muppet
