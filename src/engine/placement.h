// Operator/slate placement analysis (paper §5 "Placing Mappers and
// Updaters"). Muppet's placement "is in effect decided by the hashing
// function"; the authors explore placing updaters near their data to cut
// network traffic, and explain why it is hard: the hot keys are only known
// from the event contents, popularity shifts, and workflows chain multiple
// functions whose flows pull in different directions.
//
// PlacementAdvisor reproduces that exploration as an offline tool: feed it
// the observed event flows (source machine -> <function, key> counts) and
// it (a) scores the current hash placement's cross-machine traffic and
// (b) greedily proposes a key->machine assignment that reduces it, under a
// per-machine load-balance cap — quantifying the §5 trade-off between
// locality and balance.
#ifndef MUPPET_ENGINE_PLACEMENT_H_
#define MUPPET_ENGINE_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/hash_ring.h"

namespace muppet {

class PlacementAdvisor {
 public:
  // `num_machines`: cluster size. `balance_slack`: a machine may carry up
  // to (1 + slack) * average load before the advisor refuses to add more
  // keys to it (0.25 = 25% over average).
  PlacementAdvisor(int num_machines, double balance_slack = 0.25);

  // Record that `count` events for <function, key> originated on
  // `source_machine` (e.g. the mapper machine that emits them).
  void ObserveFlow(MachineId source_machine, const std::string& function,
                   BytesView key, int64_t count);

  struct Assignment {
    std::string function;
    Bytes key;
    MachineId machine = kInvalidMachine;
    int64_t events = 0;
  };

  struct Analysis {
    // Events that crossed machines under the given placement.
    int64_t cross_machine_events = 0;
    int64_t total_events = 0;
    // Per-machine processing load (events handled).
    std::vector<int64_t> machine_load;
    double CrossTrafficFraction() const {
      return total_events == 0
                 ? 0.0
                 : static_cast<double>(cross_machine_events) /
                       static_cast<double>(total_events);
    }
  };

  // Score the placement induced by `ring` (the engine's actual routing).
  Analysis AnalyzeRing(const HashRing& ring) const;

  // Greedy locality-aware proposal: assign each <function,key> to the
  // machine sending it the most events, spilling to the next-best machine
  // when the balance cap is hit. Returns the proposal and fills *analysis
  // with its score.
  std::vector<Assignment> Propose(Analysis* analysis) const;

  int64_t total_events() const { return total_events_; }

 private:
  struct FlowKey {
    std::string function;
    Bytes key;
    friend bool operator<(const FlowKey& a, const FlowKey& b) {
      if (a.function != b.function) return a.function < b.function;
      return a.key < b.key;
    }
  };

  int num_machines_;
  double balance_slack_;
  // <function,key> -> per-source-machine counts.
  std::map<FlowKey, std::map<MachineId, int64_t>> flows_;
  int64_t total_events_ = 0;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_PLACEMENT_H_
