#include "engine/queue.h"

namespace muppet {

EventQueue::EventQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Status EventQueue::TryPush(RoutedEvent item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return Status::Aborted("queue: stopped");
    if (items_.size() >= capacity_) {
      return Status::ResourceExhausted("queue: full");
    }
    items_.push_back(std::move(item));
  }
  not_empty_.notify_one();
  return Status::OK();
}

bool EventQueue::Pop(RoutedEvent* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return stopped_ || !items_.empty(); });
  if (items_.empty()) return false;  // stopped and drained
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool EventQueue::TryPop(RoutedEvent* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void EventQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  not_empty_.notify_all();
}

size_t EventQueue::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = items_.size();
  items_.clear();
  return n;
}

size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool EventQueue::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopped_;
}

}  // namespace muppet
