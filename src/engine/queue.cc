#include "engine/queue.h"

#include <algorithm>

namespace muppet {

EventQueue::EventQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Status EventQueue::TryPushMove(RoutedEvent* item) {
  {
    MutexLock lock(mutex_);
    if (stopped_) return Status::Aborted("queue: stopped");
    if (items_.size() >= capacity_) {
      return Status::ResourceExhausted("queue: full");
    }
    items_.push_back(std::move(*item));
    size_.store(items_.size(), std::memory_order_release);
  }
  not_empty_.NotifyOne();
  return Status::OK();
}

Status EventQueue::TryPushBatch(std::vector<RoutedEvent>* items) {
  if (items->empty()) return Status::OK();
  const size_t n = items->size();
  {
    MutexLock lock(mutex_);
    if (stopped_) return Status::Aborted("queue: stopped");
    if (items_.size() + n > capacity_) {
      return Status::ResourceExhausted("queue: full");
    }
    for (RoutedEvent& item : *items) {
      items_.push_back(std::move(item));
    }
    size_.store(items_.size(), std::memory_order_release);
  }
  items->clear();
  if (n == 1) {
    not_empty_.NotifyOne();
  } else {
    not_empty_.NotifyAll();
  }
  return Status::OK();
}

bool EventQueue::Pop(RoutedEvent* out) {
  MutexLock lock(mutex_);
  while (!stopped_ && items_.empty()) not_empty_.Wait(mutex_);
  if (items_.empty()) return false;  // stopped and drained
  *out = std::move(items_.front());
  items_.pop_front();
  size_.store(items_.size(), std::memory_order_release);
  pops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool EventQueue::PopBatch(std::vector<RoutedEvent>* out, size_t max) {
  if (max == 0) return false;
  MutexLock lock(mutex_);
  while (!stopped_ && items_.empty()) not_empty_.Wait(mutex_);
  if (items_.empty()) return false;  // stopped and drained
  const size_t n = std::min(max, items_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
  }
  size_.store(items_.size(), std::memory_order_release);
  pops_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  return true;
}

bool EventQueue::TryPop(RoutedEvent* out) {
  MutexLock lock(mutex_);
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  size_.store(items_.size(), std::memory_order_release);
  pops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EventQueue::Stop() {
  {
    MutexLock lock(mutex_);
    stopped_ = true;
  }
  not_empty_.NotifyAll();
}

void EventQueue::Restart() {
  MutexLock lock(mutex_);
  stopped_ = false;
}

size_t EventQueue::Clear() {
  MutexLock lock(mutex_);
  const size_t n = items_.size();
  items_.clear();
  size_.store(0, std::memory_order_release);
  return n;
}

bool EventQueue::stopped() const {
  MutexLock lock(mutex_);
  return stopped_;
}

}  // namespace muppet
