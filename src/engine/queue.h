// Bounded per-worker event queue. "Each worker has its own queue for input
// events" (§4.1) "maintained in memory"; a full queue *declines* the push,
// triggering the sender's queue-overflow mechanism (§4.3) — so TryPush is
// non-blocking by design.
#ifndef MUPPET_ENGINE_QUEUE_H_
#define MUPPET_ENGINE_QUEUE_H_

#include <atomic>
#include <deque>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/event.h"

namespace muppet {

// An event addressed to a specific function (the queue of a Muppet 2.0
// thread holds events for many functions; the destination is part of the
// queued item).
//
// On the Muppet 2.0 hot path the destination travels as a dense interned
// id plus the event's (function, key) work hash, both computed exactly
// once when the event is routed — dispatch and processing index by id and
// reuse the cached hash instead of re-hashing strings (§4.5). `function`
// by name remains for the 1.0 engine and the name-based wire codec; it is
// empty on the 2.0 fast path.
// Control-plane event kinds carried in RoutedEvent::ctl. Control events
// are injected by the engine's load manager, intercepted before the
// operator runs, and counted emitted/processed like data events so
// conservation accounting stays exact.
enum : uint8_t {
  kCtlNone = 0,
  // Read-and-delete one shard slate of a draining split key, emitting a
  // kCtlMergeDelta with the slate bytes toward the base key's owner.
  kCtlMergeSweep = 1,
  // Fold the carried shard slate (event.value) into the base key's slate
  // via the updater's SlateMerger.
  kCtlMergeDelta = 2,
};

struct RoutedEvent {
  std::string function;
  Event event;
  // Interned destination function id; -1 when only `function` is set.
  int32_t function_id = -1;
  // Cached work-unit hash of <function, routing key>; 0 = not computed.
  // For split keys this hashes the shard sub-key, not event.key.
  uint64_t work = 0;
  // Dynamic key splitting (core/keysplit.h SplitTable): the shard this
  // event was routed to (-1 = unsplit) and the split epoch the routing
  // decision was made under. event.key always stays the base key; the
  // shard only widens routing and slate addressing, so a processor whose
  // table moved on (epoch mismatch) can re-route to the base key instead
  // of resurrecting a drained shard slate.
  int32_t shard = -1;
  uint32_t split_epoch = 0;
  // Control-plane kind (kCtlNone for data events). For control events
  // split_epoch carries the merge round id instead.
  uint8_t ctl = kCtlNone;
  // Exactly-once delivery identity (engine/slatelog.h DedupIdentity): set
  // by the sender when the durability knob is kExactlyOnce, 0 otherwise.
  // The receiving machine suppresses data events whose identity it has
  // already processed (redelivered batches after a recovery epoch cut).
  uint64_t dedup = 0;
  // When the event is traced: time it entered this queue, for the
  // queue-wait span. In-memory only — never serialized.
  // muppet-lint: allow(wire): stamped on the receiving machine only
  Timestamp enqueue_ts = 0;
};

class EventQueue {
 public:
  explicit EventQueue(size_t capacity);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Non-blocking enqueue. ResourceExhausted when full (the §4.3 decline),
  // Aborted after Stop().
  Status TryPush(RoutedEvent item) { return TryPushMove(&item); }

  // Like TryPush but moves *item in only on success; on decline the item
  // is left intact so two-choice dispatch can offer it to the other
  // candidate queue without copying.
  Status TryPushMove(RoutedEvent* item);

  // Non-blocking batched enqueue: moves all of `items` in, or none (a
  // partial push would deliver events the sender then re-sends elsewhere).
  // One lock acquisition and one wakeup for the whole batch. On OK `items`
  // is cleared; on decline it is left untouched for the caller to re-route.
  Status TryPushBatch(std::vector<RoutedEvent>* items);

  // Blocking dequeue. Returns false when stopped and drained.
  bool Pop(RoutedEvent* out);

  // Blocking batched dequeue: waits for at least one item, then moves up
  // to `max` items into `out` (appended) under a single lock acquisition —
  // the consumer-side amortization of per-event wakeups. Returns false
  // when stopped and drained.
  bool PopBatch(std::vector<RoutedEvent>* out, size_t max);

  // Non-blocking dequeue; false when empty (does not wait).
  bool TryPop(RoutedEvent* out);

  // Wake all poppers and refuse further pushes. Remaining items stay
  // poppable (graceful stop) — use Clear() for crash simulation.
  void Stop();

  // Re-open a stopped queue in place (machine restart): clears the sticky
  // stopped flag so pushes are accepted and poppers block again. Reusing
  // the queue object keeps concurrent dispatchers safe — they may hold a
  // pointer to this queue across the crash/restart window.
  void Restart();

  // Drop everything queued; returns how many were discarded.
  size_t Clear();

  // Lock-free approximate size: two-choice dispatch reads the sizes of its
  // two candidate queues on every event, so this must not take the queue
  // lock. The value is exact between operations and only transiently stale
  // while a push/pop is mid-flight.
  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t capacity() const { return capacity_; }
  // Cumulative events dequeued (Pop/PopBatch/TryPop). Lock-free read; the
  // watchdog compares successive values as its queue-progress signal.
  int64_t pops() const { return pops_.load(std::memory_order_relaxed); }
  bool stopped() const MUPPET_EXCLUDES(mutex_);

  // Level this queue's mutex occupies in the global lock hierarchy
  // (pinned by tests/common/sync_test.cc against DESIGN.md).
  static constexpr LockLevel kLockLevel = LockLevel::kQueue;

 private:
  const size_t capacity_;
  mutable Mutex mutex_{kLockLevel};
  CondVar not_empty_;
  std::deque<RoutedEvent> items_ MUPPET_GUARDED_BY(mutex_);
  std::atomic<size_t> size_{0};
  std::atomic<int64_t> pops_{0};
  bool stopped_ MUPPET_GUARDED_BY(mutex_) = false;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_QUEUE_H_
