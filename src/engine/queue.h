// Bounded per-worker event queue. "Each worker has its own queue for input
// events" (§4.1) "maintained in memory"; a full queue *declines* the push,
// triggering the sender's queue-overflow mechanism (§4.3) — so TryPush is
// non-blocking by design.
#ifndef MUPPET_ENGINE_QUEUE_H_
#define MUPPET_ENGINE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/status.h"
#include "core/event.h"

namespace muppet {

// An event addressed to a specific function (the queue of a Muppet 2.0
// thread holds events for many functions; the destination is part of the
// queued item).
struct RoutedEvent {
  std::string function;
  Event event;
};

class EventQueue {
 public:
  explicit EventQueue(size_t capacity);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Non-blocking enqueue. ResourceExhausted when full (the §4.3 decline),
  // Aborted after Stop().
  Status TryPush(RoutedEvent item);

  // Blocking dequeue. Returns false when stopped and drained.
  bool Pop(RoutedEvent* out);

  // Non-blocking dequeue; false when empty (does not wait).
  bool TryPop(RoutedEvent* out);

  // Wake all poppers and refuse further pushes. Remaining items stay
  // poppable (graceful stop) — use Clear() for crash simulation.
  void Stop();

  // Drop everything queued; returns how many were discarded.
  size_t Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  bool stopped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<RoutedEvent> items_;
  bool stopped_ = false;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_QUEUE_H_
