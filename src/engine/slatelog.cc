#include "engine/slatelog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/hash.h"

namespace muppet {

namespace fs = std::filesystem;

const char* ConsistencyName(Consistency mode) {
  switch (mode) {
    case Consistency::kLossy:
      return "lossy";
    case Consistency::kAtLeastOnce:
      return "at-least-once";
    case Consistency::kExactlyOnce:
      return "exactly-once";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Wire formats.
// ---------------------------------------------------------------------------

void EncodeSlateLogRecord(const SlateLogRecord& rec, Bytes* out) {
  PutVarint32(out, rec.kind);
  PutVarint64(out, rec.lsn);
  PutLengthPrefixed(out, rec.updater);
  PutLengthPrefixed(out, rec.key);
  PutLengthPrefixed(out, rec.value);
  PutVarint64(out, static_cast<uint64_t>(rec.ts));
  PutVarint64(out, rec.seq);
  PutVarint64(out, rec.work);
  PutVarint64(out, rec.dedup);
}

Status DecodeSlateLogRecord(BytesView data, SlateLogRecord* rec) {
  const char* p = data.data();
  const char* limit = p + data.size();
  uint32_t kind = 0;
  uint64_t lsn = 0, ts = 0, seq = 0, work = 0, dedup = 0;
  BytesView updater, key, value;
  if (!GetVarint32(&p, limit, &kind) || !GetVarint64(&p, limit, &lsn) ||
      !GetLengthPrefixed(&p, limit, &updater) ||
      !GetLengthPrefixed(&p, limit, &key) ||
      !GetLengthPrefixed(&p, limit, &value) ||
      !GetVarint64(&p, limit, &ts) || !GetVarint64(&p, limit, &seq) ||
      !GetVarint64(&p, limit, &work) || !GetVarint64(&p, limit, &dedup) ||
      p != limit || kind > static_cast<uint32_t>(SlateLogKind::kMark)) {
    return Status::Corruption("slatelog: malformed record");
  }
  rec->kind = static_cast<uint8_t>(kind);
  rec->lsn = lsn;
  rec->updater.assign(updater);
  rec->key.assign(key);
  rec->value.assign(value);
  rec->ts = static_cast<Timestamp>(ts);
  rec->seq = seq;
  rec->work = work;
  rec->dedup = dedup;
  return Status::OK();
}

void EncodeCheckpointManifest(const CheckpointManifest& manifest, Bytes* out) {
  PutVarint64(out, manifest.machine);
  PutVarint64(out, manifest.lsn);
  PutVarint64(out, manifest.segment);
  PutVarint64(out, static_cast<uint64_t>(manifest.ts));
}

Status DecodeCheckpointManifest(BytesView data, CheckpointManifest* manifest) {
  const char* p = data.data();
  const char* limit = p + data.size();
  uint64_t machine = 0, lsn = 0, segment = 0, ts = 0;
  if (!GetVarint64(&p, limit, &machine) || !GetVarint64(&p, limit, &lsn) ||
      !GetVarint64(&p, limit, &segment) || !GetVarint64(&p, limit, &ts) ||
      p != limit) {
    return Status::Corruption("slatelog: malformed manifest");
  }
  manifest->machine = machine;
  manifest->lsn = lsn;
  manifest->segment = segment;
  manifest->ts = static_cast<Timestamp>(ts);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// StdioLogDevice.
// ---------------------------------------------------------------------------

StdioLogDevice::~StdioLogDevice() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status StdioLogDevice::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("slatelog: device already open");
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("slatelog: open " + path + ": " +
                           std::strerror(errno));
  }
  file_ = f;
  return Status::OK();
}

Status StdioLogDevice::Write(BytesView frame) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("slatelog: device not open");
  }
  buffer_.append(frame.data(), frame.size());
  return Status::OK();
}

Status StdioLogDevice::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("slatelog: device not open");
  }
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      return Status::IOError("slatelog: short write");
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("slatelog: flush failed");
  }
  ::fsync(::fileno(file_));
  return Status::OK();
}

Status StdioLogDevice::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = Sync();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  buffer_.clear();
  if (!s.ok()) return s;
  if (rc != 0) return Status::IOError("slatelog: close failed");
  return Status::OK();
}

void StdioLogDevice::CrashClose() {
  buffer_.clear();  // the crash loses everything past the last sync
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// SlateChangelog.
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kFrameHeaderBytes = 8;  // [u32 crc][u32 len]
constexpr uint32_t kMaxRecordBytes = 64u << 20;

std::string SegmentFileName(uint64_t machine, uint64_t segment) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "changelog-%llu-%08llu.log",
                static_cast<unsigned long long>(machine),
                static_cast<unsigned long long>(segment));
  return buf;
}

// Parse "<segment>" out of a segment file name for `machine`; returns false
// for unrelated files (other machines, manifests, temp files).
bool ParseSegmentFileName(const std::string& name, uint64_t machine,
                          uint64_t* segment) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "changelog-%llu-",
                static_cast<unsigned long long>(machine));
  const std::string pfx(prefix);
  if (name.size() <= pfx.size() + 4 || name.compare(0, pfx.size(), pfx) != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  const std::string digits = name.substr(pfx.size(),
                                         name.size() - pfx.size() - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *segment = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

// Sorted segment numbers present on disk for `machine`.
std::vector<uint64_t> ListSegments(const std::string& dir, uint64_t machine) {
  std::vector<uint64_t> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t segment = 0;
    if (ParseSegmentFileName(entry.path().filename().string(), machine,
                             &segment)) {
      segments.push_back(segment);
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

// Scan one segment file, invoking `cb` for each intact record in order.
// Returns false if the scan stopped at a torn/corrupt frame. `clean_end`,
// when non-null, receives the byte offset just past the last intact frame
// (the truncation point for a torn tail).
bool ScanSegment(const std::string& path,
                 const std::function<void(const SlateLogRecord&)>& cb,
                 uint64_t* clean_end = nullptr) {
  if (clean_end != nullptr) *clean_end = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return true;  // vanished segment == empty
  Bytes header(kFrameHeaderBytes, '\0');
  Bytes payload;
  bool clean = true;
  uint64_t offset = 0;
  while (true) {
    const size_t got = std::fread(header.data(), 1, kFrameHeaderBytes, f);
    if (got == 0) break;  // clean EOF
    if (got < kFrameHeaderBytes) {
      clean = false;
      break;
    }
    const uint32_t crc = DecodeFixed32(header.data());
    const uint32_t len = DecodeFixed32(header.data() + 4);
    if (len > kMaxRecordBytes) {
      clean = false;
      break;
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      clean = false;
      break;
    }
    if (Crc32(payload) != crc) {
      clean = false;
      break;
    }
    SlateLogRecord rec;
    if (!DecodeSlateLogRecord(payload, &rec).ok()) {
      clean = false;
      break;
    }
    offset += kFrameHeaderBytes + len;
    if (clean_end != nullptr) *clean_end = offset;
    cb(rec);
  }
  std::fclose(f);
  return clean;
}

// Make a directory-entry mutation (segment create/unlink, manifest rename)
// itself durable: fsync the containing directory. Best-effort on platforms
// where directories cannot be opened for fsync.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string SlateChangelog::SegmentPath(const std::string& dir,
                                        uint64_t machine, uint64_t segment) {
  return (fs::path(dir) / SegmentFileName(machine, segment)).string();
}

std::string SlateChangelog::ManifestPath(const std::string& dir,
                                         uint64_t machine) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "manifest-%llu",
                static_cast<unsigned long long>(machine));
  return (fs::path(dir) / buf).string();
}

SlateChangelog::SlateChangelog(std::string dir, uint64_t machine,
                               Options options)
    : dir_(std::move(dir)), machine_(machine), options_(std::move(options)) {}

SlateChangelog::~SlateChangelog() {
  MutexLock lock(mutex_);
  if (device_ != nullptr) {
    (void)device_->Close();
    device_.reset();
  }
}

Status SlateChangelog::OpenActiveLocked() {
  device_ = options_.device_factory ? options_.device_factory()
                                    : std::make_unique<StdioLogDevice>();
  MUPPET_RETURN_IF_ERROR(
      device_->Open(SegmentPath(dir_, machine_, active_segment_)));
  // Persist the segment's directory entry too, so the file itself (not
  // just its contents) survives a crash.
  SyncDir(dir_);
  return Status::OK();
}

Status SlateChangelog::Open() {
  MutexLock lock(mutex_);
  if (device_ != nullptr) {
    return Status::FailedPrecondition("slatelog: already open");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("slatelog: mkdir " + dir_ + ": " + ec.message());
  }
  segment_max_lsn_.clear();
  uint64_t max_lsn = 0;
  const std::vector<uint64_t> segments = ListSegments(dir_, machine_);
  for (uint64_t segment : segments) {
    uint64_t seg_max = 0;
    uint64_t clean_end = 0;
    const std::string path = SegmentPath(dir_, machine_, segment);
    const bool clean = ScanSegment(path,
                                   [&seg_max](const SlateLogRecord& rec) {
                                     seg_max = std::max(seg_max, rec.lsn);
                                   },
                                   &clean_end);
    if (!clean && segment == segments.back()) {
      // Torn tail on the segment we are about to append to: truncate at
      // the last intact frame, or records appended after the garbage
      // would be unreachable (Replay stops at the first bad frame).
      std::error_code ec;
      fs::resize_file(path, clean_end, ec);
      if (ec) {
        return Status::IOError("slatelog: truncate torn tail of " + path +
                               ": " + ec.message());
      }
    }
    segment_max_lsn_[segment] = seg_max;
    max_lsn = std::max(max_lsn, seg_max);
  }
  // The checkpoint cursor floors the sequence: a checkpoint may have
  // dropped every segment carrying the highest lsns (leaving only a fresh
  // empty active segment), and reissuing lsns at or below the cursor
  // would make Replay() skip acknowledged records forever. A corrupt or
  // missing manifest reads as a zero floor.
  CheckpointManifest manifest;
  (void)ReadManifestFile(dir_, machine_, &manifest);
  max_lsn = std::max(max_lsn, manifest.lsn);
  active_segment_ = segments.empty() ? 1 : segments.back();
  active_segment_ = std::max(active_segment_, manifest.segment);
  segment_max_lsn_.emplace(active_segment_, max_lsn);
  next_lsn_ = max_lsn + 1;
  // Everything that survived on disk is durable by definition.
  synced_lsn_ = max_lsn;
  unsynced_records_ = 0;
  return OpenActiveLocked();
}

Result<uint64_t> SlateChangelog::Append(SlateLogRecord rec) {
  MutexLock lock(mutex_);
  if (device_ == nullptr) {
    return Status::FailedPrecondition("slatelog: not open");
  }
  rec.lsn = next_lsn_;
  Bytes payload;
  EncodeSlateLogRecord(rec, &payload);
  Bytes frame;
  frame.reserve(payload.size() + kFrameHeaderBytes);
  PutFixed32(&frame, Crc32(payload));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  MUPPET_RETURN_IF_ERROR(device_->Write(frame));
  next_lsn_++;
  segment_max_lsn_[active_segment_] = rec.lsn;
  unsynced_records_++;
  if (options_.sync_every_records <= 1 ||
      unsynced_records_ >= options_.sync_every_records) {
    MUPPET_RETURN_IF_ERROR(SyncLocked());
  }
  return rec.lsn;
}

Status SlateChangelog::SyncLocked() {
  MUPPET_RETURN_IF_ERROR(device_->Sync());
  synced_lsn_ = next_lsn_ - 1;
  unsynced_records_ = 0;
  return Status::OK();
}

Status SlateChangelog::Sync() {
  MutexLock lock(mutex_);
  if (device_ == nullptr) {
    return Status::FailedPrecondition("slatelog: not open");
  }
  return SyncLocked();
}

Status SlateChangelog::RotateSegment() {
  MutexLock lock(mutex_);
  if (device_ == nullptr) {
    return Status::FailedPrecondition("slatelog: not open");
  }
  MUPPET_RETURN_IF_ERROR(SyncLocked());
  MUPPET_RETURN_IF_ERROR(device_->Close());
  device_.reset();
  active_segment_++;
  segment_max_lsn_.emplace(active_segment_, next_lsn_ - 1);
  return OpenActiveLocked();
}

Result<int> SlateChangelog::DropSegmentsCoveredBy(uint64_t manifest_lsn) {
  MutexLock lock(mutex_);
  int dropped = 0;
  for (auto it = segment_max_lsn_.begin(); it != segment_max_lsn_.end();) {
    const auto [segment, seg_max] = *it;
    if (segment == active_segment_ || seg_max > manifest_lsn) {
      ++it;
      continue;
    }
    std::error_code ec;
    fs::remove(SegmentPath(dir_, machine_, segment), ec);
    if (ec) {
      return Status::IOError("slatelog: drop segment: " + ec.message());
    }
    it = segment_max_lsn_.erase(it);
    dropped++;
  }
  if (dropped > 0) SyncDir(dir_);
  return dropped;
}

void SlateChangelog::CrashClose() {
  MutexLock lock(mutex_);
  if (device_ == nullptr) return;
  device_->CrashClose();
  device_.reset();
  // The unsynced suffix is gone; the next Open() rescans the durable
  // prefix and continues the lsn sequence after it.
  next_lsn_ = synced_lsn_ + 1;
  unsynced_records_ = 0;
}

Status SlateChangelog::Close() {
  MutexLock lock(mutex_);
  if (device_ == nullptr) return Status::OK();
  Status s = device_->Close();
  device_.reset();
  if (s.ok()) {
    synced_lsn_ = next_lsn_ - 1;
    unsynced_records_ = 0;
  }
  return s;
}

uint64_t SlateChangelog::last_lsn() const {
  MutexLock lock(mutex_);
  return next_lsn_ - 1;
}

uint64_t SlateChangelog::synced_lsn() const {
  MutexLock lock(mutex_);
  return synced_lsn_;
}

uint64_t SlateChangelog::active_segment() const {
  MutexLock lock(mutex_);
  return active_segment_;
}

uint64_t SlateChangelog::segment_count() const {
  MutexLock lock(mutex_);
  return segment_max_lsn_.size();
}

Status SlateChangelog::Replay(
    const std::string& dir, uint64_t machine, uint64_t from_lsn,
    const std::function<void(const SlateLogRecord&)>& cb,
    SlateLogReplayStats* stats) {
  SlateLogReplayStats local;
  SlateLogReplayStats* out = stats != nullptr ? stats : &local;
  *out = SlateLogReplayStats{};
  const std::vector<uint64_t> segments = ListSegments(dir, machine);
  for (size_t i = 0; i < segments.size(); ++i) {
    out->segments++;
    const bool clean =
        ScanSegment(SegmentPath(dir, machine, segments[i]),
                    [&](const SlateLogRecord& rec) {
                      if (rec.lsn <= from_lsn) {
                        out->skipped++;
                        return;
                      }
                      out->records++;
                      cb(rec);
                    });
    if (!clean) {
      if (i + 1 == segments.size()) {
        // A torn tail in the final segment is the normal shape of a crash
        // mid-append; the intact prefix is everything durable.
        out->truncated_tail = true;
      } else {
        // Corruption mid-history: frame boundaries are lost for the rest
        // of THIS segment, but later segments are independent files —
        // keep going so their intact records still restore state
        // (records are absolute-valued, so the restored suffix stays
        // self-consistent).
        out->corrupt_segments++;
      }
    }
  }
  return Status::OK();
}

Status SlateChangelog::WriteManifestFile(const std::string& dir,
                                         const CheckpointManifest& manifest) {
  Bytes payload;
  EncodeCheckpointManifest(manifest, &payload);
  Bytes frame;
  PutFixed32(&frame, Crc32(payload));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);

  const std::string path = ManifestPath(dir, manifest.machine);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("slatelog: open " + tmp + ": " +
                           std::strerror(errno));
  }
  const bool wrote = std::fwrite(frame.data(), 1, frame.size(), f) ==
                     frame.size();
  if (std::fflush(f) != 0 || !wrote) {
    std::fclose(f);
    return Status::IOError("slatelog: manifest write failed");
  }
  ::fsync(::fileno(f));
  std::fclose(f);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("slatelog: manifest rename: " + ec.message());
  }
  // The rename itself is a directory mutation: without a dir fsync a power
  // loss can undo it after covered segments were already unlinked, leaving
  // a stale cursor pointing at deleted history.
  SyncDir(dir);
  return Status::OK();
}

Status SlateChangelog::ReadManifestFile(const std::string& dir,
                                        uint64_t machine,
                                        CheckpointManifest* manifest) {
  *manifest = CheckpointManifest{};
  manifest->machine = machine;
  const std::string path = ManifestPath(dir, machine);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no checkpoint yet
  Bytes header(kFrameHeaderBytes, '\0');
  Status s = Status::OK();
  if (std::fread(header.data(), 1, kFrameHeaderBytes, f) !=
      kFrameHeaderBytes) {
    s = Status::Corruption("slatelog: manifest truncated");
  } else {
    const uint32_t crc = DecodeFixed32(header.data());
    const uint32_t len = DecodeFixed32(header.data() + 4);
    Bytes payload(len, '\0');
    if (len > kMaxRecordBytes ||
        std::fread(payload.data(), 1, len, f) != len ||
        Crc32(payload) != crc) {
      s = Status::Corruption("slatelog: manifest corrupt");
    } else {
      s = DecodeCheckpointManifest(payload, manifest);
    }
  }
  std::fclose(f);
  if (!s.ok()) *manifest = CheckpointManifest{};
  return s;
}

// ---------------------------------------------------------------------------
// DedupTable.
// ---------------------------------------------------------------------------

uint64_t DedupIdentity(uint64_t sid_hash, Timestamp ts, uint64_t seq) {
  const uint64_t id = Mix64(
      HashCombine(HashCombine(sid_hash, static_cast<uint64_t>(ts)), seq));
  return id == 0 ? 1 : id;  // 0 is reserved for "no identity"
}

DedupTable::DedupTable(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool DedupTable::CheckAndInsert(uint64_t id) {
  MutexLock lock(mutex_);
  if (present_.count(id) != 0) return false;
  if (fifo_.size() >= capacity_) {
    present_.erase(fifo_.front());
    fifo_.pop_front();
  }
  fifo_.push_back(id);
  present_.insert(id);
  return true;
}

bool DedupTable::Contains(uint64_t id) const {
  MutexLock lock(mutex_);
  return present_.count(id) != 0;
}

void DedupTable::Seed(uint64_t id) { (void)CheckAndInsert(id); }

void DedupTable::Remove(uint64_t id) {
  MutexLock lock(mutex_);
  if (present_.erase(id) == 0) return;
  // Unwinds almost always target the most recent reservation: search from
  // the back.
  for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it) {
    if (*it == id) {
      fifo_.erase(std::next(it).base());
      break;
    }
  }
}

void DedupTable::Clear() {
  MutexLock lock(mutex_);
  fifo_.clear();
  present_.clear();
}

size_t DedupTable::size() const {
  MutexLock lock(mutex_);
  return fifo_.size();
}

}  // namespace muppet
