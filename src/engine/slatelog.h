// Durable per-machine slate changelog (ROADMAP item 3; DESIGN.md §12).
//
// The paper accepts that "all the slate updates in the memory of the failed
// machine" are lost on a crash (§4.4). This subsystem closes that hole: every
// slate update appends an absolute-value `(sid, ts, work_hash, delta)` record
// to a per-machine changelog (WAL-style `[u32 crc][u32 len][payload]` framing,
// torn tails tolerated on replay), periodic incremental checkpoints flush
// dirty slates into the kvstore and advance a manifest cursor, and recovery
// replays the changelog suffix past the manifest before the machine rejoins
// the ring.
//
// Three consistency positions (EngineOptions::durability.consistency):
//   kLossy        paper-faithful: no changelog, crash loses cached updates.
//   kAtLeastOnce  changelog with a buffered sync cadence + replay; a crash
//                 loses at most the unsynced tail (bounded by
//                 sync_every_records), never a checkpointed record.
//   kExactlyOnce  every append is synced before the update is visible, and a
//                 bounded dedup table keyed on the event's (sid, ts, seq)
//                 identity suppresses redelivered cross-machine batches after
//                 the recovery epoch cut.
#ifndef MUPPET_ENGINE_SLATELOG_H_
#define MUPPET_ENGINE_SLATELOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"

namespace muppet {

// ---------------------------------------------------------------------------
// Consistency knob.
// ---------------------------------------------------------------------------

enum class Consistency : uint8_t {
  kLossy = 0,        // paper-faithful, zero-cost (default)
  kAtLeastOnce = 1,  // changelog + replay, buffered syncs
  kExactlyOnce = 2,  // synced changelog + replay + bounded dedup
};

const char* ConsistencyName(Consistency mode);

struct DurabilityOptions {
  Consistency consistency = Consistency::kLossy;
  // Directory for changelog segments and manifest files. Required for any
  // mode other than kLossy; created on engine Start if absent.
  std::string dir;
  // At-least-once: fsync once every N appends. Exactly-once behaves as 1
  // regardless (every record durable before the update is acknowledged).
  uint32_t sync_every_records = 32;
  // Take an incremental checkpoint (flush dirty slates to the kvstore,
  // advance the manifest, drop covered segments) every N appends. 0 turns
  // checkpointing off; checkpoints also require a configured slate store.
  uint64_t checkpoint_every_records = 512;
  // Exactly-once: capacity of the per-machine event-identity dedup table.
  size_t dedup_capacity = 4096;
  // Exactly-once: how many of the most recent changelog identities are
  // seeded back into the dedup table during replay (the epoch cut).
  size_t replay_seed_window = 4096;
};

// ---------------------------------------------------------------------------
// Changelog records + checkpoint manifest (wire formats; muppet-lint's
// wire pass pins the Put/Get pairs below).
// ---------------------------------------------------------------------------

enum class SlateLogKind : uint8_t {
  kUpdate = 0,  // absolute post-update slate value
  kDelete = 1,  // slate tombstone
  kMark = 2,    // processed-event marker (no state delta; identity only)
};

// One changelog record. `updater` + `key` name the slate (the paper's sid),
// `ts`/`seq` carry the identity of the event that produced the update, and
// `value` is the absolute post-update slate — replay is idempotent because
// the last record for a slate wins.
struct SlateLogRecord {
  uint8_t kind = 0;  // SlateLogKind
  uint64_t lsn = 0;  // assigned by the writer; monotone per machine
  std::string updater;
  Bytes key;
  Bytes value;
  Timestamp ts = 0;   // event timestamp ((sid, ts) identity half)
  uint64_t seq = 0;   // engine-assigned per-delivery sequence number
  uint64_t work = 0;  // work hash of (function, key)
  uint64_t dedup = 0;  // dedup identity carried on the data frame (0 = none)
};

void EncodeSlateLogRecord(const SlateLogRecord& rec, Bytes* out);
Status DecodeSlateLogRecord(BytesView data, SlateLogRecord* rec);

// Checkpoint cursor: records with `lsn` <= manifest lsn are covered by the
// kvstore (dirty slates flushed before the manifest was written), so replay
// starts past them and whole segments below the cursor can be dropped.
struct CheckpointManifest {
  uint64_t machine = 0;
  uint64_t lsn = 0;
  uint64_t segment = 0;  // active segment when the checkpoint was taken
  Timestamp ts = 0;      // engine-clock time of the checkpoint
};

void EncodeCheckpointManifest(const CheckpointManifest& manifest, Bytes* out);
Status DecodeCheckpointManifest(BytesView data, CheckpointManifest* manifest);

// Column family holding mirrored checkpoint manifests in the kvstore
// (row = "machine-<id>", column = "manifest").
inline constexpr char kCheckpointColumnFamily[] = "ckpt";

// ---------------------------------------------------------------------------
// LogDevice: minimal append-only file abstraction under the changelog.
// Production uses StdioLogDevice; tests install fault-injecting shims that
// truncate or bit-flip frames mid-append to exercise torn-tail recovery.
// ---------------------------------------------------------------------------

class LogDevice {
 public:
  virtual ~LogDevice() = default;

  virtual Status Open(const std::string& path) = 0;
  // Append `frame` to the device's buffer. Buffered data is NOT durable
  // until Sync(); a crash (CrashClose) discards it.
  virtual Status Write(BytesView frame) = 0;
  // Make all buffered writes durable (write-through + fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  // Crash model: release the file without flushing buffered writes.
  // Devices without a private buffer may treat this as Close.
  virtual void CrashClose() { (void)Close(); }
};

// Buffers appends in memory and writes + fsyncs on Sync(). The explicit
// buffer (rather than stdio's) lets CrashClose() model a machine crash that
// loses everything past the last sync.
class StdioLogDevice : public LogDevice {
 public:
  ~StdioLogDevice() override;

  Status Open(const std::string& path) override;
  Status Write(BytesView frame) override;
  Status Sync() override;
  Status Close() override;

  // Drop buffered-but-unsynced bytes and close the file. The durable
  // prefix stays on disk.
  void CrashClose();

 private:
  std::FILE* file_ = nullptr;
  Bytes buffer_;
};

using LogDeviceFactory = std::function<std::unique_ptr<LogDevice>()>;

// ---------------------------------------------------------------------------
// SlateChangelog: per-machine segmented append log.
// ---------------------------------------------------------------------------

// Replay statistics surfaced as muppet_slatelog_* counters.
struct SlateLogReplayStats {
  uint64_t records = 0;   // records delivered to the callback
  uint64_t skipped = 0;   // records at or below the replay floor
  uint64_t segments = 0;  // segment files visited
  // Non-final segments whose scan hit a corrupt frame (the rest of that
  // segment is unreachable, but replay continues with later segments).
  uint64_t corrupt_segments = 0;
  bool truncated_tail = false;  // final segment ended at a torn frame
};

class SlateChangelog {
 public:
  struct Options {
    uint32_t sync_every_records = 32;
    // Test seam: factory for the underlying append device. Defaults to
    // StdioLogDevice.
    LogDeviceFactory device_factory;
  };

  SlateChangelog(std::string dir, uint64_t machine, Options options);
  ~SlateChangelog();

  SlateChangelog(const SlateChangelog&) = delete;
  SlateChangelog& operator=(const SlateChangelog&) = delete;

  // Scan existing segments (continuing the lsn sequence after a restart)
  // and open the active segment for append. The manifest cursor floors the
  // lsn sequence — a checkpoint may have dropped every segment carrying
  // the highest lsns, and reissued lsns at or below the cursor would be
  // skipped by Replay() forever. A torn tail on the active segment is
  // truncated to the last intact frame so post-recovery appends stay
  // reachable.
  Status Open();

  // Append one record; assigns and returns its lsn. Syncs every
  // sync_every_records appends (1 = every append).
  Result<uint64_t> Append(SlateLogRecord rec);

  // Force buffered appends durable.
  Status Sync();

  // Start a new segment (taken at checkpoint time so covered history can
  // be dropped as whole files).
  Status RotateSegment();

  // Delete closed segments whose records are all covered by `manifest_lsn`.
  // Returns the number of segment files removed.
  Result<int> DropSegmentsCoveredBy(uint64_t manifest_lsn);

  // Crash model: discard unsynced appends and release the file. The
  // durable prefix survives for replay.
  void CrashClose();

  // Graceful close: sync, then release the file.
  Status Close();

  uint64_t last_lsn() const;
  uint64_t synced_lsn() const;
  uint64_t active_segment() const;
  uint64_t segment_count() const;

  // Replay every intact record with lsn > `from_lsn` across all segments
  // in order. A torn frame in the final segment is the normal post-crash
  // tail (stats->truncated_tail); a corrupt frame in an earlier segment
  // skips the rest of that segment only (stats->corrupt_segments) — later
  // segments are independent files and their records still restore state,
  // since records carry absolute values.
  static Status Replay(const std::string& dir, uint64_t machine,
                       uint64_t from_lsn,
                       const std::function<void(const SlateLogRecord&)>& cb,
                       SlateLogReplayStats* stats);

  // Manifest persistence: atomic write (temp + rename) of the cursor file
  // next to the segments, and the matching load. A missing manifest yields
  // a zero cursor (replay from the beginning).
  static Status WriteManifestFile(const std::string& dir,
                                  const CheckpointManifest& manifest);
  static Status ReadManifestFile(const std::string& dir, uint64_t machine,
                                 CheckpointManifest* manifest);

  // Segment file name, exposed for tests that mutilate the tail.
  static std::string SegmentPath(const std::string& dir, uint64_t machine,
                                 uint64_t segment);
  static std::string ManifestPath(const std::string& dir, uint64_t machine);

  static constexpr LockLevel kLockLevel = LockLevel::kSlateChangelog;

 private:
  Status OpenActiveLocked() MUPPET_REQUIRES(mutex_);
  Status SyncLocked() MUPPET_REQUIRES(mutex_);

  const std::string dir_;
  const uint64_t machine_;
  const Options options_;

  mutable Mutex mutex_{kLockLevel};
  std::unique_ptr<LogDevice> device_ MUPPET_GUARDED_BY(mutex_);
  // Closed + active segments and the highest lsn each contains.
  std::map<uint64_t, uint64_t> segment_max_lsn_ MUPPET_GUARDED_BY(mutex_);
  uint64_t active_segment_ MUPPET_GUARDED_BY(mutex_) = 0;
  uint64_t next_lsn_ MUPPET_GUARDED_BY(mutex_) = 1;
  uint64_t synced_lsn_ MUPPET_GUARDED_BY(mutex_) = 0;
  uint32_t unsynced_records_ MUPPET_GUARDED_BY(mutex_) = 0;
};

// ---------------------------------------------------------------------------
// DedupTable: bounded FIFO set of processed event identities (exactly-once).
// ---------------------------------------------------------------------------

// Derive the on-wire dedup identity from the event's (sid, ts, seq) triple.
// Never returns 0 (0 on the wire means "no identity / lossy sender").
uint64_t DedupIdentity(uint64_t sid_hash, Timestamp ts, uint64_t seq);

class DedupTable {
 public:
  explicit DedupTable(size_t capacity);

  // Returns true if `id` was absent (and records it); false for a
  // duplicate. At capacity the oldest identity is evicted first.
  bool CheckAndInsert(uint64_t id);

  bool Contains(uint64_t id) const;

  // Replay seeding: identical to CheckAndInsert but named for intent.
  void Seed(uint64_t id);

  // Unwind a reservation made by CheckAndInsert when the guarded action
  // was declined (e.g. a queue-full push the sender will retry). A no-op
  // for absent ids.
  void Remove(uint64_t id);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  static constexpr LockLevel kLockLevel = LockLevel::kDedupTable;

 private:
  const size_t capacity_;
  mutable Mutex mutex_{kLockLevel};
  std::deque<uint64_t> fifo_ MUPPET_GUARDED_BY(mutex_);
  std::unordered_set<uint64_t> present_ MUPPET_GUARDED_BY(mutex_);
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_SLATELOG_H_
