#include "engine/throttle.h"

#include <algorithm>
#include <cmath>

namespace muppet {

ThrottleGovernor::ThrottleGovernor(ThrottleOptions options, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()) {
  last_decay_ = clock_->Now();
}

void ThrottleGovernor::NoteOverflow() {
  signals_.Add();
  MutexLock lock(mutex_);
  delay_micros_ = std::min<double>(
      delay_micros_ + static_cast<double>(options_.step_micros),
      static_cast<double>(options_.max_delay_micros));
}

Timestamp ThrottleGovernor::CurrentDelayMicros() {
  Timestamp decayed = 0;
  {
    MutexLock lock(mutex_);
    const Timestamp now = clock_->Now();
    if (now > last_decay_ && delay_micros_ > 0.0 &&
        options_.halflife_micros > 0) {
      const double halflives = static_cast<double>(now - last_decay_) /
                               static_cast<double>(options_.halflife_micros);
      delay_micros_ *= std::pow(0.5, halflives);
      if (delay_micros_ < 1.0) delay_micros_ = 0.0;
    }
    last_decay_ = now;
    decayed = static_cast<Timestamp>(delay_micros_);
  }
  return std::max(decayed, floor_micros_.load(std::memory_order_relaxed));
}

void ThrottleGovernor::SetFloorDelayMicros(Timestamp floor) {
  if (floor < 0) floor = 0;
  floor_micros_.store(std::min(floor, options_.max_delay_micros),
                      std::memory_order_relaxed);
}

void ThrottleGovernor::PaceSource() {
  const Timestamp delay = CurrentDelayMicros();
  if (delay > 0) clock_->SleepFor(delay);
}

}  // namespace muppet
