// Source throttling (§5): "when Muppet detects a hotspot, it can slow down
// the pace at which it consumes events from its input streams ... to allow
// ... the hotspot updater ... to catch up." Throttling is safe only at the
// *input* streams: no operator may publish into them (enforced by
// AppConfig), which is exactly why the paper's emit-loop deadlock (an
// updater blocked emitting 10,000 events into its own input) cannot arise
// at the source. The governor turns overflow signals into a publish delay
// that decays as pressure subsides.
#ifndef MUPPET_ENGINE_THROTTLE_H_
#define MUPPET_ENGINE_THROTTLE_H_

#include <atomic>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/sync.h"

namespace muppet {

struct ThrottleOptions {
  // Delay added per overflow signal.
  Timestamp step_micros = 200;
  // Ceiling on the publish delay.
  Timestamp max_delay_micros = 20 * kMicrosPerMilli;
  // The delay halves every `halflife_micros` without new signals.
  Timestamp halflife_micros = 50 * kMicrosPerMilli;
};

class ThrottleGovernor {
 public:
  explicit ThrottleGovernor(ThrottleOptions options = {},
                            Clock* clock = nullptr);

  ThrottleGovernor(const ThrottleGovernor&) = delete;
  ThrottleGovernor& operator=(const ThrottleGovernor&) = delete;

  // A queue somewhere declined an event: increase pressure.
  void NoteOverflow();

  // Delay the source should insert before its next publish: the decayed
  // overflow delay or the load-manager floor, whichever is larger.
  Timestamp CurrentDelayMicros();

  // Convenience for sources: sleep for the current delay (no-op at zero).
  void PaceSource();

  // Occupancy-driven pacing floor, set by the load-manager control loop
  // (integral action on queue depth). Unlike overflow signals it does not
  // decay; the controller moves it up and down each tick. Still applied
  // only at the source, so the paper's deadlock-freedom argument holds.
  void SetFloorDelayMicros(Timestamp floor);
  Timestamp floor_delay_micros() const {
    return floor_micros_.load(std::memory_order_relaxed);
  }

  int64_t overflow_signals() const { return signals_.Get(); }

  // NoteOverflow() runs under a slate-stripe lock on the 2.0 dispatch
  // path, so the governor sits below the stripes in the hierarchy.
  static constexpr LockLevel kLockLevel = LockLevel::kThrottle;

 private:
  ThrottleOptions options_;
  Clock* clock_;
  Mutex mutex_{kLockLevel};
  double delay_micros_ MUPPET_GUARDED_BY(mutex_) = 0.0;
  Timestamp last_decay_ MUPPET_GUARDED_BY(mutex_) = 0;
  std::atomic<Timestamp> floor_micros_{0};
  Counter signals_;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_THROTTLE_H_
