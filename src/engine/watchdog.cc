#include "engine/watchdog.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/prom.h"

namespace muppet {

const char* IncidentKindName(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kQueueStall:
      return "queue-stall";
    case IncidentKind::kDrainStall:
      return "drain-stall";
    case IncidentKind::kChangelogStall:
      return "changelog-stall";
    case IncidentKind::kRecoveryStuck:
      return "recovery-stuck";
  }
  return "unknown";
}

IncidentLog::IncidentLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void IncidentLog::SetDumpHook(DumpHook hook) {
  MutexLock lock(mutex_);
  dump_hook_ = std::move(hook);
}

void IncidentLog::Open(const Incident& incident) {
  DumpHook hook;
  {
    MutexLock lock(mutex_);
    ring_.push_front(incident);
    while (ring_.size() > capacity_) ring_.pop_back();
    hook = dump_hook_;
  }
  opened_total_.Add();
  opened_by_kind_[static_cast<size_t>(incident.kind)].Add();
  // Outside the lock: the hook walks trace sinks and the metrics registry,
  // both above kIncidents in the hierarchy — and may take a while (file
  // writes), which must not block /statusz reads.
  if (hook) hook(incident);
}

void IncidentLog::Clear(int64_t id, Timestamp now) {
  MutexLock lock(mutex_);
  for (Incident& incident : ring_) {
    if (incident.id == id) {
      if (incident.cleared_us == 0) incident.cleared_us = now;
      return;
    }
  }
}

std::vector<Incident> IncidentLog::Incidents() const {
  MutexLock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

int IncidentLog::open_count() const {
  MutexLock lock(mutex_);
  int open = 0;
  for (const Incident& incident : ring_) {
    if (incident.open()) ++open;
  }
  return open;
}

Watchdog::Watchdog(WatchdogOptions options, IncidentLog* log)
    : options_(options), log_(log) {}

int Watchdog::Step(const EntityKey& key, bool bad, int open_after,
                   Timestamp now, IncidentKind kind, MachineId machine,
                   int queue_index, const std::string& detail_if_open) {
  EntityState& entity = state_[key];
  if (bad) {
    entity.bad++;
    entity.good = 0;
  } else {
    entity.good++;
    entity.bad = 0;
  }
  if (entity.open_id == 0 && entity.bad >= open_after) {
    Incident incident;
    incident.id = next_id_++;
    incident.kind = kind;
    incident.machine = machine;
    incident.queue_index = queue_index;
    incident.opened_us = now;
    incident.detail = detail_if_open;
    entity.open_id = incident.id;
    entity.bad = 0;
    log_->Open(incident);
    return 1;
  }
  if (entity.open_id != 0 && entity.good >= options_.clear_ticks) {
    log_->Clear(entity.open_id, now);
    entity.open_id = 0;
    entity.good = 0;
  }
  return 0;
}

int Watchdog::Tick(const WatchdogSignals& signals) {
  int opened = 0;
  const Timestamp now = signals.now;

  // Crashed machines' queues are expected to sit frozen; skip them so a
  // chaos crash never masquerades as a stall.
  std::vector<MachineId> crashed;
  for (const WatchdogSignals::Machine& m : signals.machines) {
    if (m.crashed) crashed.push_back(m.machine);
  }
  auto is_crashed = [&crashed](MachineId m) {
    for (MachineId c : crashed) {
      if (c == m) return true;
    }
    return false;
  };

  for (const WatchdogSignals::Queue& q : signals.queues) {
    const EntityKey key{static_cast<int>(IncidentKind::kQueueStall),
                        q.machine, q.queue_index};
    EntityState& entity = state_[key];
    const bool observed_before = entity.last_pops >= 0;
    const bool progressed = !observed_before || q.pops != entity.last_pops;
    entity.last_pops = q.pops;
    const bool occupied =
        q.capacity > 0 &&
        static_cast<double>(q.depth) >=
            options_.stall_occupancy * static_cast<double>(q.capacity);
    const bool bad = !is_crashed(q.machine) && occupied && !progressed;
    std::string detail;
    if (bad) {
      detail = "queue m" + std::to_string(q.machine) + "/q" +
               std::to_string(q.queue_index) + " depth " +
               std::to_string(q.depth) + "/" + std::to_string(q.capacity) +
               ", no dequeues for " + std::to_string(options_.stall_ticks) +
               " ticks";
    }
    opened += Step(key, bad, options_.stall_ticks, now,
                   IncidentKind::kQueueStall, q.machine, q.queue_index,
                   detail);
  }

  {
    const EntityKey key{static_cast<int>(IncidentKind::kDrainStall),
                        kInvalidMachine, -1};
    EntityState& entity = state_[key];
    const bool observed_before = entity.last_inflight >= 0;
    const bool stuck = observed_before && signals.inflight > 0 &&
                       signals.inflight == entity.last_inflight;
    entity.last_inflight = signals.draining ? signals.inflight : -1;
    const bool bad = signals.draining && stuck;
    std::string detail;
    if (bad) {
      detail = "drain blocked, inflight stuck at " +
               std::to_string(signals.inflight);
    }
    opened += Step(key, bad, options_.drain_stall_ticks, now,
                   IncidentKind::kDrainStall, kInvalidMachine, -1, detail);
  }

  for (const WatchdogSignals::Machine& m : signals.machines) {
    {
      const EntityKey key{static_cast<int>(IncidentKind::kChangelogStall),
                          m.machine, -1};
      EntityState& entity = state_[key];
      const bool observed_before = entity.last_synced >= 0;
      const bool synced_stuck =
          observed_before &&
          static_cast<int64_t>(m.changelog_synced_lsn) == entity.last_synced;
      entity.last_synced = static_cast<int64_t>(m.changelog_synced_lsn);
      const bool behind = m.changelog_lsn > m.changelog_synced_lsn;
      const bool bad = !m.crashed && behind && synced_stuck;
      std::string detail;
      if (bad) {
        detail = "changelog m" + std::to_string(m.machine) + " synced_lsn " +
                 std::to_string(m.changelog_synced_lsn) + " < lsn " +
                 std::to_string(m.changelog_lsn) + ", no sync progress";
      }
      opened += Step(key, bad, options_.changelog_stall_ticks, now,
                     IncidentKind::kChangelogStall, m.machine, -1, detail);
    }
    {
      const EntityKey key{static_cast<int>(IncidentKind::kRecoveryStuck),
                          m.machine, -1};
      std::string detail;
      if (m.recovering) {
        detail = "machine m" + std::to_string(m.machine) +
                 " stuck between BeginRecovery and ClearFailure";
      }
      opened += Step(key, m.recovering, options_.recovery_stuck_ticks, now,
                     IncidentKind::kRecoveryStuck, m.machine, -1, detail);
    }
  }
  return opened;
}

Json IncidentToJson(const Incident& incident) {
  Json j = Json::MakeObject();
  j["id"] = incident.id;
  j["kind"] = IncidentKindName(incident.kind);
  j["machine"] = static_cast<int64_t>(incident.machine);
  if (incident.queue_index >= 0) {
    j["queue"] = static_cast<int64_t>(incident.queue_index);
  }
  j["opened_us"] = incident.opened_us;
  j["open"] = incident.open();
  if (!incident.open()) j["cleared_us"] = incident.cleared_us;
  j["detail"] = incident.detail;
  return j;
}

namespace {

std::string HexId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

// Self-contained span/trace serialization: service/admin_service.h has
// the richer document builders, but service/ depends on engine/ — the
// dump cannot call up the stack.
Json SpanJson(const Span& span) {
  Json j = Json::MakeObject();
  j["span_id"] = HexId(span.span_id);
  j["kind"] = SpanKindName(span.kind);
  j["machine"] = static_cast<int64_t>(span.machine);
  j["name"] = span.name;
  if (!span.note.empty()) j["note"] = span.note;
  j["start_us"] = span.start_us;
  j["duration_us"] = span.duration_us();
  return j;
}

Json SinkJson(const TraceSink& sink) {
  Json j = Json::MakeObject();
  Json traces = Json::MakeArray();
  for (const TraceSink::TraceRecord& record : sink.Recent()) {
    Json t = Json::MakeObject();
    t["trace_id"] = HexId(record.trace_id);
    t["duration_us"] = record.duration_us();
    Json spans = Json::MakeArray();
    for (const Span& span : record.spans) spans.Append(SpanJson(span));
    t["spans"] = std::move(spans);
    traces.Append(std::move(t));
  }
  j["recent"] = std::move(traces);
  return j;
}

}  // namespace

std::string DumpWatchdogArtifacts(const std::string& engine_name,
                                  const Incident& incident,
                                  const std::vector<TraceSink*>& sinks,
                                  MetricsRegistry* metrics) {
  const char* dir = std::getenv("MUPPET_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return "";

  Json doc = Json::MakeObject();
  doc["engine"] = engine_name;
  doc["incident"] = IncidentToJson(incident);
  Json machines = Json::MakeArray();
  for (TraceSink* sink : sinks) {
    if (sink == nullptr) {
      machines.Append(Json());
      continue;
    }
    machines.Append(SinkJson(*sink));
  }
  doc["machines"] = std::move(machines);

  const std::string base = std::string(dir) + "/watchdog-" + engine_name +
                           "-incident-" + std::to_string(incident.id);
  const std::string json_path = base + ".json";
  std::ofstream(json_path) << doc.Dump() << "\n";
  if (metrics != nullptr) {
    std::ofstream(base + "-metrics.prom") << PrometheusText(*metrics);
  }
  return json_path;
}

}  // namespace muppet
