// Stall watchdog (DESIGN.md §14). The chaos harness can prove an invariant
// was violated, but a *wedged* cluster violates nothing — it just stops:
// a worker queue sits full with zero dequeues, a Drain() never finishes, a
// changelog sync makes no progress, a recovery never reaches
// `Master::ClearFailure`. The watchdog turns "it just stops" into a
// structured, countable, dumpable signal.
//
// Structure mirrors the load manager (engine/load_manager.h): a pure
// decision core (`Watchdog::Tick` — signals in, incident transitions out,
// no locks, no clock reads, trivially unit-testable) driven by one
// engine-owned thread that gathers `WatchdogSignals` each tick and applies
// the transitions to the `IncidentLog`. Detection uses hysteresis in both
// directions — N consecutive bad ticks to open, M consecutive good ticks
// to clear — so a transient burst neither opens nor flaps an incident.
//
// Every opened incident: (1) lands in the IncidentLog ring (the /statusz
// incident panel and /healthz read it), (2) bumps the per-kind counter
// family `muppet_watchdog_incidents_total`, and (3) fires the log's dump
// hook, which engines point at `DumpWatchdogArtifacts` — the same
// flight-recorder artifact path ($MUPPET_CHAOS_ARTIFACT_DIR) the chaos
// harness writes on invariant violations, so a wedge caught in CI leaves
// the same evidence a conservation failure does.
#ifndef MUPPET_ENGINE_WATCHDOG_H_
#define MUPPET_ENGINE_WATCHDOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "common/trace.h"
#include "json/json.h"
#include "net/transport.h"

namespace muppet {

struct WatchdogOptions {
  // Master switch; when false the engine starts no watchdog thread.
  bool enabled = true;
  // Tick cadence of the engine's watchdog thread (the pure core is
  // cadence-agnostic: tests drive Tick() directly).
  Timestamp tick_micros = 100 * kMicrosPerMilli;
  // A queue is stalling when its occupancy is at least this fraction of
  // capacity AND no event was dequeued since the previous tick.
  double stall_occupancy = 0.5;
  // Consecutive bad ticks before an incident opens. Conservative by
  // default: a healthy engine under load dequeues constantly, so three
  // high-occupancy zero-progress observations in a row mean wedged.
  int stall_ticks = 3;
  // Consecutive good ticks before an open incident clears (hysteresis in
  // the other direction — one lucky dequeue does not end an incident).
  int clear_ticks = 2;
  // Ticks of a Drain() waiter seeing an unchanged nonzero inflight count.
  int drain_stall_ticks = 5;
  // Ticks of changelog last_lsn > synced_lsn with synced_lsn unchanged.
  int changelog_stall_ticks = 5;
  // Ticks a machine may sit between BeginRecovery and ClearFailure.
  // Replays are fast (tests complete in milliseconds); 50 ticks = 5s at
  // the default cadence is far beyond any healthy recovery.
  int recovery_stuck_ticks = 50;
  // IncidentLog ring capacity.
  size_t incident_capacity = 64;
};

// Incident taxonomy (DESIGN.md §14). Keep IncidentKindName in sync.
enum class IncidentKind : uint8_t {
  kQueueStall = 0,      // wedged worker queue
  kDrainStall = 1,      // Drain() waiter, inflight stuck nonzero
  kChangelogStall = 2,  // changelog appends not reaching durability
  kRecoveryStuck = 3,   // BeginRecovery never reached ClearFailure
};
inline constexpr int kNumIncidentKinds = 4;

const char* IncidentKindName(IncidentKind kind);

struct Incident {
  int64_t id = 0;
  IncidentKind kind = IncidentKind::kQueueStall;
  // Affected machine (-1 = engine-wide, e.g. a drain stall).
  MachineId machine = kInvalidMachine;
  // Affected queue index on the machine (-1 = n/a).
  int queue_index = -1;
  Timestamp opened_us = 0;
  // 0 while the condition persists.
  Timestamp cleared_us = 0;
  std::string detail;

  bool open() const { return cleared_us == 0; }
};

// Bounded ring of incidents, newest first, with per-kind open counters.
// Thread-safe: the watchdog thread writes, admin/test threads read.
class IncidentLog {
 public:
  // Invoked (outside the log lock, on the opening thread) once per opened
  // incident — engines install DumpWatchdogArtifacts here.
  using DumpHook = std::function<void(const Incident&)>;

  explicit IncidentLog(size_t capacity = 64);

  IncidentLog(const IncidentLog&) = delete;
  IncidentLog& operator=(const IncidentLog&) = delete;

  void SetDumpHook(DumpHook hook);

  void Open(const Incident& incident);
  // Stamp `cleared_us` on the incident with this id (no-op if evicted).
  void Clear(int64_t id, Timestamp now);

  // Newest first.
  std::vector<Incident> Incidents() const;

  int64_t opened_total() const { return opened_total_.Get(); }
  int64_t opened(IncidentKind kind) const {
    return opened_by_kind_[static_cast<size_t>(kind)].Get();
  }
  // Incidents currently open (still in the ring).
  int open_count() const;

  static constexpr LockLevel kLockLevel = LockLevel::kIncidents;

 private:
  const size_t capacity_;
  mutable Mutex mutex_{kLockLevel};
  std::deque<Incident> ring_ MUPPET_GUARDED_BY(mutex_);  // front = newest
  DumpHook dump_hook_ MUPPET_GUARDED_BY(mutex_);
  Counter opened_total_;
  Counter opened_by_kind_[kNumIncidentKinds];
};

// One tick's worth of observed engine state. Gathered by the engine from
// lock-free counters (queue sizes/pops, inflight, changelog lsns), so
// collection never blocks the data path.
struct WatchdogSignals {
  Timestamp now = 0;

  struct Queue {
    MachineId machine = kInvalidMachine;
    int queue_index = -1;
    size_t depth = 0;
    size_t capacity = 0;
    // Cumulative dequeues (EventQueue::pops) — progress detector.
    int64_t pops = 0;
  };
  std::vector<Queue> queues;

  struct Machine {
    MachineId machine = kInvalidMachine;
    bool crashed = false;
    // Between Master::BeginRecovery and ClearFailure.
    bool recovering = false;
    // Changelog cursor pair; both 0 in kLossy mode.
    uint64_t changelog_lsn = 0;
    uint64_t changelog_synced_lsn = 0;
  };
  std::vector<Machine> machines;

  // True while a Drain() caller is blocked.
  bool draining = false;
  int64_t inflight = 0;
};

// Pure decision core. NOT thread-safe: owned by the engine's watchdog
// thread (or a test driving Tick() directly); all shared effects go
// through the IncidentLog.
class Watchdog {
 public:
  Watchdog(WatchdogOptions options, IncidentLog* log);

  // Evaluate one tick of signals; opens/clears incidents in the log.
  // Deterministic: a fixed signal sequence yields a fixed incident
  // sequence regardless of wall time. Returns incidents opened this tick.
  int Tick(const WatchdogSignals& signals);

 private:
  // Hysteresis state per monitored entity, keyed (kind, machine, queue).
  struct EntityState {
    int bad = 0;
    int good = 0;
    int64_t open_id = 0;  // 0 = no open incident
    // Previous progress cursors; -1 = not yet observed (first
    // observation only sets the baseline, it can never be "bad").
    int64_t last_pops = -1;
    int64_t last_inflight = -1;
    int64_t last_synced = -1;
  };
  using EntityKey = std::tuple<int, MachineId, int>;

  // Apply one entity's bad/good observation; opens/clears as thresholds
  // are crossed. Returns 1 if an incident opened.
  int Step(const EntityKey& key, bool bad, int open_after, Timestamp now,
           IncidentKind kind, MachineId machine, int queue_index,
           const std::string& detail_if_open);

  const WatchdogOptions options_;
  IncidentLog* const log_;
  std::map<EntityKey, EntityState> state_;
  int64_t next_id_ = 1;
};

// Flight-recorder dump for one incident: writes
//   watchdog-<engine>-incident-<id>.json   (incident + every sink's traces)
//   watchdog-<engine>-incident-<id>-metrics.prom
// under $MUPPET_CHAOS_ARTIFACT_DIR — the chaos harness's artifact path —
// and returns the .json path. No-op (returns "") when the variable is
// unset. `metrics` may be null.
std::string DumpWatchdogArtifacts(const std::string& engine_name,
                                  const Incident& incident,
                                  const std::vector<TraceSink*>& sinks,
                                  MetricsRegistry* metrics);

// JSON form shared by the /statusz incident panel and the artifact dump.
Json IncidentToJson(const Incident& incident);

}  // namespace muppet

#endif  // MUPPET_ENGINE_WATCHDOG_H_
