// Cross-machine wire encoding of routed events. Muppet 1.0 additionally
// uses the same encoding *within* a machine for the conductor <-> task
// processor hop, reproducing the 1.0 IPC copy cost that Muppet 2.0
// eliminated (§4.5: "Passing data between processes ... can be
// computationally wasteful").
#ifndef MUPPET_ENGINE_WIRE_H_
#define MUPPET_ENGINE_WIRE_H_

#include "common/bytes.h"
#include "common/status.h"
#include "core/event.h"
#include "engine/queue.h"

namespace muppet {

inline void EncodeRoutedEvent(const RoutedEvent& re, Bytes* out) {
  PutLengthPrefixed(out, re.function);
  Bytes event_bytes;
  EncodeEvent(re.event, &event_bytes);
  PutLengthPrefixed(out, event_bytes);
}

inline Status DecodeRoutedEvent(BytesView data, RoutedEvent* re) {
  const char* p = data.data();
  const char* limit = p + data.size();
  BytesView function, event_bytes;
  if (!GetLengthPrefixed(&p, limit, &function) ||
      !GetLengthPrefixed(&p, limit, &event_bytes) || p != limit) {
    return Status::Corruption("wire: malformed routed event");
  }
  re->function.assign(function);
  return DecodeEvent(event_bytes, &re->event);
}

}  // namespace muppet

#endif  // MUPPET_ENGINE_WIRE_H_
