// Cross-machine wire encoding of routed events. Muppet 1.0 additionally
// uses the same encoding *within* a machine for the conductor <-> task
// processor hop, reproducing the 1.0 IPC copy cost that Muppet 2.0
// eliminated (§4.5: "Passing data between processes ... can be
// computationally wasteful").
//
// Two formats live here:
//  * the name-addressed single-event record (EncodeRoutedEvent), used by
//    Muppet 1.0 and by external senders;
//  * the id-addressed batch frame (EncodeRoutedEventFrame), the Muppet 2.0
//    cross-machine format. Events in a frame carry their interned function
//    id and precomputed work hash so the receiver re-hashes nothing, and a
//    frame carries many events so one network hop amortizes per-message
//    overhead. Ids/hashes are engine-local but deterministic: every
//    machine builds the same interner from the same AppConfig at Start().
#ifndef MUPPET_ENGINE_WIRE_H_
#define MUPPET_ENGINE_WIRE_H_

#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/status.h"
#include "core/event.h"
#include "engine/queue.h"

namespace muppet {

// Content signature of a routed event for the fault injector (net/fault.h).
// Deliberately excludes the fields the engine assigns from global mutable
// state (`seq`, `origin_ts`): those differ between two runs of the same
// workload, and hashing them would make fault decisions depend on thread
// interleaving. Never returns 0 (0 tells the injector to hash the payload).
inline uint64_t EventFaultSignature(const RoutedEvent& re) {
  uint64_t h = re.work != 0 ? re.work : Fnv1a64(re.function);
  h = HashCombine(h, Fnv1a64(re.event.stream));
  h = HashCombine(h, Fnv1a64(re.event.key));
  h = HashCombine(h, Fnv1a64(re.event.value));
  h = HashCombine(h, static_cast<uint64_t>(re.event.ts));
  return h == 0 ? 1 : h;
}

// Signature of a whole batch frame: order-sensitive combination of the
// events' signatures (the frame is one fault-model message).
inline uint64_t FrameFaultSignature(const std::vector<RoutedEvent>& events) {
  uint64_t h = 0x66726d65ULL;  // "frme"
  for (const RoutedEvent& re : events) {
    h = HashCombine(h, EventFaultSignature(re));
  }
  return h == 0 ? 1 : h;
}

// Trace context (common/trace.h) rides after the event payload in both
// formats so a sampled trace follows its event across machines. It is
// excluded from the fault signatures above on purpose: whether an event
// is traced must never change which faults it draws.
inline void EncodeRoutedEvent(const RoutedEvent& re, Bytes* out) {
  PutLengthPrefixed(out, re.function);
  Bytes event_bytes;
  EncodeEvent(re.event, &event_bytes);
  PutLengthPrefixed(out, event_bytes);
  PutVarint64(out, re.event.trace.trace_id);
  PutVarint64(out, re.event.trace.parent_span);
  PutVarint64(out, re.dedup);
}

inline Status DecodeRoutedEvent(BytesView data, RoutedEvent* re) {
  const char* p = data.data();
  const char* limit = p + data.size();
  BytesView function, event_bytes;
  if (!GetLengthPrefixed(&p, limit, &function) ||
      !GetLengthPrefixed(&p, limit, &event_bytes) ||
      !GetVarint64(&p, limit, &re->event.trace.trace_id) ||
      !GetVarint64(&p, limit, &re->event.trace.parent_span) ||
      !GetVarint64(&p, limit, &re->dedup) || p != limit) {
    return Status::Corruption("wire: malformed routed event");
  }
  re->function.assign(function);
  // DecodeEvent resets the event's non-wire fields; keep the trace we
  // just read.
  const TraceContext trace = re->event.trace;
  Status s = DecodeEvent(event_bytes, &re->event);
  re->event.trace = trace;
  return s;
}

// Batch frame: varint event count, then per event the interned function
// id, the cached work hash, the split-routing fields (shard is biased by
// one so -1/unsplit encodes as a single zero byte), and the event record.
inline void EncodeRoutedEventFrame(const std::vector<RoutedEvent>& events,
                                   Bytes* out) {
  PutVarint32(out, static_cast<uint32_t>(events.size()));
  Bytes event_bytes;
  for (const RoutedEvent& re : events) {
    PutVarint32(out, static_cast<uint32_t>(re.function_id));
    PutVarint64(out, re.work);
    PutVarint32(out, static_cast<uint32_t>(re.shard + 1));
    PutVarint32(out, re.split_epoch);
    PutVarint32(out, re.ctl);
    PutVarint64(out, re.dedup);
    event_bytes.clear();
    EncodeEvent(re.event, &event_bytes);
    PutLengthPrefixed(out, event_bytes);
    PutVarint64(out, re.event.trace.trace_id);
    PutVarint64(out, re.event.trace.parent_span);
  }
}

// Streaming decoder for batch frames: the receiver dispatches each event
// as it is decoded (and may stop early on a declined queue), so the frame
// is never materialized as a whole vector.
class RoutedEventFrameReader {
 public:
  explicit RoutedEventFrameReader(BytesView frame)
      : p_(frame.data()), limit_(frame.data() + frame.size()) {
    if (!GetVarint32(&p_, limit_, &remaining_)) {
      corrupt_ = true;
      remaining_ = 0;
    }
  }

  // Events not yet decoded (0 when done or corrupt).
  uint32_t remaining() const { return remaining_; }
  bool corrupt() const { return corrupt_; }

  // Decode the next event into *re. False when exhausted or corrupt.
  bool Next(RoutedEvent* re) {
    if (remaining_ == 0) return false;
    uint32_t fid = 0;
    uint32_t shard_plus_one = 0;
    uint32_t ctl = 0;
    BytesView event_bytes;
    TraceContext trace;
    if (!GetVarint32(&p_, limit_, &fid) ||
        !GetVarint64(&p_, limit_, &re->work) ||
        !GetVarint32(&p_, limit_, &shard_plus_one) ||
        !GetVarint32(&p_, limit_, &re->split_epoch) ||
        !GetVarint32(&p_, limit_, &ctl) ||
        !GetVarint64(&p_, limit_, &re->dedup) ||
        !GetLengthPrefixed(&p_, limit_, &event_bytes) ||
        !GetVarint64(&p_, limit_, &trace.trace_id) ||
        !GetVarint64(&p_, limit_, &trace.parent_span) ||
        !DecodeEvent(event_bytes, &re->event).ok()) {
      corrupt_ = true;
      remaining_ = 0;
      return false;
    }
    re->event.trace = trace;
    re->function_id = static_cast<int32_t>(fid);
    re->shard = static_cast<int32_t>(shard_plus_one) - 1;
    re->ctl = static_cast<uint8_t>(ctl);
    re->function.clear();
    --remaining_;
    return true;
  }

 private:
  const char* p_;
  const char* limit_;
  uint32_t remaining_ = 0;
  bool corrupt_ = false;
};

}  // namespace muppet

#endif  // MUPPET_ENGINE_WIRE_H_
