#include "json/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace muppet {

namespace {

const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  MUPPET_CHECK(type_ == Type::kObject) << "operator[] on non-object";
  return object_[key];
}

const Json& Json::operator[](const std::string& key) const {
  if (type_ != Type::kObject) return NullJson();
  auto it = object_.find(key);
  return it == object_.end() ? NullJson() : it->second;
}

bool Json::Contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

int64_t Json::GetInt(const std::string& key, int64_t def) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.AsInt() : def;
}

double Json::GetDouble(const std::string& key, double def) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.AsDouble() : def;
}

std::string Json::GetString(const std::string& key,
                            const std::string& def) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.AsString() : def;
}

bool Json::GetBool(const std::string& key, bool def) const {
  const Json& v = (*this)[key];
  return v.is_bool() ? v.AsBool() : def;
}

void Json::Append(Json v) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
  }
  MUPPET_CHECK(type_ == Type::kArray) << "Append on non-array";
  array_.push_back(std::move(v));
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray: return array_.size();
    case Type::kObject: return object_.size();
    default: return 0;
  }
}

void JsonEscape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt: {
      char buf[32];
      auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
      out->append(buf, p);
      break;
    }
    case Type::kDouble: {
      if (std::isnan(double_) || std::isinf(double_)) {
        out->append("null");  // JSON has no NaN/Inf
        break;
      }
      char buf[64];
      // %.17g round-trips doubles exactly.
      int n = std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out->append(buf, static_cast<size_t>(n));
      break;
    }
    case Type::kString:
      JsonEscape(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        JsonEscape(k, out);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    if (a.type_ == b.type_) {
      return a.type_ == Json::Type::kInt ? a.int_ == b.int_
                                         : a.double_ == b.double_;
    }
    return a.AsDouble() == b.AsDouble();
  }
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kString: return a.string_ == b.string_;
    case Json::Type::kArray: return a.array_ == b.array_;
    case Json::Type::kObject: return a.object_ == b.object_;
    default: return false;  // numbers handled above
  }
}

namespace {

// Recursive-descent parser over a string_view. Depth-limited to guard
// against stack exhaustion from adversarial inputs.
class Parser {
 public:
  explicit Parser(std::string_view text) : p_(text.data()),
                                           end_(text.data() + text.size()) {}

  Result<Json> ParseDocument() {
    Json value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (p_ != end_) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(Offset()));
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  size_t Offset() const { return static_cast<size_t>(p_ - start_); }

  void SkipWhitespace() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Status Fail(const char* what) {
    return Status::InvalidArgument(std::string("json: ") + what +
                                   " at offset " + std::to_string(Offset()));
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (p_ >= end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        MUPPET_RETURN_IF_ERROR(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (Match("true")) { *out = Json(true); return Status::OK(); }
        return Fail("invalid literal");
      case 'f':
        if (Match("false")) { *out = Json(false); return Status::OK(); }
        return Fail("invalid literal");
      case 'n':
        if (Match("null")) { *out = Json(); return Status::OK(); }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  bool Match(const char* lit) {
    size_t len = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < len) return false;
    if (std::memcmp(p_, lit, len) != 0) return false;
    p_ += len;
    return true;
  }

  Status ParseObject(Json* out, int depth) {
    ++p_;  // '{'
    JsonObject obj;
    SkipWhitespace();
    if (Consume('}')) {
      *out = Json(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (p_ >= end_ || *p_ != '"') return Fail("expected object key");
      std::string key;
      MUPPET_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      MUPPET_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      obj[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    *out = Json(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(Json* out, int depth) {
    ++p_;  // '['
    JsonArray arr;
    SkipWhitespace();
    if (Consume(']')) {
      *out = Json(std::move(arr));
      return Status::OK();
    }
    while (true) {
      Json value;
      MUPPET_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    *out = Json(std::move(arr));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++p_;  // '"'
    while (p_ < end_) {
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return Status::OK();
      }
      if (c == '\\') {
        ++p_;
        if (p_ >= end_) return Fail("unterminated escape");
        switch (*p_) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            MUPPET_RETURN_IF_ERROR(ParseUnicodeEscape(out));
            continue;  // ParseUnicodeEscape advanced p_ past the escape
          }
          default: return Fail("invalid escape");
        }
        ++p_;
      } else if (c < 0x20) {
        return Fail("control character in string");
      } else {
        out->push_back(static_cast<char>(c));
        ++p_;
      }
    }
    return Fail("unterminated string");
  }

  Status ParseUnicodeEscape(std::string* out) {
    // p_ points at 'u'.
    uint32_t cp = 0;
    MUPPET_RETURN_IF_ERROR(ParseHex4(&cp));
    // Surrogate pair?
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (end_ - p_ >= 2 && p_[0] == '\\' && p_[1] == 'u') {
        p_ += 2;
        uint32_t lo = 0;
        MUPPET_RETURN_IF_ERROR(ParseHex4(&lo));
        if (lo >= 0xDC00 && lo <= 0xDFFF) {
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else {
          return Fail("invalid low surrogate");
        }
      } else {
        return Fail("unpaired surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return Fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    // p_ points at 'u'.
    ++p_;
    if (end_ - p_ < 4) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = *p_++;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("invalid hex digit");
    }
    *out = v;
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    const char* num_start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    bool integral = true;
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return Fail("invalid number");
    }
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ < end_ && *p_ == '.') {
      integral = false;
      ++p_;
      if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Fail("invalid fraction");
      }
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      integral = false;
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Fail("invalid exponent");
      }
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    std::string_view text(num_start, static_cast<size_t>(p_ - num_start));
    if (integral) {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec == std::errc() && ptr == text.data() + text.size()) {
        *out = Json(v);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return Fail("unparseable number");
    }
    *out = Json(d);
    return Status::OK();
  }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace muppet
