// A small JSON library. The paper notes (§4.2) that applications "often use
// JSON to encode slates for language independence and flexibility"; the
// example applications in this repo do the same, and the workload generators
// emit tweet/checkin payloads as JSON objects (§2 Example 1).
//
// Design: a single variant-like value type `Json` with parse/serialize.
// Numbers preserve int64 exactly when the source text is integral (slate
// counters must not lose precision through a double round-trip).
#ifndef MUPPET_JSON_JSON_H_
#define MUPPET_JSON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace muppet {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps keys ordered so serialization is deterministic — required
// for the byte-identical determinism tests in tests/core.
using JsonObject = std::map<std::string, Json>;

// A JSON document node. Copyable, movable; equality is deep.
class Json {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kInt,     // integral number (exact int64)
    kDouble,  // non-integral number
    kString,
    kArray,
    kObject,
  };

  // Constructors for each JSON type. Default is null.
  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(int64_t v) : type_(Type::kInt), int_(v) {}
  Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Json(const Json&) = default;
  Json& operator=(const Json&) = default;
  Json(Json&&) noexcept = default;
  Json& operator=(Json&&) noexcept = default;

  static Json MakeArray() { return Json(JsonArray{}); }
  static Json MakeObject() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors. Preconditions: matching type (numbers coerce between
  // int and double).
  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  const JsonArray& AsArray() const { return array_; }
  JsonArray& AsArray() { return array_; }
  const JsonObject& AsObject() const { return object_; }
  JsonObject& AsObject() { return object_; }

  // Object field access. Non-const creates missing fields (and converts a
  // null node into an object, so `j["a"]["b"] = 1` works on a fresh Json).
  Json& operator[](const std::string& key);
  // Const lookup: returns a shared null node when absent.
  const Json& operator[](const std::string& key) const;
  bool Contains(const std::string& key) const;

  // Field access with defaults — the idiom update functions use to
  // initialize slate variables on first touch (paper §3).
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;
  bool GetBool(const std::string& key, bool def = false) const;

  // Array append.
  void Append(Json v);
  size_t size() const;

  // Compact serialization (no whitespace, keys in sorted order).
  std::string Dump() const;
  // Pretty serialization with 2-space indentation.
  std::string DumpPretty() const;

  // Parse a complete JSON document. Trailing non-whitespace is an error.
  static Result<Json> Parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

// Escape a string for embedding in JSON output (adds surrounding quotes).
void JsonEscape(std::string_view s, std::string* out);

}  // namespace muppet

#endif  // MUPPET_JSON_JSON_H_
