#include "kvstore/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace muppet {
namespace kv {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  if (expected_keys == 0) expected_keys = 1;
  if (bits_per_key < 1) bits_per_key = 1;
  size_t bits = expected_keys * static_cast<size_t>(bits_per_key);
  bits = std::max<size_t>(bits, 64);
  bits_.assign((bits + 7) / 8, 0);
  // Optimal number of probes: bits_per_key * ln2, clamped to [1, 30].
  k_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 30);
}

BloomFilter BloomFilter::Deserialize(BytesView data) {
  BloomFilter f;
  const char* p = data.data();
  const char* limit = p + data.size();
  uint32_t k = 0;
  if (!GetVarint32(&p, limit, &k) || k == 0 || k > 30) {
    // Treat malformed filters as "always maybe": correctness preserved, the
    // table read just loses its short-circuit.
    f.k_ = 0;
    return f;
  }
  f.k_ = static_cast<int>(k);
  f.bits_.assign(p, limit);
  return f;
}

void BloomFilter::Add(BytesView key) {
  if (bits_.empty()) return;
  const uint64_t nbits = bits_.size() * 8;
  // Double hashing: h1 + i*h2 (Kirsch–Mitzenmacher).
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1);
  for (int i = 0; i < k_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(BytesView key) const {
  if (k_ == 0 || bits_.empty()) return true;
  const uint64_t nbits = bits_.size() * 8;
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1);
  for (int i = 0; i < k_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

void BloomFilter::Serialize(Bytes* out) const {
  PutVarint32(out, static_cast<uint32_t>(k_));
  out->append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
}

}  // namespace kv
}  // namespace muppet
