// Bloom filter over SSTable keys. Saves a device read for keys a table
// cannot contain — important because Muppet's slate fetch path consults the
// store on every cache miss (§4.2) and compaction can leave several tables.
#ifndef MUPPET_KVSTORE_BLOOM_H_
#define MUPPET_KVSTORE_BLOOM_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace muppet {
namespace kv {

class BloomFilter {
 public:
  // Build an empty filter sized for `expected_keys` at `bits_per_key`
  // (10 bits/key ~ 1% false positives).
  BloomFilter(size_t expected_keys, int bits_per_key = 10);

  // Reconstruct from serialized bytes (as produced by Serialize).
  static BloomFilter Deserialize(BytesView data);

  void Add(BytesView key);

  // False means definitely absent; true means possibly present.
  bool MayContain(BytesView key) const;

  // Append the wire form (varint k, bit array) to *out.
  void Serialize(Bytes* out) const;

  size_t bit_count() const { return bits_.size() * 8; }
  int num_hashes() const { return k_; }

 private:
  BloomFilter() = default;

  int k_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_BLOOM_H_
