#include "kvstore/cluster.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace muppet {
namespace kv {

KvCluster::KvCluster(KvClusterOptions options)
    : options_(std::move(options)),
      clock_(options_.node.clock != nullptr ? options_.node.clock
                                            : SystemClock::Default()) {
  MUPPET_CHECK(options_.num_nodes >= 1);
  if (options_.replication_factor > options_.num_nodes) {
    options_.replication_factor = options_.num_nodes;
  }
  for (int i = 0; i < options_.num_nodes; ++i) {
    NodeOptions node_opts = options_.node;
    node_opts.data_dir =
        options_.node.data_dir + "/node" + std::to_string(i);
    nodes_.push_back(std::make_unique<StorageNode>(std::move(node_opts)));
    up_.push_back(std::make_unique<std::atomic<bool>>(true));
  }
  // Place vnodes on the ring deterministically from the seed.
  for (int i = 0; i < options_.num_nodes; ++i) {
    for (int v = 0; v < options_.vnodes_per_node; ++v) {
      const uint64_t h = Mix64(options_.ring_seed ^
                               (static_cast<uint64_t>(i) << 32) ^
                               static_cast<uint64_t>(v));
      ring_.emplace_back(h, i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

Status KvCluster::Open() {
  for (auto& node : nodes_) {
    MUPPET_RETURN_IF_ERROR(node->Open());
  }
  return Status::OK();
}

std::vector<int> KvCluster::ReplicasFor(BytesView row) const {
  const uint64_t h = Fnv1a64(row);
  std::vector<int> replicas;
  replicas.reserve(static_cast<size_t>(options_.replication_factor));
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, -1));
  for (size_t walked = 0;
       walked < ring_.size() &&
       replicas.size() < static_cast<size_t>(options_.replication_factor);
       ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    const int node = it->second;
    if (std::find(replicas.begin(), replicas.end(), node) ==
        replicas.end()) {
      replicas.push_back(node);
    }
    ++it;
  }
  return replicas;
}

int KvCluster::Required(ConsistencyLevel cl) const {
  switch (cl) {
    case ConsistencyLevel::kOne:
      return 1;
    case ConsistencyLevel::kQuorum:
      return options_.replication_factor / 2 + 1;
    case ConsistencyLevel::kAll:
      return options_.replication_factor;
  }
  return 1;
}

Status KvCluster::Put(const std::string& cf, BytesView row, BytesView column,
                      BytesView value, const WriteOptions& opts,
                      ConsistencyLevel cl) {
  WriteOptions stamped = opts;
  if (stamped.write_ts == 0) stamped.write_ts = clock_->Now();

  int acks = 0;
  Status last_error = Status::OK();
  for (int node : ReplicasFor(row)) {
    if (!NodeIsUp(node)) {
      last_error = Status::Unavailable("kv: node down");
      continue;
    }
    Status s = nodes_[static_cast<size_t>(node)]->Put(cf, row, column, value,
                                                      stamped);
    if (s.ok()) {
      ++acks;
    } else {
      last_error = s;
    }
  }
  if (acks >= Required(cl)) return Status::OK();
  return last_error.ok()
             ? Status::Unavailable("kv: not enough replicas for write")
             : last_error;
}

Status KvCluster::Delete(const std::string& cf, BytesView row,
                         BytesView column, ConsistencyLevel cl) {
  WriteOptions stamped;
  stamped.write_ts = clock_->Now();

  int acks = 0;
  Status last_error = Status::OK();
  for (int node : ReplicasFor(row)) {
    if (!NodeIsUp(node)) {
      last_error = Status::Unavailable("kv: node down");
      continue;
    }
    MUPPET_ASSIGN_OR_RETURN(
        Shard * shard,
        nodes_[static_cast<size_t>(node)]->GetColumnFamily(cf));
    Status s = shard->Delete(row, column, stamped);
    if (s.ok()) {
      ++acks;
    } else {
      last_error = s;
    }
  }
  if (acks >= Required(cl)) return Status::OK();
  return last_error.ok()
             ? Status::Unavailable("kv: not enough replicas for delete")
             : last_error;
}

Result<Record> KvCluster::Get(const std::string& cf, BytesView row,
                              BytesView column, ConsistencyLevel cl) {
  const int required = Required(cl);
  struct Answer {
    int node;
    bool found;
    Record rec;
  };
  std::vector<Answer> answers;

  for (int node : ReplicasFor(row)) {
    if (static_cast<int>(answers.size()) >= required) break;
    if (!NodeIsUp(node)) continue;
    MUPPET_ASSIGN_OR_RETURN(
        Shard * shard,
        nodes_[static_cast<size_t>(node)]->GetColumnFamily(cf));
    Result<Record> r = shard->GetRaw(row, column);
    if (r.ok()) {
      answers.push_back(Answer{node, true, std::move(r).value()});
    } else if (r.status().IsNotFound()) {
      answers.push_back(Answer{node, false, Record{}});
    } else {
      return r.status();
    }
  }
  if (static_cast<int>(answers.size()) < required) {
    return Status::Unavailable("kv: not enough replicas for read");
  }

  // Newest version across answers: (write_ts, seqno is per-node so only a
  // local tiebreak; write_ts is coordinator-stamped and strictly ordered in
  // practice).
  const Answer* newest = nullptr;
  for (const Answer& a : answers) {
    if (!a.found) continue;
    if (newest == nullptr || a.rec.write_ts > newest->rec.write_ts) {
      newest = &a;
    }
  }

  if (newest != nullptr) {
    // Read repair: contacted replicas that returned nothing or an older
    // version get the newest one (Cassandra-style convergence).
    for (const Answer& a : answers) {
      if (&a == newest) continue;
      if (!a.found || a.rec.write_ts < newest->rec.write_ts) {
        Shard* shard = nullptr;
        auto rs = nodes_[static_cast<size_t>(a.node)]->GetColumnFamily(cf);
        if (rs.ok()) shard = rs.value();
        if (shard != nullptr) {
          WriteOptions repair;
          repair.write_ts = newest->rec.write_ts;
          Status s;
          if (newest->rec.tombstone) {
            s = shard->Delete(row, column, repair);
          } else {
            // Preserve remaining TTL as an absolute deadline.
            if (newest->rec.expire_at != kNoExpiry) {
              repair.ttl_micros =
                  newest->rec.expire_at - newest->rec.write_ts;
            }
            s = shard->Put(row, column, newest->rec.value, repair);
          }
          if (s.ok()) read_repairs_.Add();
        }
      }
    }
  }

  const Timestamp now = clock_->Now();
  if (newest == nullptr || newest->rec.tombstone ||
      newest->rec.ExpiredAt(now)) {
    return Status::NotFound("kv: key absent");
  }
  return newest->rec;
}

Status KvCluster::ScanRow(const std::string& cf, BytesView row,
                          std::vector<Record>* out, ConsistencyLevel cl) {
  const int required = Required(cl);
  int answered = 0;
  std::vector<std::vector<Record>> streams;
  for (int node : ReplicasFor(row)) {
    if (answered >= required) break;
    if (!NodeIsUp(node)) continue;
    std::vector<Record> recs;
    Status s = nodes_[static_cast<size_t>(node)]->ScanRow(cf, row, &recs);
    if (!s.ok()) return s;
    streams.push_back(std::move(recs));
    ++answered;
  }
  if (answered < required) {
    return Status::Unavailable("kv: not enough replicas for scan");
  }
  // Merge newest-first by write_ts: sort each key group.
  std::vector<Record> all;
  for (auto& s : streams) {
    std::move(s.begin(), s.end(), std::back_inserter(all));
  }
  std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.write_ts > b.write_ts;
  });
  bool have_last = false;
  Bytes last_key;
  const Timestamp now = clock_->Now();
  for (Record& rec : all) {
    if (have_last && rec.key == last_key) continue;
    have_last = true;
    last_key = rec.key;
    if (rec.tombstone || rec.ExpiredAt(now)) continue;
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

Status KvCluster::ScanAll(const std::string& cf, std::vector<Record>* out) {
  std::vector<Record> all;
  for (int i = 0; i < num_nodes(); ++i) {
    if (!NodeIsUp(i)) continue;
    MUPPET_RETURN_IF_ERROR(nodes_[static_cast<size_t>(i)]->ScanAll(cf, &all));
  }
  // Replicas contribute duplicates; keep the newest per key.
  std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.write_ts > b.write_ts;
  });
  bool have_last = false;
  Bytes last_key;
  const Timestamp now = clock_->Now();
  for (Record& rec : all) {
    if (have_last && rec.key == last_key) continue;
    have_last = true;
    last_key = rec.key;
    if (rec.tombstone || rec.ExpiredAt(now)) continue;
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

void KvCluster::CrashNode(int node) {
  if (node >= 0 && node < num_nodes()) {
    up_[static_cast<size_t>(node)]->store(false);
  }
}

void KvCluster::RestoreNode(int node) {
  if (node >= 0 && node < num_nodes()) {
    up_[static_cast<size_t>(node)]->store(true);
  }
}

bool KvCluster::NodeIsUp(int node) const {
  if (node < 0 || node >= num_nodes()) return false;
  return up_[static_cast<size_t>(node)]->load();
}

Status KvCluster::FlushAll() {
  for (int i = 0; i < num_nodes(); ++i) {
    if (!NodeIsUp(i)) continue;
    MUPPET_RETURN_IF_ERROR(nodes_[static_cast<size_t>(i)]->FlushAll());
  }
  return Status::OK();
}

}  // namespace kv
}  // namespace muppet
