// The distributed key-value store cluster, standing in for Cassandra.
// The paper's application config "identifies a Cassandra cluster (by its
// machine names and service TCP port), a key space within the cluster, and
// a column family" and lets applications pick a write/read quorum: "any
// single machine ..., a majority of replicas ..., or all of the replicas"
// (§4.2). KvCluster reproduces that contract: N storage nodes, consistent-
// hash replica placement, ONE/QUORUM/ALL consistency, read repair, and
// crash/restore of individual nodes.
#ifndef MUPPET_KVSTORE_CLUSTER_H_
#define MUPPET_KVSTORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/status.h"
#include "kvstore/node.h"

namespace muppet {
namespace kv {

enum class ConsistencyLevel : uint8_t {
  kOne = 1,     // any single replica
  kQuorum = 2,  // majority of replicas
  kAll = 3,     // every replica
};

struct KvClusterOptions {
  int num_nodes = 3;
  // Copies of each key (paper: "replicas where the data is assigned").
  int replication_factor = 3;
  // Virtual nodes per physical node on the placement ring.
  int vnodes_per_node = 32;
  uint64_t ring_seed = 0x5eedull;
  // Template for every node; data_dir becomes "<data_dir>/node<i>".
  NodeOptions node;
};

class KvCluster {
 public:
  explicit KvCluster(KvClusterOptions options);

  KvCluster(const KvCluster&) = delete;
  KvCluster& operator=(const KvCluster&) = delete;

  // Open all nodes (creates directories; replays WALs on restart).
  Status Open();

  // Coordinator-side operations. A write succeeds when at least
  // Required(cl) replicas accept it; a read succeeds when at least
  // Required(cl) replicas answer, returning the newest version among them
  // (and repairing stale contacted replicas).
  Status Put(const std::string& cf, BytesView row, BytesView column,
             BytesView value, const WriteOptions& opts = {},
             ConsistencyLevel cl = ConsistencyLevel::kQuorum);
  Status Delete(const std::string& cf, BytesView row, BytesView column,
                ConsistencyLevel cl = ConsistencyLevel::kQuorum);
  Result<Record> Get(const std::string& cf, BytesView row, BytesView column,
                     ConsistencyLevel cl = ConsistencyLevel::kQuorum);

  // Row scan from Required(cl) replicas, merged newest-first.
  Status ScanRow(const std::string& cf, BytesView row,
                 std::vector<Record>* out,
                 ConsistencyLevel cl = ConsistencyLevel::kOne);

  // Full scan of a column family across all live nodes, deduplicated to
  // the newest version per key, in key order. Supports §5's bulk slate
  // dumps; like Cassandra, this is a heavy operation meant for offline
  // processing, not the event path.
  Status ScanAll(const std::string& cf, std::vector<Record>* out);

  // Fault injection.
  void CrashNode(int node);
  void RestoreNode(int node);
  bool NodeIsUp(int node) const;

  // Replica node indices for a row, in ring order (size = RF).
  std::vector<int> ReplicasFor(BytesView row) const;

  // How many replica acks a consistency level needs.
  int Required(ConsistencyLevel cl) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  StorageNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }

  // Flush all memtables on all live nodes.
  Status FlushAll();

  int64_t read_repairs() const { return read_repairs_.Get(); }

 private:
  KvClusterOptions options_;
  Clock* clock_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::vector<std::unique_ptr<std::atomic<bool>>> up_;
  // Sorted (hash, node) placement ring.
  std::vector<std::pair<uint64_t, int>> ring_;
  Counter read_repairs_;
};

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_CLUSTER_H_
