#include "kvstore/compaction.h"

#include <algorithm>
#include <numeric>

namespace muppet {
namespace kv {

std::vector<std::vector<size_t>> PickSizeTieredCompactions(
    const std::vector<uint64_t>& table_sizes, const CompactionPolicy& policy) {
  std::vector<size_t> order(table_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table_sizes[a] < table_sizes[b];
  });

  std::vector<std::vector<size_t>> groups;
  std::vector<size_t> bucket;
  uint64_t bucket_min = 0;

  auto close_bucket = [&]() {
    if (static_cast<int>(bucket.size()) >= policy.min_threshold) {
      if (static_cast<int>(bucket.size()) > policy.max_threshold) {
        bucket.resize(static_cast<size_t>(policy.max_threshold));
      }
      groups.push_back(bucket);
    }
    bucket.clear();
  };

  for (size_t idx : order) {
    const uint64_t size = table_sizes[idx];
    if (bucket.empty()) {
      bucket.push_back(idx);
      bucket_min = size;
      continue;
    }
    // Tables bucket together while the largest stays within ratio of the
    // smallest (sizes arrive ascending).
    if (static_cast<double>(size) <=
        static_cast<double>(std::max<uint64_t>(bucket_min, 1)) *
            policy.bucket_ratio) {
      bucket.push_back(idx);
    } else {
      close_bucket();
      bucket.push_back(idx);
      bucket_min = size;
    }
  }
  close_bucket();
  return groups;
}

std::vector<Record> MergeRecordStreams(std::vector<std::vector<Record>> inputs,
                                       Timestamp now, bool drop_garbage) {
  // Concatenate then sort by (key asc, seqno desc); first occurrence of a
  // key is its newest version. Input sizes are bounded by the compaction
  // policy, so an O(n log n) sort is simpler than a k-way heap and fast
  // enough.
  std::vector<Record> all;
  size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  all.reserve(total);
  for (auto& in : inputs) {
    std::move(in.begin(), in.end(), std::back_inserter(all));
  }
  std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seqno > b.seqno;
  });

  std::vector<Record> out;
  out.reserve(all.size());
  bool have_last = false;
  Bytes last_key;
  for (Record& rec : all) {
    if (have_last && rec.key == last_key) continue;  // shadowed version
    have_last = true;
    last_key = rec.key;
    if (drop_garbage && (rec.tombstone || rec.ExpiredAt(now))) continue;
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace kv
}  // namespace muppet
