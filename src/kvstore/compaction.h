// Size-tiered compaction, Cassandra-style. The paper's §4.2 motivates it:
// each flush of a hot row adds another file that reads must check, so the
// store periodically merges similar-sized SSTables — and those compactions
// compete with slate fetches for I/O capacity (which is why the authors ran
// on SSDs). bench_kvstore (E11) reproduces both effects.
#ifndef MUPPET_KVSTORE_COMPACTION_H_
#define MUPPET_KVSTORE_COMPACTION_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "kvstore/format.h"

namespace muppet {
namespace kv {

struct CompactionPolicy {
  // A size tier compacts once it holds at least this many tables.
  int min_threshold = 4;
  // Cap on tables merged at once (bounds compaction memory).
  int max_threshold = 32;
  // Two tables share a tier if their sizes are within this factor.
  double bucket_ratio = 1.5;
};

// Given table sizes (index-aligned with the caller's table list), return
// groups of table indices to merge, per the size-tiered policy. Groups are
// disjoint; an empty result means no compaction is due.
std::vector<std::vector<size_t>> PickSizeTieredCompactions(
    const std::vector<uint64_t>& table_sizes, const CompactionPolicy& policy);

// Merge multiple record streams (one per input table, each sorted by key)
// into one sorted stream keeping only the newest version of each key.
// If `drop_garbage` is true (merge covers the whole keyspace history),
// tombstones and records expired at `now` are dropped entirely; otherwise
// they are retained so they keep shadowing older tables.
std::vector<Record> MergeRecordStreams(std::vector<std::vector<Record>> inputs,
                                       Timestamp now, bool drop_garbage);

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_COMPACTION_H_
