// Storage-device latency model. The paper runs Cassandra on SSDs and
// explains why (§4.2): cold-cache slate fetches need random-read capacity,
// and compactions need I/O bandwidth concurrently. We reproduce that
// trade-off (EXPERIMENTS.md E11) by charging each SSTable access a
// profile-dependent latency against an injectable clock — a SimulatedClock
// makes the comparison free of real sleeps, a SystemClock makes it tangible.
#ifndef MUPPET_KVSTORE_DEVICE_H_
#define MUPPET_KVSTORE_DEVICE_H_

#include <atomic>

#include "common/clock.h"
#include "common/metrics.h"

namespace muppet {
namespace kv {

struct DeviceProfile {
  // Latency charged per random access (seek/queue).
  Timestamp seek_micros = 0;
  // Transfer cost per KiB moved.
  double read_micros_per_kib = 0.0;
  double write_micros_per_kib = 0.0;

  // Instantaneous device (default for unit tests).
  static DeviceProfile None() { return {}; }

  // Commodity SATA SSD circa the paper: ~80us random read, ~400 MiB/s.
  static DeviceProfile Ssd() {
    return DeviceProfile{.seek_micros = 80,
                         .read_micros_per_kib = 2.5,
                         .write_micros_per_kib = 3.0};
  }

  // 7200rpm disk: ~8ms seek, ~120 MiB/s sequential.
  static DeviceProfile Hdd() {
    return DeviceProfile{.seek_micros = 8000,
                         .read_micros_per_kib = 8.0,
                         .write_micros_per_kib = 8.0};
  }
};

// Charges latencies and keeps I/O accounting. Thread-safe.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceProfile profile = DeviceProfile::None(),
                       Clock* clock = nullptr)
      : profile_(profile),
        clock_(clock != nullptr ? clock : SystemClock::Default()) {}

  void OnRandomRead(size_t bytes) {
    Charge(profile_.seek_micros +
           static_cast<Timestamp>(profile_.read_micros_per_kib *
                                  (static_cast<double>(bytes) / 1024.0)));
    random_reads_.Add();
    bytes_read_.Add(static_cast<int64_t>(bytes));
  }

  void OnSequentialRead(size_t bytes) {
    Charge(static_cast<Timestamp>(profile_.read_micros_per_kib *
                                  (static_cast<double>(bytes) / 1024.0)));
    bytes_read_.Add(static_cast<int64_t>(bytes));
  }

  void OnSequentialWrite(size_t bytes) {
    Charge(static_cast<Timestamp>(profile_.write_micros_per_kib *
                                  (static_cast<double>(bytes) / 1024.0)));
    writes_.Add();
    bytes_written_.Add(static_cast<int64_t>(bytes));
  }

  int64_t random_reads() const { return random_reads_.Get(); }
  int64_t writes() const { return writes_.Get(); }
  int64_t bytes_read() const { return bytes_read_.Get(); }
  int64_t bytes_written() const { return bytes_written_.Get(); }
  // Total latency charged so far, in microseconds.
  int64_t busy_micros() const { return busy_micros_.Get(); }

  const DeviceProfile& profile() const { return profile_; }

 private:
  void Charge(Timestamp micros) {
    if (micros <= 0) return;
    busy_micros_.Add(micros);
    clock_->SleepFor(micros);
  }

  DeviceProfile profile_;
  Clock* clock_;
  Counter random_reads_;
  Counter writes_;
  Counter bytes_read_;
  Counter bytes_written_;
  Counter busy_micros_;
};

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_DEVICE_H_
