// On-disk and in-memory record format shared by the memtable, WAL, and
// SSTables, plus the Cassandra-style composite key encoding.
//
// The paper (§4.2) stores slate S(U,k) "as a value at row k and column U"
// within a column family. We encode (row, column) into a single ordered
// storage key so one sorted structure serves point gets and row scans.
#ifndef MUPPET_KVSTORE_FORMAT_H_
#define MUPPET_KVSTORE_FORMAT_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace muppet {
namespace kv {

// A single versioned record. `expire_at` == kNoExpiry means live forever —
// the paper's default slate TTL ("set to 'forever' by default", §3).
constexpr Timestamp kNoExpiry = 0;

struct Record {
  Bytes key;            // composite storage key (see EncodeStorageKey)
  Bytes value;          // empty for tombstones
  uint64_t seqno = 0;   // per-shard monotonically increasing version
  Timestamp write_ts = 0;   // clock time of the write (for read repair)
  Timestamp expire_at = kNoExpiry;  // absolute deadline; kNoExpiry = never
  bool tombstone = false;

  bool ExpiredAt(Timestamp now) const {
    return expire_at != kNoExpiry && now >= expire_at;
  }
};

// Composite key encoding. Rows are escape-terminated so that the encoding
// of (row, column) sorts first by row bytes, then by column bytes, and a
// row prefix can be formed for scans:
//   0x00 in row -> 0x00 0x01 ; row terminator -> 0x00 0x00 ; column appended.
inline Bytes EncodeStorageKey(BytesView row, BytesView column) {
  Bytes out;
  out.reserve(row.size() + column.size() + 4);
  for (char c : row) {
    if (c == '\0') {
      out.push_back('\0');
      out.push_back('\1');
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\0');
  out.push_back('\0');
  out.append(column.data(), column.size());
  return out;
}

// Prefix that all keys of `row` share (and no other row's keys share).
inline Bytes EncodeRowPrefix(BytesView row) {
  return EncodeStorageKey(row, BytesView());
}

// Inverse of EncodeStorageKey. Returns false on malformed input.
inline bool DecodeStorageKey(BytesView storage_key, Bytes* row,
                             Bytes* column) {
  row->clear();
  column->clear();
  size_t i = 0;
  const size_t n = storage_key.size();
  while (i < n) {
    char c = storage_key[i];
    if (c == '\0') {
      if (i + 1 >= n) return false;
      char next = storage_key[i + 1];
      if (next == '\0') {
        // Row terminator; the rest is the column.
        column->assign(storage_key.data() + i + 2, n - i - 2);
        return true;
      }
      if (next == '\1') {
        row->push_back('\0');
        i += 2;
        continue;
      }
      return false;
    }
    row->push_back(c);
    ++i;
  }
  return false;  // missing terminator
}

// Serialize a record (without its CRC framing) for WAL and SSTable blocks:
//   varint32 key_len, key, varint32 value_len, value,
//   varint64 seqno, varint64 write_ts, varint64 expire_at, flags byte.
inline void EncodeRecord(const Record& rec, Bytes* out) {
  PutLengthPrefixed(out, rec.key);
  PutLengthPrefixed(out, rec.value);
  PutVarint64(out, rec.seqno);
  PutVarint64(out, static_cast<uint64_t>(rec.write_ts));
  PutVarint64(out, static_cast<uint64_t>(rec.expire_at));
  out->push_back(rec.tombstone ? 1 : 0);
}

// Parse one record from [*p, limit), advancing *p. Returns Corruption on
// truncation.
inline Status DecodeRecord(const char** p, const char* limit, Record* rec) {
  BytesView key, value;
  uint64_t seqno = 0, write_ts = 0, expire_at = 0;
  if (!GetLengthPrefixed(p, limit, &key) ||
      !GetLengthPrefixed(p, limit, &value) ||
      !GetVarint64(p, limit, &seqno) || !GetVarint64(p, limit, &write_ts) ||
      !GetVarint64(p, limit, &expire_at) || *p >= limit) {
    return Status::Corruption("kv: truncated record");
  }
  const uint8_t flags = static_cast<uint8_t>(**p);
  ++(*p);
  if (flags > 1) return Status::Corruption("kv: bad record flags");
  rec->key.assign(key);
  rec->value.assign(value);
  rec->seqno = seqno;
  rec->write_ts = static_cast<Timestamp>(write_ts);
  rec->expire_at = static_cast<Timestamp>(expire_at);
  rec->tombstone = flags == 1;
  return Status::OK();
}

// True if `a` should shadow `b` when both versions of the same key meet
// (higher seqno wins; seqnos are unique per shard).
inline bool Newer(const Record& a, const Record& b) {
  return a.seqno > b.seqno;
}

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_FORMAT_H_
