#include "kvstore/memtable.h"

namespace muppet {
namespace kv {

namespace {
constexpr size_t kPerEntryOverhead = 64;  // map node + bookkeeping estimate
}  // namespace

void MemTable::Put(Record rec) {
  MutexLock lock(mutex_);
  auto it = entries_.find(rec.key);
  if (it != entries_.end()) {
    bytes_ -= it->second.key.size() + it->second.value.size();
    bytes_ += rec.key.size() + rec.value.size();
    it->second = std::move(rec);
  } else {
    bytes_ += rec.key.size() + rec.value.size() + kPerEntryOverhead;
    Bytes key = rec.key;
    entries_.emplace(std::move(key), std::move(rec));
  }
}

bool MemTable::Get(BytesView key, Record* rec) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  *rec = it->second;
  return true;
}

std::vector<Record> MemTable::Scan(BytesView prefix) const {
  MutexLock lock(mutex_);
  std::vector<Record> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix.data(), prefix.size()) !=
        0) {
      break;
    }
    out.push_back(it->second);
  }
  return out;
}

std::vector<Record> MemTable::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<Record> out;
  out.reserve(entries_.size());
  for (const auto& [key, rec] : entries_) out.push_back(rec);
  return out;
}

size_t MemTable::entry_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

size_t MemTable::approximate_bytes() const {
  MutexLock lock(mutex_);
  return bytes_;
}

void MemTable::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

}  // namespace kv
}  // namespace muppet
