// In-memory write buffer (Cassandra's "memory table", paper §4.2). The paper
// leans on write buffering: "it is advantageous for us to delay flushing the
// writes (i.e., the memory table) to disk as long as possible" — repeated
// overwrites of a popular slate coalesce here and cost one device write at
// flush time. bench_kvstore (E11) measures exactly that effect.
#ifndef MUPPET_KVSTORE_MEMTABLE_H_
#define MUPPET_KVSTORE_MEMTABLE_H_

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/sync.h"
#include "kvstore/format.h"

namespace muppet {
namespace kv {

// Sorted, thread-safe buffer of the newest version per key. Overwrites
// replace in place (coalescing); deletes are buffered as tombstones so they
// shadow older SSTable versions until compaction drops them.
class MemTable {
 public:
  MemTable() = default;

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Insert or overwrite. `rec.key` is the composite storage key.
  void Put(Record rec);

  // Lookup. Returns true and copies the record if the key is present
  // (including as a tombstone — the caller interprets it). TTL expiry is
  // the caller's concern: the memtable stores what it is given.
  bool Get(BytesView key, Record* rec) const;

  // All records with storage keys beginning with `prefix`, in key order.
  std::vector<Record> Scan(BytesView prefix) const;

  // All records in key order (for flush).
  std::vector<Record> Snapshot() const;

  size_t entry_count() const;
  // Approximate heap footprint: keys + values + per-entry overhead.
  size_t approximate_bytes() const;
  bool empty() const { return entry_count() == 0; }

  void Clear();

  static constexpr LockLevel kLockLevel = LockLevel::kStoreIo;

 private:
  mutable Mutex mutex_{kLockLevel};
  // Key is owned by the Record; the map key references... no: map key is its
  // own copy. Memory is doubled for keys, acceptable for a write buffer.
  std::map<Bytes, Record, std::less<>> entries_ MUPPET_GUARDED_BY(mutex_);
  size_t bytes_ MUPPET_GUARDED_BY(mutex_) = 0;
};

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_MEMTABLE_H_
