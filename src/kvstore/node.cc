#include "kvstore/node.h"

#include <algorithm>
#include <filesystem>

#include "common/logging.h"

namespace muppet {
namespace kv {

namespace fs = std::filesystem;

namespace {

constexpr char kWalFileName[] = "wal.log";

bool IsSstFile(const fs::path& p) { return p.extension() == ".sst"; }

}  // namespace

Shard::Shard(std::string dir, const NodeOptions& options, Clock* clock)
    : dir_(std::move(dir)), options_(options), clock_(clock) {}

std::string Shard::NextTablePath() {
  char name[32];
  std::snprintf(name, sizeof(name), "%06llu.sst",
                static_cast<unsigned long long>(
                    next_table_number_.fetch_add(1)));
  return dir_ + "/" + name;
}

Status Shard::Open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("shard: create dir " + dir_ + ": " + ec.message());
  }

  // Open existing SSTables, newest (highest number) first.
  std::vector<fs::path> sst_paths;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (IsSstFile(entry.path())) sst_paths.push_back(entry.path());
  }
  std::sort(sst_paths.begin(), sst_paths.end());
  uint64_t max_table = 0;
  uint64_t max_seqno = 0;
  {
    MutexLock lock(tables_mutex_);
    for (auto it = sst_paths.rbegin(); it != sst_paths.rend(); ++it) {
      auto reader = SsTableReader::Open(it->string(), device_);
      if (!reader.ok()) {
        MUPPET_LOG(kWarning) << "shard: skipping unreadable table "
                             << it->string() << ": "
                             << reader.status().ToString();
        continue;
      }
      max_seqno = std::max(max_seqno, reader.value()->max_seqno());
      tables_.push_back(std::move(reader).value());
      const uint64_t number =
          std::strtoull(it->stem().string().c_str(), nullptr, 10);
      max_table = std::max(max_table, number);
    }
  }
  next_table_number_.store(max_table + 1);

  // Replay the WAL into the memtable.
  const std::string wal_path = dir_ + "/" + kWalFileName;
  std::vector<Record> replayed;
  bool truncated = false;
  MUPPET_RETURN_IF_ERROR(ReplayWal(wal_path, &replayed, &truncated));
  if (truncated) {
    MUPPET_LOG(kWarning) << "shard: WAL " << wal_path
                         << " had a torn tail; replayed the intact prefix";
  }
  for (Record& rec : replayed) {
    max_seqno = std::max(max_seqno, rec.seqno);
    memtable_.Put(std::move(rec));
  }
  next_seqno_.store(max_seqno + 1);

  if (options_.enable_wal) {
    MUPPET_RETURN_IF_ERROR(wal_.Open(wal_path));
  }
  return Status::OK();
}

Status Shard::WriteRecord(Record rec) {
  if (options_.enable_wal) {
    MUPPET_RETURN_IF_ERROR(wal_.Append(rec, options_.sync_wal));
  }
  memtable_.Put(std::move(rec));
  if (memtable_.approximate_bytes() >= options_.memtable_flush_bytes) {
    MutexLock lock(tables_mutex_);
    // Re-check under the lock: a concurrent writer may have flushed.
    if (memtable_.approximate_bytes() >= options_.memtable_flush_bytes) {
      MUPPET_RETURN_IF_ERROR(FlushLocked());
      if (options_.auto_compact) {
        MUPPET_RETURN_IF_ERROR(MaybeCompactLocked());
      }
    }
  }
  return Status::OK();
}

Status Shard::Put(BytesView row, BytesView column, BytesView value,
                  const WriteOptions& opts) {
  Record rec;
  rec.key = EncodeStorageKey(row, column);
  rec.value.assign(value);
  rec.seqno = next_seqno_.fetch_add(1);
  rec.write_ts = opts.write_ts != 0 ? opts.write_ts : clock_->Now();
  rec.expire_at =
      opts.ttl_micros > 0 ? rec.write_ts + opts.ttl_micros : kNoExpiry;
  rec.tombstone = false;
  return WriteRecord(std::move(rec));
}

Status Shard::Delete(BytesView row, BytesView column,
                     const WriteOptions& opts) {
  Record rec;
  rec.key = EncodeStorageKey(row, column);
  rec.seqno = next_seqno_.fetch_add(1);
  rec.write_ts = opts.write_ts != 0 ? opts.write_ts : clock_->Now();
  rec.expire_at = kNoExpiry;
  rec.tombstone = true;
  return WriteRecord(std::move(rec));
}

// Newest version of `key` across all SSTables, reconciled by seqno.
// Size-tiered compaction merges tables that are not contiguous in time, so
// table order alone cannot identify the newest version (Cassandra solves
// the same problem by comparing cell timestamps on read). Requires
// tables_mutex_ held.
Status Shard::GetFromTablesLocked(BytesView key, Record* out) {
  bool found = false;
  Record best;
  for (const auto& table : tables_) {
    Record rec;
    Status s = table->Get(key, &rec);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    if (!found || Newer(rec, best)) {
      best = std::move(rec);
      found = true;
    }
  }
  if (!found) return Status::NotFound("kv: key absent");
  *out = std::move(best);
  return Status::OK();
}

Result<Record> Shard::GetRaw(BytesView row, BytesView column) {
  const Bytes key = EncodeStorageKey(row, column);
  Record rec;
  // The memtable always holds the newest version when present: its seqnos
  // postdate every flushed table's.
  if (memtable_.Get(key, &rec)) return rec;
  MutexLock lock(tables_mutex_);
  MUPPET_RETURN_IF_ERROR(GetFromTablesLocked(key, &rec));
  return rec;
}

Result<Record> Shard::Get(BytesView row, BytesView column) {
  const Bytes key = EncodeStorageKey(row, column);
  const Timestamp now = clock_->Now();

  Record rec;
  if (memtable_.Get(key, &rec)) {
    if (rec.tombstone || rec.ExpiredAt(now)) {
      return Status::NotFound("kv: key deleted or expired");
    }
    return rec;
  }

  MutexLock lock(tables_mutex_);
  MUPPET_RETURN_IF_ERROR(GetFromTablesLocked(key, &rec));
  if (rec.tombstone || rec.ExpiredAt(now)) {
    return Status::NotFound("kv: key deleted or expired");
  }
  return rec;
}

Status Shard::ScanRow(BytesView row, std::vector<Record>* out) {
  const Bytes prefix = EncodeRowPrefix(row);
  const Timestamp now = clock_->Now();

  std::vector<std::vector<Record>> streams;
  streams.push_back(memtable_.Scan(prefix));
  {
    MutexLock lock(tables_mutex_);
    for (const auto& table : tables_) {
      std::vector<Record> recs;
      MUPPET_RETURN_IF_ERROR(table->Scan(prefix, &recs));
      streams.push_back(std::move(recs));
    }
  }
  // Newest version wins; garbage dropped for the reader's view.
  std::vector<Record> merged =
      MergeRecordStreams(std::move(streams), now, /*drop_garbage=*/true);
  for (Record& rec : merged) out->push_back(std::move(rec));
  return Status::OK();
}

Status Shard::ScanAll(std::vector<Record>* out) {
  const Timestamp now = clock_->Now();
  std::vector<std::vector<Record>> streams;
  streams.push_back(memtable_.Snapshot());
  {
    MutexLock lock(tables_mutex_);
    for (const auto& table : tables_) {
      std::vector<Record> recs;
      MUPPET_RETURN_IF_ERROR(table->ReadAll(&recs));
      streams.push_back(std::move(recs));
    }
  }
  std::vector<Record> merged =
      MergeRecordStreams(std::move(streams), now, /*drop_garbage=*/true);
  for (Record& rec : merged) out->push_back(std::move(rec));
  return Status::OK();
}

Status Shard::Flush() {
  MutexLock lock(tables_mutex_);
  return FlushLocked();
}

Status Shard::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  std::vector<Record> records = memtable_.Snapshot();
  const std::string path = NextTablePath();
  MUPPET_RETURN_IF_ERROR(
      WriteSsTable(path, records, device_, options_.block_bytes));
  auto reader = SsTableReader::Open(path, device_);
  if (!reader.ok()) return reader.status();
  tables_.insert(tables_.begin(), std::move(reader).value());
  memtable_.Clear();
  flushes_.fetch_add(1);

  if (options_.enable_wal) {
    // The WAL's contents are now covered by the SSTable; start fresh.
    MUPPET_RETURN_IF_ERROR(wal_.CloseAndRemove());
    MUPPET_RETURN_IF_ERROR(wal_.Open(dir_ + "/" + kWalFileName));
  }
  return Status::OK();
}

Status Shard::MaybeCompactLocked() {
  std::vector<uint64_t> sizes;
  sizes.reserve(tables_.size());
  for (const auto& t : tables_) sizes.push_back(t->file_size());
  const auto groups = PickSizeTieredCompactions(sizes, options_.compaction);
  for (const auto& group : groups) {
    const bool covers_all = group.size() == tables_.size();
    MUPPET_RETURN_IF_ERROR(CompactGroupLocked(group, covers_all));
    break;  // table indices shift after a compaction; rest next time
  }
  return Status::OK();
}

Status Shard::CompactGroupLocked(const std::vector<size_t>& group,
                                 bool drop_garbage) {
  std::vector<std::vector<Record>> inputs;
  inputs.reserve(group.size());
  for (size_t idx : group) {
    std::vector<Record> recs;
    MUPPET_RETURN_IF_ERROR(tables_[idx]->ReadAll(&recs));
    inputs.push_back(std::move(recs));
  }
  std::vector<Record> merged =
      MergeRecordStreams(std::move(inputs), clock_->Now(), drop_garbage);

  const std::string path = NextTablePath();
  std::vector<std::string> old_paths;
  if (!merged.empty()) {
    MUPPET_RETURN_IF_ERROR(
        WriteSsTable(path, merged, device_, options_.block_bytes));
  }

  // Replace inputs with the output, preserving newest-first order: the
  // merged table takes the position of the newest input.
  std::vector<size_t> sorted_group = group;
  std::sort(sorted_group.begin(), sorted_group.end());
  const size_t insert_pos = sorted_group.front();
  for (auto it = sorted_group.rbegin(); it != sorted_group.rend(); ++it) {
    old_paths.push_back(tables_[*it]->path());
    tables_.erase(tables_.begin() + static_cast<long>(*it));
  }
  if (!merged.empty()) {
    auto reader = SsTableReader::Open(path, device_);
    if (!reader.ok()) return reader.status();
    tables_.insert(tables_.begin() + static_cast<long>(
                       std::min(insert_pos, tables_.size())),
                   std::move(reader).value());
  }
  for (const std::string& p : old_paths) {
    std::error_code ec;
    fs::remove(p, ec);
  }
  compactions_.fetch_add(1);
  return Status::OK();
}

Status Shard::CompactAll() {
  MutexLock lock(tables_mutex_);
  MUPPET_RETURN_IF_ERROR(FlushLocked());
  if (tables_.size() < 2 && !tables_.empty()) {
    // Still rewrite the single table to purge garbage.
  }
  if (tables_.empty()) return Status::OK();
  std::vector<size_t> all(tables_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return CompactGroupLocked(all, /*drop_garbage=*/true);
}

size_t Shard::sstable_count() const {
  MutexLock lock(tables_mutex_);
  return tables_.size();
}

StorageNode::StorageNode(NodeOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Default()),
      device_(options_.device, clock_) {}

Status StorageNode::Open() {
  std::error_code ec;
  fs::create_directories(options_.data_dir, ec);
  if (ec) {
    return Status::IOError("node: create dir " + options_.data_dir + ": " +
                           ec.message());
  }
  // Open every column family directory found on disk (recovery).
  for (const auto& entry : fs::directory_iterator(options_.data_dir, ec)) {
    if (entry.is_directory()) {
      MUPPET_ASSIGN_OR_RETURN(Shard * shard,
                              GetColumnFamily(entry.path().filename()));
      (void)shard;
    }
  }
  return Status::OK();
}

Result<Shard*> StorageNode::GetColumnFamily(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("node: bad column family name: " + name);
  }
  MutexLock lock(cf_mutex_);
  auto it = shards_.find(name);
  if (it != shards_.end()) return it->second.get();

  auto shard = std::make_unique<Shard>(options_.data_dir + "/" + name,
                                       options_, clock_);
  shard->device_ = &device_;
  MUPPET_RETURN_IF_ERROR(shard->Open());
  Shard* raw = shard.get();
  shards_.emplace(name, std::move(shard));
  return raw;
}

Status StorageNode::Put(const std::string& cf, BytesView row,
                        BytesView column, BytesView value,
                        const WriteOptions& opts) {
  MUPPET_ASSIGN_OR_RETURN(Shard * shard, GetColumnFamily(cf));
  return shard->Put(row, column, value, opts);
}

Status StorageNode::Delete(const std::string& cf, BytesView row,
                           BytesView column) {
  MUPPET_ASSIGN_OR_RETURN(Shard * shard, GetColumnFamily(cf));
  return shard->Delete(row, column);
}

Result<Record> StorageNode::Get(const std::string& cf, BytesView row,
                                BytesView column) {
  MUPPET_ASSIGN_OR_RETURN(Shard * shard, GetColumnFamily(cf));
  return shard->Get(row, column);
}

Status StorageNode::ScanRow(const std::string& cf, BytesView row,
                            std::vector<Record>* out) {
  MUPPET_ASSIGN_OR_RETURN(Shard * shard, GetColumnFamily(cf));
  return shard->ScanRow(row, out);
}

Status StorageNode::ScanAll(const std::string& cf,
                            std::vector<Record>* out) {
  MUPPET_ASSIGN_OR_RETURN(Shard * shard, GetColumnFamily(cf));
  return shard->ScanAll(out);
}

Status StorageNode::FlushAll() {
  std::vector<Shard*> shards;
  {
    MutexLock lock(cf_mutex_);
    for (auto& [name, shard] : shards_) shards.push_back(shard.get());
  }
  for (Shard* shard : shards) {
    MUPPET_RETURN_IF_ERROR(shard->Flush());
  }
  return Status::OK();
}

std::vector<std::string> StorageNode::ColumnFamilies() const {
  MutexLock lock(cf_mutex_);
  std::vector<std::string> out;
  for (const auto& [name, shard] : shards_) out.push_back(name);
  return out;
}

}  // namespace kv
}  // namespace muppet
