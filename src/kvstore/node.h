// A single storage node: the unit that "runs the Cassandra program" in the
// paper's store cluster (§4.2). A node hosts one shard per column family;
// each shard is an LSM stack (WAL -> memtable -> SSTables with size-tiered
// compaction) over a shared device model.
#ifndef MUPPET_KVSTORE_NODE_H_
#define MUPPET_KVSTORE_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "kvstore/compaction.h"
#include "kvstore/device.h"
#include "kvstore/format.h"
#include "kvstore/memtable.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"

namespace muppet {
namespace kv {

struct NodeOptions {
  // Directory for this node's data (one subdirectory per column family).
  std::string data_dir;
  // Memtable flush threshold in bytes. The paper argues for large write
  // buffers ("delay flushing the writes ... as long as possible").
  size_t memtable_flush_bytes = 4u << 20;
  // Write-ahead logging (off trades durability for write latency).
  bool enable_wal = true;
  // fsync every WAL append (Muppet prefers latency, so default off).
  bool sync_wal = false;
  // Storage device latency profile (SSD/HDD/None).
  DeviceProfile device = DeviceProfile::None();
  // Clock for TTL expiry and device latency. nullptr -> system clock.
  Clock* clock = nullptr;
  // Size-tiered compaction policy; compaction runs inline after flushes.
  CompactionPolicy compaction;
  // Disable automatic compaction (benchmarks that measure read amp).
  bool auto_compact = true;
  // SSTable data block size.
  size_t block_bytes = kDefaultBlockBytes;
};

struct WriteOptions {
  // Relative time-to-live; 0 = live forever. The store may garbage-collect
  // the value after now + ttl (paper §4.2 "Flushing, Quorum, and
  // Time-to-Live Parameters").
  Timestamp ttl_micros = 0;
  // Explicit write timestamp; 0 means the shard stamps its clock. The
  // cluster coordinator stamps one timestamp per logical write so all
  // replicas agree on version order.
  Timestamp write_ts = 0;
};

// One column family on one node.
class Shard {
 public:
  Shard(std::string dir, const NodeOptions& options, Clock* clock);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Create the directory, replay the WAL, open existing SSTables.
  Status Open();

  Status Put(BytesView row, BytesView column, BytesView value,
             const WriteOptions& opts);
  Status Delete(BytesView row, BytesView column,
                const WriteOptions& opts = {});

  // Point read. NotFound covers absent, tombstoned, and TTL-expired keys.
  Result<Record> Get(BytesView row, BytesView column);

  // Point read of the newest stored version, *including* tombstones and
  // expired records. The cluster coordinator needs these to reconcile
  // replicas (a newer tombstone must beat an older live value).
  Result<Record> GetRaw(BytesView row, BytesView column);

  // All live columns of a row, in column order (bulk slate reads, §5).
  Status ScanRow(BytesView row, std::vector<Record>* out);

  // Every live record in the shard, in key order ("large-volume row reads
  // from the durable key-value store itself", §5 Bulk Reading of Slates).
  Status ScanAll(std::vector<Record>* out);

  // Force the memtable to an SSTable regardless of size.
  Status Flush();

  // Merge everything into a single table, dropping tombstones and expired
  // records.
  Status CompactAll();

  // Stats.
  size_t memtable_bytes() const { return memtable_.approximate_bytes(); }
  size_t sstable_count() const MUPPET_EXCLUDES(tables_mutex_);
  uint64_t flush_count() const { return flushes_.load(); }
  uint64_t compaction_count() const { return compactions_.load(); }

  static constexpr LockLevel kTablesLockLevel = LockLevel::kStoreTables;

 private:
  Status WriteRecord(Record rec);
  Status GetFromTablesLocked(BytesView key, Record* out)
      MUPPET_REQUIRES(tables_mutex_);
  Status FlushLocked() MUPPET_REQUIRES(tables_mutex_);
  Status MaybeCompactLocked() MUPPET_REQUIRES(tables_mutex_);
  Status CompactGroupLocked(const std::vector<size_t>& group,
                            bool drop_garbage) MUPPET_REQUIRES(tables_mutex_);
  std::string NextTablePath();

  const std::string dir_;
  const NodeOptions& options_;
  Clock* clock_;
  DeviceModel* device_ = nullptr;  // owned by StorageNode, set via set_device
  friend class StorageNode;

  MemTable memtable_;
  WalWriter wal_;
  std::atomic<uint64_t> next_seqno_{1};
  std::atomic<uint64_t> next_table_number_{1};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> compactions_{0};

  // Newest-first list of open tables. Guarded for flush/compact vs read;
  // log rotation (wal_) and memtable snapshot/clear also happen under it,
  // hence store-tables sits above store-io in the lock hierarchy.
  mutable Mutex tables_mutex_{kTablesLockLevel};
  std::vector<std::unique_ptr<SsTableReader>> tables_
      MUPPET_GUARDED_BY(tables_mutex_);
};

// A storage node hosting many column families.
class StorageNode {
 public:
  explicit StorageNode(NodeOptions options);

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  // Create/open the data directory and any column families found in it.
  Status Open();

  // Get (create on demand) a column family shard.
  Result<Shard*> GetColumnFamily(const std::string& name);

  Status Put(const std::string& cf, BytesView row, BytesView column,
             BytesView value, const WriteOptions& opts = {});
  Status Delete(const std::string& cf, BytesView row, BytesView column);
  Result<Record> Get(const std::string& cf, BytesView row, BytesView column);
  Status ScanRow(const std::string& cf, BytesView row,
                 std::vector<Record>* out);
  Status ScanAll(const std::string& cf, std::vector<Record>* out);

  // Flush all shards (shutdown path).
  Status FlushAll();

  DeviceModel& device() { return device_; }
  const NodeOptions& options() const { return options_; }
  std::vector<std::string> ColumnFamilies() const MUPPET_EXCLUDES(cf_mutex_);

  static constexpr LockLevel kCfLockLevel = LockLevel::kStoreNode;

 private:
  NodeOptions options_;
  Clock* clock_;
  DeviceModel device_;

  // Shard::Open() (WAL replay, table loads) runs under cf_mutex_, so the
  // registry sits above every shard-internal lock.
  mutable Mutex cf_mutex_{kCfLockLevel};
  std::map<std::string, std::unique_ptr<Shard>> shards_
      MUPPET_GUARDED_BY(cf_mutex_);
};

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_NODE_H_
