#include "kvstore/sstable.h"

#include <cerrno>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace muppet {
namespace kv {

namespace {

constexpr size_t kFooterBytes = 56;

void AppendFramedBlock(BytesView payload, Bytes* file_image) {
  PutFixed32(file_image, static_cast<uint32_t>(payload.size()));
  file_image->append(payload.data(), payload.size());
  PutFixed32(file_image, Crc32(payload));
}

}  // namespace

Status WriteSsTable(const std::string& path,
                    const std::vector<Record>& records, DeviceModel* device,
                    size_t block_bytes) {
  // Build the whole file image in memory, then write it in one sequential
  // pass — memtable flushes are bounded in size, and this keeps the write
  // atomic-ish (we write to a temp name and rename).
  Bytes image;
  std::vector<std::tuple<Bytes, uint64_t, uint32_t>> index;  // key, off, len
  BloomFilter bloom(records.size());

  Bytes block;
  Bytes block_first_key;
  auto flush_block = [&]() {
    if (block.empty()) return;
    const uint64_t offset = image.size();
    const uint32_t framed_len = static_cast<uint32_t>(block.size() + 8);
    AppendFramedBlock(block, &image);
    index.emplace_back(block_first_key, offset, framed_len);
    block.clear();
  };

  const Bytes* prev_key = nullptr;
  for (const Record& rec : records) {
    if (prev_key != nullptr && !(*prev_key < rec.key)) {
      return Status::InvalidArgument(
          "sstable: records not sorted/unique at key");
    }
    prev_key = &rec.key;
    if (block.empty()) block_first_key = rec.key;
    EncodeRecord(rec, &block);
    bloom.Add(rec.key);
    if (block.size() >= block_bytes) flush_block();
  }
  flush_block();

  // Index block.
  const uint64_t index_off = image.size();
  Bytes index_block;
  for (const auto& [key, off, len] : index) {
    PutLengthPrefixed(&index_block, key);
    PutVarint64(&index_block, off);
    PutVarint32(&index_block, len);
  }
  AppendFramedBlock(index_block, &image);
  const uint64_t index_len = image.size() - index_off;

  // Bloom block.
  const uint64_t bloom_off = image.size();
  Bytes bloom_block;
  bloom.Serialize(&bloom_block);
  AppendFramedBlock(bloom_block, &image);
  const uint64_t bloom_len = image.size() - bloom_off;

  // Footer.
  uint64_t max_seqno = 0;
  for (const Record& rec : records) {
    if (rec.seqno > max_seqno) max_seqno = rec.seqno;
  }
  PutFixed64(&image, index_off);
  PutFixed64(&image, index_len);
  PutFixed64(&image, bloom_off);
  PutFixed64(&image, bloom_len);
  PutFixed64(&image, records.size());
  PutFixed64(&image, max_seqno);
  PutFixed64(&image, kSstMagic);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("sstable: create " + tmp + ": " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const int close_rc = std::fclose(f);
  if (written != image.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("sstable: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("sstable: rename to " + path + " failed");
  }
  if (device != nullptr) device->OnSequentialWrite(image.size());
  return Status::OK();
}

Result<std::unique_ptr<SsTableReader>> SsTableReader::Open(
    const std::string& path, DeviceModel* device) {
  std::unique_ptr<SsTableReader> reader(new SsTableReader(path, device));
  Status s = reader->Load();
  if (!s.ok()) return s;
  return reader;
}

SsTableReader::~SsTableReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SsTableReader::ReadRange(uint64_t offset, size_t length, Bytes* out) {
  out->resize(length);
  MutexLock lock(file_mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("sstable: closed");
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("sstable: seek failed in " + path_);
  }
  if (std::fread(out->data(), 1, length, file_) != length) {
    return Status::Corruption("sstable: truncated read in " + path_);
  }
  return Status::OK();
}

Status SsTableReader::Load() {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("sstable: open " + path_ + ": " +
                           std::strerror(errno));
  }
  std::fseek(file_, 0, SEEK_END);
  const long size = std::ftell(file_);
  if (size < static_cast<long>(kFooterBytes)) {
    return Status::Corruption("sstable: file too small: " + path_);
  }
  file_size_ = static_cast<uint64_t>(size);

  Bytes footer;
  MUPPET_RETURN_IF_ERROR(
      ReadRange(file_size_ - kFooterBytes, kFooterBytes, &footer));
  const char* fp = footer.data();
  const uint64_t index_off = DecodeFixed64(fp);
  const uint64_t index_len = DecodeFixed64(fp + 8);
  const uint64_t bloom_off = DecodeFixed64(fp + 16);
  const uint64_t bloom_len = DecodeFixed64(fp + 24);
  entry_count_ = DecodeFixed64(fp + 32);
  max_seqno_ = DecodeFixed64(fp + 40);
  const uint64_t magic = DecodeFixed64(fp + 48);
  if (magic != kSstMagic) {
    return Status::Corruption("sstable: bad magic in " + path_);
  }
  if (index_off + index_len > file_size_ || bloom_off + bloom_len > file_size_) {
    return Status::Corruption("sstable: footer offsets out of range");
  }

  // Index block (framed).
  Bytes framed;
  MUPPET_RETURN_IF_ERROR(ReadRange(index_off, index_len, &framed));
  if (framed.size() < 8) return Status::Corruption("sstable: bad index frame");
  const uint32_t ilen = DecodeFixed32(framed.data());
  if (ilen + 8 != framed.size()) {
    return Status::Corruption("sstable: index frame length mismatch");
  }
  BytesView ipayload(framed.data() + 4, ilen);
  if (Crc32(ipayload) != DecodeFixed32(framed.data() + 4 + ilen)) {
    return Status::Corruption("sstable: index crc mismatch");
  }
  const char* p = ipayload.data();
  const char* limit = p + ipayload.size();
  while (p < limit) {
    BytesView key;
    uint64_t off = 0;
    uint32_t len = 0;
    if (!GetLengthPrefixed(&p, limit, &key) || !GetVarint64(&p, limit, &off) ||
        !GetVarint32(&p, limit, &len)) {
      return Status::Corruption("sstable: bad index entry");
    }
    index_.push_back(IndexEntry{Bytes(key), off, len});
  }

  // Bloom block (framed).
  MUPPET_RETURN_IF_ERROR(ReadRange(bloom_off, bloom_len, &framed));
  if (framed.size() < 8) return Status::Corruption("sstable: bad bloom frame");
  const uint32_t blen = DecodeFixed32(framed.data());
  if (blen + 8 != framed.size()) {
    return Status::Corruption("sstable: bloom frame length mismatch");
  }
  BytesView bpayload(framed.data() + 4, blen);
  if (Crc32(bpayload) != DecodeFixed32(framed.data() + 4 + blen)) {
    return Status::Corruption("sstable: bloom crc mismatch");
  }
  bloom_ = BloomFilter::Deserialize(bpayload);

  // Opening a table is one sequential pass over its metadata.
  if (device_ != nullptr) {
    device_->OnSequentialRead(index_len + bloom_len + kFooterBytes);
  }

  if (!index_.empty()) {
    smallest_key_ = index_.front().first_key;
    // Largest key requires decoding the final block; do it once at open.
    std::vector<Record> last_block;
    MUPPET_RETURN_IF_ERROR(
        ReadBlock(index_.size() - 1, /*random=*/false, &last_block));
    if (!last_block.empty()) largest_key_ = last_block.back().key;
  }
  return Status::OK();
}

Status SsTableReader::ReadBlock(size_t i, bool random,
                                std::vector<Record>* out) {
  const IndexEntry& entry = index_[i];
  Bytes framed;
  MUPPET_RETURN_IF_ERROR(ReadRange(entry.offset, entry.length, &framed));
  if (framed.size() < 8) return Status::Corruption("sstable: bad block frame");
  const uint32_t len = DecodeFixed32(framed.data());
  if (len + 8 != framed.size()) {
    return Status::Corruption("sstable: block frame length mismatch");
  }
  BytesView payload(framed.data() + 4, len);
  if (Crc32(payload) != DecodeFixed32(framed.data() + 4 + len)) {
    return Status::Corruption("sstable: block crc mismatch in " + path_);
  }
  if (device_ != nullptr) {
    if (random) {
      device_->OnRandomRead(framed.size());
    } else {
      device_->OnSequentialRead(framed.size());
    }
  }
  const char* p = payload.data();
  const char* limit = p + payload.size();
  while (p < limit) {
    Record rec;
    MUPPET_RETURN_IF_ERROR(DecodeRecord(&p, limit, &rec));
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

Status SsTableReader::Get(BytesView key, Record* rec) {
  if (index_.empty()) return Status::NotFound("sstable: empty table");
  if (!bloom_.MayContain(key)) {
    return Status::NotFound("sstable: bloom negative");
  }
  // Last block whose first_key <= key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BytesView(index_[mid].first_key) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return Status::NotFound("sstable: before first key");
  std::vector<Record> block;
  MUPPET_RETURN_IF_ERROR(ReadBlock(lo - 1, /*random=*/true, &block));
  for (Record& r : block) {
    if (BytesView(r.key) == key) {
      *rec = std::move(r);
      return Status::OK();
    }
  }
  return Status::NotFound("sstable: key absent");
}

Status SsTableReader::Scan(BytesView prefix, std::vector<Record>* out) {
  if (index_.empty()) return Status::OK();
  // First block that could contain the prefix: last block whose first_key
  // <= prefix (the prefix could start mid-block), then forward.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BytesView(index_[mid].first_key) <= prefix) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t start = (lo == 0) ? 0 : lo - 1;
  for (size_t i = start; i < index_.size(); ++i) {
    // Stop once a block starts past the prefix range.
    if (i > start &&
        BytesView(index_[i].first_key).substr(
            0, std::min(prefix.size(), index_[i].first_key.size())) > prefix) {
      break;
    }
    std::vector<Record> block;
    MUPPET_RETURN_IF_ERROR(ReadBlock(i, /*random=*/i == start, &block));
    bool past_range = false;
    for (Record& r : block) {
      const BytesView k(r.key);
      if (k.size() >= prefix.size() && k.substr(0, prefix.size()) == prefix) {
        out->push_back(std::move(r));
      } else if (k > prefix && k.substr(0, prefix.size()) > prefix) {
        past_range = true;
        break;
      }
    }
    if (past_range) break;
  }
  return Status::OK();
}

Status SsTableReader::ReadAll(std::vector<Record>* out) {
  out->reserve(out->size() + entry_count_);
  for (size_t i = 0; i < index_.size(); ++i) {
    MUPPET_RETURN_IF_ERROR(ReadBlock(i, /*random=*/false, out));
  }
  return Status::OK();
}

}  // namespace kv
}  // namespace muppet
