// SSTable: immutable sorted table file produced by memtable flushes and
// compactions (the Cassandra design the paper's §4.2 discussion rests on:
// "the more times a row is flushed to disk by the store since its last file
// compaction, the more files will have to be checked for the row").
//
// File layout:
//   repeated data blocks:   [u32 len][records...][u32 crc]
//   index block:            per data block: len-prefixed first_key,
//                           varint64 file_offset, varint32 block_len
//   bloom block:            serialized BloomFilter over all keys
//   footer (56 bytes):      fixed64 index_off, index_len, bloom_off,
//                           bloom_len, entry_count, max_seqno, magic
#ifndef MUPPET_KVSTORE_SSTABLE_H_
#define MUPPET_KVSTORE_SSTABLE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"
#include "kvstore/bloom.h"
#include "kvstore/device.h"
#include "kvstore/format.h"

namespace muppet {
namespace kv {

constexpr uint64_t kSstMagic = 0x4d55505053535431ULL;  // "MUPPSST1"
constexpr size_t kDefaultBlockBytes = 4096;

// Write `records` (must be sorted by key, unique keys) to a new SSTable at
// `path`. Charges the device model for the sequential write.
Status WriteSsTable(const std::string& path,
                    const std::vector<Record>& records, DeviceModel* device,
                    size_t block_bytes = kDefaultBlockBytes);

// Read-only handle on an SSTable. Open() loads the index and bloom filter
// into memory; Get/Scan read data blocks through the device model.
// Thread-safe for concurrent reads.
class SsTableReader {
 public:
  static Result<std::unique_ptr<SsTableReader>> Open(const std::string& path,
                                                     DeviceModel* device);

  ~SsTableReader();

  SsTableReader(const SsTableReader&) = delete;
  SsTableReader& operator=(const SsTableReader&) = delete;

  // Point lookup. NotFound if absent (bloom filter short-circuits most
  // true negatives without touching the device).
  Status Get(BytesView key, Record* rec);

  // Append all records whose key starts with `prefix` to *out, in key order.
  Status Scan(BytesView prefix, std::vector<Record>* out);

  // Sequentially decode the entire table (compaction input).
  Status ReadAll(std::vector<Record>* out);

  const std::string& path() const { return path_; }
  uint64_t entry_count() const { return entry_count_; }
  uint64_t max_seqno() const { return max_seqno_; }
  uint64_t file_size() const { return file_size_; }
  const Bytes& smallest_key() const { return smallest_key_; }
  const Bytes& largest_key() const { return largest_key_; }

 private:
  struct IndexEntry {
    Bytes first_key;
    uint64_t offset;
    uint32_t length;  // full framed block length
  };

  SsTableReader(std::string path, DeviceModel* device)
      : path_(std::move(path)), device_(device) {}

  Status Load();

  // Read and verify the framed block at index position `i`; decode records
  // into *out. `random` selects the device charge model.
  Status ReadBlock(size_t i, bool random, std::vector<Record>* out);

  Status ReadRange(uint64_t offset, size_t length, Bytes* out);

  std::string path_;
  DeviceModel* device_;
  // Seek+read pairs on the shared handle are serialized by file_mutex_
  // once Open() publishes the reader; Load() runs pre-publication and so
  // touches file_ unlocked. The same applies to the metadata below:
  // written only by Load(), immutable once Open() returns the reader.
  // muppet-lint: allow(guarded): Load() runs pre-publication
  std::FILE* file_ = nullptr;
  Mutex file_mutex_{LockLevel::kStoreIo};

  // muppet-lint: allow(guarded): Load() runs pre-publication
  std::vector<IndexEntry> index_;
  // muppet-lint: allow(guarded): Load() runs pre-publication
  BloomFilter bloom_{0};
  // muppet-lint: allow(guarded): Load() runs pre-publication
  uint64_t entry_count_ = 0;
  // muppet-lint: allow(guarded): Load() runs pre-publication
  uint64_t max_seqno_ = 0;
  // muppet-lint: allow(guarded): Load() runs pre-publication
  uint64_t file_size_ = 0;
  // muppet-lint: allow(guarded): Load() runs pre-publication
  Bytes smallest_key_;
  // muppet-lint: allow(guarded): Load() runs pre-publication
  Bytes largest_key_;
};

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_SSTABLE_H_
