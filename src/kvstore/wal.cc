#include "kvstore/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/hash.h"

namespace muppet {
namespace kv {

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status WalWriter::Open(const std::string& path) {
  MutexLock lock(mutex_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("wal: already open");
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("wal: open " + path + ": " + std::strerror(errno));
  }
  file_ = f;
  path_ = path;
  return Status::OK();
}

Status WalWriter::Append(const Record& rec, bool sync) {
  Bytes payload;
  EncodeRecord(rec, &payload);
  const uint32_t crc = Crc32(payload);
  Bytes frame;
  frame.reserve(payload.size() + 8);
  PutFixed32(&frame, crc);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);

  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal: not open");
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("wal: short write");
  }
  if (sync) {
    if (std::fflush(file_) != 0) return Status::IOError("wal: flush failed");
    ::fsync(::fileno(file_));
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal: not open");
  if (std::fflush(file_) != 0) return Status::IOError("wal: flush failed");
  ::fsync(::fileno(file_));
  return Status::OK();
}

Status WalWriter::Close() {
  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("wal: close failed");
  return Status::OK();
}

Status WalWriter::CloseAndRemove() {
  MUPPET_RETURN_IF_ERROR(Close());
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  if (ec) return Status::IOError("wal: remove " + path_ + ": " + ec.message());
  return Status::OK();
}

Status ReplayWal(const std::string& path, std::vector<Record>* records,
                 bool* truncated_tail) {
  records->clear();
  if (truncated_tail != nullptr) *truncated_tail = false;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::OK();  // no log -> nothing to replay
  }

  Bytes header(8, '\0');
  Bytes payload;
  while (true) {
    const size_t got = std::fread(header.data(), 1, 8, f);
    if (got == 0) break;  // clean EOF
    if (got < 8) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    const uint32_t crc = DecodeFixed32(header.data());
    const uint32_t len = DecodeFixed32(header.data() + 4);
    if (len > (64u << 20)) {  // sanity: no 64MB+ records
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    if (Crc32(payload) != crc) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    Record rec;
    const char* p = payload.data();
    Status s = DecodeRecord(&p, p + payload.size(), &rec);
    if (!s.ok()) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    records->push_back(std::move(rec));
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace kv
}  // namespace muppet
