// Write-ahead log. Persists every accepted write before it is acknowledged
// so that a node restart replays the memtable (paper §4.2: "persistent
// slates help resuming, restarting, or recovering the application from
// crashes"). Record framing: [u32 crc][u32 len][payload]; replay stops at
// the first corrupt/truncated record (a torn tail is normal after a crash).
#ifndef MUPPET_KVSTORE_WAL_H_
#define MUPPET_KVSTORE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"
#include "kvstore/format.h"

namespace muppet {
namespace kv {

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Open (create or append to) the log at `path`.
  Status Open(const std::string& path);

  // Append one record. `sync` forces an fflush+fsync (durability at the
  // cost of latency; Muppet favors latency, so the default is buffered).
  Status Append(const Record& rec, bool sync = false);

  Status Sync();

  // Close and delete the log file (after a successful memtable flush, the
  // log's contents are covered by an SSTable).
  Status CloseAndRemove();

  Status Close();

  bool is_open() const MUPPET_NO_THREAD_SAFETY_ANALYSIS {
    // Unsynchronized peek; callers serialize Open/Close externally (the
    // shard holds tables_mutex_ across log rotation).
    return file_ != nullptr;
  }
  const std::string& path() const { return path_; }

  static constexpr LockLevel kLockLevel = LockLevel::kStoreIo;

 private:
  Mutex mutex_{kLockLevel};
  std::FILE* file_ MUPPET_GUARDED_BY(mutex_) = nullptr;
  // muppet-lint: allow(guarded): written only by Open(), stable after
  std::string path_;
};

// Replay every intact record of the log at `path` in append order.
// A missing file yields an empty result (fresh node). Corrupt tails are
// tolerated; corruption before the tail is reported in *truncated_tail but
// replay still returns the prefix.
Status ReplayWal(const std::string& path, std::vector<Record>* records,
                 bool* truncated_tail);

}  // namespace kv
}  // namespace muppet

#endif  // MUPPET_KVSTORE_WAL_H_
