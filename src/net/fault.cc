#include "net/fault.h"

#include <algorithm>

#include "common/hash.h"

namespace muppet {

namespace {

std::string MachineName(MachineId m) {
  return m == kAnyMachine ? std::string("*") : std::to_string(m);
}

// Independent unit-interval roll derived from one content-addressed base.
double UnitRoll(uint64_t base, uint64_t salt) {
  return static_cast<double>(Mix64(base ^ salt) >> 11) * 0x1.0p-53;
}

}  // namespace

std::string FaultRule::ToString() const {
  std::string out = "link " + MachineName(from) + "->" + MachineName(to);
  out += " window=[" + std::to_string(start_micros) + ",";
  out += end_micros == kFaultTimeMax ? "inf" : std::to_string(end_micros);
  out += ")";
  if (drop_probability > 0.0) {
    out += " drop=" + std::to_string(drop_probability);
  }
  if (duplicate_probability > 0.0) {
    out += " dup=" + std::to_string(duplicate_probability);
  }
  if (reorder_probability > 0.0) {
    out += " reorder=" + std::to_string(reorder_probability) +
           " reorder_window=" + std::to_string(reorder_window);
  }
  if (delay_micros > 0) out += " delay=" + std::to_string(delay_micros) + "us";
  return out;
}

std::string FaultAction::ToString() const {
  std::string out = "t=" + std::to_string(at_micros) + " ";
  switch (kind) {
    case Kind::kCrashMachine:
      out += "crash machine " + std::to_string(a);
      break;
    case Kind::kRestartMachine:
      out += "restart machine " + std::to_string(a);
      break;
    case Kind::kPartition:
      out += "partition " + std::to_string(a) + " <-/-> " + std::to_string(b);
      break;
    case Kind::kHeal:
      out += "heal " + std::to_string(a) + " <--> " + std::to_string(b);
      break;
    case Kind::kCrashStoreNode:
      out += "crash store node " + std::to_string(a);
      break;
    case Kind::kRestoreStoreNode:
      out += "restore store node " + std::to_string(a);
      break;
  }
  return out;
}

FaultPlan& FaultPlan::Drop(MachineId from, MachineId to, double p,
                           Timestamp start, Timestamp end) {
  FaultRule r;
  r.from = from;
  r.to = to;
  r.drop_probability = p;
  r.start_micros = start;
  r.end_micros = end;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::Duplicate(MachineId from, MachineId to, double p,
                                Timestamp start, Timestamp end) {
  FaultRule r;
  r.from = from;
  r.to = to;
  r.duplicate_probability = p;
  r.start_micros = start;
  r.end_micros = end;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::Reorder(MachineId from, MachineId to, double p,
                              uint32_t window, Timestamp start,
                              Timestamp end) {
  FaultRule r;
  r.from = from;
  r.to = to;
  r.reorder_probability = p;
  r.reorder_window = window == 0 ? 1 : window;
  r.start_micros = start;
  r.end_micros = end;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::Delay(MachineId from, MachineId to,
                            Timestamp delay_micros, Timestamp start,
                            Timestamp end) {
  FaultRule r;
  r.from = from;
  r.to = to;
  r.delay_micros = delay_micros;
  r.start_micros = start;
  r.end_micros = end;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::CrashAt(Timestamp at, MachineId machine) {
  actions.push_back({at, FaultAction::Kind::kCrashMachine, machine});
  return *this;
}

FaultPlan& FaultPlan::RestartAt(Timestamp at, MachineId machine) {
  actions.push_back({at, FaultAction::Kind::kRestartMachine, machine});
  return *this;
}

FaultPlan& FaultPlan::PartitionAt(Timestamp at, MachineId a, MachineId b) {
  actions.push_back({at, FaultAction::Kind::kPartition, a, b});
  return *this;
}

FaultPlan& FaultPlan::HealAt(Timestamp at, MachineId a, MachineId b) {
  actions.push_back({at, FaultAction::Kind::kHeal, a, b});
  return *this;
}

FaultPlan& FaultPlan::CrashStoreNodeAt(Timestamp at, int node) {
  actions.push_back({at, FaultAction::Kind::kCrashStoreNode,
                     static_cast<MachineId>(node)});
  return *this;
}

FaultPlan& FaultPlan::RestoreStoreNodeAt(Timestamp at, int node) {
  actions.push_back({at, FaultAction::Kind::kRestoreStoreNode,
                     static_cast<MachineId>(node)});
  return *this;
}

std::string FaultPlan::ToString() const {
  std::string out = "fault plan seed=" + std::to_string(seed) + "\n";
  for (const FaultRule& r : rules) out += "  rule:   " + r.ToString() + "\n";
  std::vector<FaultAction> sorted = actions;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at_micros < y.at_micros;
                   });
  for (const FaultAction& a : sorted) {
    out += "  action: " + a.ToString() + "\n";
  }
  if (rules.empty() && actions.empty()) out += "  (no faults)\n";
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  std::stable_sort(plan_.actions.begin(), plan_.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at_micros < y.at_micros;
                   });
  if (!plan_.actions.empty()) {
    next_due_.store(plan_.actions.front().at_micros,
                    std::memory_order_release);
  }
}

FaultDecision FaultInjector::OnMessage(MachineId from, MachineId to,
                                       BytesView payload, uint64_t signature,
                                       Timestamp now) {
  FaultDecision d;
  if (plan_.rules.empty()) return d;

  // Content-addressed roll base: link + content + occurrence index. The
  // occurrence map is the only shared state touched per message.
  const uint64_t content = signature != 0 ? signature : Fnv1a64(payload);
  const uint64_t link =
      HashCombine(static_cast<uint64_t>(from) + 0x9e3779b97f4a7c15ULL,
                  static_cast<uint64_t>(to) + 1);
  const uint64_t key = HashCombine(link, content);
  uint32_t occ = 0;
  {
    MutexLock lock(mutex_);
    occ = occurrence_[key]++;
  }
  const uint64_t base =
      Mix64(plan_.seed ^ key) ^ Mix64(static_cast<uint64_t>(occ) + 0x51edULL);

  for (const FaultRule& rule : plan_.rules) {
    if (!rule.Matches(from, to, now)) continue;
    d.extra_delay_micros += rule.delay_micros;
    if (d.verdict != FaultDecision::Verdict::kDeliver) continue;
    if (rule.drop_probability > 0.0 &&
        UnitRoll(base, 0xD401ULL) < rule.drop_probability) {
      d.verdict = FaultDecision::Verdict::kDrop;
    } else if (rule.duplicate_probability > 0.0 &&
               UnitRoll(base, 0xD402ULL) < rule.duplicate_probability) {
      d.verdict = FaultDecision::Verdict::kDuplicate;
    } else if (rule.reorder_probability > 0.0 &&
               UnitRoll(base, 0xD403ULL) < rule.reorder_probability) {
      d.verdict = FaultDecision::Verdict::kHold;
      d.hold_for =
          1 + static_cast<uint32_t>(Mix64(base ^ 0xD404ULL) %
                                    rule.reorder_window);
    }
  }

  switch (d.verdict) {
    case FaultDecision::Verdict::kDrop:
      dropped_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultDecision::Verdict::kDuplicate:
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultDecision::Verdict::kHold:
      held_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultDecision::Verdict::kDeliver:
      break;
  }
  if (d.extra_delay_micros > 0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

bool FaultInjector::Partitioned(MachineId a, MachineId b) const {
  MutexLock lock(mutex_);
  if (partitions_.empty()) return false;
  return partitions_.count(NormalizePair(a, b)) > 0;
}

std::vector<FaultAction> FaultInjector::TakeDueActions(Timestamp now) {
  std::vector<FaultAction> due;
  MutexLock lock(mutex_);
  while (next_action_ < plan_.actions.size() &&
         plan_.actions[next_action_].at_micros <= now) {
    const FaultAction& a = plan_.actions[next_action_++];
    if (a.kind == FaultAction::Kind::kPartition) {
      partitions_.insert(NormalizePair(a.a, a.b));
    } else if (a.kind == FaultAction::Kind::kHeal) {
      partitions_.erase(NormalizePair(a.a, a.b));
    }
    due.push_back(a);
  }
  next_due_.store(next_action_ < plan_.actions.size()
                      ? plan_.actions[next_action_].at_micros
                      : kFaultTimeMax,
                  std::memory_order_release);
  return due;
}

}  // namespace muppet
