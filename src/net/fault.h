// Scripted, seed-reproducible fault injection for the simulated cluster.
//
// The paper's failure machinery (§4.3–4.4) — dead-peer detection via failed
// sends, master broadcast, hash-ring rerouting, queue-overflow policies —
// is only trustworthy if it can be exercised under *controlled* chaos. A
// FaultPlan is a declarative description of every fault in a run: per-link
// rules (drop / duplicate / reorder / delay, each an independent
// probability over a virtual-time window) plus per-machine actions
// (crash / restart / partition / heal / store-node outages) that fire at
// scripted virtual times. The FaultInjector enforces a plan at runtime.
//
// Determinism contract: the same plan (same seed) applied to the same
// logical message multiset produces the same fault decisions, regardless
// of thread interleaving. Per-message decisions are *content-addressed*:
// each roll is a pure function of
//
//     (plan seed, link, message content signature, occurrence index)
//
// where the occurrence index counts prior messages with the same signature
// on the same link. No shared RNG stream is consumed in message order, so
// two runs whose threads interleave differently still drop/duplicate/hold
// the same multiset of messages. Senders pass a content signature that
// excludes fields assigned from global mutable state (event seq numbers);
// see EventFaultSignature() in engine/wire.h.
#ifndef MUPPET_NET_FAULT_H_
#define MUPPET_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/sync.h"
#include "net/transport.h"

namespace muppet {

// Wildcard for FaultRule link endpoints: matches every machine.
constexpr MachineId kAnyMachine = -1;

constexpr Timestamp kFaultTimeMax = INT64_MAX;

// One per-link fault rule, armed while `start_micros <= now < end_micros`
// (virtual time). `from`/`to` of kAnyMachine match any machine. The three
// probabilities are rolled independently per message with precedence
// drop > duplicate > reorder; `delay_micros` applies to every matching
// message (delays from multiple matching rules accumulate).
struct FaultRule {
  MachineId from = kAnyMachine;
  MachineId to = kAnyMachine;
  Timestamp start_micros = 0;
  Timestamp end_micros = kFaultTimeMax;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  // A reordered (held) message is released after at most this many later
  // messages on the same link overtake it — the bounded reorder window.
  uint32_t reorder_window = 2;
  Timestamp delay_micros = 0;

  bool Matches(MachineId f, MachineId t, Timestamp now) const {
    return (from == kAnyMachine || from == f) &&
           (to == kAnyMachine || to == t) && now >= start_micros &&
           now < end_micros;
  }

  std::string ToString() const;
};

// One scripted cluster action, fired once when virtual time reaches
// `at_micros`. Crash/restart name an engine machine; partition/heal name a
// symmetric machine pair; the store variants name a kvstore node index.
struct FaultAction {
  enum class Kind : uint8_t {
    kCrashMachine,
    kRestartMachine,
    kPartition,
    kHeal,
    kCrashStoreNode,
    kRestoreStoreNode,
  };

  Timestamp at_micros = 0;
  Kind kind = Kind::kCrashMachine;
  MachineId a = kInvalidMachine;  // machine, store node, or pair member A
  MachineId b = kInvalidMachine;  // pair member B (partition/heal only)

  std::string ToString() const;
};

// The full scripted timeline for one run. Chainable builder methods keep
// scenario definitions one-expression readable; ToString() prints the
// replayable timeline that failing tests log next to their seed.
struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
  std::vector<FaultAction> actions;

  FaultPlan& Drop(MachineId from, MachineId to, double p,
                  Timestamp start = 0, Timestamp end = kFaultTimeMax);
  FaultPlan& Duplicate(MachineId from, MachineId to, double p,
                       Timestamp start = 0, Timestamp end = kFaultTimeMax);
  FaultPlan& Reorder(MachineId from, MachineId to, double p, uint32_t window,
                     Timestamp start = 0, Timestamp end = kFaultTimeMax);
  FaultPlan& Delay(MachineId from, MachineId to, Timestamp delay_micros,
                   Timestamp start = 0, Timestamp end = kFaultTimeMax);
  FaultPlan& CrashAt(Timestamp at, MachineId machine);
  FaultPlan& RestartAt(Timestamp at, MachineId machine);
  FaultPlan& PartitionAt(Timestamp at, MachineId a, MachineId b);
  FaultPlan& HealAt(Timestamp at, MachineId a, MachineId b);
  FaultPlan& CrashStoreNodeAt(Timestamp at, int node);
  FaultPlan& RestoreStoreNodeAt(Timestamp at, int node);

  bool empty() const { return rules.empty() && actions.empty(); }

  std::string ToString() const;
};

// What the transport should do with one message.
struct FaultDecision {
  enum class Verdict : uint8_t { kDeliver, kDrop, kDuplicate, kHold };
  Verdict verdict = Verdict::kDeliver;
  // Extra one-way latency charged before delivery (sum of matching rules).
  Timestamp extra_delay_micros = 0;
  // For kHold: release after this many later messages on the link.
  uint32_t hold_for = 0;
};

// Runtime enforcement of a FaultPlan. Thread-safe; see the determinism
// contract in the file comment. One injector drives exactly one run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Decide the fate of one message on link from->to at virtual time `now`.
  // `signature` is the sender's content signature (0 = hash the payload —
  // only deterministic when payloads are themselves run-stable).
  FaultDecision OnMessage(MachineId from, MachineId to, BytesView payload,
                          uint64_t signature, Timestamp now);

  // True while an unhealed partition separates a and b (symmetric).
  bool Partitioned(MachineId a, MachineId b) const;

  // Cheap check (one atomic load): any scripted action due at `now`?
  bool HasDueActions(Timestamp now) const {
    return now >= next_due_.load(std::memory_order_acquire);
  }

  // Pop every scripted action due at or before `now`, in timeline order.
  // Each action is returned exactly once; partition/heal actions also
  // update the injector's own partition set as they pass through, so the
  // caller only has to apply crash/restart/store actions.
  std::vector<FaultAction> TakeDueActions(Timestamp now);

  // Fault counters (fired decisions, not rule matches).
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  int64_t duplicated() const {
    return duplicated_.load(std::memory_order_relaxed);
  }
  int64_t held() const { return held_.load(std::memory_order_relaxed); }
  int64_t delayed() const { return delayed_.load(std::memory_order_relaxed); }
  int64_t partitioned_drops() const {
    return partitioned_drops_.load(std::memory_order_relaxed);
  }

  // Called by the transport when a partition eats a message (counter only).
  void NotePartitionedDrop() {
    partitioned_drops_.fetch_add(1, std::memory_order_relaxed);
  }

  static constexpr LockLevel kLockLevel = LockLevel::kFaultInjector;

 private:
  static std::pair<MachineId, MachineId> NormalizePair(MachineId a,
                                                       MachineId b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  FaultPlan plan_;  // actions sorted by at_micros at construction

  mutable Mutex mutex_{kLockLevel};
  // Index of the first not-yet-fired action.
  size_t next_action_ MUPPET_GUARDED_BY(mutex_) = 0;
  // (link, signature) -> occurrences seen, the per-content roll index.
  std::unordered_map<uint64_t, uint32_t> occurrence_ MUPPET_GUARDED_BY(mutex_);
  std::set<std::pair<MachineId, MachineId>> partitions_
      MUPPET_GUARDED_BY(mutex_);

  // at_micros of the first unfired action (kFaultTimeMax when exhausted);
  // lets HasDueActions stay off the mutex on the per-send fast path.
  std::atomic<Timestamp> next_due_{kFaultTimeMax};

  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> duplicated_{0};
  std::atomic<int64_t> held_{0};
  std::atomic<int64_t> delayed_{0};
  std::atomic<int64_t> partitioned_drops_{0};
};

}  // namespace muppet

#endif  // MUPPET_NET_FAULT_H_
