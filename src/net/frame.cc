#include "net/frame.h"

#include <cstring>

#include "common/hash.h"

namespace muppet {
namespace {

constexpr char kMagic[4] = {'M', 'P', 'P', 'T'};
constexpr size_t kCrcOffset = 24;

void PutU32(char* p, uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

}  // namespace

Bytes EncodeFrame(const WireFrame& frame) {
  Bytes out;
  out.resize(kFrameHeaderSize + frame.payload.size());
  char* h = out.data();
  std::memcpy(h, kMagic, 4);
  h[4] = static_cast<char>(kWireVersion);
  h[5] = static_cast<char>(frame.type);
  h[6] = 0;
  h[7] = 0;
  PutU32(h + 8, static_cast<uint32_t>(frame.from));
  PutU32(h + 12, static_cast<uint32_t>(frame.to));
  PutU32(h + 16, frame.count);
  PutU32(h + 20, static_cast<uint32_t>(frame.payload.size()));
  PutU32(h + kCrcOffset, 0);
  std::memcpy(out.data() + kFrameHeaderSize, frame.payload.data(),
              frame.payload.size());
  const uint32_t crc = Crc32(BytesView(out.data(), out.size()));
  PutU32(h + kCrcOffset, crc);
  return out;
}

void FrameDecoder::Feed(BytesView data) {
  // Compact the decoded prefix before growing: keeps the buffer bounded by
  // one partial frame plus the newly fed slice.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > kMaxFramePayload) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data.data(), data.size());
}

Status FrameDecoder::Next(WireFrame* out, bool* have) {
  *have = false;
  if (corrupt_) {
    return Status::Corruption("tcp frame: stream previously corrupted");
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return Status::OK();
  const char* h = buffer_.data() + consumed_;

  if (std::memcmp(h, kMagic, 4) != 0) {
    corrupt_ = true;
    return Status::Corruption("tcp frame: bad magic");
  }
  if (static_cast<uint8_t>(h[4]) != kWireVersion) {
    corrupt_ = true;
    return Status::Corruption("tcp frame: unknown wire version");
  }
  const uint8_t raw_type = static_cast<uint8_t>(h[5]);
  if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(FrameType::kBatch)) {
    corrupt_ = true;
    return Status::Corruption("tcp frame: unknown frame type");
  }
  const uint32_t payload_len = GetU32(h + 20);
  if (payload_len > kMaxFramePayload) {
    // Reject BEFORE buffering payload_len bytes: a flipped bit in the
    // length field must not drive a giant allocation.
    corrupt_ = true;
    return Status::Corruption("tcp frame: oversized payload length");
  }
  const size_t total = kFrameHeaderSize + payload_len;
  if (available < total) return Status::OK();

  // CRC over the whole frame with the crc field zeroed.
  char saved[4];
  char* crc_field = buffer_.data() + consumed_ + kCrcOffset;
  std::memcpy(saved, crc_field, 4);
  const uint32_t wire_crc = GetU32(saved);
  std::memset(crc_field, 0, 4);
  const uint32_t computed = Crc32(BytesView(h, total));
  std::memcpy(crc_field, saved, 4);
  if (computed != wire_crc) {
    corrupt_ = true;
    return Status::Corruption("tcp frame: crc mismatch");
  }

  out->type = static_cast<FrameType>(raw_type);
  out->from = static_cast<MachineId>(GetU32(h + 8));
  out->to = static_cast<MachineId>(GetU32(h + 12));
  out->count = GetU32(h + 16);
  out->payload.assign(h + kFrameHeaderSize, payload_len);
  consumed_ += total;
  *have = true;
  return Status::OK();
}

Bytes EncodeHello(uint32_t node_id, const std::vector<MachineId>& hosted) {
  Bytes out;
  out.resize(8 + 4 * hosted.size());
  char* p = out.data();
  PutU32(p, node_id);
  PutU32(p + 4, static_cast<uint32_t>(hosted.size()));
  for (size_t i = 0; i < hosted.size(); ++i) {
    PutU32(p + 8 + 4 * i, static_cast<uint32_t>(hosted[i]));
  }
  return out;
}

Status DecodeHello(BytesView payload, uint32_t* node_id,
                   std::vector<MachineId>* hosted) {
  if (payload.size() < 8) return Status::Corruption("hello: short payload");
  *node_id = GetU32(payload.data());
  const uint32_t count = GetU32(payload.data() + 4);
  if (payload.size() != 8 + 4 * static_cast<size_t>(count)) {
    return Status::Corruption("hello: length mismatch");
  }
  hosted->clear();
  hosted->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    hosted->push_back(
        static_cast<MachineId>(GetU32(payload.data() + 8 + 4 * i)));
  }
  return Status::OK();
}

}  // namespace muppet
