// Wire framing for the TCP transport: length-prefixed, CRC-protected
// frames carrying the engine's id-addressed payloads between muppetd
// processes. The format is deliberately dumb — fixed little-endian header,
// CRC32 over header+payload — so a truncated or corrupted stream is always
// detected by the decoder, never interpreted (DESIGN.md, "Transport
// backends & deployment model").
//
// Header layout (kHeaderSize = 28 bytes, all integers little-endian):
//
//   offset  size  field
//        0     4  magic "MPPT"
//        4     1  version (kWireVersion)
//        5     1  type (FrameType)
//        6     2  reserved (zero)
//        8     4  from machine id (int32)
//       12     4  to machine id (int32)
//       16     4  count — logical messages in the payload
//       20     4  payload length in bytes
//       24     4  crc32 over header (with this field zeroed) + payload
#ifndef MUPPET_NET_FRAME_H_
#define MUPPET_NET_FRAME_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "net/transport.h"

namespace muppet {

enum class FrameType : uint8_t {
  // Connection handshake: payload is the dialing node's id (u32) followed
  // by its hosted machine ids (u32 count, then count * i32). Sent first on
  // every new connection, both directions.
  kHello = 1,
  // One logical message for machine `to` (payload = engine wire payload).
  kSingle = 2,
  // A batch frame of `count` logical messages (payload = engine batch
  // frame bytes, decoded by the engine's RoutedEventFrameReader).
  kBatch = 3,
};

constexpr size_t kFrameHeaderSize = 28;
constexpr uint8_t kWireVersion = 1;
// Upper bound on a frame payload. A corrupt length field must not drive a
// multi-gigabyte allocation; real batch frames are bounded by the engine's
// coalescer (well under a megabyte).
constexpr uint32_t kMaxFramePayload = 64u << 20;

struct WireFrame {
  FrameType type = FrameType::kSingle;
  MachineId from = kInvalidMachine;
  MachineId to = kInvalidMachine;
  uint32_t count = 1;
  Bytes payload;
};

// Serialize header + payload into one contiguous buffer.
Bytes EncodeFrame(const WireFrame& frame);

// Incremental decoder: feed arbitrary byte slices as they arrive off the
// socket, pull complete frames out. Corruption (bad magic, unknown
// version, oversized length, CRC mismatch) is sticky — the byte stream has
// lost frame alignment and the connection must be torn down.
class FrameDecoder {
 public:
  // Append raw bytes from the socket.
  void Feed(BytesView data);

  // Try to decode the next complete frame. Returns:
  //  * OK with *have = true  — *out holds a validated frame;
  //  * OK with *have = false — need more bytes;
  //  * Corruption            — stream is broken (sticky; every later call
  //                            returns the same error).
  Status Next(WireFrame* out, bool* have);

  size_t buffered() const { return buffer_.size() - consumed_; }
  bool corrupt() const { return corrupt_; }

 private:
  Bytes buffer_;
  size_t consumed_ = 0;  // decoded prefix, compacted opportunistically
  bool corrupt_ = false;
};

// HELLO payload helpers.
Bytes EncodeHello(uint32_t node_id, const std::vector<MachineId>& hosted);
Status DecodeHello(BytesView payload, uint32_t* node_id,
                   std::vector<MachineId>* hosted);

}  // namespace muppet

#endif  // MUPPET_NET_FRAME_H_
