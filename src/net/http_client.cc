#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket.h"

namespace muppet {
namespace {

Status Request(const std::string& host, int port, const std::string& text,
               HttpClientResponse* out, int64_t timeout_micros) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError("socket");
  if (timeout_micros > 0) {
    timeval tv;
    tv.tv_sec = static_cast<time_t>(timeout_micros / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(timeout_micros % 1000000);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd.get(), text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("http send failed");
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::TimedOut("http read failed/timed out");
    }
    if (n == 0) break;  // server closes after the response (HTTP/1.0)
    raw.append(buf, static_cast<size_t>(n));
  }

  // Parse "HTTP/1.x <status> ...\r\n...\r\n\r\n<body>".
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Corruption("malformed http response");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status::Corruption("malformed http status line");
  }
  out->status = std::atoi(raw.c_str() + sp + 1);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Corruption("truncated http headers");
  }
  out->body = raw.substr(header_end + 4);
  return Status::OK();
}

}  // namespace

Status HttpGet(const std::string& host, int port, const std::string& path,
               HttpClientResponse* out, int64_t timeout_micros) {
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  return Request(host, port, req, out, timeout_micros);
}

Status HttpPost(const std::string& host, int port, const std::string& path,
                const std::string& body, HttpClientResponse* out,
                int64_t timeout_micros) {
  const std::string req = "POST " + path + " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  return Request(host, port, req, out, timeout_micros);
}

}  // namespace muppet
