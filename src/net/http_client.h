// Minimal blocking HTTP/1.0 client for intra-cluster calls: muppetd's
// cross-process slate fetches against a peer's admin plane, and
// muppet_loadgen's publish stream. One request per connection (matching
// service/http_server.h, which closes after each response); both calls
// bound the whole exchange with a socket timeout so a hung peer cannot
// wedge the caller.
#ifndef MUPPET_NET_HTTP_CLIENT_H_
#define MUPPET_NET_HTTP_CLIENT_H_

#include <string>

#include "common/status.h"

namespace muppet {

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

// GET `path` from host:port. `timeout_micros` bounds connect + send +
// receive together (0 = no timeout).
Status HttpGet(const std::string& host, int port, const std::string& path,
               HttpClientResponse* out, int64_t timeout_micros = 0);

// POST `body` to `path`.
Status HttpPost(const std::string& host, int port, const std::string& path,
                const std::string& body, HttpClientResponse* out,
                int64_t timeout_micros = 0);

}  // namespace muppet

#endif  // MUPPET_NET_HTTP_CLIENT_H_
