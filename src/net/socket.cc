#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace muppet {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status ParseAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  // Numeric IPv4 only: cluster configs name nodes by address, and skipping
  // the resolver keeps connect attempts non-blocking end to end.
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status TcpListen(const std::string& host, int port, OwnedFd* out,
                 int* bound_port) {
  sockaddr_in addr;
  MUPPET_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) return ErrnoStatus("listen");
  MUPPET_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return ErrnoStatus("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  *out = std::move(fd);
  return Status::OK();
}

Status TcpConnectStart(const std::string& host, int port, OwnedFd* out) {
  sockaddr_in addr;
  MUPPET_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  MUPPET_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    }
  }
  *out = std::move(fd);
  return Status::OK();
}

Status TcpConnectResult(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return ErrnoStatus("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::Unavailable(std::string("connect: ") +
                               std::strerror(err));
  }
  return Status::OK();
}

Status TcpAccept(int listen_fd, OwnedFd* out) {
  *out = OwnedFd();
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    return ErrnoStatus("accept");
  }
  OwnedFd owned(fd);
  MUPPET_RETURN_IF_ERROR(SetNonBlocking(fd));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(owned);
  return Status::OK();
}

ssize_t SocketRead(int fd, void* buf, size_t len) {
  while (true) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

ssize_t SocketWrite(int fd, const void* buf, size_t len) {
  while (true) {
    // MSG_NOSIGNAL: a peer that died mid-write must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

Status Epoll::Create() {
  epfd_ = OwnedFd(::epoll_create1(0));
  if (!epfd_.valid()) return ErrnoStatus("epoll_create1");
  return Status::OK();
}

namespace {
uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
}  // namespace

Status Epoll::Add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status Epoll::Modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void Epoll::Remove(int fd) {
  ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

Status Epoll::Wait(int timeout_millis, std::vector<Event>* events) {
  events->clear();
  epoll_event raw[64];
  int n;
  do {
    n = ::epoll_wait(epfd_.get(), raw, 64, timeout_millis);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return ErrnoStatus("epoll_wait");
  for (int i = 0; i < n; ++i) {
    Event e;
    e.fd = raw[i].data.fd;
    e.readable = (raw[i].events & EPOLLIN) != 0;
    e.writable = (raw[i].events & EPOLLOUT) != 0;
    e.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events->push_back(e);
  }
  return Status::OK();
}

Status WakeupFd::Create() {
  fd_ = OwnedFd(::eventfd(0, EFD_NONBLOCK));
  if (!fd_.valid()) return ErrnoStatus("eventfd");
  return Status::OK();
}

void WakeupFd::Signal() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the reader; ignore the result.
  (void)!::write(fd_.get(), &one, sizeof(one));
}

void WakeupFd::Drain() {
  uint64_t value;
  (void)!::read(fd_.get(), &value, sizeof(value));
}

}  // namespace muppet
