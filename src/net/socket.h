// Thin RAII wrappers over POSIX TCP sockets and epoll, shared by the TCP
// transport backend (net/tcp_transport.h) and its tests. Everything here is
// non-blocking: callers drive readiness through Epoll and retry on
// kWouldBlock. No muppet lock is ever taken at this layer.
#ifndef MUPPET_NET_SOCKET_H_
#define MUPPET_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace muppet {

// Distinguishes "no progress, retry on readiness" from hard errors without
// inventing a Status code: I/O helpers return the byte count, kWouldBlock,
// or kSocketError (inspect errno via the returned Status instead).
constexpr ssize_t kWouldBlock = -2;

// An owned file descriptor. Movable, closes on destruction.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

// Create a non-blocking TCP listener bound to `host`:`port` (port 0 =
// ephemeral). On success *out holds the fd and *bound_port the actual port.
Status TcpListen(const std::string& host, int port, OwnedFd* out,
                 int* bound_port);

// Begin a non-blocking connect to `host`:`port`. Returns OK with the fd in
// *out; the connect may still be in flight — wait for EPOLLOUT and call
// TcpConnectResult to learn the outcome.
Status TcpConnectStart(const std::string& host, int port, OwnedFd* out);

// After EPOLLOUT on a connecting fd: OK if established, error otherwise.
Status TcpConnectResult(int fd);

// Accept one pending connection from a listener; the new fd is set
// non-blocking with TCP_NODELAY. Returns kWouldBlock sentinel via
// out->valid() == false with OK status when no connection is pending.
Status TcpAccept(int listen_fd, OwnedFd* out);

// Non-blocking read into `buf`. Returns bytes read (>0), 0 on orderly peer
// close, kWouldBlock, or -1 on hard error (errno preserved).
ssize_t SocketRead(int fd, void* buf, size_t len);

// Non-blocking write. Returns bytes written (>=0), kWouldBlock, or -1 on
// hard error. Short writes are normal; callers keep their own cursor.
ssize_t SocketWrite(int fd, const void* buf, size_t len);

// Level-triggered epoll wrapper.
class Epoll {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  Epoll() = default;

  Status Create();
  Status Add(int fd, bool want_read, bool want_write);
  Status Modify(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  // Wait up to `timeout_millis` (-1 = forever) and append ready events to
  // *events (cleared first). EINTR retries internally.
  Status Wait(int timeout_millis, std::vector<Event>* events);

  bool valid() const { return epfd_.valid(); }

 private:
  OwnedFd epfd_;
};

// An eventfd used to wake the IO thread from other threads.
class WakeupFd {
 public:
  Status Create();
  int fd() const { return fd_.get(); }
  // Wake the epoll loop (async-signal-safe, callable from any thread).
  void Signal();
  // Drain pending wakeups (called by the IO thread on readiness).
  void Drain();

 private:
  OwnedFd fd_;
};

}  // namespace muppet

#endif  // MUPPET_NET_SOCKET_H_
