#include "net/tcp_transport.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"

namespace muppet {

namespace {
// IO loop tick bounds: short while a declined frame is parked (the retry
// cadence), long when idle (dial deadlines shorten it as needed).
constexpr int kPendingRetryMillis = 2;
constexpr int kIdleTickMillis = 100;
}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Default()) {
  for (const TcpPeerConfig& pc : options_.peers) {
    auto peer = std::make_unique<Peer>();
    peer->config = pc;
    peer->backoff = options_.reconnect_initial_micros;
    for (MachineId m : pc.machines) machine_to_peer_[m] = peer.get();
    peers_.push_back(std::move(peer));
  }
}

TcpTransport::~TcpTransport() { Stop(); }

Status TcpTransport::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("tcp transport already started");
  }
  stop_.store(false, std::memory_order_release);
  MUPPET_RETURN_IF_ERROR(epoll_.Create());
  MUPPET_RETURN_IF_ERROR(wakeup_.Create());
  int bound = 0;
  MUPPET_RETURN_IF_ERROR(TcpListen(options_.listen_host,
                                   options_.listen_port, &listen_fd_,
                                   &bound));
  listen_port_.store(bound, std::memory_order_release);
  MUPPET_RETURN_IF_ERROR(epoll_.Add(listen_fd_.get(), true, false));
  MUPPET_RETURN_IF_ERROR(epoll_.Add(wakeup_.fd(), true, false));
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void TcpTransport::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  wakeup_.Signal();
  if (io_thread_.joinable()) io_thread_.join();
  // Undelivered queued frames die with the transport; account them so
  // shutdown is not mistaken for delivery.
  for (auto& peer : peers_) {
    MutexLock lock(peer->q_mutex);
    for (const QueuedFrame& f : peer->queue) {
      messages_dropped_.Add(static_cast<int64_t>(f.count));
    }
    peer->queue.clear();
    peer->queued_bytes = 0;
    peer->head_offset = 0;
    peer->up.store(false, std::memory_order_release);
  }
  conns_.clear();
  fd_to_peer_.clear();
  listen_fd_.Reset();
}

Status TcpTransport::RegisterMachine(MachineId id, Handler handler) {
  WriterMutexLock lock(state_mutex_);
  if (local_.count(id) != 0) {
    return Status::AlreadyExists("machine id already registered");
  }
  auto m = std::make_shared<LocalMachine>();
  m->handler = std::move(handler);
  local_[id] = std::move(m);
  return Status::OK();
}

Status TcpTransport::RegisterBatchHandler(MachineId id,
                                          BatchHandler handler) {
  WriterMutexLock lock(state_mutex_);
  auto it = local_.find(id);
  if (it == local_.end()) return Status::NotFound("machine not registered");
  it->second->batch_handler = std::move(handler);
  return Status::OK();
}

void TcpTransport::UnregisterMachine(MachineId id) {
  WriterMutexLock lock(state_mutex_);
  local_.erase(id);
}

std::shared_ptr<TcpTransport::LocalMachine> TcpTransport::FindLocal(
    MachineId id) const {
  ReaderMutexLock lock(state_mutex_);
  auto it = local_.find(id);
  return it == local_.end() ? nullptr : it->second;
}

TcpTransport::Peer* TcpTransport::PeerForMachine(MachineId id) const {
  auto it = machine_to_peer_.find(id);
  return it == machine_to_peer_.end() ? nullptr : it->second;
}

void TcpTransport::CountAttempt(MachineId id) {
  WriterMutexLock lock(state_mutex_);
  ++attempts_[id];
}

int64_t TcpTransport::SendAttemptsTo(MachineId id) const {
  ReaderMutexLock lock(state_mutex_);
  auto it = attempts_.find(id);
  return it == attempts_.end() ? 0 : it->second;
}

Status TcpTransport::Send(MachineId from, MachineId to, BytesView payload,
                          uint64_t fault_signature) {
  (void)fault_signature;  // no fault plan on the socket backend
  if (from != to) CountAttempt(to);
  std::shared_ptr<LocalMachine> local = FindLocal(to);
  if (local != nullptr) {
    if (!local->up.load(std::memory_order_acquire)) {
      messages_dropped_.Add();
      return Status::Unavailable("machine crashed");
    }
    messages_sent_.Add();
    if (from == to) messages_local_.Add();
    Status s = local->handler(from, payload);
    if (s.code() == StatusCode::kResourceExhausted) messages_declined_.Add();
    return s;
  }
  Peer* peer = PeerForMachine(to);
  if (peer == nullptr) return Status::Unavailable("unknown machine");
  WireFrame frame;
  frame.type = FrameType::kSingle;
  frame.from = from;
  frame.to = to;
  frame.count = 1;
  frame.payload.assign(payload.data(), payload.size());
  return EnqueueFrame(peer, frame);
}

Status TcpTransport::SendBatch(MachineId from, MachineId to, BytesView data,
                               size_t count, size_t* accepted,
                               uint64_t fault_signature) {
  (void)fault_signature;
  *accepted = 0;
  if (from != to) CountAttempt(to);
  std::shared_ptr<LocalMachine> local = FindLocal(to);
  if (local != nullptr) {
    if (!local->up.load(std::memory_order_acquire)) {
      messages_dropped_.Add(static_cast<int64_t>(count));
      return Status::Unavailable("machine crashed");
    }
    if (local->batch_handler == nullptr) {
      return Status::FailedPrecondition("no batch handler registered");
    }
    Status s = local->batch_handler(from, data, count, accepted);
    messages_sent_.Add(static_cast<int64_t>(*accepted));
    if (s.code() == StatusCode::kResourceExhausted) {
      messages_declined_.Add(static_cast<int64_t>(count - *accepted));
    }
    return s;
  }
  Peer* peer = PeerForMachine(to);
  if (peer == nullptr) return Status::Unavailable("unknown machine");
  WireFrame frame;
  frame.type = FrameType::kBatch;
  frame.from = from;
  frame.to = to;
  frame.count = static_cast<uint32_t>(count);
  frame.payload.assign(data.data(), data.size());
  Status s = EnqueueFrame(peer, frame);
  // Async contract: OK means durably queued; the whole frame counts as
  // accepted (delivery failures surface as Unavailable on later sends).
  if (s.ok()) *accepted = count;
  return s;
}

Status TcpTransport::EnqueueFrame(Peer* peer, const WireFrame& frame) {
  if (!peer->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add(static_cast<int64_t>(frame.count));
    return Status::Unavailable("peer node " +
                               std::to_string(peer->config.node_id) +
                               " unreachable");
  }
  Bytes encoded = EncodeFrame(frame);
  {
    MutexLock lock(peer->q_mutex);
    if (peer->queued_bytes + encoded.size() >
        options_.write_queue_cap_bytes) {
      messages_declined_.Add(static_cast<int64_t>(frame.count));
      return Status::ResourceExhausted("tcp write queue full for node " +
                                       std::to_string(peer->config.node_id));
    }
    peer->queued_bytes += encoded.size();
    bytes_sent_.Add(static_cast<int64_t>(encoded.size()));
    peer->queue.push_back(QueuedFrame{std::move(encoded), frame.count});
  }
  messages_sent_.Add(static_cast<int64_t>(frame.count));
  frames_sent_.Add();
  wakeup_.Signal();
  return Status::OK();
}

void TcpTransport::Crash(MachineId id) {
  std::shared_ptr<LocalMachine> local = FindLocal(id);
  if (local != nullptr) local->up.store(false, std::memory_order_release);
}

void TcpTransport::Restore(MachineId id) {
  std::shared_ptr<LocalMachine> local = FindLocal(id);
  if (local != nullptr) local->up.store(true, std::memory_order_release);
}

bool TcpTransport::IsUp(MachineId id) const {
  std::shared_ptr<LocalMachine> local = FindLocal(id);
  if (local != nullptr) return local->up.load(std::memory_order_acquire);
  Peer* peer = PeerForMachine(id);
  return peer != nullptr && peer->up.load(std::memory_order_acquire);
}

std::vector<MachineId> TcpTransport::Machines() const {
  std::set<MachineId> ids;
  {
    ReaderMutexLock lock(state_mutex_);
    for (const auto& [id, m] : local_) ids.insert(id);
  }
  for (const auto& [id, peer] : machine_to_peer_) ids.insert(id);
  return std::vector<MachineId>(ids.begin(), ids.end());
}

bool TcpTransport::PeerUp(uint32_t node) const {
  for (const auto& peer : peers_) {
    if (peer->config.node_id == node) {
      return peer->up.load(std::memory_order_acquire);
    }
  }
  return false;
}

Status TcpTransport::FlushOutbound(Timestamp timeout_micros) {
  const Timestamp deadline = clock_->Now() + timeout_micros;
  while (true) {
    bool empty = true;
    for (const auto& peer : peers_) {
      MutexLock lock(peer->q_mutex);
      if (!peer->queue.empty()) {
        empty = false;
        break;
      }
    }
    if (empty) return Status::OK();
    if (clock_->Now() >= deadline) {
      return Status::TimedOut("tcp transport: outbound not drained");
    }
    wakeup_.Signal();
    clock_->SleepFor(1000);
  }
}

// ---------------------------------------------------------------------------
// IO thread.

void TcpTransport::IoLoop() {
  std::vector<Epoll::Event> events;
  std::vector<MachineId> local_ids;
  {
    ReaderMutexLock lock(state_mutex_);
    for (const auto& [id, m] : local_) local_ids.push_back(id);
  }
  for (auto& peer : peers_) {
    peer->hello_out = Bytes();
  }
  while (!stop_.load(std::memory_order_acquire)) {
    const Timestamp now = clock_->Now();
    TickDialers(now);

    int timeout = kIdleTickMillis;
    bool any_pending = false;
    for (const auto& [fd, conn] : conns_) {
      if (conn->has_pending) any_pending = true;
    }
    if (any_pending) timeout = kPendingRetryMillis;
    for (const auto& peer : peers_) {
      if (peer->state == Peer::DialState::kIdle) {
        const Timestamp wait = peer->next_dial_at - now;
        const int millis =
            wait <= 0 ? 0 : static_cast<int>(wait / 1000) + 1;
        timeout = std::min(timeout, millis);
      }
    }

    Status s = epoll_.Wait(timeout, &events);
    if (!s.ok()) break;
    const Timestamp after = clock_->Now();

    for (const Epoll::Event& ev : events) {
      if (ev.fd == wakeup_.fd()) {
        wakeup_.Drain();
        continue;
      }
      if (listen_fd_.valid() && ev.fd == listen_fd_.get()) {
        AcceptAll();
        continue;
      }
      auto pit = fd_to_peer_.find(ev.fd);
      if (pit != fd_to_peer_.end()) {
        HandlePeerEvent(pit->second, ev, after);
        continue;
      }
      auto cit = conns_.find(ev.fd);
      if (cit != conns_.end()) {
        HandleConnEvent(cit->second.get(), ev);
      }
    }
    if (stop_.load(std::memory_order_acquire)) break;

    // Senders enqueue and Signal(); push those bytes out now.
    for (auto& peer : peers_) {
      if (peer->state == Peer::DialState::kUp) {
        DrainPeerWrites(peer.get(), after);
      }
    }
    RetryPending();
  }
}

void TcpTransport::TickDialers(Timestamp now) {
  for (auto& peer : peers_) {
    if (peer->state == Peer::DialState::kIdle && now >= peer->next_dial_at) {
      DialPeer(peer.get(), now);
    }
  }
}

void TcpTransport::DialPeer(Peer* peer, Timestamp now) {
  OwnedFd fd;
  Status s = TcpConnectStart(peer->config.host, peer->config.port, &fd);
  if (!s.ok()) {
    peer->next_dial_at = now + peer->backoff;
    peer->backoff =
        std::min(peer->backoff * 2, options_.reconnect_max_micros);
    return;
  }
  peer->state = Peer::DialState::kConnecting;
  peer->fd = std::move(fd);
  peer->decoder = FrameDecoder();
  fd_to_peer_[peer->fd.get()] = peer;
  // EPOLLOUT fires when the connect resolves.
  (void)epoll_.Add(peer->fd.get(), true, true);
  peer->want_write = true;
}

void TcpTransport::TearDownPeer(Peer* peer, Timestamp now, const char* why) {
  const bool was_up = peer->up.exchange(false);
  if (peer->fd.valid()) {
    epoll_.Remove(peer->fd.get());
    fd_to_peer_.erase(peer->fd.get());
    peer->fd.Reset();
  }
  peer->state = Peer::DialState::kIdle;
  peer->next_dial_at = now + peer->backoff;
  peer->backoff = std::min(peer->backoff * 2, options_.reconnect_max_micros);
  {
    // A partially written head frame is resent from its first byte on
    // reconnect: the receiver cannot have decoded a partial frame, so the
    // retransmit is at worst a whole-frame duplicate, which exactly-once
    // dedup suppresses.
    MutexLock lock(peer->q_mutex);
    peer->head_offset = 0;
  }
  if (was_up) {
    MUPPET_LOG(kWarning) << "tcp: lost node " << peer->config.node_id << " ("
                      << why << ")";
    if (options_.on_peer_down != nullptr) {
      options_.on_peer_down(peer->config.node_id, peer->config.machines);
    }
  }
}

void TcpTransport::HandlePeerEvent(Peer* peer, const Epoll::Event& ev,
                                   Timestamp now) {
  if (ev.error) {
    TearDownPeer(peer, now, "socket error");
    return;
  }
  if (peer->state == Peer::DialState::kConnecting && ev.writable) {
    Status s = TcpConnectResult(peer->fd.get());
    if (!s.ok()) {
      TearDownPeer(peer, now, "connect failed");
      return;
    }
    std::vector<MachineId> local_ids;
    {
      ReaderMutexLock lock(state_mutex_);
      for (const auto& [id, m] : local_) local_ids.push_back(id);
    }
    WireFrame hello;
    hello.type = FrameType::kHello;
    hello.from = kInvalidMachine;
    hello.to = kInvalidMachine;
    hello.count = 0;
    hello.payload = EncodeHello(options_.node_id, local_ids);
    peer->hello_out = EncodeFrame(hello);
    peer->hello_written = 0;
    peer->state = Peer::DialState::kHandshaking;
  }
  if (peer->state == Peer::DialState::kHandshaking && ev.writable &&
      peer->hello_written < peer->hello_out.size()) {
    const ssize_t n = SocketWrite(
        peer->fd.get(), peer->hello_out.data() + peer->hello_written,
        peer->hello_out.size() - peer->hello_written);
    if (n == -1) {
      TearDownPeer(peer, now, "hello write failed");
      return;
    }
    if (n > 0) peer->hello_written += static_cast<size_t>(n);
  }
  if (ev.readable) {
    char buf[64 * 1024];
    while (true) {
      const ssize_t n = SocketRead(peer->fd.get(), buf, sizeof(buf));
      if (n == kWouldBlock) break;
      if (n <= 0) {
        TearDownPeer(peer, now, n == 0 ? "peer closed" : "read error");
        return;
      }
      peer->decoder.Feed(BytesView(buf, static_cast<size_t>(n)));
    }
    WireFrame frame;
    bool have = false;
    while (peer->decoder.Next(&frame, &have).ok() && have) {
      if (frame.type == FrameType::kHello &&
          peer->state == Peer::DialState::kHandshaking) {
        uint32_t node = 0;
        std::vector<MachineId> hosted;
        if (!DecodeHello(frame.payload, &node, &hosted).ok() ||
            node != peer->config.node_id) {
          TearDownPeer(peer, now, "hello mismatch");
          return;
        }
        peer->state = Peer::DialState::kUp;
        peer->backoff = options_.reconnect_initial_micros;
        peer->up.store(true, std::memory_order_release);
        MUPPET_LOG(kInfo) << "tcp: node " << peer->config.node_id << " up";
        if (options_.on_peer_up != nullptr) {
          options_.on_peer_up(peer->config.node_id, peer->config.machines);
        }
      }
      // Data frames are not expected on the dialed connection (each side
      // sends on the one it dialed); tolerate and drop them.
    }
    if (peer->decoder.corrupt()) {
      TearDownPeer(peer, now, "corrupt stream");
      return;
    }
  }
  if (peer->state == Peer::DialState::kUp) DrainPeerWrites(peer, now);
}

void TcpTransport::DrainPeerWrites(Peer* peer, Timestamp now) {
  if (!peer->fd.valid()) return;
  bool failed = false;
  bool would_block = false;
  {
    MutexLock lock(peer->q_mutex);
    while (!peer->queue.empty()) {
      QueuedFrame& head = peer->queue.front();
      const ssize_t n =
          SocketWrite(peer->fd.get(), head.data.data() + peer->head_offset,
                      head.data.size() - peer->head_offset);
      if (n == kWouldBlock) {
        would_block = true;
        break;
      }
      if (n == -1) {
        failed = true;
        break;
      }
      peer->head_offset += static_cast<size_t>(n);
      if (peer->head_offset == head.data.size()) {
        peer->queued_bytes -= head.data.size();
        peer->head_offset = 0;
        peer->queue.pop_front();
      }
    }
  }
  if (failed) {
    TearDownPeer(peer, now, "write failed");
    return;
  }
  const bool want_write = would_block;
  if (want_write != peer->want_write) {
    peer->want_write = want_write;
    (void)epoll_.Modify(peer->fd.get(), true, want_write);
  }
}

void TcpTransport::AcceptAll() {
  while (true) {
    OwnedFd fd;
    Status s = TcpAccept(listen_fd_.get(), &fd);
    if (!s.ok() || !fd.valid()) return;
    auto conn = std::make_unique<Conn>();
    // Reply HELLO immediately so the dialer's handshake completes.
    std::vector<MachineId> local_ids;
    {
      ReaderMutexLock lock(state_mutex_);
      for (const auto& [id, m] : local_) local_ids.push_back(id);
    }
    WireFrame hello;
    hello.type = FrameType::kHello;
    hello.from = kInvalidMachine;
    hello.to = kInvalidMachine;
    hello.count = 0;
    hello.payload = EncodeHello(options_.node_id, local_ids);
    conn->hello_out = EncodeFrame(hello);
    conn->hello_written = 0;
    const int raw = fd.get();
    conn->fd = std::move(fd);
    (void)epoll_.Add(raw, true, true);
    conn->want_write = true;
    conns_[raw] = std::move(conn);
  }
}

void TcpTransport::CloseConn(int fd) {
  epoll_.Remove(fd);
  auto it = conns_.find(fd);
  if (it != conns_.end()) {
    if (it->second->has_pending) {
      const uint32_t rest = it->second->pending.count -
                            static_cast<uint32_t>(it->second->pending_accepted);
      messages_dropped_.Add(static_cast<int64_t>(rest));
    }
    conns_.erase(it);
  }
}

bool TcpTransport::DeliverFrame(Conn* conn, WireFrame frame) {
  std::shared_ptr<LocalMachine> local = FindLocal(frame.to);
  if (local == nullptr || !local->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add(static_cast<int64_t>(frame.count));
    return true;
  }
  if (frame.type == FrameType::kSingle) {
    Status s = local->handler(frame.from, frame.payload);
    if (s.ok()) return true;
    if (s.code() == StatusCode::kResourceExhausted) {
      conn->has_pending = true;
      conn->pending = std::move(frame);
      conn->pending_accepted = 0;
      return false;
    }
    messages_dropped_.Add(static_cast<int64_t>(frame.count));
    return true;
  }
  if (local->batch_handler == nullptr) {
    messages_dropped_.Add(static_cast<int64_t>(frame.count));
    return true;
  }
  size_t accepted = 0;
  Status s = local->batch_handler(frame.from, frame.payload, frame.count,
                                  &accepted);
  if (s.ok()) return true;
  if (s.code() == StatusCode::kResourceExhausted) {
    conn->has_pending = true;
    conn->pending_accepted = accepted;
    conn->pending = std::move(frame);
    return false;
  }
  messages_dropped_.Add(static_cast<int64_t>(frame.count - accepted));
  return true;
}

void TcpTransport::HandleConnEvent(Conn* conn, const Epoll::Event& ev) {
  const int fd = conn->fd.get();
  if (ev.error) {
    CloseConn(fd);
    return;
  }
  if (ev.writable && conn->hello_written < conn->hello_out.size()) {
    const ssize_t n =
        SocketWrite(fd, conn->hello_out.data() + conn->hello_written,
                    conn->hello_out.size() - conn->hello_written);
    if (n == -1) {
      CloseConn(fd);
      return;
    }
    if (n > 0) conn->hello_written += static_cast<size_t>(n);
    if (conn->hello_written == conn->hello_out.size() && conn->want_write) {
      conn->want_write = false;
      (void)epoll_.Modify(fd, !conn->paused, false);
    }
  }
  if (!ev.readable || conn->paused) return;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = SocketRead(fd, buf, sizeof(buf));
    if (n == kWouldBlock) break;
    if (n <= 0) {
      CloseConn(fd);
      return;
    }
    conn->decoder.Feed(BytesView(buf, static_cast<size_t>(n)));
  }
  WireFrame frame;
  bool have = false;
  while (!conn->has_pending && conn->decoder.Next(&frame, &have).ok() &&
         have) {
    if (frame.type == FrameType::kHello) {
      uint32_t node = 0;
      std::vector<MachineId> hosted;
      if (DecodeHello(frame.payload, &node, &hosted).ok()) {
        conn->hello_received = true;
        conn->peer_node = node;
      }
      continue;
    }
    DeliverFrame(conn, std::move(frame));
  }
  if (conn->decoder.corrupt()) {
    MUPPET_LOG(kWarning) << "tcp: corrupt inbound stream from node "
                      << conn->peer_node << "; closing";
    CloseConn(fd);
    return;
  }
  if (conn->has_pending && !conn->paused) {
    // Backpressure: stop reading this connection until the parked frame
    // lands; the kernel receive buffer then pushes back on the sender.
    conn->paused = true;
    (void)epoll_.Modify(fd, false, conn->want_write);
  }
}

void TcpTransport::RetryPending() {
  std::vector<int> done;
  for (auto& [fd, conn] : conns_) {
    if (!conn->has_pending) continue;
    std::shared_ptr<LocalMachine> local = FindLocal(conn->pending.to);
    bool settled = false;
    if (local == nullptr || !local->up.load(std::memory_order_acquire)) {
      messages_dropped_.Add(static_cast<int64_t>(
          conn->pending.count -
          static_cast<uint32_t>(conn->pending_accepted)));
      settled = true;
    } else if (conn->pending.type == FrameType::kSingle) {
      Status s = local->handler(conn->pending.from, conn->pending.payload);
      if (s.ok()) {
        settled = true;
      } else if (s.code() != StatusCode::kResourceExhausted) {
        messages_dropped_.Add(1);
        settled = true;
      }
    } else {
      size_t accepted = conn->pending_accepted;
      Status s = local->batch_handler(conn->pending.from,
                                      conn->pending.payload,
                                      conn->pending.count, &accepted);
      conn->pending_accepted = accepted;
      if (s.ok()) {
        settled = true;
      } else if (s.code() != StatusCode::kResourceExhausted) {
        messages_dropped_.Add(static_cast<int64_t>(
            conn->pending.count - static_cast<uint32_t>(accepted)));
        settled = true;
      }
    }
    if (settled) {
      conn->has_pending = false;
      conn->pending = WireFrame();
      conn->pending_accepted = 0;
      if (conn->paused) {
        conn->paused = false;
        (void)epoll_.Modify(fd, true, conn->want_write);
      }
      done.push_back(fd);
    }
  }
  // Drain any frames that piled up in the decoder while paused.
  for (int fd : done) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    WireFrame frame;
    bool have = false;
    while (!conn->has_pending && conn->decoder.Next(&frame, &have).ok() &&
           have) {
      if (frame.type == FrameType::kHello) continue;
      DeliverFrame(conn, std::move(frame));
    }
    if (conn->has_pending && !conn->paused) {
      conn->paused = true;
      (void)epoll_.Modify(fd, false, conn->want_write);
    }
  }
}

}  // namespace muppet
