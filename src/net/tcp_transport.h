// Epoll-based TCP backend for the Transport seam: carries the engine's
// id-addressed frames (net/frame.h) between muppetd processes over real
// sockets. One IO thread per transport owns every fd; engine threads only
// touch a peer's bounded write queue and an eventfd.
//
// Connection model (DESIGN.md, "Transport backends & deployment model"):
// every node listens, and every node DIALS every configured peer. Data
// flows one way per connection — a node sends only on connections it
// dialed and receives on connections it accepted — so there is no
// simultaneous-dial tie to break and reconnect logic lives entirely on
// the dialer. Both sides open with a HELLO frame naming their node id and
// hosted machines; the dialer treats the peer as up once the HELLO reply
// arrives.
//
// Failure semantics match the paper's §4.3 detection-by-failed-send:
// while a peer's dialed connection is down, sends addressed to its
// machines fail with Unavailable immediately (the engine reports the
// failure to the master and reroutes). Frames already queued are NOT
// dropped: they are retained (the queue is bounded and stops growing
// while the peer is down, because new sends fail) and flushed when the
// dialer reconnects — "reconnect resumes delivery". A frame that was
// partially written when the connection died is resent from the start;
// the receiver can never have decoded a partial frame, and a rare
// whole-frame redelivery is suppressed by the engine's exactly-once
// dedup identities.
//
// Backpressure: per-peer write queues are byte-bounded; an enqueue past
// the cap fails with ResourceExhausted, which the engine's overflow
// machinery (drop / overflow stream / throttle) treats exactly like a
// declined receiver queue. On the receive side, a handler decline parks
// the frame (with its accepted-prefix offset, the BatchHandler resume
// contract) and pauses reads on that connection until the handler
// accepts the rest — TCP's own flow control then pushes back on the
// sender.
#ifndef MUPPET_NET_TCP_TRANSPORT_H_
#define MUPPET_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"

namespace muppet {

// A remote muppetd node and the engine machines it hosts.
struct TcpPeerConfig {
  uint32_t node_id = 0;
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<MachineId> machines;
};

struct TcpTransportOptions {
  uint32_t node_id = 0;
  std::string listen_host = "127.0.0.1";
  // 0 binds an ephemeral port; read it back via listen_port() after
  // Start() (multi-process tests depend on this).
  int listen_port = 0;
  std::vector<TcpPeerConfig> peers;

  // Per-peer outbound queue bound, in encoded-frame bytes. An enqueue
  // that would exceed it fails with ResourceExhausted.
  size_t write_queue_cap_bytes = 16u << 20;

  // Dialer backoff: doubles from initial to max on every failed attempt,
  // resets on an established handshake.
  Timestamp reconnect_initial_micros = 50 * 1000;
  Timestamp reconnect_max_micros = 2 * 1000 * 1000;

  // Clock for backoff deadlines and FlushOutbound waits. nullptr ->
  // SystemClock::Default(). (A SimulatedClock makes no sense here — the
  // kernel does not simulate time — but the seam keeps lint and tests
  // uniform.)
  Clock* clock = nullptr;

  // Invoked from the IO thread (no transport lock held) when a peer's
  // dialed connection completes its HELLO handshake / is lost. muppetd
  // wires these into the engine's failure bookkeeping.
  std::function<void(uint32_t node, const std::vector<MachineId>& machines)>
      on_peer_up;
  std::function<void(uint32_t node, const std::vector<MachineId>& machines)>
      on_peer_down;
};

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  Status Start() override;
  void Stop() override;

  Status RegisterMachine(MachineId id, Handler handler) override;
  Status RegisterBatchHandler(MachineId id, BatchHandler handler) override;
  void UnregisterMachine(MachineId id) override;
  Status Send(MachineId from, MachineId to, BytesView payload,
              uint64_t fault_signature = 0) override;
  Status SendBatch(MachineId from, MachineId to, BytesView frame,
                   size_t count, size_t* accepted,
                   uint64_t fault_signature = 0) override;
  void Crash(MachineId id) override;
  void Restore(MachineId id) override;
  bool IsUp(MachineId id) const override;
  std::vector<MachineId> Machines() const override;
  int64_t SendAttemptsTo(MachineId id) const override;
  Status FlushOutbound(Timestamp timeout_micros) override;

  // The actual bound data port (valid after Start()).
  int listen_port() const { return listen_port_.load(std::memory_order_acquire); }

  // True once `node`'s dialed connection has completed its handshake.
  bool PeerUp(uint32_t node) const;

  static constexpr LockLevel kStateLockLevel = LockLevel::kTcpState;
  static constexpr LockLevel kWriteQueueLockLevel = LockLevel::kTcpWriteQueue;

 private:
  struct LocalMachine {
    Handler handler;
    BatchHandler batch_handler;
    std::atomic<bool> up{true};
  };

  struct QueuedFrame {
    Bytes data;      // encoded wire frame
    uint32_t count;  // logical messages, for drop accounting
  };

  // Dialer-side state for one configured remote node. The IO thread owns
  // everything except the write queue (shared with senders) and the `up`
  // flag (read by senders).
  struct Peer {
    TcpPeerConfig config;
    std::atomic<bool> up{false};

    // IO-thread only.
    enum class DialState { kIdle, kConnecting, kHandshaking, kUp };
    DialState state = DialState::kIdle;
    OwnedFd fd;
    FrameDecoder decoder;     // HELLO reply arrives on the dialed conn
    Bytes hello_out;          // our HELLO, partially written
    size_t hello_written = 0;
    Timestamp next_dial_at = 0;
    Timestamp backoff = 0;
    bool want_write = false;  // EPOLLOUT armed

    // Shared with senders.
    Mutex q_mutex{kWriteQueueLockLevel};
    std::deque<QueuedFrame> queue MUPPET_GUARDED_BY(q_mutex);
    size_t queued_bytes MUPPET_GUARDED_BY(q_mutex) = 0;
    size_t head_offset MUPPET_GUARDED_BY(q_mutex) = 0;
  };

  // An accepted (inbound) connection. IO-thread only.
  struct Conn {
    OwnedFd fd;
    FrameDecoder decoder;
    bool hello_received = false;
    uint32_t peer_node = 0;
    Bytes hello_out;  // our HELLO reply, partially written
    size_t hello_written = 0;
    bool want_write = false;
    // Receiver-side backpressure: a frame the handler declined, parked
    // with its accepted-prefix offset; reads stay paused until it lands.
    bool has_pending = false;
    WireFrame pending;
    size_t pending_accepted = 0;
    bool paused = false;
  };

  void IoLoop();
  void TickDialers(Timestamp now);
  void DialPeer(Peer* peer, Timestamp now);
  void TearDownPeer(Peer* peer, Timestamp now, const char* why);
  void HandlePeerEvent(Peer* peer, const Epoll::Event& ev, Timestamp now);
  void DrainPeerWrites(Peer* peer, Timestamp now);
  void AcceptAll();
  void HandleConnEvent(Conn* conn, const Epoll::Event& ev);
  void CloseConn(int fd);
  // Deliver a decoded frame to the local machine handler. Returns false
  // when the handler declined and the frame was parked on `conn`.
  bool DeliverFrame(Conn* conn, WireFrame frame);
  void RetryPending();
  Status EnqueueFrame(Peer* peer, const WireFrame& frame);
  std::shared_ptr<LocalMachine> FindLocal(MachineId id) const;
  Peer* PeerForMachine(MachineId id) const;  // nullptr when unrouted
  void CountAttempt(MachineId id);

  TcpTransportOptions options_;
  Clock* clock_;

  mutable SharedMutex state_mutex_{kStateLockLevel};
  std::map<MachineId, std::shared_ptr<LocalMachine>> local_
      MUPPET_GUARDED_BY(state_mutex_);
  std::map<MachineId, int64_t> attempts_ MUPPET_GUARDED_BY(state_mutex_);

  // Fixed at Start(): machine id -> owning peer (remote routing table).
  std::map<MachineId, Peer*> machine_to_peer_;
  std::vector<std::unique_ptr<Peer>> peers_;

  // IO-thread only: written exclusively between Start()'s thread spawn
  // and Stop()'s join (Stop() clears them only after joining), so no
  // lock guards them.
  Epoll epoll_;  // muppet-lint: allow(guarded): owned by the single IO thread
  OwnedFd listen_fd_;
  std::map<int, Peer*>
      fd_to_peer_;  // muppet-lint: allow(guarded): owned by the IO thread
  std::map<int, std::unique_ptr<Conn>>
      conns_;  // muppet-lint: allow(guarded): owned by the IO thread

  WakeupFd wakeup_;
  std::atomic<int> listen_port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
};

}  // namespace muppet

#endif  // MUPPET_NET_TCP_TRANSPORT_H_
