#include "net/transport.h"

#include <algorithm>

namespace muppet {

Transport::Transport(TransportOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      rng_(options.seed) {}

Status Transport::RegisterMachine(MachineId id, Handler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("transport: null handler");
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = machines_.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("transport: machine " + std::to_string(id) +
                                 " already registered");
  }
  it->second.handler = std::move(handler);
  it->second.up = true;
  return Status::OK();
}

void Transport::UnregisterMachine(MachineId id) {
  std::unique_lock lock(mutex_);
  machines_.erase(id);
}

Status Transport::Send(MachineId from, MachineId to, BytesView payload) {
  Handler handler;
  {
    std::shared_lock lock(mutex_);
    auto it = machines_.find(to);
    if (it == machines_.end() || !it->second.up) {
      messages_dropped_.Add();
      return Status::Unavailable("transport: machine " + std::to_string(to) +
                                 " unreachable");
    }
    handler = it->second.handler;
  }

  const bool local = (from == to);
  if (!local) {
    if (options_.loss_probability > 0.0) {
      bool drop;
      {
        std::lock_guard<std::mutex> lock(rng_mutex_);
        drop = rng_.Chance(options_.loss_probability);
      }
      if (drop) {
        messages_dropped_.Add();
        return Status::Unavailable("transport: message lost");
      }
    }
    if (options_.hop_latency_micros > 0) {
      clock_->SleepFor(options_.hop_latency_micros);
    }
  }

  messages_sent_.Add();
  bytes_sent_.Add(static_cast<int64_t>(payload.size()));
  Status s = handler(from, payload);
  if (s.IsResourceExhausted()) {
    messages_declined_.Add();
  }
  return s;
}

void Transport::Crash(MachineId id) {
  std::unique_lock lock(mutex_);
  auto it = machines_.find(id);
  if (it != machines_.end()) it->second.up = false;
}

void Transport::Restore(MachineId id) {
  std::unique_lock lock(mutex_);
  auto it = machines_.find(id);
  if (it != machines_.end()) it->second.up = true;
}

bool Transport::IsUp(MachineId id) const {
  std::shared_lock lock(mutex_);
  auto it = machines_.find(id);
  return it != machines_.end() && it->second.up;
}

std::vector<MachineId> Transport::Machines() const {
  std::shared_lock lock(mutex_);
  std::vector<MachineId> out;
  out.reserve(machines_.size());
  for (const auto& [id, state] : machines_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace muppet
