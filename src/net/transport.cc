#include "net/transport.h"

#include <algorithm>

namespace muppet {

Transport::Transport(TransportOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      rng_(options.seed) {}

Status Transport::RegisterMachine(MachineId id, Handler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("transport: null handler");
  }
  WriterMutexLock lock(mutex_);
  auto [it, inserted] = machines_.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("transport: machine " + std::to_string(id) +
                                 " already registered");
  }
  it->second = std::make_shared<MachineState>();
  it->second->handler = std::move(handler);
  return Status::OK();
}

Status Transport::RegisterBatchHandler(MachineId id, BatchHandler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("transport: null batch handler");
  }
  WriterMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it == machines_.end()) {
    return Status::NotFound("transport: machine " + std::to_string(id) +
                            " not registered");
  }
  it->second->batch_handler = std::move(handler);
  return Status::OK();
}

void Transport::UnregisterMachine(MachineId id) {
  WriterMutexLock lock(mutex_);
  machines_.erase(id);
}

std::shared_ptr<Transport::MachineState> Transport::FindMachine(
    MachineId id) const {
  ReaderMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it == machines_.end()) return nullptr;
  return it->second;
}

Status Transport::ChargeHop() {
  if (options_.loss_probability > 0.0) {
    bool drop;
    {
      MutexLock lock(rng_mutex_);
      drop = rng_.Chance(options_.loss_probability);
    }
    if (drop) {
      messages_dropped_.Add();
      return Status::Unavailable("transport: message lost");
    }
  }
  if (options_.hop_latency_micros > 0) {
    clock_->SleepFor(options_.hop_latency_micros);
  }
  return Status::OK();
}

Status Transport::Send(MachineId from, MachineId to, BytesView payload) {
  std::shared_ptr<MachineState> state = FindMachine(to);
  if (state == nullptr || !state->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add();
    return Status::Unavailable("transport: machine " + std::to_string(to) +
                               " unreachable");
  }

  if (from != to) {
    MUPPET_RETURN_IF_ERROR(ChargeHop());
  }

  messages_sent_.Add();
  bytes_sent_.Add(static_cast<int64_t>(payload.size()));
  Status s = state->handler(from, payload);
  if (s.IsResourceExhausted()) {
    messages_declined_.Add();
  }
  return s;
}

Status Transport::SendBatch(MachineId from, MachineId to, BytesView frame,
                            size_t count, size_t* accepted) {
  *accepted = 0;
  std::shared_ptr<MachineState> state = FindMachine(to);
  if (state == nullptr || !state->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add(static_cast<int64_t>(count));
    return Status::Unavailable("transport: machine " + std::to_string(to) +
                               " unreachable");
  }
  if (state->batch_handler == nullptr) {
    return Status::FailedPrecondition("transport: machine " +
                                      std::to_string(to) +
                                      " accepts no batch frames");
  }

  if (from != to) {
    Status hop = ChargeHop();
    if (!hop.ok()) {
      // Whole-frame loss: one network message, `count` logical messages.
      messages_dropped_.Add(static_cast<int64_t>(count) - 1);
      return hop;
    }
  }

  frames_sent_.Add();
  bytes_sent_.Add(static_cast<int64_t>(frame.size()));
  Status s = state->batch_handler(from, frame, count, accepted);
  messages_sent_.Add(static_cast<int64_t>(*accepted));
  if (s.IsResourceExhausted()) {
    messages_declined_.Add(static_cast<int64_t>(count - *accepted));
  }
  return s;
}

void Transport::Crash(MachineId id) {
  WriterMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it != machines_.end()) {
    it->second->up.store(false, std::memory_order_release);
  }
}

void Transport::Restore(MachineId id) {
  WriterMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it != machines_.end()) {
    it->second->up.store(true, std::memory_order_release);
  }
}

bool Transport::IsUp(MachineId id) const {
  ReaderMutexLock lock(mutex_);
  auto it = machines_.find(id);
  return it != machines_.end() &&
         it->second->up.load(std::memory_order_acquire);
}

std::vector<MachineId> Transport::Machines() const {
  ReaderMutexLock lock(mutex_);
  std::vector<MachineId> out;
  out.reserve(machines_.size());
  for (const auto& [id, state] : machines_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace muppet
