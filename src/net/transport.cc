#include "net/transport.h"

#include <algorithm>

#include "net/fault.h"

namespace muppet {

InMemoryTransport::InMemoryTransport(TransportOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      rng_(options.seed) {}

Status InMemoryTransport::RegisterMachine(MachineId id, Handler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("transport: null handler");
  }
  WriterMutexLock lock(mutex_);
  auto [it, inserted] = machines_.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("transport: machine " + std::to_string(id) +
                                 " already registered");
  }
  it->second = std::make_shared<MachineState>();
  it->second->handler = std::move(handler);
  return Status::OK();
}

Status InMemoryTransport::RegisterBatchHandler(MachineId id, BatchHandler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("transport: null batch handler");
  }
  WriterMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it == machines_.end()) {
    return Status::NotFound("transport: machine " + std::to_string(id) +
                            " not registered");
  }
  it->second->batch_handler = std::move(handler);
  return Status::OK();
}

void InMemoryTransport::UnregisterMachine(MachineId id) {
  WriterMutexLock lock(mutex_);
  machines_.erase(id);
}

std::shared_ptr<InMemoryTransport::MachineState> InMemoryTransport::FindMachine(
    MachineId id) const {
  ReaderMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it == machines_.end()) return nullptr;
  return it->second;
}

Status InMemoryTransport::ChargeHop() {
  if (options_.loss_probability > 0.0) {
    bool drop;
    {
      MutexLock lock(rng_mutex_);
      drop = rng_.Chance(options_.loss_probability);
    }
    if (drop) {
      messages_dropped_.Add();
      return Status::Unavailable("transport: message lost");
    }
  }
  if (options_.hop_latency_micros > 0) {
    clock_->SleepFor(options_.hop_latency_micros);
  }
  return Status::OK();
}

void InMemoryTransport::ApplyDueFaultActions() {
  for (const FaultAction& a :
       options_.faults->TakeDueActions(clock_->Now())) {
    switch (a.kind) {
      case FaultAction::Kind::kCrashMachine:
        Crash(a.a);
        break;
      case FaultAction::Kind::kRestartMachine:
        Restore(a.a);
        break;
      default:
        // Partition/heal update the injector's own state as they pass
        // through TakeDueActions; store actions belong to the engine-level
        // harness.
        break;
    }
  }
}

void InMemoryTransport::HoldMessage(HeldMessage held) {
  MutexLock lock(hold_mutex_);
  holdback_[{held.from, held.to}].push_back(std::move(held));
}

void InMemoryTransport::ReleaseDueHeld(MachineId from, MachineId to) {
  std::vector<HeldMessage> due;
  {
    MutexLock lock(hold_mutex_);
    auto it = holdback_.find({from, to});
    if (it == holdback_.end()) return;
    std::vector<HeldMessage> keep;
    for (HeldMessage& h : it->second) {
      if (h.remaining > 0) --h.remaining;
      if (h.remaining == 0) {
        due.push_back(std::move(h));
      } else {
        keep.push_back(std::move(h));
      }
    }
    if (keep.empty()) {
      holdback_.erase(it);
    } else {
      it->second = std::move(keep);
    }
  }
  for (HeldMessage& h : due) DeliverHeld(std::move(h));
}

void InMemoryTransport::DeliverHeld(HeldMessage held) {
  std::shared_ptr<MachineState> state = FindMachine(held.to);
  int64_t lost = 0;
  if (state == nullptr || !state->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add(static_cast<int64_t>(held.count));
    lost = static_cast<int64_t>(held.count);
  } else if (held.is_frame) {
    size_t accepted = 0;
    frames_sent_.Add();
    Status s = state->batch_handler(held.from, held.data, held.count,
                                    &accepted);
    messages_sent_.Add(static_cast<int64_t>(accepted));
    if (s.IsResourceExhausted()) {
      messages_declined_.Add(static_cast<int64_t>(held.count - accepted));
    }
    lost = static_cast<int64_t>(held.count - accepted);
  } else {
    Status s = state->handler(held.from, held.data);
    if (s.ok()) {
      messages_sent_.Add();
    } else {
      if (s.IsResourceExhausted()) {
        messages_declined_.Add();
      } else {
        messages_dropped_.Add();
      }
      lost = 1;
    }
  }
  if (lost > 0 && options_.on_async_loss != nullptr) {
    options_.on_async_loss(lost);
  }
}

void InMemoryTransport::DeliverDuplicate(MachineState* state, MachineId from,
                                 BytesView data, size_t count,
                                 bool is_frame) {
  messages_duplicated_.Add(static_cast<int64_t>(count));
  // Pre-charge the engine's in-flight counter before any copy can be
  // processed (and decremented) by a worker.
  if (options_.on_extra_delivery != nullptr) {
    options_.on_extra_delivery(static_cast<int64_t>(count));
  }
  size_t accepted = 0;
  if (is_frame) {
    frames_sent_.Add();
    (void)state->batch_handler(from, data, count, &accepted);
    messages_sent_.Add(static_cast<int64_t>(accepted));
  } else {
    if (state->handler(from, data).ok()) {
      accepted = 1;
      messages_sent_.Add();
    }
  }
  const int64_t lost = static_cast<int64_t>(count - accepted);
  if (lost > 0 && options_.on_async_loss != nullptr) {
    options_.on_async_loss(lost);
  }
}

void InMemoryTransport::FlushHeld() {
  std::vector<HeldMessage> all;
  {
    MutexLock lock(hold_mutex_);
    for (auto& [link, vec] : holdback_) {
      for (HeldMessage& h : vec) all.push_back(std::move(h));
    }
    holdback_.clear();
  }
  for (HeldMessage& h : all) DeliverHeld(std::move(h));
}

Status InMemoryTransport::Send(MachineId from, MachineId to, BytesView payload,
                       uint64_t fault_signature) {
  FaultInjector* faults = options_.faults;
  if (faults != nullptr && options_.poll_fault_actions &&
      faults->HasDueActions(clock_->Now())) {
    ApplyDueFaultActions();
  }

  std::shared_ptr<MachineState> state = FindMachine(to);
  if (from != to && state != nullptr) {
    state->attempts.fetch_add(1, std::memory_order_relaxed);
  }
  if (state == nullptr || !state->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add();
    return Status::Unavailable("transport: machine " + std::to_string(to) +
                               " unreachable");
  }

  FaultDecision decision;
  if (from != to && faults != nullptr) {
    if (faults->Partitioned(from, to)) {
      faults->NotePartitionedDrop();
      messages_dropped_.Add();
      return Status::Unavailable("transport: partition separates " +
                                 std::to_string(from) + " and " +
                                 std::to_string(to));
    }
    decision =
        faults->OnMessage(from, to, payload, fault_signature, clock_->Now());
    if (decision.extra_delay_micros > 0) {
      clock_->SleepFor(decision.extra_delay_micros);
    }
    if (decision.verdict == FaultDecision::Verdict::kDrop) {
      messages_dropped_.Add();
      return Status::Unavailable("transport: message dropped by fault plan");
    }
    if (decision.verdict == FaultDecision::Verdict::kHold) {
      // The sender is told OK; the message delivers once `hold_for` later
      // messages pass it on this link (or at FlushHeld).
      HeldMessage held;
      held.from = from;
      held.to = to;
      held.data.assign(payload);
      held.count = 1;
      held.is_frame = false;
      held.remaining = decision.hold_for;
      HoldMessage(std::move(held));
      messages_held_.Add();
      bytes_sent_.Add(static_cast<int64_t>(payload.size()));
      return Status::OK();
    }
  }

  if (from != to) {
    MUPPET_RETURN_IF_ERROR(ChargeHop());
  }

  messages_sent_.Add();
  bytes_sent_.Add(static_cast<int64_t>(payload.size()));
  Status s = state->handler(from, payload);
  if (s.IsResourceExhausted()) {
    messages_declined_.Add();
  }

  if (from != to && faults != nullptr) {
    if (decision.verdict == FaultDecision::Verdict::kDuplicate) {
      DeliverDuplicate(state.get(), from, payload, 1, /*is_frame=*/false);
    }
    // This delivery overtakes messages waiting in the reorder window.
    ReleaseDueHeld(from, to);
  }
  return s;
}

Status InMemoryTransport::SendBatch(MachineId from, MachineId to, BytesView frame,
                            size_t count, size_t* accepted,
                            uint64_t fault_signature) {
  *accepted = 0;
  FaultInjector* faults = options_.faults;
  if (faults != nullptr && options_.poll_fault_actions &&
      faults->HasDueActions(clock_->Now())) {
    ApplyDueFaultActions();
  }

  std::shared_ptr<MachineState> state = FindMachine(to);
  if (from != to && state != nullptr) {
    state->attempts.fetch_add(1, std::memory_order_relaxed);
  }
  if (state == nullptr || !state->up.load(std::memory_order_acquire)) {
    messages_dropped_.Add(static_cast<int64_t>(count));
    return Status::Unavailable("transport: machine " + std::to_string(to) +
                               " unreachable");
  }
  if (state->batch_handler == nullptr) {
    return Status::FailedPrecondition("transport: machine " +
                                      std::to_string(to) +
                                      " accepts no batch frames");
  }

  FaultDecision decision;
  if (from != to && faults != nullptr) {
    if (faults->Partitioned(from, to)) {
      faults->NotePartitionedDrop();
      messages_dropped_.Add(static_cast<int64_t>(count));
      return Status::Unavailable("transport: partition separates " +
                                 std::to_string(from) + " and " +
                                 std::to_string(to));
    }
    decision =
        faults->OnMessage(from, to, frame, fault_signature, clock_->Now());
    if (decision.extra_delay_micros > 0) {
      clock_->SleepFor(decision.extra_delay_micros);
    }
    if (decision.verdict == FaultDecision::Verdict::kDrop) {
      // Whole-frame loss, like the built-in loss model.
      messages_dropped_.Add(static_cast<int64_t>(count));
      return Status::Unavailable("transport: frame dropped by fault plan");
    }
    if (decision.verdict == FaultDecision::Verdict::kHold) {
      HeldMessage held;
      held.from = from;
      held.to = to;
      held.data.assign(frame);
      held.count = count;
      held.is_frame = true;
      held.remaining = decision.hold_for;
      HoldMessage(std::move(held));
      messages_held_.Add(static_cast<int64_t>(count));
      bytes_sent_.Add(static_cast<int64_t>(frame.size()));
      *accepted = count;
      return Status::OK();
    }
  }

  if (from != to) {
    Status hop = ChargeHop();
    if (!hop.ok()) {
      // Whole-frame loss: one network message, `count` logical messages.
      messages_dropped_.Add(static_cast<int64_t>(count) - 1);
      return hop;
    }
  }

  frames_sent_.Add();
  bytes_sent_.Add(static_cast<int64_t>(frame.size()));
  Status s = state->batch_handler(from, frame, count, accepted);
  messages_sent_.Add(static_cast<int64_t>(*accepted));
  if (s.IsResourceExhausted()) {
    messages_declined_.Add(static_cast<int64_t>(count - *accepted));
  }

  if (from != to && faults != nullptr) {
    if (decision.verdict == FaultDecision::Verdict::kDuplicate) {
      DeliverDuplicate(state.get(), from, frame, count, /*is_frame=*/true);
    }
    ReleaseDueHeld(from, to);
  }
  return s;
}

int64_t InMemoryTransport::SendAttemptsTo(MachineId id) const {
  std::shared_ptr<MachineState> state = FindMachine(id);
  if (state == nullptr) return 0;
  return state->attempts.load(std::memory_order_relaxed);
}

void InMemoryTransport::Crash(MachineId id) {
  WriterMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it != machines_.end()) {
    it->second->up.store(false, std::memory_order_release);
  }
}

void InMemoryTransport::Restore(MachineId id) {
  WriterMutexLock lock(mutex_);
  auto it = machines_.find(id);
  if (it != machines_.end()) {
    it->second->up.store(true, std::memory_order_release);
  }
}

bool InMemoryTransport::IsUp(MachineId id) const {
  ReaderMutexLock lock(mutex_);
  auto it = machines_.find(id);
  return it != machines_.end() &&
         it->second->up.load(std::memory_order_acquire);
}

std::vector<MachineId> InMemoryTransport::Machines() const {
  ReaderMutexLock lock(mutex_);
  std::vector<MachineId> out;
  out.reserve(machines_.size());
  for (const auto& [id, state] : machines_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace muppet
