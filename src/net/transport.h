// Cluster transport seam.
//
// The paper runs Muppet on "a cluster of commodity machines ... linked by
// inexpensive gigabit Ethernet" (§6). This repo offers two backends behind
// one abstract `Transport` interface (see DESIGN.md §5 and §12):
//
//  * `InMemoryTransport` — the deterministic in-process fabric the chaos
//    harness and tests replay bit-for-bit: each logical machine registers
//    a delivery handler, Send() routes a serialized payload to the
//    destination machine's handler, applying a configurable per-hop
//    latency and failure model.
//  * `TcpTransport` (net/tcp_transport.h) — an epoll-based async backend
//    that carries the same id-addressed frames over real sockets for the
//    `muppetd` multi-process deployment mode.
//
// Everything the paper's control plane needs is preserved by both:
//
//  * peer-to-peer sends with no master on the data path (§4.1);
//  * a send to a crashed/unreachable machine fails, which is how workers
//    *detect* failures ("If A cannot contact B, then it assumes the
//    machine hosting B has failed", §4.3);
//  * the receiver may decline a message (queue full), which triggers the
//    sender's queue-overflow mechanism (§4.3).
#ifndef MUPPET_NET_TRANSPORT_H_
#define MUPPET_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/sync.h"

namespace muppet {

using MachineId = int32_t;
constexpr MachineId kInvalidMachine = -1;

class FaultInjector;  // net/fault.h

struct TransportOptions {
  // One-way delivery latency applied to every cross-machine send, in
  // microseconds. 0 disables the delay (throughput benchmarks). With a
  // SimulatedClock this advances logical time; with the system clock it
  // sleeps.
  Timestamp hop_latency_micros = 0;
  // Probability in [0,1] that a send to a healthy machine is dropped
  // (models transient packet/connection loss; the sender sees Unavailable).
  double loss_probability = 0.0;
  // Clock used for latency simulation. nullptr -> SystemClock::Default().
  Clock* clock = nullptr;
  // Seed for the loss model.
  uint64_t seed = 1;

  // Scripted fault injection (chaos harness, net/fault.h). Not owned; must
  // outlive the transport. nullptr disables all fault hooks.
  FaultInjector* faults = nullptr;
  // When true the transport itself applies due machine actions from the
  // plan (crash/restart at the transport level) at the top of every send.
  // Engine-level harnesses set this false and apply machine actions
  // through the engine so queue/cache loss is modeled too.
  bool poll_fault_actions = true;
  // Invoked when a logical message whose send already returned OK is later
  // lost or declined (a held reorder delivery that fails, the unaccepted
  // tail of a duplicate copy). Engines balance their in-flight and
  // loss-accounting counters here. Called with no transport lock held.
  std::function<void(int64_t)> on_async_loss;
  // Invoked just before the transport delivers messages the sender never
  // sent (duplicate copies), with the logical message count; engines
  // pre-charge their in-flight counter so the extra processings balance.
  std::function<void(int64_t)> on_extra_delivery;
};

// Abstract thread-safe message fabric between machines. Handlers always
// run with no transport lock held, so they may re-enter the transport
// (e.g. to forward) and take engine locks freely.
class Transport {
 public:
  // Handler invoked when a payload arrives for the machine (on the
  // sender's thread for the in-memory fabric, on the IO thread for the
  // socket backend). Return OK to accept; ResourceExhausted to decline
  // (queue full); any other error is reported to the sender verbatim.
  using Handler = std::function<Status(MachineId from, BytesView payload)>;

  // Handler for batch frames (SendBatch). `frame` packs `count` logical
  // messages; the handler accepts a *prefix* of them. *accepted is
  // IN-OUT: on entry it carries the resume offset — how many leading
  // messages of this exact frame a previous partial delivery already
  // accepted (the in-memory fabric never redelivers, so it always passes
  // 0; the TCP backend retries a declined frame from where it stopped).
  // On return it holds the TOTAL accepted prefix, including the skipped
  // part. Return OK when all `count` were accepted; ResourceExhausted
  // when the handler stopped at a declined message; other errors
  // verbatim.
  using BatchHandler =
      std::function<Status(MachineId from, BytesView frame, size_t count,
                           size_t* accepted)>;

  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Lifecycle. The in-memory fabric is born started; socket backends
  // bind their listener and begin dialing peers here. Stop() is
  // idempotent and joins any IO threads.
  virtual Status Start() { return Status::OK(); }
  virtual void Stop() {}

  // Register a machine hosted by THIS transport instance and its delivery
  // handler. Fails with AlreadyExists if the id is taken locally.
  virtual Status RegisterMachine(MachineId id, Handler handler) = 0;

  // Optionally attach a batch-frame handler to a registered machine
  // (required before SendBatch can target it).
  virtual Status RegisterBatchHandler(MachineId id, BatchHandler handler) = 0;

  // Remove a machine entirely (shutdown, not crash).
  virtual void UnregisterMachine(MachineId id) = 0;

  // Deliver `payload` to machine `to`. Local sends (from == to) bypass
  // the latency/loss model — Muppet 2.0 passes events between threads of
  // one machine without any network hop (§4.5).
  // Errors: Unavailable (crashed/unknown/dropped/partitioned),
  // ResourceExhausted (receiver declined / send queue full), or whatever
  // the handler returned. `fault_signature` is the content signature
  // handed to the fault injector (0 = hash the payload); irrelevant
  // without faults.
  virtual Status Send(MachineId from, MachineId to, BytesView payload,
                      uint64_t fault_signature = 0) = 0;

  // Deliver a batch frame of `count` logical messages in one network hop:
  // one registry lookup, one latency charge, one loss roll for the whole
  // frame. *accepted receives how many messages the receiver took (0 when
  // the frame never arrived). For async backends OK means the frame was
  // durably queued for the peer (*accepted = count); delivery failures
  // surface on a later send as Unavailable once the peer is declared
  // down. Remote-hop amortization for Muppet 2.0's send coalescer. Fault
  // rules treat the frame as one message (whole-frame drop/duplicate/
  // hold), matching whole-frame loss semantics.
  virtual Status SendBatch(MachineId from, MachineId to, BytesView frame,
                           size_t count, size_t* accepted,
                           uint64_t fault_signature = 0) = 0;

  // Crash a machine: subsequent sends to it fail with Unavailable. The
  // handler is retained so the machine can be restored (tests of
  // recovery). Socket backends apply this to locally hosted machines
  // only; remote reachability is governed by the connection state.
  virtual void Crash(MachineId id) = 0;

  // Bring a crashed machine back.
  virtual void Restore(MachineId id) = 0;

  virtual bool IsUp(MachineId id) const = 0;

  // All machine ids this transport can currently address (up or
  // crashed), sorted.
  virtual std::vector<MachineId> Machines() const = 0;

  // Deliver every message still held back by reorder faults, regardless
  // of remaining window. Chaos harnesses call this before Drain() so no
  // accepted-but-undelivered message outlives the run. No-op for
  // backends without a fault plan.
  virtual void FlushHeld() {}

  // Block until every queued outbound byte for every peer is handed to
  // the kernel, or `timeout_micros` elapses (TimedOut). No-op
  // for synchronous backends. Clean-shutdown aid for muppetd.
  virtual Status FlushOutbound(Timestamp timeout_micros) {
    (void)timeout_micros;
    return Status::OK();
  }

  // Cross-machine send/frame attempts routed at machine `id` since
  // Start, whatever their outcome; held-message releases do not count
  // (they were attempted when first sent). The chaos harness asserts
  // this stops growing once a machine's failure is known cluster-wide —
  // the "ring reroutes send nothing to a dead machine" invariant. 0 for
  // unknown ids (and for backends that don't track it).
  virtual int64_t SendAttemptsTo(MachineId id) const {
    (void)id;
    return 0;
  }

  // Account a same-machine delivery that legitimately bypassed the
  // fabric (the Muppet 2.0 zero-copy fast path): keeps message counters
  // meaningful for status endpoints without touching registry locks.
  void CountLocalDelivery() {
    messages_sent_.Add();
    messages_local_.Add();
  }

  // Fabric-wide delivery stats, maintained by every backend. messages_*
  // count logical messages (each event in a batch frame counts once);
  // frames_sent counts physical cross-machine frames; messages_local
  // counts fast-path deliveries that never serialized.
  int64_t messages_sent() const { return messages_sent_.Get(); }
  int64_t messages_dropped() const { return messages_dropped_.Get(); }
  int64_t messages_declined() const { return messages_declined_.Get(); }
  int64_t messages_local() const { return messages_local_.Get(); }
  int64_t frames_sent() const { return frames_sent_.Get(); }
  int64_t bytes_sent() const { return bytes_sent_.Get(); }
  // Extra logical messages delivered by duplicate faults (each duplicated
  // copy counts its logical message count).
  int64_t messages_duplicated() const { return messages_duplicated_.Get(); }
  // Logical messages accepted into the reorder holdback buffer.
  int64_t messages_held() const { return messages_held_.Get(); }

 protected:
  Transport() = default;

  Counter messages_sent_;
  Counter messages_dropped_;
  Counter messages_declined_;
  Counter messages_local_;
  Counter frames_sent_;
  Counter bytes_sent_;
  Counter messages_duplicated_;
  Counter messages_held_;
};

// The deterministic in-process fabric (the default backend, and the only
// one the chaos harness drives — its latency/loss/fault model is seeded
// and replayable).
class InMemoryTransport : public Transport {
 public:
  explicit InMemoryTransport(TransportOptions options = {});

  Status RegisterMachine(MachineId id, Handler handler) override;
  Status RegisterBatchHandler(MachineId id, BatchHandler handler) override;
  void UnregisterMachine(MachineId id) override;
  Status Send(MachineId from, MachineId to, BytesView payload,
              uint64_t fault_signature = 0) override;
  Status SendBatch(MachineId from, MachineId to, BytesView frame,
                   size_t count, size_t* accepted,
                   uint64_t fault_signature = 0) override;
  void FlushHeld() override;
  void Crash(MachineId id) override;
  void Restore(MachineId id) override;
  bool IsUp(MachineId id) const override;
  std::vector<MachineId> Machines() const override;
  int64_t SendAttemptsTo(MachineId id) const override;

  const TransportOptions& options() const { return options_; }

  // Lock-hierarchy levels (pinned by tests/common/sync_test.cc). All are
  // leaves on the send path: FindMachine() drops the registry lock before
  // the receiver's handler runs, and the holdback lock is released before
  // any held message is delivered, so no transport lock is ever held while
  // queue or engine locks are acquired.
  static constexpr LockLevel kRegistryLockLevel = LockLevel::kTransport;
  static constexpr LockLevel kRngLockLevel = LockLevel::kTransportRng;
  static constexpr LockLevel kHoldLockLevel = LockLevel::kFaultHold;

 private:
  // Heap-allocated, shared_ptr-held state block per machine: Send() takes
  // a reference under the shared lock instead of copying the handler
  // std::function (a heap allocation per message, pre-optimization).
  struct MachineState {
    Handler handler;
    BatchHandler batch_handler;
    std::atomic<bool> up{true};
    std::atomic<int64_t> attempts{0};
  };

  // A message accepted from its sender but held back by a reorder fault,
  // released when `remaining` later messages pass it on the link (or at
  // FlushHeld). Frames keep their logical message count.
  struct HeldMessage {
    MachineId from = kInvalidMachine;
    MachineId to = kInvalidMachine;
    Bytes data;
    size_t count = 1;
    bool is_frame = false;
    uint32_t remaining = 1;
  };

  // nullptr when unknown. Bumps only a refcount under the shared lock.
  std::shared_ptr<MachineState> FindMachine(MachineId id) const;

  // Latency/loss model for one cross-machine hop; OK when the frame goes
  // through.
  Status ChargeHop();

  // Fault-plan machine actions due now (crash/restore); called lock-free
  // unless something is due.
  void ApplyDueFaultActions();

  // Park a message in the holdback buffer (reorder fault). The sender has
  // already been told OK.
  void HoldMessage(HeldMessage held);

  // Age the holdback buffer of link from->to by one delivered message and
  // deliver everything whose window expired. Must be called with no
  // transport lock held.
  void ReleaseDueHeld(MachineId from, MachineId to);

  // Deliver one previously-held message (or flush-forced message); loss
  // and decline are settled through on_async_loss since the sender is
  // long gone.
  void DeliverHeld(HeldMessage held);

  // Deliver the extra copy of a duplicated message/frame.
  void DeliverDuplicate(MachineState* state, MachineId from, BytesView data,
                        size_t count, bool is_frame);

  TransportOptions options_;
  Clock* clock_;

  mutable SharedMutex mutex_{kRegistryLockLevel};
  std::unordered_map<MachineId, std::shared_ptr<MachineState>> machines_
      MUPPET_GUARDED_BY(mutex_);

  Mutex rng_mutex_{kRngLockLevel};
  Rng rng_ MUPPET_GUARDED_BY(rng_mutex_);

  Mutex hold_mutex_{kHoldLockLevel};
  // (from, to) -> held messages in arrival order.
  std::map<std::pair<MachineId, MachineId>, std::vector<HeldMessage>>
      holdback_ MUPPET_GUARDED_BY(hold_mutex_);
};

}  // namespace muppet

#endif  // MUPPET_NET_TRANSPORT_H_
