#include "service/admin_service.h"

#include <cinttypes>
#include <cstdio>

#include "common/prom.h"
#include "common/trace.h"

namespace muppet {
namespace {

std::string HexId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

Json SpanToJson(const Span& span) {
  Json j = Json::MakeObject();
  j["span_id"] = HexId(span.span_id);
  j["parent_span"] = HexId(span.parent_span);
  j["kind"] = SpanKindName(span.kind);
  j["machine"] = static_cast<int64_t>(span.machine);
  j["name"] = span.name;
  if (!span.note.empty()) j["note"] = span.note;
  j["start_us"] = span.start_us;
  j["duration_us"] = span.duration_us();
  return j;
}

Json TraceToJson(const TraceSink::TraceRecord& record) {
  Json j = Json::MakeObject();
  j["trace_id"] = HexId(record.trace_id);
  j["start_us"] = record.first_start_us;
  j["duration_us"] = record.duration_us();
  Json spans = Json::MakeArray();
  for (const Span& span : record.spans) spans.Append(SpanToJson(span));
  j["spans"] = std::move(spans);
  return j;
}

}  // namespace

Json TracezDocument(Engine* engine, MachineId machine) {
  Json doc = Json::MakeObject();
  doc["machine"] = static_cast<int64_t>(machine);
  Json recent = Json::MakeArray();
  Json slowest = Json::MakeArray();
  TraceSink* sink = engine->trace_sink(machine);
  if (sink != nullptr) {
    for (const auto& record : sink->Recent()) {
      recent.Append(TraceToJson(record));
    }
    for (const auto& record : sink->Slowest()) {
      slowest.Append(TraceToJson(record));
    }
    doc["spans_recorded"] = sink->spans_recorded();
    doc["spans_dropped"] = sink->spans_dropped();
    doc["traces_evicted"] = sink->traces_evicted();
  }
  doc["recent"] = std::move(recent);
  doc["slowest"] = std::move(slowest);
  return doc;
}

Json StatuszDocument(Engine* engine, MachineId machine) {
  Json doc = Json::MakeObject();
  doc["serving_machine"] = static_cast<int64_t>(machine);
  doc["inflight"] = engine->InflightEvents();

  const EngineStats stats = engine->Stats();
  Json js = Json::MakeObject();
  js["published"] = stats.events_published;
  js["processed"] = stats.events_processed;
  js["emitted"] = stats.events_emitted;
  js["lost_failure"] = stats.events_lost_failure;
  js["dropped_overflow"] = stats.events_dropped_overflow;
  js["failures_detected"] = stats.failures_detected;
  doc["stats"] = std::move(js);

  // Durability panel (engine/slatelog.h; DESIGN.md §12). All-zero in
  // kLossy mode, but always present so dashboards need no feature probe.
  Json durability = Json::MakeObject();
  durability["slatelog_appends"] = stats.slatelog_appends;
  durability["slatelog_synced_records"] = stats.slatelog_synced_records;
  durability["slatelog_replays"] = stats.slatelog_replays;
  durability["slatelog_replayed_records"] = stats.slatelog_replayed_records;
  durability["slatelog_torn_tails"] = stats.slatelog_torn_tails;
  durability["slatelog_corrupt_segments"] = stats.slatelog_corrupt_segments;
  durability["checkpoints"] = stats.checkpoints;
  durability["events_deduped"] = stats.events_deduped;
  doc["durability"] = std::move(durability);

  Json machines = Json::MakeArray();
  for (const MachineStatus& ms : engine->MachineStatuses()) {
    Json jm = Json::MakeObject();
    jm["machine"] = static_cast<int64_t>(ms.machine);
    jm["crashed"] = ms.crashed;
    Json depths = Json::MakeArray();
    for (size_t d : ms.queue_depths) depths.Append(static_cast<int64_t>(d));
    jm["queue_depths"] = std::move(depths);
    jm["queue_capacity"] = static_cast<int64_t>(ms.queue_capacity);
    Json cache = Json::MakeObject();
    cache["slates"] = static_cast<int64_t>(ms.slate_cache_slates);
    cache["capacity"] = static_cast<int64_t>(ms.slate_cache_capacity);
    jm["slate_cache"] = std::move(cache);
    Json failed = Json::MakeArray();
    for (MachineId f : ms.known_failed) failed.Append(static_cast<int64_t>(f));
    jm["failed"] = std::move(failed);
    Json ring = Json::MakeObject();
    for (const auto& [function, points] : ms.ring_ownership) {
      ring[function] = static_cast<int64_t>(points);
    }
    jm["ring_ownership"] = std::move(ring);
    Json jd = Json::MakeObject();
    jd["consistency"] = ms.consistency;
    jd["slatelog_lsn"] = static_cast<int64_t>(ms.slatelog_lsn);
    jd["slatelog_synced_lsn"] = static_cast<int64_t>(ms.slatelog_synced_lsn);
    jd["slatelog_segments"] = static_cast<int64_t>(ms.slatelog_segments);
    jd["manifest_lsn"] = static_cast<int64_t>(ms.manifest_lsn);
    jd["replays"] = ms.replays;
    jd["dedup_entries"] = static_cast<int64_t>(ms.dedup_entries);
    jd["dedup_capacity"] = static_cast<int64_t>(ms.dedup_capacity);
    jm["durability"] = std::move(jd);
    machines.Append(std::move(jm));
  }
  doc["machines"] = std::move(machines);

  // Hot-key panel: the heat sketch's hottest (function, key) pairs with
  // their live split state. Empty array when heat tracking is off.
  Json hot = Json::MakeArray();
  for (const HotKeyInfo& hk : engine->HotKeys()) {
    Json jh = Json::MakeObject();
    jh["function"] = hk.function;
    jh["key"] = hk.key;
    jh["sampled_count"] = hk.sampled_count;
    jh["split"] = hk.split;
    if (hk.split) {
      jh["shards"] = static_cast<int64_t>(hk.shards);
      jh["split_epoch"] = static_cast<int64_t>(hk.split_epoch);
      jh["draining"] = hk.draining;
    }
    hot.Append(std::move(jh));
  }
  doc["hot_keys"] = std::move(hot);
  return doc;
}

HttpResponse AdminService::Metrics() const {
  HttpResponse response;
  MetricsRegistry* registry = engine_->metrics();
  if (registry == nullptr) {
    response.status = 404;
    response.content_type = "text/plain";
    response.body = "no metrics registry\n";
    return response;
  }
  response.content_type = PrometheusContentType();
  response.body = PrometheusText(*registry);
  return response;
}

HttpResponse AdminService::Statusz() const {
  HttpResponse response;
  response.body = StatuszDocument(engine_, machine_).Dump();
  return response;
}

HttpResponse AdminService::Tracez() const {
  HttpResponse response;
  response.body = TracezDocument(engine_, machine_).Dump();
  return response;
}

void AdminService::AttachTo(HttpServer* server) {
  server->RegisterHandler(
      "/metrics", [this](const HttpRequest&) { return Metrics(); });
  server->RegisterHandler(
      "/statusz", [this](const HttpRequest&) { return Statusz(); });
  server->RegisterHandler("/tracez",
                          [this](const HttpRequest&) { return Tracez(); });
}

}  // namespace muppet
