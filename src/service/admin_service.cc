#include "service/admin_service.h"

#include <cinttypes>
#include <cstdio>

#include "common/prom.h"
#include "common/slo.h"
#include "common/trace.h"
#include "common/version.h"
#include "engine/watchdog.h"

namespace muppet {
namespace {

std::string HexId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

Json CriticalPathToJson(const CriticalPath& path) {
  Json j = Json::MakeObject();
  j["trace_id"] = HexId(path.trace_id);
  if (!path.stream.empty()) j["stream"] = path.stream;
  j["total_us"] = path.total_us;
  j["publish_us"] = path.publish_us;
  j["queue_wait_us"] = path.queue_wait_us;
  j["exec_us"] = path.exec_us;
  j["slate_fetch_us"] = path.slate_fetch_us;
  j["net_hop_us"] = path.net_hop_us;
  j["unattributed_us"] = path.unattributed_us;
  j["spans"] = static_cast<int64_t>(path.spans);
  j["machines"] = static_cast<int64_t>(path.machines);
  return j;
}

Json SpanToJson(const Span& span) {
  Json j = Json::MakeObject();
  j["span_id"] = HexId(span.span_id);
  j["parent_span"] = HexId(span.parent_span);
  j["kind"] = SpanKindName(span.kind);
  j["machine"] = static_cast<int64_t>(span.machine);
  j["name"] = span.name;
  if (!span.note.empty()) j["note"] = span.note;
  j["start_us"] = span.start_us;
  j["duration_us"] = span.duration_us();
  return j;
}

Json TraceToJson(const TraceSink::TraceRecord& record) {
  Json j = Json::MakeObject();
  j["trace_id"] = HexId(record.trace_id);
  j["start_us"] = record.first_start_us;
  j["duration_us"] = record.duration_us();
  Json spans = Json::MakeArray();
  for (const Span& span : record.spans) spans.Append(SpanToJson(span));
  j["spans"] = std::move(spans);
  // Where the time went (DESIGN.md §14): the same per-kind reduction
  // /sloz applies to its worst traces, inline on every trace.
  j["critical_path"] = CriticalPathToJson(ComputeCriticalPath(record.spans));
  return j;
}

}  // namespace

Json TracezDocument(Engine* engine, MachineId machine) {
  Json doc = Json::MakeObject();
  doc["machine"] = static_cast<int64_t>(machine);
  Json recent = Json::MakeArray();
  Json slowest = Json::MakeArray();
  TraceSink* sink = engine->trace_sink(machine);
  if (sink != nullptr) {
    for (const auto& record : sink->Recent()) {
      recent.Append(TraceToJson(record));
    }
    for (const auto& record : sink->Slowest()) {
      slowest.Append(TraceToJson(record));
    }
    doc["spans_recorded"] = sink->spans_recorded();
    doc["spans_dropped"] = sink->spans_dropped();
    doc["traces_evicted"] = sink->traces_evicted();
  }
  doc["recent"] = std::move(recent);
  doc["slowest"] = std::move(slowest);
  return doc;
}

Json StatuszDocument(Engine* engine, MachineId machine) {
  Json doc = Json::MakeObject();
  doc["serving_machine"] = static_cast<int64_t>(machine);
  doc["version"] = kMuppetVersion;
  doc["uptime_us"] = engine->UptimeMicros();
  doc["inflight"] = engine->InflightEvents();

  const EngineStats stats = engine->Stats();
  Json js = Json::MakeObject();
  js["published"] = stats.events_published;
  js["processed"] = stats.events_processed;
  js["emitted"] = stats.events_emitted;
  js["lost_failure"] = stats.events_lost_failure;
  js["dropped_overflow"] = stats.events_dropped_overflow;
  js["failures_detected"] = stats.failures_detected;
  doc["stats"] = std::move(js);

  // Durability panel (engine/slatelog.h; DESIGN.md §12). All-zero in
  // kLossy mode, but always present so dashboards need no feature probe.
  Json durability = Json::MakeObject();
  durability["slatelog_appends"] = stats.slatelog_appends;
  durability["slatelog_synced_records"] = stats.slatelog_synced_records;
  durability["slatelog_replays"] = stats.slatelog_replays;
  durability["slatelog_replayed_records"] = stats.slatelog_replayed_records;
  durability["slatelog_torn_tails"] = stats.slatelog_torn_tails;
  durability["slatelog_corrupt_segments"] = stats.slatelog_corrupt_segments;
  durability["checkpoints"] = stats.checkpoints;
  durability["events_deduped"] = stats.events_deduped;
  doc["durability"] = std::move(durability);

  Json machines = Json::MakeArray();
  for (const MachineStatus& ms : engine->MachineStatuses()) {
    Json jm = Json::MakeObject();
    jm["machine"] = static_cast<int64_t>(ms.machine);
    jm["crashed"] = ms.crashed;
    jm["recovering"] = ms.recovering;
    Json depths = Json::MakeArray();
    for (size_t d : ms.queue_depths) depths.Append(static_cast<int64_t>(d));
    jm["queue_depths"] = std::move(depths);
    jm["queue_capacity"] = static_cast<int64_t>(ms.queue_capacity);
    Json cache = Json::MakeObject();
    cache["slates"] = static_cast<int64_t>(ms.slate_cache_slates);
    cache["capacity"] = static_cast<int64_t>(ms.slate_cache_capacity);
    jm["slate_cache"] = std::move(cache);
    Json failed = Json::MakeArray();
    for (MachineId f : ms.known_failed) failed.Append(static_cast<int64_t>(f));
    jm["failed"] = std::move(failed);
    Json ring = Json::MakeObject();
    for (const auto& [function, points] : ms.ring_ownership) {
      ring[function] = static_cast<int64_t>(points);
    }
    jm["ring_ownership"] = std::move(ring);
    Json jd = Json::MakeObject();
    jd["consistency"] = ms.consistency;
    jd["slatelog_lsn"] = static_cast<int64_t>(ms.slatelog_lsn);
    jd["slatelog_synced_lsn"] = static_cast<int64_t>(ms.slatelog_synced_lsn);
    jd["slatelog_segments"] = static_cast<int64_t>(ms.slatelog_segments);
    jd["manifest_lsn"] = static_cast<int64_t>(ms.manifest_lsn);
    jd["replays"] = ms.replays;
    jd["dedup_entries"] = static_cast<int64_t>(ms.dedup_entries);
    jd["dedup_capacity"] = static_cast<int64_t>(ms.dedup_capacity);
    jm["durability"] = std::move(jd);
    machines.Append(std::move(jm));
  }
  doc["machines"] = std::move(machines);

  // Hot-key panel: the heat sketch's hottest (function, key) pairs with
  // their live split state. Empty array when heat tracking is off.
  Json hot = Json::MakeArray();
  for (const HotKeyInfo& hk : engine->HotKeys()) {
    Json jh = Json::MakeObject();
    jh["function"] = hk.function;
    jh["key"] = hk.key;
    jh["sampled_count"] = hk.sampled_count;
    jh["split"] = hk.split;
    if (hk.split) {
      jh["shards"] = static_cast<int64_t>(hk.shards);
      jh["split_epoch"] = static_cast<int64_t>(hk.split_epoch);
      jh["draining"] = hk.draining;
    }
    hot.Append(std::move(jh));
  }
  doc["hot_keys"] = std::move(hot);

  // Incident panel (engine/watchdog.h): the flight-recorder ring, newest
  // first. Always present so dashboards need no feature probe.
  Json incidents = Json::MakeArray();
  int64_t open_incidents = 0;
  if (const IncidentLog* log = engine->incidents(); log != nullptr) {
    for (const Incident& incident : log->Incidents()) {
      if (incident.open()) ++open_incidents;
      incidents.Append(IncidentToJson(incident));
    }
  }
  doc["incidents"] = std::move(incidents);
  doc["open_incidents"] = open_incidents;
  return doc;
}

Json HealthzDocument(Engine* engine, MachineId machine) {
  Json doc = Json::MakeObject();
  doc["serving_machine"] = static_cast<int64_t>(machine);
  // Liveness: the process answered, which is the whole liveness claim.
  doc["live"] = true;

  bool crashed = false;
  bool recovering = false;
  for (const MachineStatus& ms : engine->MachineStatuses()) {
    if (ms.machine != machine) continue;
    crashed = ms.crashed;
    recovering = ms.recovering;
    break;
  }

  // Open incidents scoped to this machine (or engine-wide, machine = -1).
  int64_t queue_stalls = 0;
  int64_t drain_stalls = 0;
  int64_t changelog_stalls = 0;
  if (const IncidentLog* log = engine->incidents(); log != nullptr) {
    for (const Incident& incident : log->Incidents()) {
      if (!incident.open()) continue;
      if (incident.machine != machine &&
          incident.machine != kInvalidMachine) {
        continue;
      }
      switch (incident.kind) {
        case IncidentKind::kQueueStall:
          ++queue_stalls;
          break;
        case IncidentKind::kDrainStall:
          ++drain_stalls;
          break;
        case IncidentKind::kChangelogStall:
          ++changelog_stalls;
          break;
        case IncidentKind::kRecoveryStuck:
          break;  // subsumed by the recovery check below
      }
    }
  }

  // Readiness: the machine is routable — not crashed, and not between
  // BeginRecovery and ClearFailure (Master holds new traffic off a
  // machine until its slates are restored; a probe must do the same).
  struct Check {
    const char* name;
    bool ok;
    std::string detail;
  };
  const Check checks[] = {
      {"machine", !crashed, crashed ? "machine crashed" : "up"},
      {"recovery", !recovering,
       recovering ? "recovering (BeginRecovery, not yet ClearFailure)"
                  : "not recovering"},
      {"queues", queue_stalls == 0,
       queue_stalls == 0 ? "no open queue-stall incidents"
                         : std::to_string(queue_stalls) +
                               " open queue-stall incident(s)"},
      {"drain", drain_stalls == 0,
       drain_stalls == 0
           ? "no open drain-stall incidents"
           : std::to_string(drain_stalls) + " open drain-stall incident(s)"},
      {"changelog", changelog_stalls == 0,
       changelog_stalls == 0 ? "no open changelog-stall incidents"
                             : std::to_string(changelog_stalls) +
                                   " open changelog-stall incident(s)"},
  };
  bool ready = true;
  Json jchecks = Json::MakeArray();
  for (const Check& check : checks) {
    ready = ready && check.ok;
    Json jc = Json::MakeObject();
    jc["name"] = check.name;
    jc["ok"] = check.ok;
    jc["detail"] = check.detail;
    jchecks.Append(std::move(jc));
  }
  doc["checks"] = std::move(jchecks);
  doc["ready"] = ready;
  return doc;
}

Json SlozDocument(Engine* engine, MachineId machine) {
  Json doc = Json::MakeObject();
  doc["serving_machine"] = static_cast<int64_t>(machine);
  Json streams = Json::MakeArray();
  SloTracker* slo = engine->slo();
  if (slo != nullptr) {
    doc["traces_observed"] = slo->traces_observed();
    doc["traces_unattributed"] = slo->traces_unattributed();
    for (const SloTracker::StreamSnapshot& snap : slo->Snapshot()) {
      Json js = Json::MakeObject();
      js["stream"] = snap.stream;
      js["events"] = snap.events;
      js["breaches"] = snap.breaches;
      js["mean_us"] = snap.mean_us;
      js["p50_us"] = snap.p50_us;
      js["p95_us"] = snap.p95_us;
      js["p99_us"] = snap.p99_us;
      js["p999_us"] = snap.p999_us;
      js["max_us"] = snap.max_us;
      if (snap.has_objective) {
        Json jo = Json::MakeObject();
        jo["target_p99_us"] = snap.objective.target_p99_us;
        jo["window_micros"] = snap.objective.window_micros;
        js["objective"] = std::move(jo);
        js["meeting_objective"] = snap.meeting_objective;
        Json burns = Json::MakeArray();
        for (const SloTracker::BurnSnapshot& burn : snap.burn) {
          Json jb = Json::MakeObject();
          jb["window_micros"] = burn.window_micros;
          jb["rate"] = burn.rate;
          jb["events"] = burn.events;
          jb["breaches"] = burn.breaches;
          burns.Append(std::move(jb));
        }
        js["burn"] = std::move(burns);
      }
      Json worst = Json::MakeArray();
      for (const CriticalPath& path : snap.worst) {
        worst.Append(CriticalPathToJson(path));
      }
      js["worst_critical_paths"] = std::move(worst);
      streams.Append(std::move(js));
    }
  }
  doc["streams"] = std::move(streams);
  return doc;
}

HttpResponse AdminService::Metrics() const {
  HttpResponse response;
  MetricsRegistry* registry = engine_->metrics();
  if (registry == nullptr) {
    response.status = 404;
    response.content_type = "text/plain";
    response.body = "no metrics registry\n";
    return response;
  }
  response.content_type = PrometheusContentType();
  response.body = PrometheusText(*registry);
  return response;
}

HttpResponse AdminService::Statusz() const {
  HttpResponse response;
  response.body = StatuszDocument(engine_, machine_).Dump();
  return response;
}

HttpResponse AdminService::Tracez() const {
  HttpResponse response;
  response.body = TracezDocument(engine_, machine_).Dump();
  return response;
}

HttpResponse AdminService::Healthz() const {
  HttpResponse response;
  Json doc = HealthzDocument(engine_, machine_);
  if (!doc.GetBool("ready")) response.status = 503;
  response.body = doc.Dump();
  return response;
}

HttpResponse AdminService::Sloz() const {
  // Pull just-completed traces out of the sinks first, so a scrape after
  // a drain reflects everything the engine processed.
  engine_->HarvestSlo();
  HttpResponse response;
  response.body = SlozDocument(engine_, machine_).Dump();
  return response;
}

void AdminService::AttachTo(HttpServer* server) {
  server->RegisterHandler(
      "/metrics", [this](const HttpRequest&) { return Metrics(); });
  server->RegisterHandler(
      "/statusz", [this](const HttpRequest&) { return Statusz(); });
  server->RegisterHandler("/tracez",
                          [this](const HttpRequest&) { return Tracez(); });
  server->RegisterHandler("/healthz",
                          [this](const HttpRequest&) { return Healthz(); });
  server->RegisterHandler("/sloz",
                          [this](const HttpRequest&) { return Sloz(); });
}

}  // namespace muppet
