// Per-machine introspection endpoints for a running engine (paper §4.5:
// each node serves "basic status information"; this is that server grown
// into a full observability plane):
//
//   /metrics  - Prometheus text exposition v0.0.4 of the engine's shared
//               MetricsRegistry (common/prom.h)
//   /statusz  - JSON runtime state: queue depths, slate-cache occupancy,
//               hash-ring ownership, failed set, inflight count
//   /tracez   - JSON dump of the machine's TraceSink: recent + slowest
//               traces with their spans and critical-path breakdowns
//   /healthz  - liveness + readiness probe (DESIGN.md §14): 200 when the
//               serving machine is routable, 503 while it is crashed or
//               mid-recovery (BeginRecovery -> ClearFailure), with
//               per-subsystem checks in the JSON body
//   /sloz     - per-stream end-to-end latency percentiles vs the declared
//               objective, burn rates, and worst critical paths
//
// Engine-agnostic: everything flows through the Engine interface, so both
// generations (and future engines) get the same endpoints for free.
#ifndef MUPPET_SERVICE_ADMIN_SERVICE_H_
#define MUPPET_SERVICE_ADMIN_SERVICE_H_

#include <string>

#include "engine/engine.h"
#include "json/json.h"
#include "service/http_server.h"

namespace muppet {

// The /tracez document for `machine`, also reused by the chaos harness's
// flight-recorder dump (testing/scenario.cc). Trace and span ids are
// rendered as hex strings (JSON numbers are signed 64-bit here).
Json TracezDocument(Engine* engine, MachineId machine);

// The /statusz document as seen from `machine` (cluster-wide state plus
// which machine served it).
Json StatuszDocument(Engine* engine, MachineId machine);

// The /healthz document for `machine`. `ready`/`live` summarize the
// per-subsystem checks; callers map !ready to HTTP 503.
Json HealthzDocument(Engine* engine, MachineId machine);

// The /sloz document: one entry per stream with observed percentiles,
// objective verdict, burn rates, and worst critical paths. Callers should
// HarvestSlo() first so just-completed traces are included.
Json SlozDocument(Engine* engine, MachineId machine);

class AdminService {
 public:
  // `engine` must outlive the service. `machine` scopes /tracez (and the
  // serving_machine field of /statusz) to one machine's view.
  explicit AdminService(Engine* engine, MachineId machine = 0)
      : engine_(engine), machine_(machine) {}

  // Handlers, callable directly (tests) or via AttachTo.
  HttpResponse Metrics() const;
  HttpResponse Statusz() const;
  HttpResponse Tracez() const;
  HttpResponse Healthz() const;
  HttpResponse Sloz() const;

  // Mount /metrics, /statusz, /tracez, /healthz, /sloz. Call before
  // server->Start(); the service must outlive the server.
  void AttachTo(HttpServer* server);

 private:
  Engine* engine_;
  MachineId machine_;
};

}  // namespace muppet

#endif  // MUPPET_SERVICE_ADMIN_SERVICE_H_
