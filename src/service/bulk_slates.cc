#include "service/bulk_slates.h"

#include <cerrno>
#include <cstring>

#include "common/compress.h"
#include "common/hash.h"
#include "kvstore/format.h"

namespace muppet {

BulkSlateReader::BulkSlateReader(SlateStore* store) : store_(store) {}

Status BulkSlateReader::DumpAll(
    std::vector<std::pair<SlateId, Bytes>>* slates) {
  std::vector<kv::Record> records;
  MUPPET_RETURN_IF_ERROR(store_->cluster()->ScanAll(
      store_->options().column_family, &records));
  for (kv::Record& rec : records) {
    Bytes row, column;
    if (!kv::DecodeStorageKey(rec.key, &row, &column)) {
      return Status::Corruption("bulk: undecodable storage key");
    }
    Bytes plain;
    if (store_->options().compress) {
      Result<Bytes> decompressed = Decompress(rec.value);
      if (!decompressed.ok()) return decompressed.status();
      plain = std::move(decompressed).value();
    } else {
      plain = std::move(rec.value);
    }
    slates->emplace_back(SlateId{std::string(column), std::move(row)},
                         std::move(plain));
  }
  return Status::OK();
}

Status BulkSlateReader::DumpUpdater(
    const std::string& updater,
    std::vector<std::pair<Bytes, Bytes>>* key_slates) {
  std::vector<std::pair<SlateId, Bytes>> all;
  MUPPET_RETURN_IF_ERROR(DumpAll(&all));
  for (auto& [id, slate] : all) {
    if (id.updater == updater) {
      key_slates->emplace_back(std::move(id.key), std::move(slate));
    }
  }
  return Status::OK();
}

Status BulkSlateReader::ForEach(
    const std::string& updater,
    const std::function<void(BytesView key, BytesView slate)>& fn) {
  std::vector<std::pair<Bytes, Bytes>> key_slates;
  MUPPET_RETURN_IF_ERROR(DumpUpdater(updater, &key_slates));
  for (const auto& [key, slate] : key_slates) fn(key, slate);
  return Status::OK();
}

SlateLogger::~SlateLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SlateLogger::Open(const std::string& path) {
  MutexLock lock(mutex_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("slate logger: already open");
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("slate logger: open " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status SlateLogger::Append(BytesView key, BytesView payload) {
  Bytes record;
  PutLengthPrefixed(&record, key);
  PutLengthPrefixed(&record, payload);
  Bytes frame;
  PutFixed32(&frame, Crc32(record));
  PutFixed32(&frame, static_cast<uint32_t>(record.size()));
  frame.append(record);

  MutexLock lock(mutex_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("slate logger: not open");
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("slate logger: short write");
  }
  records_written_.Add();
  return Status::OK();
}

Status SlateLogger::Flush() {
  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IOError("slate logger: flush failed");
  }
  return Status::OK();
}

Status SlateLogger::Close() {
  MutexLock lock(mutex_);
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("slate logger: close failed");
  return Status::OK();
}

Status SlateLogger::ReadLog(const std::string& path,
                            std::vector<std::pair<Bytes, Bytes>>* records) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no log yet
  Bytes header(8, '\0');
  Bytes payload;
  while (true) {
    const size_t got = std::fread(header.data(), 1, 8, f);
    if (got < 8) break;
    const uint32_t crc = DecodeFixed32(header.data());
    const uint32_t len = DecodeFixed32(header.data() + 4);
    if (len > (64u << 20)) break;
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) break;
    if (Crc32(payload) != crc) break;
    const char* p = payload.data();
    const char* limit = p + payload.size();
    BytesView key, value;
    if (!GetLengthPrefixed(&p, limit, &key) ||
        !GetLengthPrefixed(&p, limit, &value)) {
      break;
    }
    records->emplace_back(Bytes(key), Bytes(value));
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace muppet
