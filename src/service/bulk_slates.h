// Bulk reading of slates (paper §5). The paper describes two routes:
//
//  1. "request large-volume row reads from the durable key-value store
//     itself" — users "must know how slates are written to the key-value
//     store ... to extract the slates back". BulkSlateReader encapsulates
//     that layout knowledge (row = key, column = updater, compressed) and
//     dumps every slate of an updater.
//
//  2. the advised alternative: "log the relevant slate data that they wish
//     to process in bulk later as a part of the applications' update
//     functions", giving "steady-state write behavior that avoids sudden
//     bulk I/O". SlateLogger is that append-only log: update functions
//     write small records as they go; offline consumers stream them later
//     (the paper mentions piping such logs into HDFS for Hadoop).
#ifndef MUPPET_SERVICE_BULK_SLATES_H_
#define MUPPET_SERVICE_BULK_SLATES_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/slate.h"
#include "core/slate_store.h"

namespace muppet {

// Route 1: offline dump straight from the store.
class BulkSlateReader {
 public:
  explicit BulkSlateReader(SlateStore* store);

  // All live slates of `updater`, decompressed, in key order.
  Status DumpUpdater(const std::string& updater,
                     std::vector<std::pair<Bytes, Bytes>>* key_slates);

  // All live slates of every updater: (SlateId, bytes), ordered by key
  // then updater.
  Status DumpAll(std::vector<std::pair<SlateId, Bytes>>* slates);

  // Stream variant: invoke `fn` per slate without materializing the dump.
  Status ForEach(const std::string& updater,
                 const std::function<void(BytesView key, BytesView slate)>&
                     fn);

 private:
  SlateStore* store_;
};

// Route 2: the advised steady-state log. Thread-safe appends of
// length-prefixed (key, payload) records; readable back in order. Update
// functions share one logger per application — the paper's caution about
// "lock contention for the common logger" is real, so appends buffer and
// the mutex hold is a memcpy.
class SlateLogger {
 public:
  SlateLogger() = default;
  ~SlateLogger();

  SlateLogger(const SlateLogger&) = delete;
  SlateLogger& operator=(const SlateLogger&) = delete;

  Status Open(const std::string& path);

  // Append one record (e.g. a trimmed projection of the slate — "users
  // write less than the entire slate to minimize the dumped data").
  Status Append(BytesView key, BytesView payload);

  Status Flush();
  Status Close();

  int64_t records_written() const { return records_written_.Get(); }

  // Read every intact record of a log file, in append order.
  static Status ReadLog(const std::string& path,
                        std::vector<std::pair<Bytes, Bytes>>* records);

  static constexpr LockLevel kLockLevel = LockLevel::kJournal;

 private:
  Mutex mutex_{kLockLevel};
  std::FILE* file_ MUPPET_GUARDED_BY(mutex_) = nullptr;
  // Counter (not a guarded int) so records_written() stays lock-free for
  // status endpoints while updaters append concurrently.
  Counter records_written_;
};

}  // namespace muppet

#endif  // MUPPET_SERVICE_BULK_SLATES_H_
