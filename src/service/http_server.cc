#include "service/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace muppet {

std::string UrlEncode(std::string_view s) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

std::string UrlDecode(std::string_view s) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    if (s[i] == '+') {
      out.push_back(' ');
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

HttpServer::~HttpServer() { (void)Stop(); }

void HttpServer::RegisterHandler(const std::string& prefix, Handler handler) {
  handlers_[prefix] = std::move(handler);
}

Status HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("http: running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("http: socket() failed");
  int opt = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("http: bind failed: " +
                           std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError("http: listen failed");
  }
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

Status HttpServer::Stop() {
  if (!running_.exchange(false)) return Status::OK();
  // Closing the listen socket unblocks accept().
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    MutexLock lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    MutexLock lock(workers_mutex_);
    // Reap finished threads opportunistically to bound the vector.
    if (workers_.size() > 64) {
      for (std::thread& t : workers_) {
        if (t.joinable()) t.join();
      }
      workers_.clear();
    }
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

HttpResponse HttpServer::Route(const HttpRequest& request) const {
  const Handler* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, handler] : handlers_) {
    if (request.path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  if (best == nullptr) {
    return HttpResponse{404, "text/plain", "not found\n"};
  }
  return (*best)(request);
}

void HttpServer::ServeConnection(int fd) {
  // Read until the end of headers (or 64KB cap).
  std::string buffer;
  char chunk[4096];
  size_t header_end = std::string::npos;
  while (buffer.size() < (64u << 10)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) {
    ::close(fd);
    return;
  }

  HttpRequest request;
  {
    std::istringstream headers(buffer.substr(0, header_end));
    std::string line;
    std::getline(headers, line);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream request_line(line);
    std::string target, version;
    request_line >> request.method >> target >> version;
    const size_t q = target.find('?');
    if (q != std::string::npos) {
      request.query = target.substr(q + 1);
      target.resize(q);
    }
    // Keep the path raw (percent-encoded): handlers decode per segment so
    // encoded '/' in slate keys survives routing.
    request.path = target;
    while (std::getline(headers, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(
                               static_cast<unsigned char>(c)));
      size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      request.headers[name] = line.substr(vstart);
    }
  }

  // Body (Content-Length only).
  size_t content_length = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    content_length = static_cast<size_t>(std::strtoull(
        it->second.c_str(), nullptr, 10));
  }
  request.body = buffer.substr(header_end + 4);
  while (request.body.size() < content_length &&
         request.body.size() < (16u << 20)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    request.body.append(chunk, static_cast<size_t>(n));
  }

  const HttpResponse response = Route(request);

  std::ostringstream out;
  const char* reason = response.status == 200   ? "OK"
                       : response.status == 404 ? "Not Found"
                       : response.status == 400 ? "Bad Request"
                                                : "Error";
  out << "HTTP/1.0 " << response.status << " " << reason << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  const std::string payload = out.str();
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::close(fd);
}

}  // namespace muppet
