// Minimal HTTP/1.0 server over POSIX sockets. The paper's Muppet "provides
// a small HTTP server on each node for slate fetches" (§4.4) plus "basic
// status information" (§4.5); SlateService mounts those endpoints here.
// One accept thread, one short-lived thread per connection, close after
// each response — enough for live slate queries, not a general web server.
#ifndef MUPPET_SERVICE_HTTP_SERVER_H_
#define MUPPET_SERVICE_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace muppet {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // decoded path, e.g. "/slate/U1/Walmart"
  std::string query;   // raw query string (after '?'), may be empty
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Percent-encoding helpers for path segments (slate keys are arbitrary
// bytes).
std::string UrlEncode(std::string_view s);
std::string UrlDecode(std::string_view s);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Route requests whose path starts with `prefix` to `handler`; the
  // longest matching prefix wins. Register before Start().
  void RegisterHandler(const std::string& prefix, Handler handler);

  // Bind 127.0.0.1:`port` (0 = ephemeral) and start serving.
  Status Start(int port = 0);

  // The bound port (valid after Start()).
  int port() const { return port_; }

  Status Stop();

  static constexpr LockLevel kLockLevel = LockLevel::kService;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Route(const HttpRequest& request) const;

  // Written by Start()/Stop(), read concurrently by AcceptLoop().
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  Mutex workers_mutex_{kLockLevel};
  std::vector<std::thread> workers_ MUPPET_GUARDED_BY(workers_mutex_);
  // Registered before Start(); the spawn of accept_thread_ publishes the
  // map to connection threads, which only read it. Not lock-guarded by
  // design — RegisterHandler after Start() would be a bug.
  // muppet-lint: allow(guarded): registered pre-Start(), read-only after
  std::map<std::string, Handler> handlers_;  // by prefix
};

}  // namespace muppet

#endif  // MUPPET_SERVICE_HTTP_SERVER_H_
