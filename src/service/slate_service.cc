#include "service/slate_service.h"

#include "json/json.h"

namespace muppet {

SlateService::SlateService(Engine* engine) : engine_(engine) {}

std::string SlateService::SlateUri(const std::string& updater,
                                   BytesView key) {
  return "/slate/" + UrlEncode(updater) + "/" + UrlEncode(key);
}

HttpResponse SlateService::Fetch(const std::string& path) const {
  // Expect "/slate/<updater>/<key>". The path arrives already URL-decoded
  // for in-process calls via HttpServer; decode defensively otherwise.
  const std::string prefix = "/slate/";
  if (path.compare(0, prefix.size(), prefix) != 0) {
    return HttpResponse{400, "text/plain", "expected /slate/<updater>/<key>\n"};
  }
  const size_t sep = path.find('/', prefix.size());
  if (sep == std::string::npos || sep + 1 > path.size()) {
    return HttpResponse{400, "text/plain", "expected /slate/<updater>/<key>\n"};
  }
  const std::string updater =
      UrlDecode(path.substr(prefix.size(), sep - prefix.size()));
  const std::string key = UrlDecode(path.substr(sep + 1));

  Result<Bytes> slate = engine_->FetchSlate(updater, key);
  if (!slate.ok()) {
    if (slate.status().IsNotFound()) {
      return HttpResponse{404, "text/plain", "no such slate\n"};
    }
    return HttpResponse{500, "text/plain", slate.status().ToString() + "\n"};
  }
  return HttpResponse{200, "application/octet-stream",
                      std::move(slate).value()};
}

HttpResponse SlateService::StatusPage() const {
  const EngineStats stats = engine_->Stats();
  Json j = Json::MakeObject();
  j["events_published"] = stats.events_published;
  j["events_processed"] = stats.events_processed;
  j["events_emitted"] = stats.events_emitted;
  j["events_lost_failure"] = stats.events_lost_failure;
  j["events_dropped_overflow"] = stats.events_dropped_overflow;
  j["events_redirected_overflow"] = stats.events_redirected_overflow;
  j["slate_cache_hits"] = stats.slate_cache_hits;
  j["slate_cache_misses"] = stats.slate_cache_misses;
  j["slate_cache_evictions"] = stats.slate_cache_evictions;
  j["slate_store_reads"] = stats.slate_store_reads;
  j["slate_store_writes"] = stats.slate_store_writes;
  j["failures_detected"] = stats.failures_detected;
  // Latency comes from the engine's shared metrics registry — the same
  // histogram /metrics exports — so the two endpoints can never disagree.
  // Engines without a registry fall back to the stats snapshot.
  MetricsRegistry* registry = engine_->metrics();
  const Histogram* latency =
      registry != nullptr ? registry->GetHistogram("muppet_e2e_latency_us")
                          : nullptr;
  if (latency != nullptr) {
    j["latency_p50_us"] = latency->Percentile(0.50);
    j["latency_p99_us"] = latency->Percentile(0.99);
  } else {
    j["latency_p50_us"] = stats.latency_p50_us;
    j["latency_p99_us"] = stats.latency_p99_us;
  }
  return HttpResponse{200, "application/json", j.Dump() + "\n"};
}

void SlateService::AttachTo(HttpServer* server) {
  server->RegisterHandler("/slate/",
                          [this](const HttpRequest& request) {
                            return Fetch(request.path);
                          });
  server->RegisterHandler("/status", [this](const HttpRequest&) {
    return StatusPage();
  });
}

}  // namespace muppet
