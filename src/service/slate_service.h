// Live slate reads (paper §4.4): "The URI of a slate fetch includes the
// name of the updater and the key of the slate ... The fetch retrieves the
// slate from Muppet's slate cache (on the appropriate machine, forwarding
// the request internally if necessary) rather than from the durable
// key-value store to ensure an up-to-date reply."
//
// SlateService answers those URIs against a running Engine (whose
// FetchSlate implements the cache-first forwarding), and serves the
// §4.5 status endpoint. It can be used in-process or mounted on an
// HttpServer.
#ifndef MUPPET_SERVICE_SLATE_SERVICE_H_
#define MUPPET_SERVICE_SLATE_SERVICE_H_

#include <string>

#include "engine/engine.h"
#include "service/http_server.h"

namespace muppet {

class SlateService {
 public:
  explicit SlateService(Engine* engine);

  // In-process fetch by URI path: "/slate/<updater>/<url-encoded key>".
  HttpResponse Fetch(const std::string& path) const;

  // Status summary ("/status"): engine counters as JSON.
  HttpResponse StatusPage() const;

  // Mount "/slate/" and "/status" on `server` (register before Start()).
  void AttachTo(HttpServer* server);

  // Canonical URI for a slate.
  static std::string SlateUri(const std::string& updater,
                              BytesView key);

 private:
  Engine* engine_;
};

}  // namespace muppet

#endif  // MUPPET_SERVICE_SLATE_SERVICE_H_
