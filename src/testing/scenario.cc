#include "testing/scenario.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <iterator>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/prom.h"
#include "common/rng.h"
#include "common/sync.h"
#include "service/admin_service.h"
#include "core/reference_executor.h"
#include "core/slate.h"
#include "core/slate_store.h"
#include "engine/muppet1.h"
#include "engine/muppet2.h"
#include "kvstore/cluster.h"

namespace muppet {
namespace chaos {

namespace {

const char* EngineName(EngineKind kind) {
  return kind == EngineKind::kMuppet1 ? "muppet1" : "muppet2";
}

// Flight-recorder dump: on an invariant violation, capture every
// machine's trace ring and a metrics snapshot before teardown destroys
// them. Sampling is deterministic in the event keys, so replaying the
// failing seeds re-records the same traces.
void DumpFlightRecorder(const ScenarioOptions& options, Engine* engine,
                        ScenarioResult* result) {
  Json doc = Json::MakeObject();
  doc["engine"] = EngineName(options.engine);
  doc["fault_seed"] = options.plan.seed;
  doc["workload_seed"] = options.workload_seed;
  Json machines = Json::MakeArray();
  for (MachineId m = 0; m < static_cast<MachineId>(options.num_machines);
       ++m) {
    machines.Append(TracezDocument(engine, m));
  }
  doc["machines"] = std::move(machines);
  result->trace_dump = doc.Dump() + "\n";
  if (engine->metrics() != nullptr) {
    result->metrics_dump = PrometheusText(*engine->metrics());
  }

  const char* dir = std::getenv("MUPPET_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base = std::string(dir) + "/chaos-" +
                           EngineName(options.engine) + "-seed-" +
                           std::to_string(options.plan.seed);
  std::ofstream(base + "-traces.json") << result->trace_dump;
  std::ofstream(base + "-metrics.prom") << result->metrics_dump;

  // Health & SLO plane (DESIGN.md §14): the incident ring and the
  // per-stream SLO verdicts, so a nightly violation ships its own
  // diagnosis alongside the traces.
  engine->HarvestSlo();
  Json ops = Json::MakeObject();
  ops["engine"] = EngineName(options.engine);
  ops["fault_seed"] = options.plan.seed;
  ops["sloz"] = SlozDocument(engine, 0);
  ops["healthz"] = HealthzDocument(engine, 0);
  Json incidents = Json::MakeArray();
  if (const IncidentLog* log = engine->incidents(); log != nullptr) {
    for (const Incident& incident : log->Incidents()) {
      incidents.Append(IncidentToJson(incident));
    }
  }
  ops["incidents"] = std::move(incidents);
  std::ofstream(base + "-slo.json") << ops.Dump() << "\n";

  // Durable runs also preserve the changelog segments and checkpoint
  // manifests: with them plus the seeds, a violation can be replayed AND
  // the recovered state independently re-derived offline.
  if (options.durability_dir.empty()) return;
  std::error_code ec;
  const std::filesystem::path dest = base + "-slatelog";
  std::filesystem::create_directories(dest, ec);
  if (ec) return;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.durability_dir, ec)) {
    if (ec || !entry.is_regular_file(ec)) continue;
    std::filesystem::copy_file(
        entry.path(), dest / entry.path().filename(),
        std::filesystem::copy_options::overwrite_existing, ec);
  }
}

// Ledger of the events the counting updater actually processed — the
// ground truth the reference oracle replays. Appended from worker threads
// (under the engine's slate locks), hence the unordered scratch mutex; the
// trace is canonicalized by sorting afterwards.
struct Recorder {
  Mutex mutex;
  std::vector<Event> events MUPPET_GUARDED_BY(mutex);

  void Record(const Event& e) {
    MutexLock lock(mutex);
    events.push_back(e);
  }
  std::vector<Event> Snapshot() {
    MutexLock lock(mutex);
    return events;
  }
};

// The workload's single stateful operator: per-key event count in a JSON
// slate. `recorder` nullptr (the reference copy) skips the ledger.
UpdaterFactory CountingUpdater(Recorder* recorder) {
  return MakeUpdaterFactory([recorder](PerformerUtilities& out,
                                       const Event& e, const Bytes* slate) {
    JsonSlate s(slate);
    s.data()["count"] = s.data().GetInt("count") + 1;
    (void)out.ReplaceSlate(s.Serialize());
    if (recorder != nullptr) recorder->Record(e);
  });
}

Status BuildApp(AppConfig* config, const ScenarioOptions& options,
                Recorder* recorder) {
  UpdaterOptions uo;
  uo.flush_policy = options.flush_policy;
  uo.slate_ttl_micros = options.slate_ttl_micros;
  if (options.hot_split) {
    // Declare the count associative so the load manager may split its hot
    // keys; the merger sums partial counts (count is a sum, so any
    // grouping of the events folds to the same total).
    uo.associativity = Associativity::kAssociativeCommutative;
    uo.merger = [](const Bytes* base, const Bytes& part) {
      JsonSlate b(base);
      JsonSlate p(&part);
      b.data()["count"] =
          b.data().GetInt("count", 0) + p.data().GetInt("count", 0);
      return b.Serialize();
    };
  }
  MUPPET_RETURN_IF_ERROR(config->DeclareInputStream("in"));
  if (!options.fanout) {
    return config->AddUpdater("count", CountingUpdater(recorder), {"in"},
                              uo);
  }
  MUPPET_RETURN_IF_ERROR(config->DeclareStream("mid"));
  MUPPET_RETURN_IF_ERROR(config->AddMapper(
      "split",
      MakeMapperFactory([](PerformerUtilities& out, const Event& e) {
        (void)out.Publish("mid", e.key, e.value);
        (void)out.Publish("mid", e.key, e.value);
      }),
      {"in"}));
  return config->AddUpdater("count", CountingUpdater(recorder), {"mid"}, uo);
}

}  // namespace

std::string ScenarioResult::Describe(const ScenarioOptions& options) const {
  std::string out;
  if (violations.empty()) {
    out += "chaos scenario OK\n";
  } else {
    out += "chaos scenario FAILED (" + std::to_string(violations.size()) +
           " invariant violation(s))\n";
    for (const std::string& v : violations) out += "  ! " + v + "\n";
  }
  out += "engine=" + std::string(EngineName(options.engine)) +
         " machines=" + std::to_string(options.num_machines) +
         " workload_seed=" + std::to_string(options.workload_seed) +
         " steps=" + std::to_string(options.steps) + "x" +
         std::to_string(options.events_per_step) +
         " keys=" + std::to_string(options.num_keys) +
         " store=" + (options.with_store ? "yes" : "no") +
         " consistency=" + ConsistencyName(options.consistency) + "\n";
  out += options.plan.ToString();
  out += "replay: ScenarioRunner with workload_seed=" +
         std::to_string(options.workload_seed) +
         " and the plan above reproduces this run bit-for-bit;\n";
  out += "  for the randomized sweep: MUPPET_CHAOS_REPLAY_SEED=" +
         std::to_string(options.plan.seed) +
         " ctest -R chaos_property --output-on-failure\n";
  return out;
}

ScenarioResult ScenarioRunner::Run() {
  ScenarioResult result;
  auto fail = [&result](std::string v) {
    result.violations.push_back(std::move(v));
  };

  if (options_.num_machines < 1 || options_.steps < 1) {
    fail("scenario: bad shape (need >=1 machine and >=1 step)");
    return result;
  }
  if (options_.with_store && options_.data_dir.empty()) {
    fail("scenario: with_store requires data_dir");
    return result;
  }
  if (options_.consistency != Consistency::kLossy &&
      options_.durability_dir.empty()) {
    fail("scenario: durable consistency requires durability_dir");
    return result;
  }

  // Virtual time drives only the transport/fault timeline; the engines
  // keep the system clock (their flusher threads sleep on it, and a
  // simulated engine clock would busy-spin the timeline forward).
  SimulatedClock sim(0);
  FaultInjector injector(options_.plan);
  Recorder recorder;

  AppConfig config;
  Status s = BuildApp(&config, options_, &recorder);
  if (!s.ok()) {
    fail("scenario: app config: " + s.ToString());
    return result;
  }

  std::unique_ptr<kv::KvCluster> cluster;
  std::unique_ptr<SlateStore> store;
  if (options_.with_store) {
    kv::KvClusterOptions co;
    co.num_nodes = options_.store_nodes;
    co.replication_factor = std::min(3, options_.store_nodes);
    co.node.data_dir = options_.data_dir;
    co.node.clock = &sim;
    cluster = std::make_unique<kv::KvCluster>(co);
    s = cluster->Open();
    if (!s.ok()) {
      fail("scenario: store open: " + s.ToString());
      return result;
    }
    store = std::make_unique<SlateStore>(cluster.get(), SlateStoreOptions{});
  }

  EngineOptions eo;
  eo.num_machines = options_.num_machines;
  eo.workers_per_function = options_.workers_per_function;
  eo.threads_per_machine = options_.threads_per_machine;
  eo.queue_capacity = options_.queue_capacity;
  eo.overflow.policy = options_.overflow_policy;
  eo.slate_store = store.get();
  eo.transport.clock = &sim;
  eo.transport.faults = &injector;
  // Machine crash/restart actions go through the engine (below) so queue
  // and cache loss is modeled, not just transport reachability.
  eo.transport.poll_fault_actions = false;
  // Trace every event: chaos runs are small, and a violation report is
  // worth far more with the full flight recorder attached.
  eo.trace.sample_period = 1;
  eo.durability.consistency = options_.consistency;
  eo.durability.dir = options_.durability_dir;
  eo.durability.sync_every_records = options_.sync_every_records;
  eo.durability.checkpoint_every_records = options_.checkpoint_every_records;
  if (options_.hot_split) {
    // Aggressive self-tuning so a split triggers (and later merges back)
    // within a handful of 100ms steps. Placement stays off: overrides
    // move key ownership, which the strict oracle treats as disruptive.
    eo.load_manager.enabled = true;
    eo.load_manager.tick_micros = 2 * kMicrosPerMilli;
    eo.load_manager.heat.sample_period = 4;
    eo.load_manager.heat_decay = 0.5;
    eo.load_manager.min_samples = 16;
    eo.load_manager.split_heat_fraction = 0.3;
    eo.load_manager.merge_heat_fraction = 0.05;
    eo.load_manager.split_shards = 4;
    eo.load_manager.placement_enabled = false;
  }

  std::unique_ptr<Muppet1Engine> m1;
  std::unique_ptr<Muppet2Engine> m2;
  Engine* engine = nullptr;
  Transport* transport = nullptr;
  Master* master = nullptr;
  std::function<std::set<MachineId>(MachineId)> known_failed;
  if (options_.engine == EngineKind::kMuppet1) {
    m1 = std::make_unique<Muppet1Engine>(config, eo);
    engine = m1.get();
    transport = &m1->transport();
    master = &m1->master();
    known_failed = [&m1](MachineId m) { return m1->KnownFailedOn(m); };
  } else {
    m2 = std::make_unique<Muppet2Engine>(config, eo);
    engine = m2.get();
    transport = &m2->transport();
    master = &m2->master();
    known_failed = [&m2](MachineId m) { return m2->KnownFailedOn(m); };
  }

  s = engine->Start();
  if (!s.ok()) {
    fail("scenario: engine start: " + s.ToString());
    return result;
  }

  Rng rng(options_.workload_seed);
  std::set<MachineId> crashed;
  // Invariant D snapshots: send attempts to each machine at the first
  // drain boundary where its failure was cluster-known.
  std::map<MachineId, int64_t> dead_attempts;

  auto apply_action = [&](const FaultAction& a) {
    switch (a.kind) {
      case FaultAction::Kind::kCrashMachine:
        if (crashed.insert(a.a).second) (void)engine->CrashMachine(a.a);
        break;
      case FaultAction::Kind::kRestartMachine:
        if (crashed.erase(a.a) > 0) (void)engine->RestartMachine(a.a);
        // Sends to the machine are legal from this instant. Drop the
        // invariant-D snapshot now rather than at the next drain boundary:
        // a drop rule can re-fail the machine mid-step, in which case the
        // boundary sampling would never see it leave the failed set and
        // would count the healthy-window sends against the stale snapshot.
        dead_attempts.erase(a.a);
        break;
      case FaultAction::Kind::kCrashStoreNode:
        if (cluster != nullptr && a.a >= 0 && a.a < cluster->num_nodes()) {
          cluster->CrashNode(a.a);
        }
        break;
      case FaultAction::Kind::kRestoreStoreNode:
        if (cluster != nullptr && a.a >= 0 && a.a < cluster->num_nodes()) {
          cluster->RestoreNode(a.a);
        }
        break;
      case FaultAction::Kind::kPartition:
      case FaultAction::Kind::kHeal:
        break;  // applied inside the injector's own partition set
    }
  };

  // Release reordered messages and wait for quiescence. A single flush
  // before Drain() is not enough: a flushed delivery can make an operator
  // emit an event that gets held again while Drain() is already blocked on
  // it. A helper keeps flushing until the drain completes; Drain returning
  // (in-flight == 0) proves the holdback buffer is empty, since held
  // messages stay in-flight until delivered or settled as lost.
  auto quiesce = [&]() -> Status {
    std::atomic<bool> drained{false};
    std::thread flush_pump([&]() {
      while (!drained.load(std::memory_order_acquire)) {
        transport->FlushHeld();
        // Pacing only: the quiesce result depends on the drained flag,
        // not on how many times this loop spins, so real-time sleep
        // cannot leak into oracle-visible state.
        // muppet-lint: allow(determinism): flush-pump pacing sleep
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    Status drain_status = engine->Drain();
    drained.store(true, std::memory_order_release);
    flush_pump.join();
    return drain_status;
  };

  bool aborted = false;
  for (int step = 0; step <= options_.steps && !aborted; ++step) {
    const Timestamp base =
        static_cast<Timestamp>(step) * options_.step_micros;
    if (sim.Now() < base) sim.Set(base);
    for (const FaultAction& a : injector.TakeDueActions(sim.Now())) {
      apply_action(a);
    }
    if (step < options_.steps) {
      // hot_split skews ~half the traffic onto k0 for the first half of
      // the steps (split triggers), then goes uniform (merge triggers).
      const bool hot_phase =
          options_.hot_split && step * 2 < options_.steps;
      for (int i = 0; i < options_.events_per_step; ++i) {
        const std::string key =
            hot_phase && rng.Chance(0.5)
                ? "k0"
                : "k" + std::to_string(rng.Uniform(
                            static_cast<uint64_t>(options_.num_keys)));
        const std::string value =
            "s" + std::to_string(step) + "e" + std::to_string(i);
        (void)engine->Publish("in", key, value, base + i + 1);
      }
    }
    s = quiesce();
    if (!s.ok()) {
      fail("scenario: drain: " + s.ToString());
      aborted = true;
      break;
    }

    const std::set<MachineId> failed_now = master->failed();
    for (MachineId m : failed_now) {
      if (dead_attempts.find(m) == dead_attempts.end()) {
        dead_attempts[m] = transport->SendAttemptsTo(m);
      }
    }
    for (auto it = dead_attempts.begin(); it != dead_attempts.end();) {
      // A restarted machine left the failed set; sends are legal again.
      it = failed_now.count(it->first) == 0 ? dead_attempts.erase(it)
                                            : std::next(it);
    }
  }

  // The load manager injects control events (merge sweeps/deltas) from
  // its own thread. Pause it before the final accounting so a mid-tick
  // injection cannot race the conservation snapshot, then drain once more
  // so control events already in flight settle.
  engine->PauseLoadManagement();
  if (!aborted) {
    s = quiesce();
    if (!s.ok()) fail("scenario: final drain: " + s.ToString());
  }

  // ---- Invariant D: the ring reroutes; nothing is sent to a machine
  // whose failure is cluster-known.
  for (const auto& [m, snapshot] : dead_attempts) {
    const int64_t now_attempts = transport->SendAttemptsTo(m);
    if (now_attempts > snapshot) {
      fail("invariant D (rerouting): machine " + std::to_string(m) +
           " received " + std::to_string(now_attempts - snapshot) +
           " send attempt(s) after its failure was cluster-known");
    }
  }

  // ---- Invariant C: every live machine's failed set converged to the
  // master's (the §4.3 broadcast reached everyone).
  const std::set<MachineId> master_failed = master->failed();
  for (MachineId m = 0; m < options_.num_machines; ++m) {
    if (crashed.count(m) > 0) continue;
    if (known_failed(m) != master_failed) {
      fail("invariant C (convergence): machine " + std::to_string(m) +
           "'s failed set differs from the master's");
    }
  }

  // ---- Invariant A: conservation. Every accepted logical event settles
  // exactly once. Duplicate-fault copies enter on the left because the
  // transport manufactured deliveries the application never published;
  // exactly-once dedup settles a suppressed redelivery as `deduped`
  // rather than processing it twice. (kOverflowStream re-routes instead
  // of settling, so it is exempt.)
  result.stats = engine->Stats();
  result.messages_duplicated = transport->messages_duplicated();
  result.messages_held = transport->messages_held();
  result.faults_dropped = injector.dropped();
  if (options_.overflow_policy != OverflowPolicy::kOverflowStream) {
    const int64_t pushed = result.stats.events_published +
                           result.stats.events_emitted +
                           result.messages_duplicated;
    const int64_t settled = result.stats.events_processed +
                            result.stats.events_lost_failure +
                            result.stats.events_dropped_overflow +
                            result.stats.events_deduped;
    if (pushed != settled) {
      fail("invariant A (conservation): pushed=" + std::to_string(pushed) +
           " (published+emitted+duplicated) != settled=" +
           std::to_string(settled) +
           " (processed+lost+overflow-dropped+deduped)");
    }
  }

  // ---- Canonical trace: what the updater processed, seq/origin-free.
  std::vector<Event> ledger = recorder.Snapshot();
  result.trace.reserve(ledger.size());
  for (const Event& e : ledger) {
    result.trace.push_back(std::to_string(e.ts) + "|" + e.key + "|" +
                           e.value);
  }
  std::sort(result.trace.begin(), result.trace.end());

  // ---- Invariant B: reference oracle. Replay the processed-event ledger
  // through the single-threaded ReferenceExecutor; the surviving slates
  // must match exactly when no fault could destroy or strand slate state,
  // and must never exceed the reference otherwise.
  {
    AppConfig ref_config;
    Status rs = ref_config.DeclareInputStream("in");
    if (rs.ok()) {
      rs = ref_config.AddUpdater("count", CountingUpdater(nullptr), {"in"});
    }
    ReferenceExecutor ref(ref_config);
    if (rs.ok()) rs = ref.Start();
    for (const Event& e : ledger) {
      if (!rs.ok()) break;
      rs = ref.Publish("in", e.key, e.value, e.ts);
    }
    if (rs.ok()) rs = ref.Run();
    if (!rs.ok()) {
      fail("invariant B (oracle): reference run failed: " + rs.ToString());
    } else {
      // Exact equality requires that nothing destroyed slate state or
      // moved key ownership mid-run: machine/store crashes wipe caches,
      // and partitions or dropped sends mark machines failed (§4.3
      // detection-by-failed-send), splitting a key's count across owners.
      //
      // The durability plane changes the crash case (DESIGN.md §12): a
      // crash whose restart is scripted at the *same* timestamp fires
      // back-to-back at a drain boundary (zero in-flight events, ring
      // never re-homes a key), so replay can restore state in place. Such
      // "recoverable" crashes keep kExactlyOnce runs strict, and bound
      // kAtLeastOnce runs to an unsynced-tail deficit of at most
      // crashes x sync_every_records records (each lost changelog append
      // regresses exactly one key's count by one).
      const bool recovery_enabled =
          options_.consistency != Consistency::kLossy;
      bool ownership_disrupting = false;
      int64_t recoverable_crashes = 0;
      for (const FaultAction& a : options_.plan.actions) {
        if (a.kind == FaultAction::Kind::kCrashMachine) {
          bool recovered_in_place = false;
          if (recovery_enabled) {
            for (const FaultAction& b : options_.plan.actions) {
              if (b.kind == FaultAction::Kind::kRestartMachine &&
                  b.a == a.a && b.at_micros == a.at_micros) {
                recovered_in_place = true;
                break;
              }
            }
          }
          if (recovered_in_place) {
            ++recoverable_crashes;
          } else {
            ownership_disrupting = true;
          }
        } else if (a.kind == FaultAction::Kind::kCrashStoreNode ||
                   a.kind == FaultAction::Kind::kPartition) {
          ownership_disrupting = true;
        }
      }
      for (const FaultRule& r : options_.plan.rules) {
        if (r.drop_probability > 0.0) ownership_disrupting = true;
      }
      const bool exact =
          !ownership_disrupting &&
          (recoverable_crashes == 0 ||
           options_.consistency == Consistency::kExactlyOnce);

      int64_t deficit = 0;
      for (const auto& [id, ref_bytes] : ref.slates()) {
        JsonSlate ref_slate(&ref_bytes);
        const int64_t ref_count = ref_slate.data().GetInt("count", 0);
        int64_t live_count = 0;
        Result<Bytes> live = engine->FetchSlate("count", id.key);
        if (live.ok()) {
          JsonSlate live_slate(&live.value());
          live_count = live_slate.data().GetInt("count", 0);
        }
        result.counts[std::string(id.key)] = live_count;
        if (live_count < ref_count) deficit += ref_count - live_count;
        if (live_count > ref_count) {
          fail("invariant B (oracle): key '" + std::string(id.key) +
               "' live count " + std::to_string(live_count) +
               " exceeds reference " + std::to_string(ref_count));
        } else if (exact && live_count != ref_count) {
          fail("invariant B (oracle): key '" + std::string(id.key) +
               "' live count " + std::to_string(live_count) +
               " != reference " + std::to_string(ref_count) +
               " with no state-destroying fault in the plan");
        }
      }
      if (!ownership_disrupting && recoverable_crashes > 0 &&
          options_.consistency == Consistency::kAtLeastOnce) {
        const int64_t floor_bound =
            recoverable_crashes *
            static_cast<int64_t>(options_.sync_every_records);
        if (deficit > floor_bound) {
          fail("invariant B (at-least-once floor): total count deficit " +
               std::to_string(deficit) + " exceeds the unsynced-tail " +
               "bound of " + std::to_string(floor_bound) + " (" +
               std::to_string(recoverable_crashes) + " crash(es) x " +
               std::to_string(options_.sync_every_records) +
               " sync_every_records)");
        }
      }
    }
  }

  if (options_.inject_violation_for_test) {
    result.violations.push_back("injected violation (test hook)");
  }

  if (!result.violations.empty()) {
    DumpFlightRecorder(options_, engine, &result);
  }

  (void)engine->Stop();
  return result;
}

FaultPlan RandomFaultPlan(uint64_t seed, const ScenarioOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed ^ 0xC4405C4405ULL);
  const MachineId n = static_cast<MachineId>(options.num_machines);
  const uint64_t steps = static_cast<uint64_t>(std::max(1, options.steps));

  auto any_or = [&](MachineId limit) -> MachineId {
    return rng.Chance(0.5)
               ? kAnyMachine
               : static_cast<MachineId>(rng.Uniform(
                     static_cast<uint64_t>(limit)));
  };

  const int num_rules = 1 + static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < num_rules; ++i) {
    const MachineId from = any_or(n);
    const MachineId to = any_or(n);
    const Timestamp start =
        options.step_micros * static_cast<Timestamp>(rng.Uniform(steps));
    const Timestamp end =
        start + options.step_micros *
                    static_cast<Timestamp>(1 + rng.Uniform(steps));
    switch (rng.Uniform(4)) {
      case 0:
        plan.Drop(from, to, 0.01 + 0.19 * rng.NextDouble(), start, end);
        break;
      case 1:
        plan.Duplicate(from, to, 0.01 + 0.14 * rng.NextDouble(), start, end);
        break;
      case 2:
        plan.Reorder(from, to, 0.05 + 0.25 * rng.NextDouble(),
                     1 + static_cast<uint32_t>(rng.Uniform(4)), start, end);
        break;
      default:
        plan.Delay(from, to, 10 + static_cast<Timestamp>(rng.Uniform(190)),
                   start, end);
        break;
    }
  }

  // Machine 0 hosts the publisher role (the paper's special mapper M0,
  // §4.1); crashing it kills the source, so victims start at machine 1.
  if (n > 1 && rng.Chance(0.5)) {
    const MachineId victim =
        1 + static_cast<MachineId>(rng.Uniform(static_cast<uint64_t>(n - 1)));
    const Timestamp crash_at =
        options.step_micros *
        static_cast<Timestamp>(1 + rng.Uniform(std::max<uint64_t>(1, steps - 1)));
    plan.CrashAt(crash_at, victim);
    if (rng.Chance(0.7)) {
      plan.RestartAt(crash_at + options.step_micros *
                                    static_cast<Timestamp>(1 + rng.Uniform(2)),
                     victim);
    }
  }
  if (n > 2 && rng.Chance(0.3)) {
    const MachineId a = static_cast<MachineId>(rng.Uniform(
        static_cast<uint64_t>(n)));
    MachineId b = static_cast<MachineId>(rng.Uniform(
        static_cast<uint64_t>(n)));
    if (b == a) b = (a + 1) % n;
    const Timestamp at =
        options.step_micros * static_cast<Timestamp>(rng.Uniform(steps));
    plan.PartitionAt(at, a, b);
    plan.HealAt(at + options.step_micros *
                         static_cast<Timestamp>(1 + rng.Uniform(2)),
                a, b);
  }
  if (options.with_store && options.store_nodes > 1 && rng.Chance(0.3)) {
    const int node = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(options.store_nodes)));
    const Timestamp at =
        options.step_micros *
        static_cast<Timestamp>(1 + rng.Uniform(std::max<uint64_t>(1, steps - 1)));
    plan.CrashStoreNodeAt(at, node);
    plan.RestoreStoreNodeAt(at + options.step_micros, node);
  }
  return plan;
}

const char* CrashShapeName(CrashShape shape) {
  switch (shape) {
    case CrashShape::kCrashRestart:
      return "crash_restart";
    case CrashShape::kCrashDuringCheckpoint:
      return "crash_during_checkpoint";
    case CrashShape::kCrashDuringReplay:
      return "crash_during_replay";
  }
  return "unknown";
}

FaultPlan RecoveryFaultPlan(uint64_t seed, CrashShape shape,
                            const ScenarioOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed ^ 0x51A7E70CULL);
  const MachineId n = static_cast<MachineId>(options.num_machines);
  const uint64_t steps = static_cast<uint64_t>(std::max(2, options.steps));

  // Machine 0 hosts the publisher role (§4.1); victims start at 1. Each
  // pair lands on an interior drain boundary so slates have accumulated
  // before the crash and events keep arriving after the recovery.
  auto victim = [&]() -> MachineId {
    return n > 1 ? 1 + static_cast<MachineId>(
                           rng.Uniform(static_cast<uint64_t>(n - 1)))
                 : 0;
  };
  auto boundary = [&]() -> Timestamp {
    return options.step_micros *
           static_cast<Timestamp>(1 + rng.Uniform(steps - 1));
  };

  const MachineId v = victim();
  const Timestamp at = boundary();
  const int cycles = shape == CrashShape::kCrashDuringReplay ? 2 : 1;
  for (int c = 0; c < cycles; ++c) plan.CrashAt(at, v).RestartAt(at, v);

  // crash_during_checkpoint stacks a second pair on another boundary:
  // with the tiny checkpoint_every_records the caller sets for this
  // shape, more recoveries mean more chances to land mid-manifest-write.
  // The other shapes take a second victim half the time for variety.
  if (shape == CrashShape::kCrashDuringCheckpoint || rng.Chance(0.5)) {
    const MachineId v2 = victim();
    Timestamp at2 = boundary();
    if (at2 == at && v2 == v) {
      at2 = options.step_micros *
            static_cast<Timestamp>(1 + (at / options.step_micros) % (steps - 1));
    }
    const int cycles2 = shape == CrashShape::kCrashDuringReplay ? 2 : 1;
    for (int c = 0; c < cycles2; ++c) plan.CrashAt(at2, v2).RestartAt(at2, v2);
  }
  return plan;
}

}  // namespace chaos
}  // namespace muppet
