// Deterministic chaos scenario runner. Stands up a multi-machine Muppet
// 1.0 or 2.0 cluster (optionally backed by a kvstore slate store), feeds a
// seeded workload while a FaultPlan injects scripted faults on a simulated
// timeline, drains, and checks the paper's failure-handling invariants
// (§4.3–4.4):
//
//   A  conservation  — every accepted event is accounted for exactly once:
//                      published + emitted + duplicated ==
//                      processed + lost + dropped-by-overflow;
//   B  oracle        — surviving slates match (or, after state-destroying
//                      crashes, never exceed) the ReferenceExecutor run on
//                      the ledger of events the updater actually processed;
//   C  convergence   — every live machine's failed-machine set equals the
//                      master's after a drain (the §4.3 broadcast);
//   D  rerouting     — once a machine's failure is known cluster-wide, no
//                      further send is attempted to it (ring rerouting).
//
// Everything is driven by two seeds (workload + fault plan), so any
// violation is replayable bit-for-bit; Describe() prints both seeds and
// the full fault timeline next to the violations.
#ifndef MUPPET_TESTING_SCENARIO_H_
#define MUPPET_TESTING_SCENARIO_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "engine/engine.h"
#include "net/fault.h"

namespace muppet {
namespace chaos {

enum class EngineKind { kMuppet1, kMuppet2 };

struct ScenarioOptions {
  EngineKind engine = EngineKind::kMuppet2;

  // Cluster shape.
  int num_machines = 3;
  int workers_per_function = 2;  // Muppet 1.0
  int threads_per_machine = 2;   // Muppet 2.0
  size_t queue_capacity = 4096;
  OverflowPolicy overflow_policy = OverflowPolicy::kDrop;

  // Workflow shape: false = input -> counting updater; true = input ->
  // fan-out mapper (x2) -> counting updater.
  bool fanout = false;

  // Exercise the self-tuning load manager: the counting updater is
  // declared associative/commutative with a count-summing merger, the
  // load manager runs with an aggressive tick so splits trigger inside a
  // short scenario, and the workload skews ~half its events onto one hot
  // key for the first half of the steps (uniform after, so the split
  // drains and merges back). The oracle checks are unchanged — split or
  // not, per-key counts must match the reference exactly when no fault
  // destroys state, because FetchSlate aggregates base + shard slates
  // and the associative fold moves mass without duplicating or dropping.
  bool hot_split = false;

  // Durable slate store backed by a KvCluster under `data_dir` (required
  // when with_store). Write-through keeps the oracle exact across machine
  // crashes.
  bool with_store = false;
  int store_nodes = 3;
  std::string data_dir;
  SlateFlushPolicy flush_policy = SlateFlushPolicy::kWriteThrough;
  Timestamp slate_ttl_micros = 0;

  // Durability / consistency knob (engine/slatelog.h, DESIGN.md §12).
  // Anything above kLossy requires `durability_dir` (per-machine slate
  // changelogs live there) and changes the oracle contract: a crash whose
  // restart is scripted at the same boundary destroys no slate state, so
  // kExactlyOnce plans built from such pairs are held to *strict* oracle
  // equality, and kAtLeastOnce plans to a bounded-loss floor (the total
  // count deficit across keys may not exceed crashes x sync_every_records,
  // the unsynced changelog tail a crash is allowed to eat).
  Consistency consistency = Consistency::kLossy;
  std::string durability_dir;
  uint64_t sync_every_records = 32;        // kAtLeastOnce buffering window
  uint64_t checkpoint_every_records = 512;  // small => mid-run checkpoints

  // Seeded workload: `steps` rounds of `events_per_step` events over
  // `num_keys` keys, each round starting at the next step_micros boundary
  // of the simulated fault timeline.
  uint64_t workload_seed = 1;
  int num_keys = 16;
  int steps = 4;
  int events_per_step = 50;
  Timestamp step_micros = 100 * kMicrosPerMilli;

  // The scripted fault timeline (see RandomFaultPlan for seeded ones).
  FaultPlan plan;

  // Test hook: report one synthetic violation so the flight-recorder
  // path (trace/metrics dump + artifact files) can be exercised without
  // needing a genuine invariant failure.
  bool inject_violation_for_test = false;
};

struct ScenarioResult {
  // Empty when every invariant held.
  std::vector<std::string> violations;

  // Canonical processed-event ledger: sorted "ts|key|value" lines, one per
  // counting-updater invocation. Excludes engine-assigned seq numbers, so
  // two runs of the same seeds must produce identical traces.
  std::vector<std::string> trace;

  // Final per-key live counts, as fetched from the surviving cluster
  // (missing slates read as 0).
  std::map<std::string, int64_t> counts;

  EngineStats stats;
  int64_t messages_duplicated = 0;
  int64_t messages_held = 0;
  int64_t faults_dropped = 0;

  // Flight recorder, populated only when an invariant was violated: the
  // combined /tracez documents of every machine (JSON) and a /metrics
  // snapshot (Prometheus text) taken before teardown. Also written as
  // files under $MUPPET_CHAOS_ARTIFACT_DIR when that is set, so CI can
  // upload the evidence next to the failing seed.
  std::string trace_dump;
  std::string metrics_dump;

  bool ok() const { return violations.empty(); }

  // Human-readable report: violations (if any), seeds, fault timeline,
  // and a one-command replay hint.
  std::string Describe(const ScenarioOptions& options) const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioOptions options)
      : options_(std::move(options)) {}

  // Build the cluster, run the scenario to completion, tear down, and
  // return the invariant-check results. Safe to call once per runner.
  ScenarioResult Run();

 private:
  ScenarioOptions options_;
};

// A seed-derived FaultPlan sized for `options`: 1–3 per-link fault rules
// (drop / duplicate / reorder / delay) plus, with moderate probability,
// machine crash/restart pairs (never machine 0 — it hosts the publisher
// role), a partition/heal pair, and store-node outages when a store is
// configured. Same (seed, options shape) -> same plan.
FaultPlan RandomFaultPlan(uint64_t seed, const ScenarioOptions& options);

// Crash shapes for the recovery matrix ({consistency} x {shape} sweep in
// tests/harness/chaos_property_test.cc). All shapes script crash/restart
// pairs at drain boundaries (both actions carry the same timestamp, so
// they fire back-to-back with zero in-flight events and the ring never
// re-homes a key mid-recovery — exactly the regime where kExactlyOnce
// promises strict oracle equality).
enum class CrashShape {
  // One crash/restart pair on a random victim at a random interior
  // boundary: the machine loses every cached slate and must replay.
  kCrashRestart,
  // Same pair, but the caller is expected to set a tiny
  // checkpoint_every_records so the victim's flusher is checkpointing
  // near-continuously and the crash races manifest/rotation in flight.
  kCrashDuringCheckpoint,
  // Two recovery cycles back-to-back (crash, restart, crash, restart at
  // one boundary). Replay is read-only on the changelog, so a crash that
  // lands mid-replay is observationally a fresh recovery; the double
  // cycle exercises exactly that replay-of-replayed-state path.
  kCrashDuringReplay,
};

const char* CrashShapeName(CrashShape shape);

// A seed-derived recovery plan of the given shape: crash/restart pairs
// only, no link faults, so the durability oracle contract above applies.
// Same (seed, shape, options shape) -> same plan.
FaultPlan RecoveryFaultPlan(uint64_t seed, CrashShape shape,
                            const ScenarioOptions& options);

}  // namespace chaos
}  // namespace muppet

#endif  // MUPPET_TESTING_SCENARIO_H_
